#!/usr/bin/env python3
"""Gate benchmark regressions between two bench JSON reports.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.20]
                        [--strict] [--floor PATTERN=VALUE ...]
                        [--ceiling PATTERN=VALUE ...]

The bench binaries (bench_crypto, bench_headline, bench_parallel) write
reports of the form {"meta": {...}, "metrics": {...}}. Two kinds of metric
keys exist by convention:

  *_speedup*  — machine-independent ratios (e.g. legacy-vs-incremental
                chain verification, serial-vs-parallel wall clock). Gated
                by default: a ratio shrinking by more than --threshold
                fails the run.
  *_ns / *_ms — raw timings. Machine-dependent, so they are only gated
                under --strict (for use on dedicated, quiet hardware).

--floor adds absolute lower bounds on current-report speedups, independent
of the baseline: --floor 'parallel_speedup_*=1.2' fails the run if any
matching metric in CURRENT is below 1.2 (fnmatch patterns). --ceiling is
the mirror image for smaller-is-better metrics:
--ceiling 'allocs_per_broadcast_steady=0' fails the run if the metric
exceeds the bound.

A gateable metric present only in CURRENT is reported as "new" with a
visible warning and never gated: there is nothing to compare it against
until the baseline is regenerated, and silently ignoring it would hide a
typo'd metric name forever.

Parallel speedup keys (name contains "parallel") are only meaningful on
multi-core machines; relative gates and floors are both skipped — with a
visible note — unless the report(s) involved ran on >= 4 cores
(meta.cores_used, falling back to the older meta.threads/meta.cores). A
single-core run therefore never fails a parallel gate, and a baseline
measured with more worker threads than the current run is never compared
against it. SIMD speedup keys (name contains "simd") are likewise skipped
when either report's meta.hash_backends shows the machine had no SIMD
SHA-256 backend (neither shani nor avx2), and — gates and floors both —
when the two reports' meta.hash_backends differ at all: a ratio measured
against SHA-NI must not gate (or excuse) a run measured against AVX2-only
hardware.

Exit status: 0 when no gated metric regressed, 1 otherwise. Stdlib only.
"""

import argparse
import fnmatch
import json
import sys


def load(path):
    with open(path) as f:
        report = json.load(f)
    return report.get("meta", {}), report.get("metrics", {})


def _meta_int(meta, keys):
    for key in keys:
        try:
            return int(meta[key])
        except (KeyError, TypeError, ValueError):
            continue
    return 0


def cores_used(meta):
    """Worker threads the run budgeted: cores_used, else legacy keys."""
    return _meta_int(meta, ("cores_used", "threads", "cores"))


def cores_detected(meta):
    """Physical cores the machine had: cores_detected, else legacy
    "cores". A bench may budget 4 workers on a 1-core host; what decides
    whether a parallel speedup is meaningful is the smaller of the two."""
    return _meta_int(meta, ("cores_detected", "cores"))


def parallel_capacity(meta):
    detected = cores_detected(meta)
    used = cores_used(meta)
    if detected == 0:
        return used
    if used == 0:
        return detected
    return min(detected, used)


def has_simd(meta):
    """True when the report's machine had a SIMD SHA-256 backend. Reports
    written before meta.hash_backends existed are assumed capable (the
    gate then behaves as it always did)."""
    backends = meta.get("hash_backends")
    if backends is None:
        return True
    return "shani" in backends or "avx2" in backends


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed relative regression (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also gate raw *_ns/*_ms timings, not just speedup ratios",
    )
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="PATTERN=VALUE",
        help="absolute lower bound on current speedups matching PATTERN "
        "(fnmatch), e.g. 'parallel_speedup_*=1.2'; repeatable",
    )
    parser.add_argument(
        "--ceiling",
        action="append",
        default=[],
        metavar="PATTERN=VALUE",
        help="absolute upper bound on current metrics matching PATTERN "
        "(fnmatch), e.g. 'allocs_per_broadcast_steady=0'; repeatable",
    )
    args = parser.parse_args()

    base_meta, base = load(args.baseline)
    cur_meta, cur = load(args.current)

    def parallel_skip_note(meta, which):
        """Why a parallel gate can't run on `meta`'s machine, or None."""
        if parallel_capacity(meta) == 1:
            return (f"single-core {which} run (min of cores_detected "
                    f"and cores_used == 1)")
        if parallel_capacity(meta) < 4:
            return f"{which} run had < 4 usable cores"
        return None

    def simd_skip_note(meta, which):
        """Why a SIMD gate can't run on `meta`'s machine, or None."""
        if not has_simd(meta):
            return (f"{which} machine has no SIMD SHA-256 backend "
                    f"(meta.hash_backends = "
                    f"{meta.get('hash_backends')!r})")
        return None

    def simd_backends_mismatch_note():
        """A SIMD speedup measured against one backend set (say SHA-NI)
        must not gate a run measured against another (say AVX2-only):
        both sides may "have SIMD" and still be incomparable. Skip
        visibly, like the parallel cores mismatch."""
        base_backends = base_meta.get("hash_backends")
        cur_backends = cur_meta.get("hash_backends")
        if base_backends is None or cur_backends is None:
            return None
        if base_backends != cur_backends:
            return (f"baseline hash_backends {base_backends!r} != "
                    f"current {cur_backends!r}; not comparable")
        return None

    def cores_mismatch_note(key):
        """A parallel baseline from a beefier machine must not silently
        gate (or excuse) a weaker current run; skip visibly instead."""
        if "parallel" not in key:
            return None
        base_used, cur_used = cores_used(base_meta), cores_used(cur_meta)
        if base_used != cur_used and min(base_used, cur_used) >= 4:
            return (f"baseline used {base_used} cores, current "
                    f"{cur_used}; not comparable")
        return None

    regressions = []
    skipped = []
    for key, base_value in base.items():
        if key not in cur:
            skipped.append((key, "missing from current report"))
            continue
        cur_value = cur[key]
        is_speedup = "_speedup" in key
        is_timing = key.endswith("_ns") or key.endswith("_ms")
        if not is_speedup and not (args.strict and is_timing):
            continue
        if is_speedup and "parallel" in key:
            note = (parallel_skip_note(base_meta, "baseline")
                    or parallel_skip_note(cur_meta, "current")
                    or cores_mismatch_note(key))
            if note is not None:
                skipped.append((key, note))
                continue
        if is_speedup and "simd" in key:
            note = (simd_skip_note(base_meta, "baseline")
                    or simd_skip_note(cur_meta, "current")
                    or simd_backends_mismatch_note())
            if note is not None:
                skipped.append((key, note))
                continue
        if is_speedup:
            # Bigger is better; fail when the ratio shrank too far.
            floor = base_value * (1.0 - args.threshold)
            ok = cur_value >= floor
            direction = f">= {floor:.3g}"
        else:
            # Smaller is better.
            ceiling = base_value * (1.0 + args.threshold)
            ok = cur_value <= ceiling
            direction = f"<= {ceiling:.3g}"
        status = "ok" if ok else "REGRESSION"
        print(f"{status:10s} {key}: base {base_value:.4g} -> "
              f"cur {cur_value:.4g} (want {direction})")
        if not ok:
            regressions.append(key)

    # Metrics only the CURRENT report has are new: nothing to gate them
    # against yet, but say so loudly — regenerating the baseline starts
    # gating them, and silence here would hide a typo'd key forever.
    for key, cur_value in cur.items():
        if key in base:
            continue
        if "_speedup" in key or key.endswith("_ns") or key.endswith("_ms"):
            print(f"{'NEW':10s} {key}: cur {cur_value:.4g} (not in "
                  f"baseline; no gate until the baseline is regenerated)")

    # Absolute floors run against the current report only: the bar is the
    # paper-level expectation (e.g. parallel_speedup_* >= 1.2 on a real
    # multi-core runner), not a drifting baseline.
    for spec in args.floor:
        pattern, sep, raw = spec.partition("=")
        if not sep:
            parser.error(f"--floor needs PATTERN=VALUE, got {spec!r}")
        floor_value = float(raw)
        matched = False
        for key, cur_value in cur.items():
            if not fnmatch.fnmatch(key, pattern):
                continue
            matched = True
            if "parallel" in key:
                note = parallel_skip_note(cur_meta, "current")
                if note is not None:
                    skipped.append((key, f"floor {floor_value:g}: {note}"))
                    continue
            if "simd" in key:
                note = (simd_skip_note(cur_meta, "current")
                        or simd_backends_mismatch_note())
                if note is not None:
                    skipped.append((key, f"floor {floor_value:g}: {note}"))
                    continue
            ok = cur_value >= floor_value
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {key}: cur {cur_value:.4g} "
                  f"(floor {floor_value:g})")
            if not ok:
                regressions.append(key)
        if not matched:
            skipped.append((pattern, "floor pattern matched no metric"))

    # Absolute ceilings: smaller-is-better metrics with a hard bound (the
    # zero-allocation gate). No machine-capability skips apply — an
    # allocation count is not a timing.
    for spec in args.ceiling:
        pattern, sep, raw = spec.partition("=")
        if not sep:
            parser.error(f"--ceiling needs PATTERN=VALUE, got {spec!r}")
        ceiling_value = float(raw)
        matched = False
        for key, cur_value in cur.items():
            if not fnmatch.fnmatch(key, pattern):
                continue
            matched = True
            ok = cur_value <= ceiling_value
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {key}: cur {cur_value:.4g} "
                  f"(ceiling {ceiling_value:g})")
            if not ok:
                regressions.append(key)
        if not matched:
            skipped.append((pattern, "ceiling pattern matched no metric"))

    for key, why in skipped:
        print(f"{'skipped':10s} {key}: {why}")

    if regressions:
        print(f"\n{len(regressions)} regression(s): "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    print("\nno gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
