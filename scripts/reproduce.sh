#!/usr/bin/env sh
# Rebuild, run the whole test suite and regenerate every experiment table.
# Usage: scripts/reproduce.sh [build-dir]
set -eu
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && "$b"
done
