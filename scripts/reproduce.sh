#!/usr/bin/env sh
# Rebuild, run the whole test suite and regenerate every experiment table.
# Usage: scripts/reproduce.sh [build-dir]
set -eu
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure
# Fixed-seed chaos soak (~5s): random transport-fault plans across the
# registry; fails on any invariant violation within the fault budget.
"$BUILD"/examples/chaos soak --runs 10000 --seed 1
"$BUILD"/examples/chaos demo --seed 1
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] && "$b"
done
