#!/usr/bin/env sh
# Rebuild, run the whole test suite and regenerate every experiment table.
# Usage: scripts/reproduce.sh [build-dir]
set -eu
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure
# The sim-vs-net parity gate on its own: every registry protocol must
# decide and account identically on the simulator, the in-process
# transport and TCP loopback.
ctest --test-dir "$BUILD" -L net -j"$(nproc)" --output-on-failure
# Fixed-seed chaos soak (~5s): random transport-fault plans across the
# registry; fails on any invariant violation within the fault budget.
"$BUILD"/examples/chaos soak --runs 10000 --seed 1
"$BUILD"/examples/chaos demo --seed 1
# The same soak on the real message-passing runtime, then agreement over
# actual TCP sockets with the paper's budgets checked on the wire.
"$BUILD"/examples/chaos soak --runs 2000 --seed 1 --backend net
"$BUILD"/examples/netdemo --backend tcp
# Crash tolerance: the endpoint-churn suite (kills, restarts, truncated
# frames, the run watchdog — on both transports), then a soak that draws
# random process churn severing real links on top of the fault plans.
ctest --test-dir "$BUILD" -L churn -j"$(nproc)" --output-on-failure
"$BUILD"/examples/chaos soak --runs 300 --seed 1 --backend net --churn 0.5
# The agreement daemon: wire-protocol, daemon-vs-sim parity and
# concurrent-instance isolation suites (endpoints as real OS processes),
# then the self-contained smoke drill under a hard timeout.
ctest --test-dir "$BUILD" -L svc -j"$(nproc)" --output-on-failure
timeout 240 "$BUILD"/src/dr82d smoke --endpoints 5
# Transferable proofs: the forgery battery, the proven-value store and
# the cross-backend byte-parity suite, then the offline-verification
# drill — extract proofs over the wire, shut the daemon down, verify
# every proof offline, reject a tampered copy (docs/PROOFS.md).
ctest --test-dir "$BUILD" -L proof -j"$(nproc)" --output-on-failure
timeout 240 "$BUILD"/src/dr82d proof-smoke --endpoints 5
# Conformance: the paper's bounds as executable oracles over randomized
# cases, differentially across sim / in-process / TCP (EXPERIMENTS.md E12).
ctest --test-dir "$BUILD" -L conf -j"$(nproc)" --output-on-failure
"$BUILD"/examples/conformance run --cases 200 --seed 1
# Crypto backends: every SHA-256 implementation the machine supports
# (scalar, SHA-NI, AVX2 multi-buffer) must be bit-identical, and batched
# verification must match the sequential loop verdict-for-verdict
# (EXPERIMENTS.md E13/E14).
ctest --test-dir "$BUILD" -L crypto -j"$(nproc)" --output-on-failure
# Benchmarks. bench_crypto, bench_headline and bench_proof also
# regenerate the JSON summaries committed at the repo root;
# scripts/bench_compare.py gates the machine-independent speedup ratios
# in them against a baseline.
"$BUILD"/bench/bench_crypto --json BENCH_crypto.json
"$BUILD"/bench/bench_headline --json BENCH_headline.json
"$BUILD"/bench/bench_proof --json BENCH_proof.json
for b in "$BUILD"/bench/*; do
  case "$b" in
    */bench_crypto|*/bench_headline|*/bench_proof) continue ;;
  esac
  [ -x "$b" ] && "$b"
done
