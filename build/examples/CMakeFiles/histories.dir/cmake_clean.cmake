file(REMOVE_RECURSE
  "CMakeFiles/histories.dir/histories.cpp.o"
  "CMakeFiles/histories.dir/histories.cpp.o.d"
  "histories"
  "histories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
