# Empty compiler generated dependencies file for histories.
# This may be replaced when dependencies are built.
