file(REMOVE_RECURSE
  "CMakeFiles/sensor_consensus.dir/sensor_consensus.cpp.o"
  "CMakeFiles/sensor_consensus.dir/sensor_consensus.cpp.o.d"
  "sensor_consensus"
  "sensor_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
