# Empty dependencies file for sensor_consensus.
# This may be replaced when dependencies are built.
