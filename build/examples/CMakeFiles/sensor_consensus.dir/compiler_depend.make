# Empty compiler generated dependencies file for sensor_consensus.
# This may be replaced when dependencies are built.
