file(REMOVE_RECURSE
  "CMakeFiles/message_optimal.dir/message_optimal.cpp.o"
  "CMakeFiles/message_optimal.dir/message_optimal.cpp.o.d"
  "message_optimal"
  "message_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
