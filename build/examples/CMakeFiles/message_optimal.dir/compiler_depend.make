# Empty compiler generated dependencies file for message_optimal.
# This may be replaced when dependencies are built.
