# Empty dependencies file for bench_alg2.
# This may be replaced when dependencies are built.
