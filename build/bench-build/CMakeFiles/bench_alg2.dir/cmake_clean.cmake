file(REMOVE_RECURSE
  "../bench/bench_alg2"
  "../bench/bench_alg2.pdb"
  "CMakeFiles/bench_alg2.dir/bench_alg2.cpp.o"
  "CMakeFiles/bench_alg2.dir/bench_alg2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
