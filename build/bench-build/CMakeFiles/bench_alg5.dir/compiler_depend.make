# Empty compiler generated dependencies file for bench_alg5.
# This may be replaced when dependencies are built.
