file(REMOVE_RECURSE
  "../bench/bench_alg5"
  "../bench/bench_alg5.pdb"
  "CMakeFiles/bench_alg5.dir/bench_alg5.cpp.o"
  "CMakeFiles/bench_alg5.dir/bench_alg5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
