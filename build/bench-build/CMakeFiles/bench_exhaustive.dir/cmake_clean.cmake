file(REMOVE_RECURSE
  "../bench/bench_exhaustive"
  "../bench/bench_exhaustive.pdb"
  "CMakeFiles/bench_exhaustive.dir/bench_exhaustive.cpp.o"
  "CMakeFiles/bench_exhaustive.dir/bench_exhaustive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
