
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_headline.cpp" "bench-build/CMakeFiles/bench_headline.dir/bench_headline.cpp.o" "gcc" "bench-build/CMakeFiles/bench_headline.dir/bench_headline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dr82_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_ba.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_ba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_hist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
