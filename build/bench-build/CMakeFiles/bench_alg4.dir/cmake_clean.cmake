file(REMOVE_RECURSE
  "../bench/bench_alg4"
  "../bench/bench_alg4.pdb"
  "CMakeFiles/bench_alg4.dir/bench_alg4.cpp.o"
  "CMakeFiles/bench_alg4.dir/bench_alg4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
