# Empty dependencies file for bench_alg3.
# This may be replaced when dependencies are built.
