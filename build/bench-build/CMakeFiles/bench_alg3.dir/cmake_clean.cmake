file(REMOVE_RECURSE
  "../bench/bench_alg3"
  "../bench/bench_alg3.pdb"
  "CMakeFiles/bench_alg3.dir/bench_alg3.cpp.o"
  "CMakeFiles/bench_alg3.dir/bench_alg3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
