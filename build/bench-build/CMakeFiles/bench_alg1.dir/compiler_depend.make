# Empty compiler generated dependencies file for bench_alg1.
# This may be replaced when dependencies are built.
