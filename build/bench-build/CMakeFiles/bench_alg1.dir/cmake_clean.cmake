file(REMOVE_RECURSE
  "../bench/bench_alg1"
  "../bench/bench_alg1.pdb"
  "CMakeFiles/bench_alg1.dir/bench_alg1.cpp.o"
  "CMakeFiles/bench_alg1.dir/bench_alg1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
