file(REMOVE_RECURSE
  "CMakeFiles/dr82_ba.dir/ba/algorithm1.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/algorithm1.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/algorithm2.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/algorithm2.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/algorithm3.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/algorithm3.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/algorithm5.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/algorithm5.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/dolev_strong.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/dolev_strong.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/eig.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/eig.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/exchange.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/exchange.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/interactive_consistency.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/interactive_consistency.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/phase_king.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/phase_king.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/proof_of_work.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/proof_of_work.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/registry.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/registry.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/replay.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/replay.cpp.o.d"
  "CMakeFiles/dr82_ba.dir/ba/tree.cpp.o"
  "CMakeFiles/dr82_ba.dir/ba/tree.cpp.o.d"
  "libdr82_ba.a"
  "libdr82_ba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_ba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
