
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ba/algorithm1.cpp" "src/CMakeFiles/dr82_ba.dir/ba/algorithm1.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/algorithm1.cpp.o.d"
  "/root/repo/src/ba/algorithm2.cpp" "src/CMakeFiles/dr82_ba.dir/ba/algorithm2.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/algorithm2.cpp.o.d"
  "/root/repo/src/ba/algorithm3.cpp" "src/CMakeFiles/dr82_ba.dir/ba/algorithm3.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/algorithm3.cpp.o.d"
  "/root/repo/src/ba/algorithm5.cpp" "src/CMakeFiles/dr82_ba.dir/ba/algorithm5.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/algorithm5.cpp.o.d"
  "/root/repo/src/ba/dolev_strong.cpp" "src/CMakeFiles/dr82_ba.dir/ba/dolev_strong.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/dolev_strong.cpp.o.d"
  "/root/repo/src/ba/eig.cpp" "src/CMakeFiles/dr82_ba.dir/ba/eig.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/eig.cpp.o.d"
  "/root/repo/src/ba/exchange.cpp" "src/CMakeFiles/dr82_ba.dir/ba/exchange.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/exchange.cpp.o.d"
  "/root/repo/src/ba/interactive_consistency.cpp" "src/CMakeFiles/dr82_ba.dir/ba/interactive_consistency.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/interactive_consistency.cpp.o.d"
  "/root/repo/src/ba/phase_king.cpp" "src/CMakeFiles/dr82_ba.dir/ba/phase_king.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/phase_king.cpp.o.d"
  "/root/repo/src/ba/proof_of_work.cpp" "src/CMakeFiles/dr82_ba.dir/ba/proof_of_work.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/proof_of_work.cpp.o.d"
  "/root/repo/src/ba/registry.cpp" "src/CMakeFiles/dr82_ba.dir/ba/registry.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/registry.cpp.o.d"
  "/root/repo/src/ba/replay.cpp" "src/CMakeFiles/dr82_ba.dir/ba/replay.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/replay.cpp.o.d"
  "/root/repo/src/ba/tree.cpp" "src/CMakeFiles/dr82_ba.dir/ba/tree.cpp.o" "gcc" "src/CMakeFiles/dr82_ba.dir/ba/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dr82_ba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
