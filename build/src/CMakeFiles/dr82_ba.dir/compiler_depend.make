# Empty compiler generated dependencies file for dr82_ba.
# This may be replaced when dependencies are built.
