file(REMOVE_RECURSE
  "libdr82_ba.a"
)
