file(REMOVE_RECURSE
  "CMakeFiles/dr82_codec.dir/codec/codec.cpp.o"
  "CMakeFiles/dr82_codec.dir/codec/codec.cpp.o.d"
  "libdr82_codec.a"
  "libdr82_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
