# Empty compiler generated dependencies file for dr82_codec.
# This may be replaced when dependencies are built.
