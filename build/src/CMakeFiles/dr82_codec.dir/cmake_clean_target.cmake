file(REMOVE_RECURSE
  "libdr82_codec.a"
)
