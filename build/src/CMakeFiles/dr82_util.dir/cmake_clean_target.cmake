file(REMOVE_RECURSE
  "libdr82_util.a"
)
