file(REMOVE_RECURSE
  "CMakeFiles/dr82_util.dir/util/bytes.cpp.o"
  "CMakeFiles/dr82_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/dr82_util.dir/util/log.cpp.o"
  "CMakeFiles/dr82_util.dir/util/log.cpp.o.d"
  "CMakeFiles/dr82_util.dir/util/rng.cpp.o"
  "CMakeFiles/dr82_util.dir/util/rng.cpp.o.d"
  "libdr82_util.a"
  "libdr82_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
