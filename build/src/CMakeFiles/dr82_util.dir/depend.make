# Empty dependencies file for dr82_util.
# This may be replaced when dependencies are built.
