file(REMOVE_RECURSE
  "CMakeFiles/dr82_adversary.dir/adversary/coalition.cpp.o"
  "CMakeFiles/dr82_adversary.dir/adversary/coalition.cpp.o.d"
  "CMakeFiles/dr82_adversary.dir/adversary/strategies.cpp.o"
  "CMakeFiles/dr82_adversary.dir/adversary/strategies.cpp.o.d"
  "libdr82_adversary.a"
  "libdr82_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
