# Empty compiler generated dependencies file for dr82_adversary.
# This may be replaced when dependencies are built.
