file(REMOVE_RECURSE
  "libdr82_adversary.a"
)
