file(REMOVE_RECURSE
  "CMakeFiles/dr82_ba_core.dir/ba/signed_value.cpp.o"
  "CMakeFiles/dr82_ba_core.dir/ba/signed_value.cpp.o.d"
  "CMakeFiles/dr82_ba_core.dir/ba/valid_message.cpp.o"
  "CMakeFiles/dr82_ba_core.dir/ba/valid_message.cpp.o.d"
  "libdr82_ba_core.a"
  "libdr82_ba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_ba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
