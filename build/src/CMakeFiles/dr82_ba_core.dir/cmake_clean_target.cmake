file(REMOVE_RECURSE
  "libdr82_ba_core.a"
)
