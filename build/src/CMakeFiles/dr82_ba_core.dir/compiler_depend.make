# Empty compiler generated dependencies file for dr82_ba_core.
# This may be replaced when dependencies are built.
