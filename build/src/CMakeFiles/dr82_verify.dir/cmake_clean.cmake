file(REMOVE_RECURSE
  "CMakeFiles/dr82_verify.dir/verify/exhaustive.cpp.o"
  "CMakeFiles/dr82_verify.dir/verify/exhaustive.cpp.o.d"
  "libdr82_verify.a"
  "libdr82_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
