# Empty compiler generated dependencies file for dr82_verify.
# This may be replaced when dependencies are built.
