file(REMOVE_RECURSE
  "libdr82_verify.a"
)
