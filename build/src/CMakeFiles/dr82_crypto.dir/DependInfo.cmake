
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/dr82_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/dr82_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/key_registry.cpp" "src/CMakeFiles/dr82_crypto.dir/crypto/key_registry.cpp.o" "gcc" "src/CMakeFiles/dr82_crypto.dir/crypto/key_registry.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/CMakeFiles/dr82_crypto.dir/crypto/merkle.cpp.o" "gcc" "src/CMakeFiles/dr82_crypto.dir/crypto/merkle.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/dr82_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/dr82_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/signature.cpp" "src/CMakeFiles/dr82_crypto.dir/crypto/signature.cpp.o" "gcc" "src/CMakeFiles/dr82_crypto.dir/crypto/signature.cpp.o.d"
  "/root/repo/src/crypto/wots.cpp" "src/CMakeFiles/dr82_crypto.dir/crypto/wots.cpp.o" "gcc" "src/CMakeFiles/dr82_crypto.dir/crypto/wots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dr82_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
