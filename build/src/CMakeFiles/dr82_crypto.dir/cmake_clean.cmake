file(REMOVE_RECURSE
  "CMakeFiles/dr82_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/dr82_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/dr82_crypto.dir/crypto/key_registry.cpp.o"
  "CMakeFiles/dr82_crypto.dir/crypto/key_registry.cpp.o.d"
  "CMakeFiles/dr82_crypto.dir/crypto/merkle.cpp.o"
  "CMakeFiles/dr82_crypto.dir/crypto/merkle.cpp.o.d"
  "CMakeFiles/dr82_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/dr82_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/dr82_crypto.dir/crypto/signature.cpp.o"
  "CMakeFiles/dr82_crypto.dir/crypto/signature.cpp.o.d"
  "CMakeFiles/dr82_crypto.dir/crypto/wots.cpp.o"
  "CMakeFiles/dr82_crypto.dir/crypto/wots.cpp.o.d"
  "libdr82_crypto.a"
  "libdr82_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
