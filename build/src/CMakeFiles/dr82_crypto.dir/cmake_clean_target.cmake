file(REMOVE_RECURSE
  "libdr82_crypto.a"
)
