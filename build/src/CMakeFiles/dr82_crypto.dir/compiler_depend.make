# Empty compiler generated dependencies file for dr82_crypto.
# This may be replaced when dependencies are built.
