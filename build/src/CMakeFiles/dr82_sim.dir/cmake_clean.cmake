file(REMOVE_RECURSE
  "CMakeFiles/dr82_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/dr82_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/dr82_sim.dir/sim/network.cpp.o"
  "CMakeFiles/dr82_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/dr82_sim.dir/sim/runner.cpp.o"
  "CMakeFiles/dr82_sim.dir/sim/runner.cpp.o.d"
  "libdr82_sim.a"
  "libdr82_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
