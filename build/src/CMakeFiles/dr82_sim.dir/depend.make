# Empty dependencies file for dr82_sim.
# This may be replaced when dependencies are built.
