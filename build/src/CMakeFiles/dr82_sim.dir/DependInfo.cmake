
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/dr82_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/dr82_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/dr82_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/dr82_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/CMakeFiles/dr82_sim.dir/sim/runner.cpp.o" "gcc" "src/CMakeFiles/dr82_sim.dir/sim/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dr82_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dr82_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
