file(REMOVE_RECURSE
  "libdr82_sim.a"
)
