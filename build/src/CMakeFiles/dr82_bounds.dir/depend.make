# Empty dependencies file for dr82_bounds.
# This may be replaced when dependencies are built.
