file(REMOVE_RECURSE
  "CMakeFiles/dr82_bounds.dir/bounds/formulas.cpp.o"
  "CMakeFiles/dr82_bounds.dir/bounds/formulas.cpp.o.d"
  "CMakeFiles/dr82_bounds.dir/bounds/theorem1.cpp.o"
  "CMakeFiles/dr82_bounds.dir/bounds/theorem1.cpp.o.d"
  "CMakeFiles/dr82_bounds.dir/bounds/theorem2.cpp.o"
  "CMakeFiles/dr82_bounds.dir/bounds/theorem2.cpp.o.d"
  "libdr82_bounds.a"
  "libdr82_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
