file(REMOVE_RECURSE
  "libdr82_bounds.a"
)
