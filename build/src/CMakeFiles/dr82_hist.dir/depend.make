# Empty dependencies file for dr82_hist.
# This may be replaced when dependencies are built.
