file(REMOVE_RECURSE
  "CMakeFiles/dr82_hist.dir/hist/export.cpp.o"
  "CMakeFiles/dr82_hist.dir/hist/export.cpp.o.d"
  "CMakeFiles/dr82_hist.dir/hist/history.cpp.o"
  "CMakeFiles/dr82_hist.dir/hist/history.cpp.o.d"
  "libdr82_hist.a"
  "libdr82_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr82_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
