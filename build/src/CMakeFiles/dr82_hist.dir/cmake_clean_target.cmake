file(REMOVE_RECURSE
  "libdr82_hist.a"
)
