file(REMOVE_RECURSE
  "CMakeFiles/proof_of_work_test.dir/proof_of_work_test.cpp.o"
  "CMakeFiles/proof_of_work_test.dir/proof_of_work_test.cpp.o.d"
  "proof_of_work_test"
  "proof_of_work_test.pdb"
  "proof_of_work_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_of_work_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
