# Empty dependencies file for proof_of_work_test.
# This may be replaced when dependencies are built.
