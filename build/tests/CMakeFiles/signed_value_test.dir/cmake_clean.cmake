file(REMOVE_RECURSE
  "CMakeFiles/signed_value_test.dir/signed_value_test.cpp.o"
  "CMakeFiles/signed_value_test.dir/signed_value_test.cpp.o.d"
  "signed_value_test"
  "signed_value_test.pdb"
  "signed_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signed_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
