file(REMOVE_RECURSE
  "CMakeFiles/interactive_consistency_test.dir/interactive_consistency_test.cpp.o"
  "CMakeFiles/interactive_consistency_test.dir/interactive_consistency_test.cpp.o.d"
  "interactive_consistency_test"
  "interactive_consistency_test.pdb"
  "interactive_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
