# Empty dependencies file for interactive_consistency_test.
# This may be replaced when dependencies are built.
