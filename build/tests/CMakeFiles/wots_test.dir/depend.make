# Empty dependencies file for wots_test.
# This may be replaced when dependencies are built.
