file(REMOVE_RECURSE
  "CMakeFiles/wots_test.dir/wots_test.cpp.o"
  "CMakeFiles/wots_test.dir/wots_test.cpp.o.d"
  "wots_test"
  "wots_test.pdb"
  "wots_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
