file(REMOVE_RECURSE
  "CMakeFiles/algorithm5_test.dir/algorithm5_test.cpp.o"
  "CMakeFiles/algorithm5_test.dir/algorithm5_test.cpp.o.d"
  "algorithm5_test"
  "algorithm5_test.pdb"
  "algorithm5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
