# Empty dependencies file for algorithm5_test.
# This may be replaced when dependencies are built.
