# Empty compiler generated dependencies file for rushing_test.
# This may be replaced when dependencies are built.
