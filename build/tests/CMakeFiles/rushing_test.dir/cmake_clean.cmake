file(REMOVE_RECURSE
  "CMakeFiles/rushing_test.dir/rushing_test.cpp.o"
  "CMakeFiles/rushing_test.dir/rushing_test.cpp.o.d"
  "rushing_test"
  "rushing_test.pdb"
  "rushing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rushing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
