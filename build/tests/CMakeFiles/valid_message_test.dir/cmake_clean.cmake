file(REMOVE_RECURSE
  "CMakeFiles/valid_message_test.dir/valid_message_test.cpp.o"
  "CMakeFiles/valid_message_test.dir/valid_message_test.cpp.o.d"
  "valid_message_test"
  "valid_message_test.pdb"
  "valid_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valid_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
