# Empty compiler generated dependencies file for valid_message_test.
# This may be replaced when dependencies are built.
