file(REMOVE_RECURSE
  "CMakeFiles/phase_king_test.dir/phase_king_test.cpp.o"
  "CMakeFiles/phase_king_test.dir/phase_king_test.cpp.o.d"
  "phase_king_test"
  "phase_king_test.pdb"
  "phase_king_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_king_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
