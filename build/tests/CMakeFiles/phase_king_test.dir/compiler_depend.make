# Empty compiler generated dependencies file for phase_king_test.
# This may be replaced when dependencies are built.
