file(REMOVE_RECURSE
  "CMakeFiles/algorithm3_test.dir/algorithm3_test.cpp.o"
  "CMakeFiles/algorithm3_test.dir/algorithm3_test.cpp.o.d"
  "algorithm3_test"
  "algorithm3_test.pdb"
  "algorithm3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
