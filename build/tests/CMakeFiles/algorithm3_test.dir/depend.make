# Empty dependencies file for algorithm3_test.
# This may be replaced when dependencies are built.
