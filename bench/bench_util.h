// Shared helpers for the benchmark binaries. Each binary regenerates one of
// the paper's quantitative claims (see EXPERIMENTS.md): it prints a
// deterministic measurement table (message/signature/phase counts vs. the
// paper's bound) and then runs google-benchmark timings for the same
// configurations.
//
// Binaries that support machine-readable output accept `--json <path>`
// (stripped before google-benchmark sees the argv) and write the summary
// numbers via JsonReport; scripts/bench_compare.py consumes those files.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "adversary/strategies.h"
#include "ba/registry.h"
#include "net/harness.h"

namespace dr::bench {

using ba::BAConfig;
using ba::ProcId;
using ba::Protocol;
using ba::ScenarioFault;
using ba::Value;

inline ScenarioFault silent(ProcId id) {
  return ScenarioFault{id, [](ProcId, const BAConfig&) {
                         return std::make_unique<adversary::SilentProcess>();
                       }};
}

/// Which runtime executes the scenario. All three take the same (protocol,
/// config, seed, faults) tuple and, by the parity theorem, produce the same
/// decisions and paper-level counts; only the wall clock differs.
enum class BenchBackend { kSim, kInProcess, kTcp };

inline const char* to_string(BenchBackend backend) {
  switch (backend) {
    case BenchBackend::kSim:
      return "sim";
    case BenchBackend::kInProcess:
      return "inprocess";
    case BenchBackend::kTcp:
      break;
  }
  return "tcp";
}

struct Measurement {
  std::size_t messages = 0;
  std::size_t signatures = 0;
  std::size_t phases = 0;
  bool agreement = false;
  bool validity = false;
  /// Wire-level counts; zero under the in-memory simulator.
  std::size_t frames = 0;
  std::size_t wire_bytes = 0;
  /// Wall clock of the single run backing this measurement.
  double millis = 0;
};

/// One scenario run on the chosen backend. The seed and the fault list are
/// forwarded to every backend identically — a net measurement at a given
/// (seed, faults) is comparable to the sim measurement at the same pair,
/// never to a silently different run.
inline Measurement measure(const Protocol& protocol, const BAConfig& config,
                           const std::vector<ScenarioFault>& faults = {},
                           std::uint64_t seed = 1,
                           BenchBackend backend = BenchBackend::kSim) {
  const auto begin = std::chrono::steady_clock::now();
  sim::RunResult result;
  if (backend == BenchBackend::kSim) {
    result = ba::run_scenario(protocol, config, seed, faults);
  } else {
    net::NetScenarioOptions options;
    options.seed = seed;
    const net::Backend net_backend = backend == BenchBackend::kInProcess
                                         ? net::Backend::kInProcess
                                         : net::Backend::kTcpLoopback;
    result = net::run_scenario(protocol, config, net_backend, options, faults)
                 .run;
  }
  const auto end = std::chrono::steady_clock::now();
  const auto check =
      sim::check_byzantine_agreement(result, config.transmitter,
                                     config.value);
  Measurement m{result.metrics.messages_by_correct(),
                result.metrics.signatures_by_correct(),
                result.metrics.last_active_phase(), check.agreement,
                check.validity};
  m.frames = result.metrics.frames_sent();
  m.wire_bytes = result.metrics.wire_bytes_by_correct();
  m.millis =
      std::chrono::duration<double, std::milli>(end - begin).count();
  return m;
}

/// Registers a wall-clock benchmark closure under `name`.
template <typename Fn>
void register_timing(const std::string& name, Fn fn) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [fn](benchmark::State& state) {
                                 for (auto _ : state) fn();
                               })
      ->Unit(benchmark::kMillisecond);
}

inline void print_header(const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Best-effort short commit hash of the working tree, "unknown" outside a
/// checkout. Recorded in bench meta so a stored report names the code it
/// measured.
inline std::string git_sha() {
  std::FILE* pipe = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  std::string sha;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

/// Flat JSON summary: {"meta": {...}, "metrics": {...}}. Meta records the
/// machine context (cores, the worker-thread budget the run used, the git
/// SHA it measured) so consumers can gate machine-dependent numbers;
/// metric keys follow the `<what>_ns` / `<what>_speedup` convention that
/// scripts/bench_compare.py keys on. Insertion order is preserved.
class JsonReport {
 public:
  JsonReport() {
    // Detected vs used are recorded separately on purpose: machine-
    // dependent numbers (parallel speedups, instances/sec) are only
    // comparable between reports whose cores_used match, and
    // scripts/bench_compare.py refuses to gate a multi-core baseline
    // against a fewer-core artifact instead of silently regressing.
    set_meta("cores_detected",
             std::to_string(std::thread::hardware_concurrency()));
    // Worker threads the measurements actually used; serial binaries keep
    // the default, bench_parallel/bench_transport override.
    set_meta("cores_used", "1");
    // Back-compat aliases for older reports/tools ("cores" used to mean
    // detected, "threads" used).
    set_meta("cores",
             std::to_string(std::thread::hardware_concurrency()));
    set_meta("threads", "1");
    set_meta("git_sha", git_sha());
  }

  void set_meta(const std::string& key, const std::string& value) {
    upsert(meta_, key, quote(value));
  }
  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    upsert(metrics_, key, buf);
  }
  void set_count(const std::string& key, std::size_t value) {
    upsert(metrics_, key, std::to_string(value));
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"meta\": {");
    write_section(f, meta_, "    ");
    std::fprintf(f, "\n  },\n  \"metrics\": {");
    write_section(f, metrics_, "    ");
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  static std::string quote(const std::string& value) {
    std::string out = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }
  static void upsert(Entries& entries, const std::string& key,
                     const std::string& rendered) {
    for (auto& [k, v] : entries) {
      if (k == key) {
        v = rendered;
        return;
      }
    }
    entries.emplace_back(key, rendered);
  }
  static void write_section(std::FILE* f, const Entries& entries,
                            const char* indent) {
    bool first = true;
    for (const auto& [key, rendered] : entries) {
      std::fprintf(f, "%s\n%s\"%s\": %s", first ? "" : ",", indent,
                   key.c_str(), rendered.c_str());
      first = false;
    }
  }

  Entries meta_;
  Entries metrics_;
};

/// Strips `--json <path>` from argv (so google-benchmark's own flag parsing
/// never sees it) and returns the path, or "" when absent.
inline std::string take_json_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      const std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path;
    }
  }
  return "";
}

/// Standard main: print the tables (fn), then run timings.
#define DR82_BENCH_MAIN(print_tables)                       \
  int main(int argc, char** argv) {                         \
    print_tables();                                         \
    ::benchmark::Initialize(&argc, argv);                   \
    ::benchmark::RunSpecifiedBenchmarks();                  \
    ::benchmark::Shutdown();                                \
    return 0;                                               \
  }

}  // namespace dr::bench
