// Shared helpers for the benchmark binaries. Each binary regenerates one of
// the paper's quantitative claims (see EXPERIMENTS.md): it prints a
// deterministic measurement table (message/signature/phase counts vs. the
// paper's bound) and then runs google-benchmark timings for the same
// configurations.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "adversary/strategies.h"
#include "ba/registry.h"

namespace dr::bench {

using ba::BAConfig;
using ba::ProcId;
using ba::Protocol;
using ba::ScenarioFault;
using ba::Value;

inline ScenarioFault silent(ProcId id) {
  return ScenarioFault{id, [](ProcId, const BAConfig&) {
                         return std::make_unique<adversary::SilentProcess>();
                       }};
}

struct Measurement {
  std::size_t messages = 0;
  std::size_t signatures = 0;
  std::size_t phases = 0;
  bool agreement = false;
  bool validity = false;
};

inline Measurement measure(const Protocol& protocol, const BAConfig& config,
                           const std::vector<ScenarioFault>& faults = {},
                           std::uint64_t seed = 1) {
  const auto result = ba::run_scenario(protocol, config, seed, faults);
  const auto check =
      sim::check_byzantine_agreement(result, config.transmitter,
                                     config.value);
  return Measurement{result.metrics.messages_by_correct(),
                     result.metrics.signatures_by_correct(),
                     result.metrics.last_active_phase(), check.agreement,
                     check.validity};
}

/// Registers a wall-clock benchmark closure under `name`.
template <typename Fn>
void register_timing(const std::string& name, Fn fn) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [fn](benchmark::State& state) {
                                 for (auto _ : state) fn();
                               })
      ->Unit(benchmark::kMillisecond);
}

inline void print_header(const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

/// Standard main: print the tables (fn), then run timings.
#define DR82_BENCH_MAIN(print_tables)                       \
  int main(int argc, char** argv) {                         \
    print_tables();                                         \
    ::benchmark::Initialize(&argc, argv);                   \
    ::benchmark::RunSpecifiedBenchmarks();                  \
    ::benchmark::Shutdown();                                \
    return 0;                                               \
  }

}  // namespace dr::bench
