// Exhaustive small-model verification report: for tiny configurations,
// every derivation-closed strategy of a single Byzantine processor is
// enumerated and both Byzantine Agreement conditions are checked in every
// execution (see src/verify/exhaustive.h for the soundness argument of the
// strategy abstraction). The broken protocols from the lower-bound
// apparatus are included to show the checker finds their counterexamples.
#include "bench_util.h"
#include "bounds/theorem2.h"
#include "verify/exhaustive.h"

namespace dr::bench {
namespace {

void print_tables() {
  print_header("Exhaustive adversary enumeration (single fault)",
               "0 violations across the full strategy tree = model-checked "
               "at this configuration");
  std::printf("%-22s %4s %4s %8s | %12s %11s %6s\n", "protocol", "n", "t",
              "faulty", "executions", "violations", "full?");

  struct Job {
    std::string label;
    Protocol protocol;
    std::size_t n;
    std::size_t t;
    ProcId faulty;
    std::size_t max_runs;
  };
  std::vector<Job> jobs;
  auto add = [&](const Protocol& p, std::size_t n, std::size_t t,
                 ProcId faulty, std::size_t max_runs = 5'000'000) {
    jobs.push_back(Job{p.name, p, n, t, faulty, max_runs});
  };
  add(*ba::find_protocol("alg1"), 3, 1, 0);
  add(*ba::find_protocol("alg1"), 3, 1, 1);
  add(*ba::find_protocol("alg1"), 3, 1, 2);
  add(*ba::find_protocol("alg1-mv"), 3, 1, 0);
  // Algorithm 2's proof phases make its strategy tree enormous; report a
  // 200k-execution frontier (the full space is covered by exhaustive_test's
  // smaller configurations plus the sampled campaigns).
  add(*ba::find_protocol("alg2"), 3, 1, 1, 200'000);
  add(*ba::find_protocol("dolev-strong"), 4, 1, 0);
  add(*ba::find_protocol("dolev-strong"), 4, 1, 2);
  add(*ba::find_protocol("eig"), 4, 1, 0);
  add(*ba::find_protocol("eig"), 4, 1, 3);
  add(bounds::make_one_shot_protocol(), 4, 1, 0);  // broken: must violate

  for (const Job& job : jobs) {
    verify::ExhaustiveOptions options;
    options.max_runs = job.max_runs;
    const auto result = verify::exhaust(job.protocol,
                                        BAConfig{job.n, job.t, 0, 1},
                                        job.faulty, options);
    std::printf("%-22s %4zu %4zu %8u | %12zu %11zu %6s\n",
                job.label.c_str(), job.n, job.t, job.faulty,
                result.executions, result.violations,
                result.truncated ? "CAP" : "yes");
  }
  std::printf("(one-shot(broken) is the Theorem-2 strawman: the checker "
              "finds its\n counterexamples automatically)\n");
}

void register_timings() {
  register_timing("exhaustive/alg1/n=3", [] {
    benchmark::DoNotOptimize(verify::exhaust(
        *ba::find_protocol("alg1"), BAConfig{3, 1, 0, 1}, 0));
  });
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
