// Experiment E8 (Lemma 2 / Theorem 6): the 3-phase grid exchange sends at
// most 3(m-1)m^2 = O(N^1.5) messages and guarantees >= N-2t non-isolated
// processors exchange values — against the one-phase N(N-1) baseline and
// the two-phase (N-1)(t+1) + (N-t-1)(t+1) relay baseline.
#include "ba/exchange.h"
#include "bench_util.h"
#include "bounds/formulas.h"
#include "codec/codec.h"

namespace dr::bench {
namespace {

struct ExchangeOutcome {
  std::size_t messages = 0;
  std::size_t non_isolated = 0;
  bool mutual_ok = true;
};

ExchangeOutcome run_grid(std::size_t m, const std::vector<ProcId>& faulty) {
  const std::size_t n = m * m;
  sim::Runner runner(sim::RunConfig{.n = n, .t = faulty.size(), .seed = 1});
  for (ProcId f : faulty) runner.mark_faulty(f);
  std::vector<ba::GridExchangeProcess*> procs(n, nullptr);
  for (ProcId p = 0; p < n; ++p) {
    if (runner.is_faulty(p)) {
      runner.install(p, std::make_unique<adversary::SilentProcess>());
    } else {
      auto proc = std::make_unique<ba::GridExchangeProcess>(
          p, m, encode_u64(1000 + p));
      procs[p] = proc.get();
      runner.install(p, std::move(proc));
    }
  }
  const auto result = runner.run(ba::GridExchangeProcess::steps(m));

  ExchangeOutcome out;
  out.messages = result.metrics.messages_by_correct();
  for (ProcId p = 0; p < n; ++p) {
    if (ba::non_isolated(p, m, result.faulty)) ++out.non_isolated;
  }
  for (ProcId p = 0; p < n && out.mutual_ok; ++p) {
    if (!ba::non_isolated(p, m, result.faulty)) continue;
    for (ProcId q = 0; q < n; ++q) {
      if (!ba::non_isolated(q, m, result.faulty)) continue;
      if (!procs[p]->known().contains(q)) {
        out.mutual_ok = false;
        break;
      }
    }
  }
  return out;
}

void print_tables() {
  print_header("Algorithm 4: N = m^2 mutual exchange, failure-free",
               "<= 3(m-1)m^2 messages in 3 phases (Theorem 6); baselines "
               "N(N-1) (naive) and ~2N(t+1) (relay, t = m)");
  std::printf("%4s %6s | %10s %10s | %12s %12s\n", "m", "N", "grid",
              "bound", "naive", "relay(t=m)");
  for (std::size_t m : {3u, 4u, 6u, 8u, 12u, 16u}) {
    const std::size_t n = m * m;
    const auto grid = run_grid(m, {});
    std::printf("%4zu %6zu | %10zu %10zu | %12zu %12zu\n", m, n,
                grid.messages, bounds::alg4_message_upper_bound(m),
                bounds::naive_exchange_messages(n),
                bounds::relay_exchange_messages(n, m));
  }

  print_header("Algorithm 4 under faults (Lemma 2)",
               ">= N-2t non-isolated processors mutually exchange");
  std::printf("%4s %6s %4s %-12s | %10s | %12s %8s %6s\n", "m", "N", "t",
              "placement", "messages", "non-isolated", ">=N-2t", "mutual");
  struct Placement {
    const char* name;
    std::function<std::vector<ProcId>(std::size_t, std::size_t)> make;
  };
  const Placement placements[] = {
      {"diagonal",
       [](std::size_t m, std::size_t t) {
         std::vector<ProcId> f;
         for (std::size_t i = 0; i < t; ++i) {
           f.push_back(static_cast<ProcId>((i % m) * m + (i % m)));
         }
         std::sort(f.begin(), f.end());
         f.erase(std::unique(f.begin(), f.end()), f.end());
         return f;
       }},
      {"row-packed",
       [](std::size_t /*m*/, std::size_t t) {
         std::vector<ProcId> f;
         for (std::size_t i = 0; i < t; ++i) {
           f.push_back(static_cast<ProcId>(i));  // fills row 0 first
         }
         return f;
       }},
      {"column",
       [](std::size_t m, std::size_t t) {
         std::vector<ProcId> f;
         for (std::size_t i = 0; i < t && i < m; ++i) {
           f.push_back(static_cast<ProcId>(i * m));
         }
         return f;
       }},
  };
  for (std::size_t m : {4u, 8u, 12u}) {
    const std::size_t n = m * m;
    const std::size_t t = m;
    for (const auto& placement : placements) {
      const auto faulty = placement.make(m, t);
      const auto grid = run_grid(m, faulty);
      std::printf("%4zu %6zu %4zu %-12s | %10zu | %12zu %8zu %6s\n", m, n,
                  faulty.size(), placement.name, grid.messages,
                  grid.non_isolated, n - 2 * faulty.size(),
                  grid.mutual_ok ? "ok" : "FAIL");
    }
  }
}

void register_timings() {
  for (std::size_t m : {8u, 16u}) {
    register_timing("alg4/grid/m=" + std::to_string(m), [m] {
      benchmark::DoNotOptimize(run_grid(m, {}));
    });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
