// Experiment E6 (Lemma 1 / Theorem 5): Algorithm 3 sends at most
// 2n + 4tn/s + 3t^2 s messages within t+2s+3 phases; s = 4t minimises the
// bound at O(n + t^3). Worst case is t silent set-roots, which trigger the
// final repair phase.
#include "ba/algorithm3.h"
#include "bench_util.h"
#include "bounds/formulas.h"

namespace dr::bench {
namespace {

std::vector<ScenarioFault> silent_roots(std::size_t n, std::size_t t,
                                        std::size_t s) {
  const ba::Alg3Layout layout{n, t, s};
  std::vector<ScenarioFault> faults;
  for (std::size_t set = 0; set < layout.set_count() && faults.size() < t;
       ++set) {
    faults.push_back(silent(layout.root_of(set)));
  }
  return faults;
}

void print_tables() {
  print_header("Algorithm 3, failure-free vs worst case (t silent roots)",
               "<= 2n + 4tn/s + 3t^2*s messages within t+2s+3 phases "
               "(Lemma 1); s = 4t gives O(n + t^3) (Theorem 5)");
  std::printf("%6s %4s %4s | %9s %10s %10s | %7s %7s\n", "n", "t", "s",
              "clean", "worst", "bound", "phases", "bound");
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{100, 2},
                             {100, 4},
                             {400, 4},
                             {1000, 4},
                             {1000, 8},
                             {4000, 8}}) {
    for (std::size_t s : {t, 2 * t, 4 * t, 8 * t}) {
      const BAConfig config{n, t, 0, 1};
      const auto protocol = ba::make_alg3_protocol(s);
      const auto clean = measure(protocol, config);
      const auto worst = measure(protocol, config, silent_roots(n, t, s));
      std::printf("%6zu %4zu %4zu | %9zu %10zu %10.0f | %7zu %7zu %s%s\n", n,
                  t, s, clean.messages, worst.messages,
                  bounds::alg3_message_upper_bound(n, t, s), worst.phases,
                  bounds::alg3_phase_bound(t, s),
                  clean.agreement && worst.agreement ? "" : " AGREEMENT-FAIL",
                  clean.validity && worst.validity ? "" : " VALIDITY-FAIL");
    }
  }

  print_header("Theorem 5 check: s = 4t keeps messages O(n + t^3)",
               "measured / (n + t^3) should stay bounded as n, t grow");
  std::printf("%6s %4s | %10s %12s %8s\n", "n", "t", "worst", "n + t^3",
              "ratio");
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{200, 2},
                             {800, 4},
                             {1600, 8},
                             {3200, 8}}) {
    const std::size_t s = 4 * t;
    const auto protocol = ba::make_alg3_protocol(s);
    const auto worst =
        measure(protocol, BAConfig{n, t, 0, 1}, silent_roots(n, t, s));
    const double denom = static_cast<double>(n + t * t * t);
    std::printf("%6zu %4zu | %10zu %12.0f %8.2f\n", n, t, worst.messages,
                denom, static_cast<double>(worst.messages) / denom);
  }
}

void register_timings() {
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{400, 4},
                             {1000, 8}}) {
    register_timing(
        "alg3/worst/n=" + std::to_string(n) + "/t=" + std::to_string(t),
        [n = n, t = t] {
          const std::size_t s = 4 * t;
          benchmark::DoNotOptimize(measure(ba::make_alg3_protocol(s),
                                           BAConfig{n, t, 0, 1},
                                           silent_roots(n, t, s)));
        });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
