// Experiment E4 (Theorem 3): Algorithm 1 for n = 2t+1 reaches BA in t+2
// phases with at most 2t^2 + 2t messages. The worst case is the
// failure-free value-1 history (everyone relays once); value 0 costs only
// the transmitter's 2t messages.
#include "bench_util.h"
#include "bounds/formulas.h"

namespace dr::bench {
namespace {

void print_tables() {
  print_header("Algorithm 1 (n = 2t+1)",
               "<= 2t^2+2t messages within t+2 phases (Theorem 3)");
  std::printf("%6s %6s %4s | %10s %10s | %8s %8s | %3s %3s\n", "t", "n",
              "v", "messages", "bound", "phases", "bound", "agr", "val");
  for (std::size_t t : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    for (Value v : {Value{1}, Value{0}}) {
      const BAConfig config{2 * t + 1, t, 0, v};
      const auto m = measure(*ba::find_protocol("alg1"), config);
      std::printf("%6zu %6zu %4llu | %10zu %10zu | %8zu %8zu | %3s %3s\n", t,
                  config.n, static_cast<unsigned long long>(v), m.messages,
                  bounds::alg1_message_upper_bound(t), m.phases,
                  bounds::alg1_phase_bound(t), m.agreement ? "ok" : "FAIL",
                  m.validity ? "ok" : "FAIL");
    }
  }

  print_header("Algorithm 1 under an equivocating transmitter",
               "agreement must still hold; messages stay within the bound");
  std::printf("%6s | %10s %10s | %3s\n", "t", "messages", "bound", "agr");
  for (std::size_t t : {2u, 4u, 8u, 16u}) {
    const std::size_t n = 2 * t + 1;
    std::set<ProcId> ones;
    for (ProcId q = 1; q < n; q += 2) ones.insert(q);
    const ScenarioFault fault{
        0, [ones](ProcId, const BAConfig& c) {
          return std::make_unique<adversary::EquivocatingTransmitter>(ones,
                                                                      c.n);
        }};
    const auto m = measure(*ba::find_protocol("alg1"), BAConfig{n, t, 0, 0},
                           {fault});
    std::printf("%6zu | %10zu %10zu | %3s\n", t, m.messages,
                bounds::alg1_message_upper_bound(t),
                m.agreement ? "ok" : "FAIL");
  }
}

void register_timings() {
  for (std::size_t t : {4u, 16u, 64u}) {
    register_timing("alg1/worst_case/t=" + std::to_string(t), [t] {
      benchmark::DoNotOptimize(
          measure(*ba::find_protocol("alg1"), BAConfig{2 * t + 1, t, 0, 1}));
    });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
