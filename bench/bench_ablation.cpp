// Ablation benchmarks for the design choices DESIGN.md calls out.
//
// 1. Algorithm 5's proof-of-work gate (Lemma 4). Roots only activate when
//    alpha-2t active processors attest that someone in the subtree is still
//    uninformed. Remove the gate and a single faulty active "spammer" can
//    activate every subtree at every level, blowing the message count up
//    from O(n + t^2) toward O(alpha * n + n log n) — while agreement still
//    holds, the whole point of the algorithm (its message bound) is gone.
//
// 2. Dolev-Strong's relay-set size. The message-thrifty variant routes new
//    values through k designated relays; k = t+1 guarantees a correct relay
//    under t faults. With k <= t relays, k silent relays plus an
//    equivocating transmitter (k+1 <= t faults total) split the correct
//    processors: each side only ever sees one value.
#include "ba/algorithm5.h"
#include "ba/valid_message.h"
#include "ba/dolev_strong.h"
#include "ba/tree.h"
#include "bench_util.h"

namespace dr::bench {
namespace {

/// A faulty *active* processor that tries to activate every subtree at
/// every block, without any proof of work. It first adopts a valid message
/// (it cannot forge one: that needs t+1 active signatures), then spams.
class SpammingActive final : public sim::Process {
 public:
  SpammingActive(std::size_t n, std::size_t t, std::size_t s)
      : forest_(ba::Forest::build(n, t, s)),
        schedule_{t, forest_.max_depth()} {}

  void on_phase(sim::Context& ctx) override {
    if (!valid_.has_value()) {
      for (const sim::Envelope& env : ctx.inbox()) {
        const auto msg = ba::decode_alg5(env.payload);
        if (msg && ba::is_valid_message(msg->first, ctx.verifier(),
                                        forest_.alpha, 0)) {
          valid_ = msg->first;
          break;
        }
      }
    }
    if (!valid_.has_value() || schedule_.top < 1) return;
    for (std::size_t x = schedule_.top; x >= 1; --x) {
      if (ctx.phase() != schedule_.block_start(x)) continue;
      const Bytes payload = ba::encode_alg5(*valid_, {});
      for (const ba::PassiveTree& tree : forest_.trees) {
        for (std::size_t node : tree.subtree_roots_at_depth(x)) {
          ctx.send(tree.id_of(node), payload, 0);
        }
      }
    }
  }
  std::optional<Value> decision() const override { return std::nullopt; }

 private:
  ba::Forest forest_;
  ba::Alg5Schedule schedule_;
  std::optional<ba::SignedValue> valid_;
};

void print_pow_ablation() {
  print_header(
      "Ablation 1: Algorithm 5 with vs without the proof-of-work gate",
      "Lemma 4 bounds activations at 2b(C)+1 per tree; without the gate a "
      "single spamming faulty active triggers every subtree chain");
  std::printf("%6s %4s %4s | %12s %12s | %8s | %3s %3s\n", "n", "t", "s",
              "gated", "ungated", "blowup", "agr", "agr");
  for (const auto& [n, t, s] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{100, 2, 3},
        {200, 2, 3},
        {400, 4, 7},
        {800, 4, 7}}) {
    const BAConfig config{n, t, 0, 1};
    std::vector<ScenarioFault> faults;
    // The spammer is the last active processor.
    faults.push_back(ScenarioFault{
        static_cast<ProcId>(ba::alpha_for(t) - 1),
        [n = n, t = t, s = s](ProcId, const BAConfig&) {
          return std::make_unique<SpammingActive>(n, t, s);
        }});
    const auto gated = measure(ba::make_alg5_protocol(s), config, faults);
    const auto ungated =
        measure(ba::make_alg5_ungated_protocol(s), config, faults);
    std::printf("%6zu %4zu %4zu | %12zu %12zu | %7.1fx | %3s %3s\n", n, t, s,
                gated.messages, ungated.messages,
                static_cast<double>(ungated.messages) /
                    static_cast<double>(gated.messages),
                gated.agreement && gated.validity ? "ok" : "FAIL",
                ungated.agreement && ungated.validity ? "ok" : "FAIL");
  }
}

void print_relay_ablation() {
  print_header(
      "Ablation 2: Dolev-Strong relay-set size k",
      "k = t+1 is the smallest relay set with a guaranteed correct relay; "
      "with k <= t, k silent relays + an equivocating transmitter "
      "(<= t faults) destroy agreement");
  const std::size_t n = 13;
  const std::size_t t = 4;
  std::printf("%4s %7s | %10s | %10s\n", "k", "faults", "messages",
              "agreement");
  for (std::size_t k = 1; k <= t + 1; ++k) {
    const BAConfig config{n, t, 0, 0};
    sim::Runner runner(sim::RunConfig{.n = n, .t = t, .transmitter = 0,
                                      .value = 0, .seed = 1});
    // Faults: the transmitter equivocates; min(k, t-1) relays are silent.
    const std::size_t silent_relays = std::min(k, t - 1);
    runner.mark_faulty(0);
    for (std::size_t i = 0; i < silent_relays; ++i) {
      runner.mark_faulty(static_cast<ProcId>(1 + i));
    }
    std::set<ProcId> ones;
    for (ProcId q = 1; q < n; q += 2) ones.insert(q);
    runner.install(0, std::make_unique<adversary::EquivocatingTransmitter>(
                          ones, n));
    for (ProcId p = 1; p < n; ++p) {
      if (runner.is_faulty(p)) {
        runner.install(p, std::make_unique<adversary::SilentProcess>());
      } else {
        runner.install(p,
                       std::make_unique<ba::DolevStrongRelay>(p, config, k));
      }
    }
    const auto result = runner.run(ba::DolevStrongRelay::steps(config));
    const auto check = sim::check_byzantine_agreement(result, 0, 0);
    std::printf("%4zu %7zu | %10zu | %10s%s\n", k, silent_relays + 1,
                result.metrics.messages_by_correct(),
                check.agreement ? "holds" : "BROKEN",
                k <= silent_relays ? "  (all relays faulty)" : "");
  }
  std::printf("(k = t+1 = %zu keeps a correct relay even under t faults)\n",
              t + 1);
}

void register_timings() {
  register_timing("ablation/alg5_gated/n=400", [] {
    std::vector<ScenarioFault> faults;
    faults.push_back(ScenarioFault{
        static_cast<ProcId>(ba::alpha_for(4) - 1),
        [](ProcId, const BAConfig&) {
          return std::make_unique<SpammingActive>(400, 4, 7);
        }});
    benchmark::DoNotOptimize(
        measure(ba::make_alg5_protocol(7), BAConfig{400, 4, 0, 1}, faults));
  });
  register_timing("ablation/alg5_ungated/n=400", [] {
    std::vector<ScenarioFault> faults;
    faults.push_back(ScenarioFault{
        static_cast<ProcId>(ba::alpha_for(4) - 1),
        [](ProcId, const BAConfig&) {
          return std::make_unique<SpammingActive>(400, 4, 7);
        }});
    benchmark::DoNotOptimize(measure(ba::make_alg5_ungated_protocol(7),
                                     BAConfig{400, 4, 0, 1}, faults));
  });
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_pow_ablation();
  dr::bench::print_relay_ablation();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
