// Experiment E10: the headline comparison from the paper's introduction —
// message counts of the known algorithms vs the new ones as n grows at
// fixed t. Expected shape: dolev-strong (broadcast) ~ n^2, dolev-strong
// relay ~ nt, alg3 ~ n + t^3, alg5 ~ n + t^2; EIG (unauthenticated) is only
// runnable at toy sizes.
#include <chrono>

#include "bench_util.h"
#include "bounds/formulas.h"

namespace dr::bench {
namespace {

std::string g_json_path;
JsonReport g_report;

std::vector<ScenarioFault> silent_high(std::size_t n, std::size_t t) {
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(n - 1 - i)));
  }
  return faults;
}

void print_tables() {
  const std::size_t t = 8;
  print_header(
      "Headline: messages vs n at t = 8 (failure-free, value 1)",
      "alg5 = O(n+t^2) < alg3 = O(n+t^3) < relay DS = O(nt) << broadcast "
      "DS = O(n^2) for large n");
  std::printf("%6s | %10s %10s %12s %12s\n", "n", "alg5[s=7]", "alg3[s=4t]",
              "ds-relay", "ds-broadcast");
  for (std::size_t n :
       {std::size_t{100}, std::size_t{200}, std::size_t{400},
        std::size_t{800}, std::size_t{1600}, std::size_t{3200},
        std::size_t{6400}}) {
    const BAConfig config{n, t, 0, 1};
    const auto a5 = measure(ba::make_alg5_protocol(7), config);
    const auto a3 = measure(ba::make_alg3_protocol(4 * t), config);
    const auto rel = measure(*ba::find_protocol("dolev-strong-relay"),
                             config);
    // The broadcast variant moves ~n^2 envelopes; cap it to keep the run
    // cheap and extrapolate with its closed form beyond that.
    g_report.set_count("messages_alg5_n" + std::to_string(n), a5.messages);
    g_report.set_count("messages_alg3_n" + std::to_string(n), a3.messages);
    if (n <= 800) {
      const auto bro = measure(*ba::find_protocol("dolev-strong"), config);
      std::printf("%6zu | %10zu %10zu %12zu %12zu\n", n, a5.messages,
                  a3.messages, rel.messages, bro.messages);
    } else {
      std::printf("%6zu | %10zu %10zu %12zu %11zu*\n", n, a5.messages,
                  a3.messages, rel.messages,
                  (n - 1) + n * (n - 1));  // failure-free closed form
    }
  }
  std::printf("(* extrapolated: the broadcast variant sends (n-1) + n(n-1) "
              "messages failure-free)\n");

  print_header("The same comparison with t silent faults",
               "the ordering must survive the worst fault placement we "
               "implement");
  std::printf("%6s | %10s %10s %12s\n", "n", "alg5[s=7]", "alg3[s=4t]",
              "ds-relay");
  for (std::size_t n : {std::size_t{200}, std::size_t{800},
                        std::size_t{3200}}) {
    const BAConfig config{n, t, 0, 1};
    const auto a5 =
        measure(ba::make_alg5_protocol(7), config, silent_high(n, t));
    const auto a3 =
        measure(ba::make_alg3_protocol(4 * t), config, silent_high(n, t));
    const auto rel = measure(*ba::find_protocol("dolev-strong-relay"),
                             config, silent_high(n, t));
    std::printf("%6zu | %10zu %10zu %12zu %s\n", n, a5.messages, a3.messages,
                rel.messages,
                a5.agreement && a3.agreement && rel.agreement
                    ? ""
                    : "AGREEMENT-FAIL");
  }

  print_header("Phases paid for the message savings",
               "alg1/DS ~ t+2; alg3 ~ t+2s+3; alg5 ~ 3t+4s+2 (+ simulator "
               "serialisation constants)");
  std::printf("%6s | %10s %10s %12s %12s\n", "n", "alg5[s=7]", "alg3[s=4t]",
              "ds-relay", "ds-broadcast");
  for (std::size_t n : {std::size_t{400}, std::size_t{800}}) {
    const BAConfig config{n, t, 0, 1};
    std::printf("%6zu | %10zu %10zu %12zu %12zu\n", n,
                measure(ba::make_alg5_protocol(7), config).phases,
                measure(ba::make_alg3_protocol(4 * t), config).phases,
                measure(*ba::find_protocol("dolev-strong-relay"),
                        config).phases,
                measure(*ba::find_protocol("dolev-strong"), config).phases);
  }

  print_header("Message sizes: the price of fewer messages",
               "the paper: Algorithm 5 'requires sending long messages' — "
               "its proofs of work and exchange bundles carry many "
               "signatures per message");
  std::printf("%-14s | %9s %12s %10s %10s\n", "protocol", "messages",
              "bytes", "avg B/msg", "max B/msg");
  {
    const BAConfig config{800, 8, 0, 1};
    struct Entry {
      const char* label;
      ba::Protocol protocol;
    };
    const Entry entries[] = {
        {"alg5[s=7]", ba::make_alg5_protocol(7)},
        {"alg3[s=32]", ba::make_alg3_protocol(32)},
        {"ds-relay", *ba::find_protocol("dolev-strong-relay")},
    };
    for (const Entry& e : entries) {
      const auto result = ba::run_scenario(e.protocol, config, 1);
      const std::size_t msgs = result.metrics.messages_by_correct();
      const std::size_t bytes = result.metrics.bytes_by_correct();
      std::printf("%-14s | %9zu %12zu %10.0f %10zu\n", e.label, msgs,
                  bytes,
                  msgs ? static_cast<double>(bytes) /
                             static_cast<double>(msgs)
                       : 0.0,
                  result.metrics.max_payload_by_correct());
    }
  }

  print_header("Unauthenticated baseline (EIG), toy sizes only",
               "the n(t+1)/4 message lower bound is unconditional here "
               "(Corollary 1)");
  std::printf("%6s %4s | %10s %12s\n", "n", "t", "messages", "n(t+1)/4");
  for (const auto& [n, tt] : {std::pair<std::size_t, std::size_t>{4, 1},
                              {7, 2},
                              {10, 3},
                              {13, 4}}) {
    const auto m = measure(*ba::find_protocol("eig"), BAConfig{n, tt, 0, 1});
    std::printf("%6zu %4zu | %10zu %12.0f\n", n, tt, m.messages,
                bounds::theorem1_signature_lower_bound(n, tt));
  }

  print_header("Parallel simulator hot path (bit-identical to serial)",
               "phase stepping scales with worker threads; the speedup is "
               "machine-dependent (meta.cores records the host), the "
               "results are not (tests/parallel_test)");
  {
    const auto time_threads = [](const Protocol& protocol,
                                 const BAConfig& config,
                                 std::size_t threads) {
      ba::ScenarioOptions options;
      options.threads = threads;
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto begin = std::chrono::steady_clock::now();
        const auto result = ba::run_scenario(protocol, config, options);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - begin)
                              .count();
        benchmark::DoNotOptimize(result.metrics.messages_by_correct());
        if (rep == 0 || ms < best) best = ms;
      }
      return best;
    };
    std::printf("%-22s %6s | %9s %9s | %8s\n", "protocol", "n", "1 thread",
                "4", "speedup");
    struct Job {
      std::string label;
      std::string key;
      Protocol protocol;
      std::size_t n;
    };
    const std::vector<Job> jobs = {
        {"alg5[s=7]", "alg5_n800", ba::make_alg5_protocol(7), 800},
        {"alg3[s=32]", "alg3_n2000", ba::make_alg3_protocol(32), 2000},
    };
    for (const Job& job : jobs) {
      const BAConfig config{job.n, t, 0, 1};
      const double t1 = time_threads(job.protocol, config, 1);
      const double t4 = time_threads(job.protocol, config, 4);
      std::printf("%-22s %6zu | %8.1f %8.1f | %7.2fx\n", job.label.c_str(),
                  job.n, t1, t4, t1 / t4);
      g_report.set("serial_ms_" + job.key, t1);
      g_report.set("threads4_ms_" + job.key, t4);
      g_report.set("parallel_speedup_" + job.key, t1 / t4);
    }
  }

  g_report.set_count("headline_t", t);
  if (!g_json_path.empty()) g_report.write(g_json_path);
}

void register_timings() {
  const std::size_t t = 8;
  for (std::size_t n : {std::size_t{400}, std::size_t{800}}) {
    register_timing("headline/alg5/n=" + std::to_string(n), [n, t] {
      benchmark::DoNotOptimize(
          measure(ba::make_alg5_protocol(7), BAConfig{n, t, 0, 1}));
    });
    register_timing("headline/ds_broadcast/n=" + std::to_string(n), [n, t] {
      benchmark::DoNotOptimize(
          measure(*ba::find_protocol("dolev-strong"), BAConfig{n, t, 0, 1}));
    });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::g_json_path = dr::bench::take_json_flag(argc, argv);
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
