// Experiment E10: the headline comparison from the paper's introduction —
// message counts of the known algorithms vs the new ones as n grows at
// fixed t. Expected shape: dolev-strong (broadcast) ~ n^2, dolev-strong
// relay ~ nt, alg3 ~ n + t^3, alg5 ~ n + t^2; EIG (unauthenticated) is only
// runnable at toy sizes.
#include <chrono>

#include "bench_util.h"
#include "bounds/formulas.h"

namespace dr::bench {
namespace {

std::string g_json_path;
JsonReport g_report;

/// Allocation-plane probe: broadcasts `payload_size` bytes every phase,
/// staged through the thread's scratch pool exactly like the codec Writer.
/// Payloads exceed Payload::kInlineCapacity so the shared-buffer (arena)
/// path is what gets measured.
class EchoBroadcaster final : public sim::Process {
 public:
  explicit EchoBroadcaster(std::size_t payload_size)
      : payload_size_(payload_size) {}

  void on_phase(sim::Context& ctx) override {
    Bytes buf = acquire_scratch();
    buf.assign(payload_size_, static_cast<std::uint8_t>(ctx.phase()));
    ctx.send_all(std::move(buf), 0);
  }

  std::optional<Value> decision() const override { return 0; }

 private:
  std::size_t payload_size_;
};

std::vector<ScenarioFault> silent_high(std::size_t n, std::size_t t) {
  std::vector<ScenarioFault> faults;
  for (std::size_t i = 0; i < t; ++i) {
    faults.push_back(silent(static_cast<ProcId>(n - 1 - i)));
  }
  return faults;
}

void print_tables() {
  const std::size_t t = 8;
  print_header(
      "Headline: messages vs n at t = 8 (failure-free, value 1)",
      "alg5 = O(n+t^2) < alg3 = O(n+t^3) < relay DS = O(nt) << broadcast "
      "DS = O(n^2) for large n");
  std::printf("%6s | %10s %10s %12s %12s\n", "n", "alg5[s=7]", "alg3[s=4t]",
              "ds-relay", "ds-broadcast");
  for (std::size_t n :
       {std::size_t{100}, std::size_t{200}, std::size_t{400},
        std::size_t{800}, std::size_t{1600}, std::size_t{3200},
        std::size_t{6400}}) {
    const BAConfig config{n, t, 0, 1};
    const auto a5 = measure(ba::make_alg5_protocol(7), config);
    const auto a3 = measure(ba::make_alg3_protocol(4 * t), config);
    const auto rel = measure(*ba::find_protocol("dolev-strong-relay"),
                             config);
    // The broadcast variant moves ~n^2 envelopes; cap it to keep the run
    // cheap and extrapolate with its closed form beyond that.
    g_report.set_count("messages_alg5_n" + std::to_string(n), a5.messages);
    g_report.set_count("messages_alg3_n" + std::to_string(n), a3.messages);
    if (n <= 800) {
      const auto bro = measure(*ba::find_protocol("dolev-strong"), config);
      std::printf("%6zu | %10zu %10zu %12zu %12zu\n", n, a5.messages,
                  a3.messages, rel.messages, bro.messages);
    } else {
      std::printf("%6zu | %10zu %10zu %12zu %11zu*\n", n, a5.messages,
                  a3.messages, rel.messages,
                  (n - 1) + n * (n - 1));  // failure-free closed form
    }
  }
  std::printf("(* extrapolated: the broadcast variant sends (n-1) + n(n-1) "
              "messages failure-free)\n");

  print_header("The same comparison with t silent faults",
               "the ordering must survive the worst fault placement we "
               "implement");
  std::printf("%6s | %10s %10s %12s\n", "n", "alg5[s=7]", "alg3[s=4t]",
              "ds-relay");
  for (std::size_t n : {std::size_t{200}, std::size_t{800},
                        std::size_t{3200}}) {
    const BAConfig config{n, t, 0, 1};
    const auto a5 =
        measure(ba::make_alg5_protocol(7), config, silent_high(n, t));
    const auto a3 =
        measure(ba::make_alg3_protocol(4 * t), config, silent_high(n, t));
    const auto rel = measure(*ba::find_protocol("dolev-strong-relay"),
                             config, silent_high(n, t));
    std::printf("%6zu | %10zu %10zu %12zu %s\n", n, a5.messages, a3.messages,
                rel.messages,
                a5.agreement && a3.agreement && rel.agreement
                    ? ""
                    : "AGREEMENT-FAIL");
  }

  print_header("Phases paid for the message savings",
               "alg1/DS ~ t+2; alg3 ~ t+2s+3; alg5 ~ 3t+4s+2 (+ simulator "
               "serialisation constants)");
  std::printf("%6s | %10s %10s %12s %12s\n", "n", "alg5[s=7]", "alg3[s=4t]",
              "ds-relay", "ds-broadcast");
  for (std::size_t n : {std::size_t{400}, std::size_t{800}}) {
    const BAConfig config{n, t, 0, 1};
    std::printf("%6zu | %10zu %10zu %12zu %12zu\n", n,
                measure(ba::make_alg5_protocol(7), config).phases,
                measure(ba::make_alg3_protocol(4 * t), config).phases,
                measure(*ba::find_protocol("dolev-strong-relay"),
                        config).phases,
                measure(*ba::find_protocol("dolev-strong"), config).phases);
  }

  print_header("Message sizes: the price of fewer messages",
               "the paper: Algorithm 5 'requires sending long messages' — "
               "its proofs of work and exchange bundles carry many "
               "signatures per message");
  std::printf("%-14s | %9s %12s %10s %10s\n", "protocol", "messages",
              "bytes", "avg B/msg", "max B/msg");
  {
    const BAConfig config{800, 8, 0, 1};
    struct Entry {
      const char* label;
      ba::Protocol protocol;
    };
    const Entry entries[] = {
        {"alg5[s=7]", ba::make_alg5_protocol(7)},
        {"alg3[s=32]", ba::make_alg3_protocol(32)},
        {"ds-relay", *ba::find_protocol("dolev-strong-relay")},
    };
    for (const Entry& e : entries) {
      const auto result = ba::run_scenario(e.protocol, config, 1);
      const std::size_t msgs = result.metrics.messages_by_correct();
      const std::size_t bytes = result.metrics.bytes_by_correct();
      std::printf("%-14s | %9zu %12zu %10.0f %10zu\n", e.label, msgs,
                  bytes,
                  msgs ? static_cast<double>(bytes) /
                             static_cast<double>(msgs)
                       : 0.0,
                  result.metrics.max_payload_by_correct());
    }
  }

  print_header("Unauthenticated baseline (EIG), toy sizes only",
               "the n(t+1)/4 message lower bound is unconditional here "
               "(Corollary 1)");
  std::printf("%6s %4s | %10s %12s\n", "n", "t", "messages", "n(t+1)/4");
  for (const auto& [n, tt] : {std::pair<std::size_t, std::size_t>{4, 1},
                              {7, 2},
                              {10, 3},
                              {13, 4}}) {
    const auto m = measure(*ba::find_protocol("eig"), BAConfig{n, tt, 0, 1});
    std::printf("%6zu %4zu | %10zu %12.0f\n", n, tt, m.messages,
                bounds::theorem1_signature_lower_bound(n, tt));
  }

  print_header("Parallel simulator hot path (bit-identical to serial)",
               "phase stepping scales with worker threads; the speedup is "
               "machine-dependent (meta.cores records the host), the "
               "results are not (tests/parallel_test)");
  {
    const auto time_threads = [](const Protocol& protocol,
                                 const BAConfig& config,
                                 std::size_t threads) {
      ba::ScenarioOptions options;
      options.threads = threads;
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto begin = std::chrono::steady_clock::now();
        const auto result = ba::run_scenario(protocol, config, options);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - begin)
                              .count();
        benchmark::DoNotOptimize(result.metrics.messages_by_correct());
        if (rep == 0 || ms < best) best = ms;
      }
      return best;
    };
    std::printf("%-22s %6s | %9s %9s | %8s\n", "protocol", "n", "1 thread",
                "4", "speedup");
    struct Job {
      std::string label;
      std::string key;
      Protocol protocol;
      std::size_t n;
    };
    const std::vector<Job> jobs = {
        {"alg5[s=7]", "alg5_n800", ba::make_alg5_protocol(7), 800},
        {"alg3[s=32]", "alg3_n2000", ba::make_alg3_protocol(32), 2000},
    };
    for (const Job& job : jobs) {
      const BAConfig config{job.n, t, 0, 1};
      const double t1 = time_threads(job.protocol, config, 1);
      const double t4 = time_threads(job.protocol, config, 4);
      std::printf("%-22s %6zu | %8.1f %8.1f | %7.2fx\n", job.label.c_str(),
                  job.n, t1, t4, t1 / t4);
      g_report.set("serial_ms_" + job.key, t1);
      g_report.set("threads4_ms_" + job.key, t4);
      g_report.set("parallel_speedup_" + job.key, t1 / t4);
    }
  }

  print_header(
      "Allocation plane: arena-backed message plane (E16)",
      "a warmed-up run's steady phases perform zero heap allocations; "
      "arena-backed alg5 beats the heap path on ns/message");
  {
    // Microbench: every process broadcasts an over-inline payload every
    // phase through the scratch pool + payload arenas. With a warmed
    // RunArenas, phases 2..end must not touch the heap at all — the
    // headline allocs_per_broadcast_steady metric, gated at 0 in CI.
    const std::size_t bn = 64;
    const sim::PhaseNum bphases = 8;
    ba::Protocol bcast;
    bcast.name = "alloc-probe";
    bcast.authenticated = false;
    bcast.supports = [](const BAConfig&) { return true; };
    bcast.steps = [bphases](const BAConfig&) { return bphases; };
    bcast.make = [](ProcId, const BAConfig&) {
      return std::make_unique<EchoBroadcaster>(96);
    };
    sim::RunArenas bcast_arenas;
    ba::ScenarioOptions bcast_options;
    bcast_options.arenas = &bcast_arenas;
    const BAConfig bcast_config{bn, 1, 0, 1};
    (void)ba::run_scenario(bcast, bcast_config, bcast_options);  // warm-up
    const auto bcast_run =
        ba::run_scenario(bcast, bcast_config, bcast_options);
    const std::size_t steady_broadcasts = bn * (bphases - 1);
    const double allocs_per_broadcast =
        static_cast<double>(bcast_run.allocs.steady_blocks) /
        static_cast<double>(steady_broadcasts);
    std::printf("broadcast microbench: n=%zu, %zu steady broadcasts, "
                "%llu steady heap allocs -> %.3f allocs/broadcast\n",
                bn, steady_broadcasts,
                static_cast<unsigned long long>(
                    bcast_run.allocs.steady_blocks),
                allocs_per_broadcast);
    g_report.set("allocs_per_broadcast_steady", allocs_per_broadcast);

    // alg5 at the headline size, heap-backed vs arena-backed. Same seed,
    // same faults, bit-identical results — only the allocation source
    // differs, so the ratio is the price of malloc on the hot path.
    const BAConfig config{800, t, 0, 1};
    const Protocol alg5 = ba::make_alg5_protocol(7);
    struct Timed {
      double ms = 0;
      std::size_t messages = 0;
      sim::AllocReport allocs;
    };
    const auto time_alg5 = [&](sim::RunArenas* arenas) {
      ba::ScenarioOptions options;
      options.arenas = arenas;
      Timed best;
      for (int rep = 0; rep < 3; ++rep) {
        const auto begin = std::chrono::steady_clock::now();
        const auto result = ba::run_scenario(alg5, config, options);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - begin)
                              .count();
        benchmark::DoNotOptimize(result.metrics.messages_by_correct());
        if (rep == 0 || ms < best.ms) {
          best = Timed{ms, result.metrics.messages_total(), result.allocs};
        }
      }
      return best;
    };
    sim::RunArenas arenas;
    const Timed heap = time_alg5(nullptr);
    const Timed arena = time_alg5(&arenas);
    const double heap_ns = heap.ms * 1e6 / static_cast<double>(heap.messages);
    const double arena_ns =
        arena.ms * 1e6 / static_cast<double>(arena.messages);
    std::printf("%-10s | %9s %12s %14s %14s\n", "alg5 n=800", "ms",
                "messages", "ns/message", "allocs/message");
    std::printf("%-10s | %9.1f %12zu %14.0f %14.2f\n", "heap", heap.ms,
                heap.messages, heap_ns,
                static_cast<double>(heap.allocs.total_blocks) /
                    static_cast<double>(heap.messages));
    std::printf("%-10s | %9.1f %12zu %14.0f %14.2f\n", "arena", arena.ms,
                arena.messages, arena_ns,
                static_cast<double>(arena.allocs.total_blocks) /
                    static_cast<double>(arena.messages));
    std::printf("arena speedup: %.2fx; payload arena high water %zu KiB, "
                "scratch %zu KiB\n",
                heap_ns / arena_ns,
                arena.allocs.arena_payload_high_water / 1024,
                arena.allocs.arena_scratch_high_water / 1024);
    g_report.set("ns_per_message_alg5_n800", arena_ns);
    g_report.set("ns_per_message_heap_alg5_n800", heap_ns);
    g_report.set("arena_speedup_alg5_n800", heap_ns / arena_ns);
    g_report.set("allocs_per_message_alg5_n800",
                 static_cast<double>(arena.allocs.total_blocks) /
                     static_cast<double>(arena.messages));
    g_report.set_count("arena_payload_high_water_bytes",
                       arena.allocs.arena_payload_high_water);
    g_report.set_count("arena_scratch_high_water_bytes",
                       arena.allocs.arena_scratch_high_water);
  }

  g_report.set_count("headline_t", t);
  if (!g_json_path.empty()) g_report.write(g_json_path);
}

void register_timings() {
  const std::size_t t = 8;
  for (std::size_t n : {std::size_t{400}, std::size_t{800}}) {
    register_timing("headline/alg5/n=" + std::to_string(n), [n, t] {
      benchmark::DoNotOptimize(
          measure(ba::make_alg5_protocol(7), BAConfig{n, t, 0, 1}));
    });
    register_timing("headline/ds_broadcast/n=" + std::to_string(n), [n, t] {
      benchmark::DoNotOptimize(
          measure(*ba::find_protocol("dolev-strong"), BAConfig{n, t, 0, 1}));
    });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::g_json_path = dr::bench::take_json_flag(argc, argv);
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
