// What the real network stack costs: wall-clock and wire overhead of the
// same agreement runs on the in-memory simulator, the in-process channel
// transport (threads + frames + phase barriers) and TCP loopback (real
// sockets). Decisions and message counts are identical by the parity
// theorem (tests/net_parity_test); this table shows what that identical
// outcome costs per backend.
#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "bench_util.h"
#include "net/harness.h"
#include "svc/client.h"
#include "svc/coordinator.h"
#include "svc/supervisor.h"

namespace dr::bench {
namespace {

void print_tables() {
  print_header(
      "Transport backends: identical runs, real costs",
      "the net runtime reproduces the synchronous model bit-exactly; the "
      "price is threads, frames (payload + DONE barriers) and wire bytes");
  std::printf("%-18s %4s %3s | %9s %9s %9s | %8s %8s %10s\n", "protocol",
              "n", "t", "sim ms", "chan ms", "tcp ms", "msgs", "frames",
              "wire B");
  struct Row {
    std::string label;
    Protocol protocol;
    BAConfig config;
  };
  std::vector<Row> rows;
  rows.push_back({"dolev-strong", *ba::find_protocol("dolev-strong"),
                  {7, 2, 0, 1}});
  rows.push_back({"alg1", *ba::find_protocol("alg1"), {9, 4, 0, 1}});
  rows.push_back({"alg2", *ba::find_protocol("alg2"), {9, 4, 0, 1}});
  rows.push_back({"alg3[s=2]", ba::make_alg3_protocol(2), {12, 3, 0, 1}});
  rows.push_back({"alg5[s=3]", ba::make_alg5_protocol(3), {21, 2, 0, 1}});
  // All three backends run the same (seed, faults) scenario through the
  // shared measure() plumbing, so the rows are comparable run-for-run; the
  // sim column's message count must equal the net columns' by parity.
  for (const Row& row : rows) {
    const Measurement sim =
        measure(row.protocol, row.config, {}, 1, BenchBackend::kSim);
    const Measurement chan =
        measure(row.protocol, row.config, {}, 1, BenchBackend::kInProcess);
    const Measurement tcp =
        measure(row.protocol, row.config, {}, 1, BenchBackend::kTcp);
    std::printf("%-18s %4zu %3zu | %8.2f %8.2f %8.2f | %8zu %8zu %10zu\n",
                row.label.c_str(), row.config.n, row.config.t, sim.millis,
                chan.millis, tcp.millis, tcp.messages, tcp.frames,
                tcp.wire_bytes);
    if (sim.messages != tcp.messages || sim.messages != chan.messages) {
      std::printf("  PARITY-FAIL: sim=%zu chan=%zu tcp=%zu\n", sim.messages,
                  chan.messages, tcp.messages);
    }
  }
}

void print_churn_table() {
  print_header(
      "Crash tolerance: what a mid-run endpoint death costs",
      "a killed peer is charged as omission-faulty and the survivors keep "
      "lock-step; the extra wall-clock is bounded by the reconnect window, "
      "not the phase timeout");
  std::printf("%-18s %4s %3s | %9s %9s | %11s %9s\n", "scenario", "n", "t",
              "chan ms", "tcp ms", "disconnects", "survivors");
  const Protocol protocol = *ba::find_protocol("dolev-strong");
  const BAConfig config{7, 2, 0, 1};
  for (const bool kill : {false, true}) {
    double millis[2] = {0, 0};
    std::size_t disconnects = 0;
    bool survivors_agree = true;
    const net::Backend backends[2] = {net::Backend::kInProcess,
                                      net::Backend::kTcpLoopback};
    for (int b = 0; b < 2; ++b) {
      net::NetScenarioOptions options;
      options.reconnect_window = std::chrono::milliseconds(250);
      options.run_deadline = std::chrono::seconds(30);
      if (kill) {
        options.churn.push_back(
            sim::ChurnRule{sim::ChurnKind::kKill, 6, 1, 0});
      }
      const auto begin = std::chrono::steady_clock::now();
      const net::NetRunResult result =
          net::run_scenario(protocol, config, backends[b], options);
      const auto end = std::chrono::steady_clock::now();
      millis[b] =
          std::chrono::duration<double, std::milli>(end - begin).count();
      disconnects = result.sync.link.disconnects;
      for (std::size_t p = 0; p + 1 < config.n; ++p) {
        survivors_agree = survivors_agree &&
                          result.run.decisions[p] == config.value;
      }
    }
    std::printf("%-18s %4zu %3zu | %8.2f %8.2f | %11zu %9s\n",
                kill ? "kill p6@phase1" : "clean", config.n, config.t,
                millis[0], millis[1], disconnects,
                survivors_agree ? "AGREE" : "FAIL");
  }
}

/// Nearest-rank percentile over a sorted latency list.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t rank = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p / 100.0 *
                               static_cast<double>(sorted.size())));
  return sorted[rank];
}

/// Pulls `name value` out of a Prometheus text dump; -1 when absent. Only
/// samples count — a `# HELP name ...` header also has the name followed
/// by a space, so the match must sit at the start of its line.
double prom_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const bool line_start = pos == 0 || text[pos - 1] == '\n';
    const std::size_t after = pos + name.size();
    pos = after;
    if (!line_start) continue;
    if (after >= text.size() || text[after] != ' ') continue;
    return std::strtod(text.c_str() + after + 1, nullptr);
  }
  return -1;
}

void print_daemon_table(JsonReport& report) {
  print_header(
      "Agreement daemon: concurrent instances over one listener",
      "dr82d endpoints run instances on a fixed worker pool "
      "(svc::InstancePool) over one shared striped verify store; every "
      "instance's decision and metrics equal the simulator's "
      "(tests/svc_parity_test) — this sweep is what that multiplexing "
      "sustains");

  constexpr std::size_t kEndpoints = 5;
  const BAConfig config{kEndpoints, 1, 0, 1};

  svc::Coordinator::Options coptions;
  coptions.endpoints = kEndpoints;
  svc::Coordinator coordinator(coptions);
  if (!coordinator.bind()) {
    std::printf("  daemon bind failed; skipping\n");
    return;
  }
  std::thread serve_thread([&coordinator] { (void)coordinator.serve(); });
  svc::Supervisor supervisor;
  const std::string coord_addr =
      "127.0.0.1:" + std::to_string(coordinator.port());
  bool ok = true;
  for (std::size_t p = 0; p < kEndpoints; ++p) {
    ok = ok && supervisor.spawn({SVCD_BINARY, "endpoint", "--coord",
                                 coord_addr, "--id", std::to_string(p),
                                 "--endpoints",
                                 std::to_string(kEndpoints)}) >= 0;
  }
  svc::Client client;
  ok = ok && client.connect("127.0.0.1", coordinator.port(),
                            std::chrono::seconds(10));
  if (ok) {
    // Wait for the mesh before starting the clock.
    for (int i = 0; i < 500; ++i) {
      const auto text = client.metrics(std::chrono::seconds(5));
      if (text.has_value() && text->find("dr82_endpoints_ready 5") !=
                                  std::string::npos) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    std::printf(
        "%-28s %9s %9s | %8s %8s %8s | %14s\n", "workload", "instances",
        "failures", "p50 ms", "p95 ms", "p99 ms", "instances/sec");
    std::uint64_t seed_base = 1000;
    for (const std::size_t batch :
         {std::size_t{32}, std::size_t{128}, std::size_t{512}}) {
      // One waiter thread per instance, all in flight at once over the
      // one client connection: submit, block on the decision, record
      // latency. The endpoints' pools admit them FIFO, so any batch size
      // is deadlock-free regardless of pool size.
      std::vector<double> latencies(batch, 0);
      std::atomic<std::size_t> failures{0};
      const auto begin = std::chrono::steady_clock::now();
      std::vector<std::thread> waiters;
      waiters.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        waiters.emplace_back([&, i, seed_base] {
          svc::SubmitRequest req;
          req.protocol = "dolev-strong";
          req.config = config;
          req.seed = seed_base + i;
          const auto sent = std::chrono::steady_clock::now();
          const auto resp = client.run(req, std::chrono::seconds(300));
          const auto got = std::chrono::steady_clock::now();
          if (!resp.has_value() || !resp->ok || resp->watchdog_fired) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          latencies[i] =
              std::chrono::duration<double, std::milli>(got - sent)
                  .count();
        });
      }
      for (std::thread& w : waiters) w.join();
      const auto end = std::chrono::steady_clock::now();
      const double total_s =
          std::chrono::duration<double>(end - begin).count();
      seed_base += batch;

      std::sort(latencies.begin(), latencies.end());
      const double per_sec = static_cast<double>(batch) / total_s;
      char label[64];
      std::snprintf(label, sizeof(label), "dolev-strong n=5 t=1 x%zu",
                    batch);
      std::printf("%-28s %9zu %9zu | %8.2f %8.2f %8.2f | %14.1f\n", label,
                  batch, failures.load(), percentile(latencies, 50),
                  percentile(latencies, 95), percentile(latencies, 99),
                  per_sec);
      report.set("instances_per_sec_" + std::to_string(batch), per_sec);
      report.set_count("daemon_failures_" + std::to_string(batch),
                       failures.load());
    }

    // The striped verify store, from the daemon's own Prometheus dump:
    // endpoint-cumulative per-stripe counters summed by the coordinator.
    const auto text = client.metrics(std::chrono::seconds(5));
    if (text.has_value()) {
      const double hits =
          prom_value(*text, "dr82_verify_stripe_hits_total");
      const double misses =
          prom_value(*text, "dr82_verify_stripe_misses_total");
      const double stripes = prom_value(*text, "dr82_verify_stripes");
      if (hits >= 0 && misses >= 0 && hits + misses > 0) {
        const double rate = hits / (hits + misses);
        std::printf(
            "striped verify store: %.0f stripes, %.0f hits / %.0f misses "
            "(hit rate %.1f%%)\n",
            stripes, hits, misses, 100.0 * rate);
        report.set("daemon_verify_stripe_hit_rate", rate);
        report.set("daemon_verify_stripes", stripes);
      } else {
        std::printf("striped verify store: no counters in metrics dump\n");
      }
    }
  } else {
    std::printf("  daemon bring-up failed; skipping\n");
  }

  (void)client.shutdown_server();
  coordinator.stop();
  serve_thread.join();
  supervisor.wait_all();
}

void register_timings() {
  const BAConfig config{9, 4, 0, 1};
  register_timing("transport/alg2/sim", [config] {
    benchmark::DoNotOptimize(
        ba::run_scenario(*ba::find_protocol("alg2"), config, 1));
  });
  register_timing("transport/alg2/inprocess", [config] {
    benchmark::DoNotOptimize(net::run_scenario(
        *ba::find_protocol("alg2"), config, net::Backend::kInProcess));
  });
  register_timing("transport/alg2/tcp", [config] {
    benchmark::DoNotOptimize(net::run_scenario(
        *ba::find_protocol("alg2"), config, net::Backend::kTcpLoopback));
  });
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  const std::string json_path = dr::bench::take_json_flag(argc, argv);
  dr::bench::JsonReport report;
  // Waiter threads and the endpoint pools are as parallel as the host.
  report.set_meta("cores_used",
                  std::to_string(std::thread::hardware_concurrency()));
  dr::bench::print_tables();
  dr::bench::print_churn_table();
  dr::bench::print_daemon_table(report);
  if (!json_path.empty()) report.write(json_path);
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
