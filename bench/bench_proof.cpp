// Bulk proof verification throughput — the daemon's kVerifyReq hot path
// (src/svc/coordinator.cpp handle_verify → proof::Store::admit) measured
// in isolation, cold versus warm:
//
//   cold    — first-ever sight, no cache anywhere: every blob is decoded
//             and every chain link's HMAC recomputed.
//   session — first submission with the daemon's cache wiring (one
//             VerifyCache across the batch, misses through
//             crypto::verify_batch SIMD lanes).
//   warm    — resubmission: the store answers from the content-address
//             table — one SHA-256 over the raw bytes, one lookup, no
//             decoding, no signature checks.
//
// The `simd_proof_warm_speedup` summary is the headline number and is
// floor-gated (>= 10x) by scripts/bench_compare.py in CI. A second table
// isolates proof::verify_offline with a cold vs warm VerifyCache — the
// store-eviction/re-admission path, where chain links are cache hits but
// the chain is still walked.
//
// Chain lengths follow the protocols: Algorithm 2 possession proofs carry
// >= t signatures of processors other than the holder, so the t = 8..32
// corpora exercise the long chains the paper's Section 5 transfer claim
// is about.
//
// `--json <path>` writes {"meta": ..., "metrics": ...} for the gate.
#include <string>
#include <vector>

#include "bench_util.h"
#include "crypto/hash_backend.h"
#include "crypto/verify_cache.h"
#include "proof/store.h"
#include "proof/transferable.h"

namespace dr::bench {
namespace {

std::string g_json_path;

/// Mean ns per call, calibrated to ~25ms of work per data point.
template <typename Fn>
double time_ns(Fn fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm up and touch the memory once
  std::size_t iters = 1;
  for (;;) {
    const auto begin = clock::now();
    for (std::size_t i = 0; i < iters; ++i) benchmark::DoNotOptimize(fn());
    const double ns = std::chrono::duration<double, std::nano>(
                          clock::now() - begin)
                          .count();
    if (ns >= 25e6 || iters >= (std::size_t{1} << 24)) {
      return ns / static_cast<double>(iters);
    }
    iters *= 4;
  }
}

/// One honest run's proofs under one realm — exactly what a bulk
/// kVerifyReq carries.
struct RealmCorpus {
  const char* protocol = "";
  proof::Realm realm;
  std::vector<proof::Transferable> proofs;
  std::vector<Bytes> encoded;
  std::size_t links = 0;
};

ByteView view(const Bytes& b) { return ByteView{b.data(), b.size()}; }

RealmCorpus make_realm_corpus(const char* protocol_name,
                              const BAConfig& config, std::uint64_t seed) {
  RealmCorpus corpus;
  corpus.protocol = protocol_name;
  corpus.realm = proof::Realm{.scheme = sim::SchemeKind::kHmac,
                              .n = config.n,
                              .t = config.t,
                              .transmitter = config.transmitter,
                              .seed = seed,
                              .merkle_height = 6};
  const Protocol* protocol = ba::find_protocol(protocol_name);
  if (protocol == nullptr) return corpus;
  const sim::RunResult run = ba::run_scenario(*protocol, config, seed);
  for (ProcId p = 0; p < run.evidence.size(); ++p) {
    if (run.evidence[p].empty()) continue;
    auto proof =
        proof::from_evidence(corpus.realm, p, view(run.evidence[p]));
    if (!proof.has_value()) continue;
    corpus.links += proof->evidence.sv.chain.size();
    corpus.encoded.push_back(proof::encode_transferable(*proof));
    corpus.proofs.push_back(std::move(*proof));
  }
  return corpus;
}

/// The bulk-verification corpus: several realms (every submitted instance
/// is its own realm), chain lengths from the failure-free Dolev-Strong
/// minimum up to t = 32 possession proofs.
std::vector<RealmCorpus> make_corpus() {
  std::vector<RealmCorpus> corpus;
  corpus.push_back(make_realm_corpus("dolev-strong", BAConfig{5, 2, 0, 1}, 7));
  corpus.push_back(make_realm_corpus("alg2", BAConfig{5, 2, 0, 1}, 11));
  corpus.push_back(make_realm_corpus("alg2", BAConfig{17, 8, 0, 1}, 11));
  corpus.push_back(make_realm_corpus("alg2", BAConfig{33, 16, 0, 1}, 11));
  corpus.push_back(make_realm_corpus("alg2", BAConfig{65, 32, 0, 1}, 11));
  return corpus;
}

std::size_t corpus_size(const std::vector<RealmCorpus>& corpus) {
  std::size_t total = 0;
  for (const RealmCorpus& rc : corpus) total += rc.proofs.size();
  return total;
}

void print_tables() {
  JsonReport report;
  const std::vector<RealmCorpus> corpus = make_corpus();
  const std::size_t total = corpus_size(corpus);
  std::size_t total_links = 0;
  std::vector<proof::OfflineVerifier> verifiers;
  verifiers.reserve(corpus.size());
  for (const RealmCorpus& rc : corpus) verifiers.emplace_back(rc.realm);

  std::printf("\nproof corpus (honest runs, one realm each):\n");
  std::printf("%-14s | %4s %4s | %6s %6s\n", "protocol", "n", "t", "proofs",
              "links");
  for (const RealmCorpus& rc : corpus) {
    std::printf("%-14s | %4llu %4llu | %6zu %6zu\n", rc.protocol,
                static_cast<unsigned long long>(rc.realm.n),
                static_cast<unsigned long long>(rc.realm.t),
                rc.proofs.size(), rc.links);
    total_links += rc.links;
  }
  report.set_count("proof_corpus_size", total);
  report.set_count("proof_corpus_realms", corpus.size());
  report.set_count("proof_corpus_links", total_links);

  print_header(
      "Bulk verification (Store::admit): first submission vs resubmission",
      "a possession proof convinces anyone (Section 5) — once: the first "
      "bulk submission decodes every proof and recomputes every chain "
      "HMAC; a resubmission is answered from the content-address table "
      "with one SHA-256 over the raw bytes and one lookup");
  {
    // Cold: a fresh store and no verification cache — the from-scratch
    // cost a third party pays the first time it ever sees these proofs.
    const double cold_pass_ns = time_ns([&] {
      proof::Store store;
      std::size_t ok = 0;
      for (const RealmCorpus& rc : corpus) {
        for (const Bytes& p : rc.encoded) {
          if (store.admit(view(p), 1) == proof::Verdict::kOk) ++ok;
        }
      }
      return ok;
    });
    // Session: a fresh store per pass but the daemon's cache wiring — one
    // VerifyCache shared across the batch, so overlapping chain prefixes
    // within a realm batch into SIMD lanes and hit the cache.
    const double session_pass_ns = time_ns([&] {
      proof::Store store;
      crypto::VerifyCache cache;
      std::size_t ok = 0;
      for (const RealmCorpus& rc : corpus) {
        for (const Bytes& p : rc.encoded) {
          if (store.admit(view(p), 1, &cache) == proof::Verdict::kOk) ++ok;
        }
      }
      return ok;
    });
    // Warm: one long-lived store; after time_ns's warm-up pass every
    // admit is a duplicate and short-circuits at the digest table.
    proof::Store store;
    const double warm_pass_ns = time_ns([&] {
      std::size_t ok = 0;
      for (const RealmCorpus& rc : corpus) {
        for (const Bytes& p : rc.encoded) {
          if (store.admit(view(p), 1) == proof::Verdict::kOk) ++ok;
        }
      }
      return ok;
    });
    const double cold_ns = cold_pass_ns / static_cast<double>(total);
    const double session_ns = session_pass_ns / static_cast<double>(total);
    const double warm_ns = warm_pass_ns / static_cast<double>(total);
    const double speedup = cold_ns / warm_ns;
    std::printf("%zu proofs, %zu chain links, %zu realms\n", total,
                total_links, corpus.size());
    std::printf("%-8s | %12s %14s\n", "store", "ns/proof", "proofs/s");
    std::printf("%-8s | %12.0f %14.0f\n", "cold", cold_ns, 1e9 / cold_ns);
    std::printf("%-8s | %12.0f %14.0f\n", "session", session_ns,
                1e9 / session_ns);
    std::printf("%-8s | %12.0f %14.0f\n", "warm", warm_ns, 1e9 / warm_ns);
    std::printf("warm vs cold: %.2fx\n", speedup);
    report.set("proof_bulk_cold_ns", cold_ns);
    report.set("proof_bulk_session_ns", session_ns);
    report.set("proof_bulk_warm_ns", warm_ns);
    report.set("proof_bulk_cold_per_s", 1e9 / cold_ns);
    report.set("proof_bulk_warm_per_s", 1e9 / warm_ns);
    // "simd" in the key: the ratio is hash-backend-dependent (warm is one
    // raw SHA-256 over the blob, cold is HMAC midstate compressions per
    // link), so bench_compare.py skips the gate — visibly — on machines
    // whose meta.hash_backends differ or lack SIMD entirely.
    report.set("simd_proof_warm_speedup", speedup);
  }

  print_header(
      "Offline re-verification: cold vs warm VerifyCache",
      "the store-eviction path: the proof is decoded and its chain walked "
      "again, but every (signer, prefix digest, signature) triple is a "
      "cache hit — no HMAC is recomputed, so the walk is digest-to-digest");
  {
    const double cold_pass_ns = time_ns([&] {
      std::size_t ok = 0;
      for (std::size_t r = 0; r < corpus.size(); ++r) {
        for (const proof::Transferable& p : corpus[r].proofs) {
          if (proof::verify_offline(p, verifiers[r]) ==
              proof::Verdict::kOk) {
            ++ok;
          }
        }
      }
      return ok;
    });
    std::vector<crypto::VerifyCache> caches(corpus.size());
    const double warm_pass_ns = time_ns([&] {
      std::size_t ok = 0;
      for (std::size_t r = 0; r < corpus.size(); ++r) {
        for (const proof::Transferable& p : corpus[r].proofs) {
          if (proof::verify_offline(p, verifiers[r], &caches[r]) ==
              proof::Verdict::kOk) {
            ++ok;
          }
        }
      }
      return ok;
    });
    const double cold_ns = cold_pass_ns / static_cast<double>(total);
    const double warm_ns = warm_pass_ns / static_cast<double>(total);
    std::printf("%-6s | %12s %14s\n", "cache", "ns/proof", "proofs/s");
    std::printf("%-6s | %12.0f %14.0f\n", "cold", cold_ns, 1e9 / cold_ns);
    std::printf("%-6s | %12.0f %14.0f\n", "warm", warm_ns, 1e9 / warm_ns);
    std::printf("warm vs cold: %.2fx\n", cold_ns / warm_ns);
    report.set("proof_verify_cold_ns", cold_ns);
    report.set("proof_verify_warm_ns", warm_ns);
    report.set("proof_verify_cold_per_s", 1e9 / cold_ns);
    report.set("proof_verify_warm_per_s", 1e9 / warm_ns);
    report.set("simd_proof_verify_cache_speedup", cold_ns / warm_ns);
  }

  // Record the machine's SHA-256 backend set: bench_compare.py refuses to
  // compare SIMD-dependent numbers across reports whose hash_backends
  // differ, and cold verification is SHA-256-bound.
  {
    std::string names;
    for (const crypto::HashBackend* backend :
         crypto::supported_hash_backends()) {
      if (!names.empty()) names += ",";
      names += backend->name;
    }
    report.set_meta("hash_backends", names);
    report.set_meta("hash_backend", crypto::hash_backend().name);
  }

  if (!g_json_path.empty()) report.write(g_json_path);
}

void register_timings() {
  auto corpus =
      std::make_shared<const std::vector<RealmCorpus>>(make_corpus());
  auto store = std::make_shared<proof::Store>();
  register_timing("proof/bulk_admit_warm", [corpus, store] {
    for (const RealmCorpus& rc : *corpus) {
      for (const Bytes& p : rc.encoded) {
        benchmark::DoNotOptimize(store->admit(view(p), 1));
      }
    }
  });
  auto verifiers = std::make_shared<std::vector<proof::OfflineVerifier>>();
  verifiers->reserve(corpus->size());
  for (const RealmCorpus& rc : *corpus) verifiers->emplace_back(rc.realm);
  register_timing("proof/verify_offline_cold", [corpus, verifiers] {
    for (std::size_t r = 0; r < corpus->size(); ++r) {
      for (const proof::Transferable& p : (*corpus)[r].proofs) {
        benchmark::DoNotOptimize(proof::verify_offline(p, (*verifiers)[r]));
      }
    }
  });
  auto caches =
      std::make_shared<std::vector<crypto::VerifyCache>>(corpus->size());
  register_timing("proof/verify_offline_warm", [corpus, verifiers, caches] {
    for (std::size_t r = 0; r < corpus->size(); ++r) {
      for (const proof::Transferable& p : (*corpus)[r].proofs) {
        benchmark::DoNotOptimize(
            proof::verify_offline(p, (*verifiers)[r], &(*caches)[r]));
      }
    }
  });
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::g_json_path = dr::bench::take_json_flag(argc, argv);
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
