// Microbenchmarks for the signature-chain hot path: the O(L^2) full-prefix
// re-hash this PR replaced, the incremental running-digest verifier that
// replaced it, and the content-addressed verification cache on top (see
// docs/PERFORMANCE.md). Chain lengths follow the protocols: a Dolev-Strong
// chain grows to t+1 signatures, so L = 17 corresponds to t = 16.
//
// `--json <path>` writes the summary (ns per operation and the speedup
// ratios) for scripts/bench_compare.py.
#include <algorithm>
#include <chrono>
#include <cstring>

#include "ba/signed_value.h"
#include "bench_util.h"
#include "crypto/hash_backend.h"
#include "crypto/key_registry.h"
#include "crypto/sha256.h"
#include "crypto/verify_cache.h"

namespace dr::bench {
namespace {

std::string g_json_path;

/// The HMAC registry exactly as it stood before this PR: same key
/// derivation (so signatures are byte-identical to what the old code
/// produced), but every MAC re-absorbs both 64-byte HMAC pads
/// (crypto::hmac_sha256 one-shot) and allocates a Writer per call — the
/// per-call constants that crypto::HmacKey midstates and the stack-buffer
/// encoding in KeyRegistry::mac now avoid.
class LegacyRegistry {
 public:
  LegacyRegistry(std::size_t n, std::uint64_t master_seed) {
    const Bytes seed = encode_u64(master_seed);
    for (std::size_t i = 0; i < n; ++i) {
      Writer label;
      label.str("dr82.key");
      label.u64(i);
      keys_.push_back(crypto::derive_key(seed, std::move(label).take()));
    }
  }

  Bytes sign(crypto::ProcId signer, ByteView data) const {
    const crypto::Digest d = mac(signer, data);
    return Bytes(d.begin(), d.end());
  }

  bool verify(crypto::ProcId signer, ByteView data, ByteView sig) const {
    const crypto::Digest expected = mac(signer, data);
    return ct_equal(ByteView{expected.data(), expected.size()}, sig);
  }

 private:
  crypto::Digest mac(crypto::ProcId signer, ByteView data) const {
    Writer w;
    w.u32(signer);
    w.bytes(data);
    return crypto::hmac_sha256(keys_[signer], std::move(w).take());
  }

  std::vector<Bytes> keys_;
};

/// Legacy chain layout, reconstructed for the baseline: signature i covers
/// the full encoded prefix (value, count, signatures 0..i-1), so verifying
/// a length-L chain re-hashes O(L^2) bytes and signing re-encodes the whole
/// prefix. This is what src/ba/signed_value.cpp did before the running
/// prefix digest.
Bytes legacy_prefix(const ba::SignedValue& sv, std::size_t upto) {
  Writer w;
  w.u64(sv.value);
  w.seq(upto);
  for (std::size_t i = 0; i < upto; ++i) crypto::encode(w, sv.chain[i]);
  return std::move(w).take();
}

ba::SignedValue legacy_chain(Value value, std::size_t length,
                             const LegacyRegistry& scheme) {
  ba::SignedValue sv{value, {}};
  for (std::size_t i = 0; i < length; ++i) {
    const ba::ProcId as = static_cast<ba::ProcId>(i);
    sv.chain.push_back(
        {as, scheme.sign(as, legacy_prefix(sv, sv.chain.size()))});
  }
  return sv;
}

bool legacy_verify(const ba::SignedValue& sv, const LegacyRegistry& scheme) {
  for (std::size_t i = 0; i < sv.chain.size(); ++i) {
    if (!scheme.verify(sv.chain[i].signer, legacy_prefix(sv, i),
                       sv.chain[i].sig)) {
      return false;
    }
  }
  return true;
}

ba::SignedValue incremental_chain(Value value, std::size_t length,
                                  const crypto::Signer& signer) {
  ba::SignedValue sv = ba::make_signed(value, signer, 0);
  for (std::size_t i = 1; i < length; ++i) {
    sv = ba::extend(std::move(sv), signer, static_cast<ba::ProcId>(i));
  }
  return sv;
}

/// Mean ns per call, calibrated to ~25ms of work per data point.
template <typename Fn>
double time_ns(Fn fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm up and touch the memory once
  std::size_t iters = 1;
  for (;;) {
    const auto begin = clock::now();
    for (std::size_t i = 0; i < iters; ++i) benchmark::DoNotOptimize(fn());
    const double ns = std::chrono::duration<double, std::nano>(
                          clock::now() - begin)
                          .count();
    if (ns >= 25e6 || iters >= (std::size_t{1} << 24)) {
      return ns / static_cast<double>(iters);
    }
    iters *= 4;
  }
}

void print_tables() {
  JsonReport report;
  const std::size_t n = 64;
  crypto::KeyRegistry scheme(n, /*seed=*/1);
  std::vector<crypto::ProcId> all_ids;
  for (std::size_t p = 0; p < n; ++p) {
    all_ids.push_back(static_cast<crypto::ProcId>(p));
  }
  const crypto::Signer signer(&scheme, all_ids);
  const crypto::Verifier verifier(&scheme);
  const LegacyRegistry legacy_scheme(n, /*seed=*/1);

  print_header(
      "Chain verification: O(L^2) full-prefix re-hash vs running digest",
      "verify_chain hashes O(L) bytes total and, as deployed (one "
      "VerifyCache per process), re-verifies of relayed prefixes are pure "
      "cache hits; the legacy layout re-hashed every prefix and had no "
      "memo (Dolev-Strong chains reach L = t+1)");
  std::printf("%4s | %12s %12s %12s | %8s %8s\n", "L", "legacy ns",
              "incr ns", "deployed ns", "incr x", "total x");
  for (const std::size_t length :
       {std::size_t{4}, std::size_t{8}, std::size_t{17}, std::size_t{33}}) {
    const ba::SignedValue legacy = legacy_chain(7, length, legacy_scheme);
    const ba::SignedValue incr = incremental_chain(7, length, signer);
    const double legacy_ns =
        time_ns([&] { return legacy_verify(legacy, legacy_scheme); });
    const double incr_ns =
        time_ns([&] { return ba::verify_chain(incr, verifier); });
    // The deployed configuration: every process keeps a VerifyCache, and a
    // relayed chain's prefixes were verified when shorter versions of the
    // same chain arrived in earlier phases — so steady-state re-verifies
    // hit on every signature. Warm the cache once, then measure.
    crypto::VerifyCache cache;
    ba::verify_chain(incr, verifier, &cache);
    const double cached_ns =
        time_ns([&] { return ba::verify_chain(incr, verifier, &cache); });
    const double incr_x = legacy_ns / incr_ns;
    const double total_x = legacy_ns / cached_ns;
    std::printf("%4zu | %12.0f %12.0f %12.0f | %7.2fx %7.2fx\n", length,
                legacy_ns, incr_ns, cached_ns, incr_x, total_x);
    const std::string l = std::to_string(length);
    report.set("legacy_verify_ns_L" + l, legacy_ns);
    report.set("incremental_verify_ns_L" + l, incr_ns);
    report.set("cached_verify_ns_L" + l, cached_ns);
    report.set("incremental_speedup_L" + l, incr_x);
    report.set("chain_verify_speedup_L" + l, total_x);
  }

  print_header("Appending a signature: extend() at the chain tail",
               "extend() used to copy the whole chain and re-encode the "
               "whole prefix; it now moves the chain and signs a 32-byte "
               "running digest");
  {
    const std::size_t length = 33;
    const ba::SignedValue legacy = legacy_chain(7, length, legacy_scheme);
    // The old extend() took const& and copied the whole chain (L separate
    // signature buffers) before appending; the new one takes the chain by
    // value, so a caller that moves pays no copy at all.
    const double legacy_ns = time_ns([&] {
      ba::SignedValue copy = legacy;  // the copy the old API forced
      copy.chain.push_back(
          {63, legacy_scheme.sign(63, legacy_prefix(copy, copy.chain.size()))});
      return copy.chain.size();
    });
    ba::SignedValue work = incremental_chain(7, length, signer);
    const double incr_ns = time_ns([&] {
      work = ba::extend(std::move(work), signer, 63);
      work.chain.pop_back();  // restore length; buffers stay allocated
      return work.chain.size();
    });
    std::printf("L=%zu: legacy %.0f ns, incremental %.0f ns (%.2fx)\n",
                length, legacy_ns, incr_ns, legacy_ns / incr_ns);
    report.set("legacy_extend_ns_L33", legacy_ns);
    report.set("incremental_extend_ns_L33", incr_ns);
    report.set("extend_speedup_L33", legacy_ns / incr_ns);
  }

  print_header("Primitive throughput",
               "SHA-256 and HMAC-SHA-256 streaming over a 64 KiB buffer "
               "(the incremental API hashes each chain byte exactly once)");
  {
    Bytes buffer(64 * 1024);
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      buffer[i] = static_cast<std::uint8_t>(i * 131);
    }
    const Bytes key(32, 0x42);
    const double sha_ns = time_ns([&] {
      crypto::Sha256 h;
      h.update(buffer);
      return h.finish()[0];
    });
    const double hmac_ns = time_ns([&] {
      return crypto::hmac_sha256(key, buffer)[0];
    });
    const double mb = static_cast<double>(buffer.size()) / (1024.0 * 1024.0);
    std::printf("sha256: %8.2f MB/s   hmac-sha256: %8.2f MB/s\n",
                mb / (sha_ns * 1e-9), mb / (hmac_ns * 1e-9));
    report.set("sha256_64k_ns", sha_ns);
    report.set("hmac_64k_ns", hmac_ns);
  }

  print_header(
      "SHA-256 compression backends (runtime-dispatched)",
      "hash_backend() picks the best the CPU supports (override with "
      "DR82_HASH_BACKEND); every backend is bit-identical, so the fastest "
      "one is free correctness-wise (tests/crypto_backend_test fuzzes the "
      "equivalence)");
  {
    Bytes buffer(64 * 1024);
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      buffer[i] = static_cast<std::uint8_t>(i * 197);
    }
    std::string names;
    double scalar_ns = 0;
    double best_simd_ns = 0;
    std::printf("%-8s | %12s %10s\n", "backend", "64KiB ns", "MB/s");
    for (const crypto::HashBackend* backend :
         crypto::supported_hash_backends()) {
      if (!names.empty()) names += ",";
      names += backend->name;
      crypto::select_hash_backend(backend->name);
      const double ns = time_ns([&] {
        crypto::Sha256 h;
        h.update(buffer);
        return h.finish()[0];
      });
      const double mb =
          static_cast<double>(buffer.size()) / (1024.0 * 1024.0);
      std::printf("%-8s | %12.0f %10.2f\n", backend->name, ns,
                  mb / (ns * 1e-9));
      report.set(std::string("sha256_64k_") + backend->name + "_ns", ns);
      if (std::string(backend->name) == "scalar") {
        scalar_ns = ns;
      } else if (best_simd_ns == 0 || ns < best_simd_ns) {
        best_simd_ns = ns;
      }
    }
    crypto::select_hash_backend("auto");
    report.set_meta("hash_backends", names);
    report.set_meta("hash_backend", crypto::hash_backend().name);
    if (best_simd_ns > 0) {
      const double x = scalar_ns / best_simd_ns;
      std::printf("best SIMD vs scalar: %.2fx\n", x);
      // "simd" in the key tells bench_compare.py to skip this gate on
      // machines whose meta.hash_backends has no SIMD backend at all.
      report.set("simd_sha256_speedup", x);
    } else {
      std::printf("no SIMD backend on this CPU; scalar only\n");
    }
  }

  print_header(
      "Batch verification: a 64-message phase inbox",
      "ba::prewarm_inbox collects every chain link of an inbox and "
      "verifies them through one crypto::verify_batch call — HMAC links "
      "are exactly two one-block compressions from the key's pad "
      "midstates, so multi-buffer lanes apply; the baseline verifies the "
      "same links one scheme call at a time");
  {
    constexpr std::size_t kInbox = 64;
    std::vector<crypto::Digest> covered(kInbox);
    std::vector<Bytes> sigs(kInbox);
    std::vector<crypto::VerifyRequest> requests(kInbox);
    crypto::KeyRegistry batch_scheme(n, /*seed=*/2);
    for (std::size_t i = 0; i < kInbox; ++i) {
      // One chain link per message: a signature over a 32-byte prefix
      // digest, exactly the shape the prewarm pass batches.
      covered[i] = crypto::sha256(encode_u64(1000 + i));
      const crypto::ProcId p = static_cast<crypto::ProcId>(i % n);
      sigs[i] = batch_scheme.sign(
          p, ByteView{covered[i].data(), covered[i].size()});
      requests[i].signer = p;
      requests[i].sig = sigs[i];
      requests[i].covered = covered[i];
      requests[i].extended = crypto::sha256(sigs[i]);
    }
    std::printf("%-8s | %14s %14s | %8s\n", "backend", "per-msg ns",
                "batch ns", "batch x");
    double best_x = 0;
    for (const crypto::HashBackend* backend :
         crypto::supported_hash_backends()) {
      crypto::select_hash_backend(backend->name);
      const double seq_ns = time_ns([&] {
        bool all = true;
        for (std::size_t i = 0; i < kInbox; ++i) {
          all = all && batch_scheme.verify(
                           requests[i].signer,
                           ByteView{covered[i].data(), covered[i].size()},
                           ByteView{sigs[i].data(), sigs[i].size()});
        }
        return all;
      });
      const double batch_ns = time_ns([&] {
        std::vector<crypto::VerifyRequest> work = requests;
        crypto::verify_batch(batch_scheme, nullptr, work.data(),
                             work.size());
        return work[0].ok;
      });
      const double x = seq_ns / batch_ns;
      std::printf("%-8s | %14.0f %14.0f | %7.2fx\n", backend->name, seq_ns,
                  batch_ns, x);
      const std::string stem = std::string("_inbox64_") + backend->name;
      report.set("verify" + stem + "_per_msg_ns", seq_ns);
      report.set("verify" + stem + "_batch_ns", batch_ns);
      best_x = std::max(best_x, x);
    }
    crypto::select_hash_backend("auto");
    report.set("simd_batch_verify_speedup_64", best_x);
  }

  if (!g_json_path.empty()) report.write(g_json_path);
}

void register_timings() {
  const std::size_t n = 64;
  auto scheme = std::make_shared<crypto::KeyRegistry>(n, 1);
  std::vector<crypto::ProcId> ids;
  for (std::size_t p = 0; p < n; ++p) {
    ids.push_back(static_cast<crypto::ProcId>(p));
  }
  auto signer = std::make_shared<crypto::Signer>(scheme.get(), ids);
  auto legacy_scheme = std::make_shared<LegacyRegistry>(n, 1);
  for (const std::size_t length : {std::size_t{17}, std::size_t{33}}) {
    auto legacy = std::make_shared<ba::SignedValue>(
        legacy_chain(7, length, *legacy_scheme));
    auto incr = std::make_shared<ba::SignedValue>(
        incremental_chain(7, length, *signer));
    register_timing(
        "crypto/verify_legacy/L=" + std::to_string(length),
        [legacy_scheme, legacy] {
          benchmark::DoNotOptimize(legacy_verify(*legacy, *legacy_scheme));
        });
    register_timing(
        "crypto/verify_incremental/L=" + std::to_string(length),
        [scheme, incr] {
          const crypto::Verifier verifier(scheme.get());
          benchmark::DoNotOptimize(ba::verify_chain(*incr, verifier));
        });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::g_json_path = dr::bench::take_json_flag(argc, argv);
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
