// The deterministic parallel runner: wall-clock scaling of identical runs
// across worker-thread counts. Results are bit-identical by construction
// (see parallel_test); this table shows what the parallelism buys on the
// heavier workloads.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "svc/instance_pool.h"

namespace dr::bench {
namespace {

double time_once(const Protocol& protocol, const BAConfig& config,
                 std::size_t threads) {
  ba::ScenarioOptions options;
  options.threads = threads;
  const auto begin = std::chrono::steady_clock::now();
  const auto result = ba::run_scenario(protocol, config, options);
  const auto end = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.metrics.messages_by_correct());
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

void print_instance_table(JsonReport& report);

void print_tables(const std::string& json_path) {
  print_header("Parallel phase execution (bit-identical to serial)",
               "processes within a phase are independent; sends commit in "
               "processor order afterwards (speedup bounded by host cores "
               "and the serial commit/delivery fraction)");
  std::printf("%-22s %6s %4s | %9s %9s %9s | %8s\n", "protocol", "n", "t",
              "1 thread", "2", "4", "speedup");
  struct Job {
    std::string label;  // table display
    std::string key;    // JSON metric stem
    Protocol protocol;
    std::size_t n;
    std::size_t t;
  };
  std::vector<Job> jobs;
  jobs.push_back({"dolev-strong", "ds", *ba::find_protocol("dolev-strong"),
                  400, 4});
  jobs.push_back({"phase-king", "pk", *ba::find_protocol("phase-king"),
                  201, 50});
  jobs.push_back({"alg3[s=16]", "alg3", ba::make_alg3_protocol(16),
                  2000, 8});
  jobs.push_back({"alg5[s=7]", "alg5", ba::make_alg5_protocol(7), 800, 8});
  JsonReport report;
  // Max worker count the tables sweep (phase runner and instance pool).
  report.set_meta("cores_used", "4");
  report.set_meta("threads", "4");
  for (const Job& job : jobs) {
    const BAConfig config{job.n, job.t, 0, 1};
    const double t1 = time_once(job.protocol, config, 1);
    const double t2 = time_once(job.protocol, config, 2);
    const double t4 = time_once(job.protocol, config, 4);
    const double speedup = t1 / std::min(t2, t4);
    std::printf("%-22s %6zu %4zu | %8.1f %8.1f %8.1f | %7.2fx\n",
                job.label.c_str(), job.n, job.t, t1, t2, t4, speedup);
    report.set("parallel_serial_" + job.key + "_ms", t1);
    report.set("parallel_best_" + job.key + "_ms", std::min(t2, t4));
    report.set("parallel_speedup_" + job.key, speedup);
  }
  print_instance_table(report);
  if (!json_path.empty()) report.write(json_path);
}

/// Wall-clock seconds to push `instances` whole simulator runs through a
/// fixed-size svc::InstancePool — the same executor the daemon endpoints
/// use, here driving complete in-memory instances instead of endpoint
/// shares. The pool has no drain call on purpose (the daemon completes
/// instances through its reactor), so the bench spins on a counter.
double pool_seconds(std::size_t workers, std::size_t instances,
                    const Protocol& protocol, const BAConfig& config) {
  svc::InstancePool pool(workers);
  std::atomic<std::size_t> done{0};
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < instances; ++i) {
    pool.submit([&, i] {
      benchmark::DoNotOptimize(
          ba::run_scenario(protocol, config, /*seed=*/1 + i));
      done.fetch_add(1, std::memory_order_release);
    });
  }
  while (done.load(std::memory_order_acquire) < instances) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

void print_instance_table(JsonReport& report) {
  print_header(
      "Instance-sharded executor (svc::InstancePool)",
      "N concurrent agreement instances share a fixed worker pool instead "
      "of a thread each; throughput scales with workers up to the host "
      "core count while per-instance results stay bit-identical");
  const Protocol protocol = *ba::find_protocol("dolev-strong");
  const BAConfig config{20, 3, 0, 1};
  constexpr std::size_t kInstances = 64;
  std::printf("%-10s %9s | %9s %14s\n", "workers", "instances", "sec",
              "instances/sec");
  double serial_s = 0;
  double best_s = 0;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const double s = pool_seconds(workers, kInstances, protocol, config);
    std::printf("%-10zu %9zu | %9.2f %14.1f\n", workers, kInstances, s,
                static_cast<double>(kInstances) / s);
    if (workers == 1) serial_s = s;
    if (best_s == 0 || s < best_s) best_s = s;
  }
  report.set("instances_per_sec", static_cast<double>(kInstances) / best_s);
  // "parallel" in the key: bench_compare.py skips this gate on machines
  // with too few cores for pool parallelism to be meaningful.
  report.set("parallel_speedup_instances", serial_s / best_s);
}

void register_timings() {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    register_timing("parallel/alg3/threads=" + std::to_string(threads),
                    [threads] {
                      ba::ScenarioOptions options;
                      options.threads = threads;
                      benchmark::DoNotOptimize(ba::run_scenario(
                          ba::make_alg3_protocol(16),
                          BAConfig{2000, 8, 0, 1}, options));
                    });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  const std::string json_path = dr::bench::take_json_flag(argc, argv);
  dr::bench::print_tables(json_path);
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
