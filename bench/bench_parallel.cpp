// The deterministic parallel runner: wall-clock scaling of identical runs
// across worker-thread counts. Results are bit-identical by construction
// (see parallel_test); this table shows what the parallelism buys on the
// heavier workloads.
#include <chrono>

#include "bench_util.h"

namespace dr::bench {
namespace {

double time_once(const Protocol& protocol, const BAConfig& config,
                 std::size_t threads) {
  ba::ScenarioOptions options;
  options.threads = threads;
  const auto begin = std::chrono::steady_clock::now();
  const auto result = ba::run_scenario(protocol, config, options);
  const auto end = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(result.metrics.messages_by_correct());
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

void print_tables(const std::string& json_path) {
  print_header("Parallel phase execution (bit-identical to serial)",
               "processes within a phase are independent; sends commit in "
               "processor order afterwards (speedup bounded by host cores "
               "and the serial commit/delivery fraction)");
  std::printf("%-22s %6s %4s | %9s %9s %9s | %8s\n", "protocol", "n", "t",
              "1 thread", "2", "4", "speedup");
  struct Job {
    std::string label;  // table display
    std::string key;    // JSON metric stem
    Protocol protocol;
    std::size_t n;
    std::size_t t;
  };
  std::vector<Job> jobs;
  jobs.push_back({"dolev-strong", "ds", *ba::find_protocol("dolev-strong"),
                  400, 4});
  jobs.push_back({"phase-king", "pk", *ba::find_protocol("phase-king"),
                  201, 50});
  jobs.push_back({"alg3[s=16]", "alg3", ba::make_alg3_protocol(16),
                  2000, 8});
  jobs.push_back({"alg5[s=7]", "alg5", ba::make_alg5_protocol(7), 800, 8});
  JsonReport report;
  report.set_meta("threads", "4");  // max worker count the table sweeps
  for (const Job& job : jobs) {
    const BAConfig config{job.n, job.t, 0, 1};
    const double t1 = time_once(job.protocol, config, 1);
    const double t2 = time_once(job.protocol, config, 2);
    const double t4 = time_once(job.protocol, config, 4);
    const double speedup = t1 / std::min(t2, t4);
    std::printf("%-22s %6zu %4zu | %8.1f %8.1f %8.1f | %7.2fx\n",
                job.label.c_str(), job.n, job.t, t1, t2, t4, speedup);
    report.set("parallel_serial_" + job.key + "_ms", t1);
    report.set("parallel_best_" + job.key + "_ms", std::min(t2, t4));
    report.set("parallel_speedup_" + job.key, speedup);
  }
  if (!json_path.empty()) report.write(json_path);
}

void register_timings() {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    register_timing("parallel/alg3/threads=" + std::to_string(threads),
                    [threads] {
                      ba::ScenarioOptions options;
                      options.threads = threads;
                      benchmark::DoNotOptimize(ba::run_scenario(
                          ba::make_alg3_protocol(16),
                          BAConfig{2000, 8, 0, 1}, options));
                    });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  const std::string json_path = dr::bench::take_json_flag(argc, argv);
  dr::bench::print_tables(json_path);
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
