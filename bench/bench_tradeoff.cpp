// Experiment E7: the paper's message/phase trade-off — "t+3+t/alpha phases
// and O(alpha*n) messages for 1 <= alpha <= t" — realised by sweeping the
// set size s of Algorithm 3 (alpha ~ t/s) and the tree size s of
// Algorithm 5.
#include "ba/algorithm3.h"
#include "bench_util.h"
#include "bounds/formulas.h"

namespace dr::bench {
namespace {

std::vector<ScenarioFault> silent_roots(std::size_t n, std::size_t t,
                                        std::size_t s) {
  const ba::Alg3Layout layout{n, t, s};
  std::vector<ScenarioFault> faults;
  for (std::size_t set = 0; set < layout.set_count() && faults.size() < t;
       ++set) {
    faults.push_back(silent(layout.root_of(set)));
  }
  return faults;
}

void print_tables() {
  const std::size_t n = 2000;
  const std::size_t t = 16;
  print_header(
      "Message/phase trade-off (Algorithm 3, n = 2000, t = 16)",
      "sweeping s trades phases (t+2s+3) against messages (2n+4tn/s+3t^2 s) "
      "— the paper's 't+3+t/alpha phases, O(alpha n) messages' frontier");
  std::printf("%4s | %8s %8s | %10s %10s | %3s\n", "s", "phases", "bound",
              "messages", "bound", "agr");
  for (std::size_t s = 1; s <= 4 * t; s *= 2) {
    const auto protocol = ba::make_alg3_protocol(s);
    const auto worst = measure(protocol, BAConfig{n, t, 0, 1},
                               silent_roots(n, t, s));
    std::printf("%4zu | %8zu %8zu | %10zu %10.0f | %3s\n", s, worst.phases,
                bounds::alg3_phase_bound(t, s), worst.messages,
                bounds::alg3_message_upper_bound(n, t, s),
                worst.agreement && worst.validity ? "ok" : "FAIL");
  }

  print_header(
      "The same frontier at small alpha (few messages, many phases)",
      "s near 4t minimises messages; s = 1 nearly minimises phases");
  std::printf("%4s | %8s | %10s | %14s\n", "s", "phases", "messages",
              "msg*phases");
  for (std::size_t s : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto protocol = ba::make_alg3_protocol(s);
    const auto worst = measure(protocol, BAConfig{n, t, 0, 1},
                               silent_roots(n, t, s));
    std::printf("%4zu | %8zu | %10zu | %14zu\n", s, worst.phases,
                worst.messages, worst.phases * worst.messages);
  }
}

void register_timings() {
  for (std::size_t s : {4u, 32u}) {
    register_timing("tradeoff/alg3/s=" + std::to_string(s), [s] {
      benchmark::DoNotOptimize(measure(ba::make_alg3_protocol(s),
                                       BAConfig{2000, 16, 0, 1},
                                       silent_roots(2000, 16, s)));
    });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
