// Experiments E1-E3 (Theorems 1, 2 and Corollary 1): the lower bounds,
// measured against every algorithm, plus the executable attack from the
// Theorem 1 proof.
#include "bench_util.h"
#include "bounds/formulas.h"
#include "bounds/theorem1.h"
#include "bounds/theorem2.h"

namespace dr::bench {
namespace {

void print_tables() {
  print_header(
      "Theorem 1: signatures sent by correct processors, failure-free",
      ">= n(t+1)/4 signatures in the worse of the two failure-free "
      "histories for any authenticated algorithm");
  std::printf("%-20s %6s %4s | %12s %12s | %10s\n", "algorithm", "n", "t",
              "signatures", "n(t+1)/4", "|A(p)|min");
  struct Row {
    std::string name;
    std::size_t n;
    std::size_t t;
  };
  for (const Row& row :
       {Row{"dolev-strong", 10, 3}, Row{"dolev-strong-relay", 14, 3},
        Row{"alg1", 9, 4}, Row{"alg1", 17, 8}, Row{"alg2", 9, 4},
        Row{"alg2", 17, 8}}) {
    const auto& protocol = *ba::find_protocol(row.name);
    std::size_t worst_signatures = 0;
    for (Value v : {Value{0}, Value{1}}) {
      const auto m = measure(protocol, BAConfig{row.n, row.t, 0, v});
      worst_signatures = std::max(worst_signatures, m.signatures);
    }
    const std::size_t partners = bounds::min_partner_set_size(
        protocol, BAConfig{row.n, row.t, 0, 0}, 1);
    std::printf("%-20s %6zu %4zu | %12zu %12.0f | %10zu\n", row.name.c_str(),
                row.n, row.t, worst_signatures,
                bounds::theorem1_signature_lower_bound(row.n, row.t),
                partners);
  }

  print_header("Corollary 1: unauthenticated messages",
               ">= n(t+1)/4 messages failure-free without authentication "
               "(EIG at toy sizes; polynomial phase-king at scale)");
  std::printf("%-12s %6s %4s | %10s %12s\n", "algorithm", "n", "t",
              "messages", "n(t+1)/4");
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{4, 1},
                             {7, 2},
                             {10, 3}}) {
    const auto m = measure(*ba::find_protocol("eig"), BAConfig{n, t, 0, 1});
    std::printf("%-12s %6zu %4zu | %10zu %12.0f\n", "eig", n, t, m.messages,
                bounds::theorem1_signature_lower_bound(n, t));
  }
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{21, 5},
                             {85, 21},
                             {201, 50}}) {
    const auto m = measure(*ba::find_protocol("phase-king"),
                           BAConfig{n, t, 0, 1});
    std::printf("%-12s %6zu %4zu | %10zu %12.0f\n", "phase-king", n, t,
                m.messages, bounds::theorem1_signature_lower_bound(n, t));
  }

  print_header("Theorem 1 attack on a thrifty (broken) protocol",
               "a processor with |A(p)| <= t can be split from the rest by "
               "a two-faced coalition");
  std::printf("%6s %4s | %10s | %9s %7s %7s\n", "n", "t", "|A(obs)|",
              "violated", "obs", "rest");
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{9, 2},
                             {11, 3},
                             {13, 4},
                             {21, 8}}) {
    const auto attack = bounds::run_theorem1_attack(n, t, 1);
    std::printf("%6zu %4zu | %10zu | %9s %7llu %7llu\n", n, t,
                attack.partner_set_size,
                attack.agreement_violated ? "YES" : "no",
                static_cast<unsigned long long>(
                    attack.observer_decision.value_or(999)),
                static_cast<unsigned long long>(
                    attack.others_decision.value_or(999)));
  }

  print_header("Theorem 2 attack on a thrifty (broken) protocol",
               "a one-shot broadcast spends n-1 messages < the bound; "
               "withholding the victim's message splits it from the rest");
  std::printf("%6s %4s | %9s %8s %7s\n", "n", "t", "violated", "victim",
              "rest");
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{5, 1},
                             {9, 2},
                             {13, 4}}) {
    const auto attack = bounds::run_theorem2_attack(n, t, 1);
    std::printf("%6zu %4zu | %9s %8llu %7llu\n", n, t,
                attack.agreement_violated ? "YES" : "no",
                static_cast<unsigned long long>(
                    attack.starved_decision.value_or(999)),
                static_cast<unsigned long long>(
                    attack.others_decision.value_or(999)));
  }

  print_header("Theorem 2: the ignore-first-ceil(t/2) coalition B",
               "every b in B must receive >= ceil(1+t/2) messages from "
               "correct processors; totals >= max{(n-1)/2, (1+t/2)^2}");
  std::printf("%-20s %6s %4s | %9s %7s | %10s %12s | %3s\n", "algorithm",
              "n", "t", "min-recv", "bound", "messages", "lower-bound",
              "agr");
  struct Probe {
    std::string name;
    std::size_t n;
    std::size_t t;
    std::size_t s;
  };
  for (const Probe& probe :
       {Probe{"dolev-strong", 13, 4, 0}, Probe{"alg1", 9, 4, 0},
        Probe{"alg1", 17, 8, 0}, Probe{"alg2", 13, 6, 0},
        Probe{"alg3", 60, 4, 0}, Probe{"eig", 10, 3, 0}}) {
    const ba::Protocol protocol =
        probe.name == "alg3" ? ba::make_alg3_protocol(2 * probe.t)
                             : *ba::find_protocol(probe.name);
    const auto result = bounds::run_theorem2_probe(
        protocol, BAConfig{probe.n, probe.t, 0, 1}, 1);
    std::printf("%-20s %6zu %4zu | %9zu %7zu | %10zu %12.0f | %3s\n",
                protocol.name.c_str(), probe.n, probe.t,
                result.min_received_by_b, result.per_member_bound,
                result.messages_sent_by_correct,
                bounds::theorem2_message_lower_bound(probe.n, probe.t),
                result.agreement && result.validity ? "ok" : "FAIL");
  }
}

void register_timings() {
  register_timing("theorem1/attack/n=13/t=4", [] {
    benchmark::DoNotOptimize(bounds::run_theorem1_attack(13, 4, 1));
  });
  register_timing("theorem2/probe/alg1/t=8", [] {
    benchmark::DoNotOptimize(bounds::run_theorem2_probe(
        *ba::find_protocol("alg1"), BAConfig{17, 8, 0, 1}, 1));
  });
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
