// Experiment E5 (Theorem 4): Algorithm 2 gives every correct processor a
// transferable proof (value + >= t other signatures) within 3t+3 phases and
// at most 5t^2 + 5t messages.
#include "ba/algorithm2.h"
#include "ba/valid_message.h"
#include "bench_util.h"
#include "bounds/formulas.h"

namespace dr::bench {
namespace {

struct ProofStats {
  Measurement m;
  std::size_t correct = 0;
  std::size_t with_proof = 0;
};

ProofStats measure_with_proofs(std::size_t t, Value v,
                               const std::vector<ProcId>& silent_ids) {
  const std::size_t n = 2 * t + 1;
  const BAConfig config{n, t, 0, v};
  sim::Runner runner(sim::RunConfig{.n = n, .t = t, .transmitter = 0,
                                    .value = v, .seed = 1});
  for (ProcId id : silent_ids) runner.mark_faulty(id);
  std::vector<ba::Algorithm2*> procs(n, nullptr);
  for (ProcId p = 0; p < n; ++p) {
    if (runner.is_faulty(p)) {
      runner.install(p, std::make_unique<adversary::SilentProcess>());
    } else {
      auto proc = std::make_unique<ba::Algorithm2>(p, config);
      procs[p] = proc.get();
      runner.install(p, std::move(proc));
    }
  }
  const auto result = runner.run(ba::Algorithm2::steps(config));
  const auto check = sim::check_byzantine_agreement(result, 0, v);

  ProofStats stats;
  stats.m = Measurement{result.metrics.messages_by_correct(),
                        result.metrics.signatures_by_correct(),
                        result.metrics.last_active_phase(), check.agreement,
                        check.validity};
  crypto::Verifier verifier(&runner.scheme());
  for (ProcId p = 0; p < n; ++p) {
    if (procs[p] == nullptr) continue;
    ++stats.correct;
    if (procs[p]->proof().has_value() &&
        ba::is_possession_proof(*procs[p]->proof(), verifier, p, t)) {
      ++stats.with_proof;
    }
  }
  return stats;
}

void print_tables() {
  print_header("Algorithm 2 (n = 2t+1), failure-free",
               "<= 5t^2+5t messages within 3t+3 phases; every correct "
               "processor holds a t-signature proof (Theorem 4)");
  std::printf("%4s %4s | %9s %9s | %7s %7s | %7s | %3s %3s\n", "t", "n",
              "messages", "bound", "phases", "bound", "proofs", "agr",
              "val");
  for (std::size_t t : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto stats = measure_with_proofs(t, 1, {});
    std::printf("%4zu %4zu | %9zu %9zu | %7zu %7zu | %3zu/%-3zu | %3s %3s\n",
                t, 2 * t + 1, stats.m.messages,
                bounds::alg2_message_upper_bound(t), stats.m.phases,
                bounds::alg2_phase_bound(t), stats.with_proof, stats.correct,
                stats.m.agreement ? "ok" : "FAIL",
                stats.m.validity ? "ok" : "FAIL");
  }

  print_header("Algorithm 2 with t silent faults",
               "proof possession must survive the worst fault count");
  std::printf("%4s | %9s %9s | %7s | %3s\n", "t", "messages", "bound",
              "proofs", "agr");
  for (std::size_t t : {2u, 4u, 8u, 16u}) {
    std::vector<ProcId> faulty;
    for (std::size_t i = 0; i < t; ++i) {
      faulty.push_back(static_cast<ProcId>(2 + 2 * i));
    }
    const auto stats = measure_with_proofs(t, 1, faulty);
    std::printf("%4zu | %9zu %9zu | %3zu/%-3zu | %3s\n", t, stats.m.messages,
                bounds::alg2_message_upper_bound(t), stats.with_proof,
                stats.correct, stats.m.agreement ? "ok" : "FAIL");
  }
}

void register_timings() {
  for (std::size_t t : {4u, 16u, 32u}) {
    register_timing("alg2/failure_free/t=" + std::to_string(t), [t] {
      benchmark::DoNotOptimize(measure_with_proofs(t, 1, {}));
    });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_tables();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
