// Experiment E9 (Lemma 5 / Theorem 7): Algorithm 5 sends O(t^2 + nt/s)
// messages; with s = t this is O(n + t^2), matching the Theorem 2 lower
// bound for every ratio of n to t. Worst case: silent tree roots force
// proof-of-work subtree activations.
#include "ba/algorithm5.h"
#include "ba/tree.h"
#include "bench_util.h"
#include "bounds/formulas.h"

namespace dr::bench {
namespace {

/// Silent faults on the first `count` tree roots.
std::vector<ScenarioFault> silent_tree_roots(std::size_t n, std::size_t t,
                                             std::size_t s,
                                             std::size_t count) {
  std::vector<ScenarioFault> faults;
  if (n < ba::alpha_for(t)) return faults;
  const ba::Forest forest = ba::Forest::build(n, t, s);
  for (std::size_t i = 0; i < forest.trees.size() && faults.size() < count;
       ++i) {
    faults.push_back(silent(forest.trees[i].first_id));
  }
  return faults;
}

void print_tables() {
  print_header("Algorithm 5 (s = t): message growth in n at fixed t",
               "O(n + t^2) messages (Theorem 7); the per-n slope must "
               "flatten while Dolev-Strong grows like n*t");
  std::printf("%6s %4s %4s | %10s %10s | %9s %12s | %7s\n", "n", "t", "s",
              "clean", "worst", "msg/(n+t^2)", "ds-relay", "phases");
  for (std::size_t t : {2u, 4u, 8u, 16u}) {
    for (std::size_t n :
         {std::size_t{200}, std::size_t{400}, std::size_t{800},
          std::size_t{1600}}) {
      // The paper's s is of the form 2^lambda - 1; pick the largest such
      // value <= max(t, 3) so trees are non-degenerate.
      std::size_t s = 3;
      while (2 * s + 1 <= std::max<std::size_t>(t, 3)) s = 2 * s + 1;
      const auto protocol = ba::make_alg5_protocol(s);
      const BAConfig config{n, t, 0, 1};
      const auto clean = measure(protocol, config);
      const auto worst =
          measure(protocol, config, silent_tree_roots(n, t, s, t));
      const auto relay =
          measure(*ba::find_protocol("dolev-strong-relay"), config);
      const double denom = static_cast<double>(n + t * t);
      std::printf("%6zu %4zu %4zu | %10zu %10zu | %11.2f %12zu | %7zu %s\n",
                  n, t, s, clean.messages, worst.messages,
                  static_cast<double>(worst.messages) / denom,
                  relay.messages, worst.phases,
                  clean.agreement && worst.agreement ? "" : "AGREEMENT-FAIL");
    }
  }

  print_header("Algorithm 5: the s trade-off (Lemma 5)",
               "O(t^2 + nt/s) messages vs 3t+4s+2 phases");
  std::printf("%6s %4s %4s | %10s %8s | %8s %10s\n", "n", "t", "s", "worst",
              "phases", "ph-bound", "t^2+nt/s");
  const std::size_t n = 800;
  const std::size_t t = 8;
  for (std::size_t s : {1u, 3u, 7u, 15u, 31u}) {
    const auto protocol = ba::make_alg5_protocol(s);
    const auto worst = measure(protocol, BAConfig{n, t, 0, 1},
                               silent_tree_roots(n, t, s, t));
    std::printf("%6zu %4zu %4zu | %10zu %8zu | %8zu %10.0f\n", n, t, s,
                worst.messages, worst.phases, bounds::alg5_phase_bound(t, s),
                static_cast<double>(t * t) +
                    static_cast<double>(n * t) / static_cast<double>(s));
  }

  print_header("Algorithm 5 vs the Theorem 2 lower bound",
               "measured messages vs max{(n-1)/2, (1+t/2)^2}: the gap is "
               "the constant factor, not the growth rate");
  std::printf("%6s %4s | %10s %12s %8s\n", "n", "t", "worst", "lower-bound",
              "ratio");
  for (const auto& [nn, tt] : {std::pair<std::size_t, std::size_t>{200, 2},
                               {400, 4},
                               {800, 8},
                               {1600, 16}}) {
    std::size_t ss = 3;
    while (2 * ss + 1 <= std::max<std::size_t>(tt, 3)) ss = 2 * ss + 1;
    const auto worst = measure(ba::make_alg5_protocol(ss),
                               BAConfig{nn, tt, 0, 1},
                               silent_tree_roots(nn, tt, ss, tt));
    const double lb = bounds::theorem2_message_lower_bound(nn, tt);
    std::printf("%6zu %4zu | %10zu %12.0f %8.1f\n", nn, tt, worst.messages,
                lb, static_cast<double>(worst.messages) / lb);
  }
}

void print_phase_profile() {
  print_header("Algorithm 5 phase profile (n = 200, t = 4, s = 3)",
               "the block structure is visible: Algorithm 2 burst, then per-"
               "block activation / chain / report / exchange waves");
  const std::size_t n = 200;
  const std::size_t t = 4;
  const std::size_t s = 3;
  const auto result = ba::run_scenario(ba::make_alg5_protocol(s),
                                       BAConfig{n, t, 0, 1}, 1,
                                       silent_tree_roots(n, t, s, t));
  const auto& profile = result.metrics.per_phase();
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (profile[i] == 0) continue;
    std::printf("phase %3zu | %6zu ", i + 1, profile[i]);
    for (std::size_t b = 0; b < profile[i] / 8 && b < 60; ++b) {
      std::printf("#");
    }
    std::printf("\n");
  }
}

void register_timings() {
  for (const auto& [n, t] : {std::pair<std::size_t, std::size_t>{400, 4},
                             {1600, 8}}) {
    register_timing(
        "alg5/worst/n=" + std::to_string(n) + "/t=" + std::to_string(t),
        [n = n, t = t] {
          benchmark::DoNotOptimize(measure(ba::make_alg5_protocol(t),
                                           BAConfig{n, t, 0, 1},
                                           silent_tree_roots(n, t, t, t)));
        });
  }
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::print_tables();
  dr::bench::print_phase_profile();
  dr::bench::register_timings();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
