// Chaos soak driver: sweep seeded random transport-fault plans across the
// protocol registry, watchdog the paper's invariants, and close the loop
// on failure minimization + deterministic replay.
//
// Usage:
//   ./chaos soak [--runs N] [--seed S] [--protocols a,b,...]
//               [--backend sim|net] [--churn P]
//       Run N random scenarios (default 1000). Scenarios whose effective
//       faulty set stays within t must satisfy agreement, validity and the
//       Theorem 3 / Theorem 4 / Lemma 1 budgets; any violation is
//       minimized and printed as a JSON reproducer. Exit 1 if any found.
//       --backend net executes every scenario on the real message-passing
//       runtime (threads + framed transport) instead of the simulator.
//       --churn P (net only) gives each scenario probability P of also
//       killing, restarting or slowing one endpoint mid-run — real socket
//       death under the synchronizer, charged against the fault budget.
//
//   ./chaos demo [--protocol NAME] [--n N] [--t T] [--seed S]
//       The deliberate over-budget exercise: hunt for a transport plan
//       that charges more than t processors AND breaks an invariant,
//       shrink it to a minimal rule set, print the reproducer, then
//       re-load the JSON and replay it to confirm the violation is
//       bit-reproducible. Exit 0 when the whole loop closes.
//
//   ./chaos replay FILE.json
//       Load a reproducer, re-execute it, and report whether the recorded
//       violations recur. Exit 0 iff they match exactly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/chaos.h"

using namespace dr;

namespace {

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "error: %s (see the header of examples/chaos.cpp)\n",
               message);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Checks a scenario the way it was found: effective accounting when the
/// faulty set fits the budget, scripted-only accounting otherwise (the
/// over-budget demo). Returns the report plus which mask was used.
chaos::InvariantReport recheck(const chaos::Scenario& scenario,
                               const chaos::Outcome& outcome) {
  const chaos::Budgets budgets =
      chaos::budgets_for(scenario.protocol, scenario.config);
  const std::vector<bool>& mask =
      outcome.effective_faulty_count <= scenario.config.t
          ? outcome.effective_faulty
          : outcome.scripted_faulty;
  return chaos::check_invariants(scenario, outcome, mask, budgets);
}

int run_soak(std::size_t runs, std::uint64_t seed,
             const std::string& protocols, chaos::Backend backend,
             double churn_probability) {
  if (churn_probability > 0 && backend != chaos::Backend::kNet) {
    usage_error("--churn requires --backend net");
  }
  chaos::SoakOptions options;
  options.runs = runs;
  options.seed = seed;
  options.protocols = split_csv(protocols);
  options.backend = backend;
  options.churn_probability = churn_probability;

  const chaos::SoakStats stats = chaos::soak(options);
  std::printf("chaos soak: %zu runs, seed %llu, backend %s, churn %.2f\n",
              stats.runs, static_cast<unsigned long long>(seed),
              chaos::to_string(backend), churn_probability);
  std::printf("  within fault budget (checked): %zu\n", stats.checked);
  std::printf("  over budget (skipped):         %zu\n", stats.over_budget);
  std::printf("  processors perturbed (total):  %zu\n", stats.rules_fired);
  std::printf("  invariant violations:          %zu\n",
              stats.findings.size());
  for (const chaos::Finding& finding : stats.findings) {
    std::printf("\nVIOLATION (%s, n=%zu, t=%zu):\n",
                finding.scenario.protocol.c_str(), finding.scenario.config.n,
                finding.scenario.config.t);
    for (const std::string& violation : finding.violations) {
      std::printf("  - %s\n", violation.c_str());
    }
    std::printf("reproducer: %s\n", finding.reproducer_json.c_str());
  }
  return stats.findings.empty() ? 0 : 1;
}

int run_demo(const std::string& protocol, std::size_t n, std::size_t t,
             std::uint64_t seed) {
  const ba::BAConfig config{n, t, 0, 1};
  const auto resolved = chaos::resolve_protocol(protocol);
  if (!resolved.has_value()) usage_error("unknown protocol");
  if (!resolved->supports(config)) {
    usage_error("protocol does not support this (n, t)");
  }
  std::printf("hunting an over-budget violation for %s (n=%zu, t=%zu)...\n",
              protocol.c_str(), n, t);
  const std::optional<chaos::Finding> finding =
      chaos::hunt_over_budget(protocol, config, seed);
  if (!finding.has_value()) {
    std::fprintf(stderr, "no over-budget violation found; try another seed\n");
    return 1;
  }
  std::printf("minimized to %zu fault rule(s):\n",
              finding->scenario.rules.size());
  for (const sim::FaultRule& rule : finding->scenario.rules) {
    std::printf("  %s\n", sim::to_string(rule).c_str());
  }
  for (const std::string& violation : finding->violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
  std::printf("reproducer: %s\n", finding->reproducer_json.c_str());

  // Close the loop: parse the JSON back and replay it.
  std::vector<std::string> recorded;
  std::string error;
  const std::optional<chaos::Scenario> loaded =
      chaos::scenario_from_json(finding->reproducer_json, &recorded, &error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "reproducer failed to parse: %s\n", error.c_str());
    return 1;
  }
  if (*loaded != finding->scenario) {
    std::fprintf(stderr, "reproducer did not round-trip the scenario\n");
    return 1;
  }
  const chaos::Outcome outcome = chaos::execute(*loaded);
  const chaos::InvariantReport replayed = recheck(*loaded, outcome);
  if (replayed.violations != recorded) {
    std::fprintf(stderr, "replay produced different violations\n");
    return 1;
  }
  std::printf("replay: same %zu violation(s) — deterministic.\n",
              replayed.violations.size());
  return 0;
}

int run_replay(const char* path) {
  std::ifstream file(path);
  if (!file) usage_error("cannot open reproducer file");
  std::stringstream buffer;
  buffer << file.rdbuf();

  std::vector<std::string> recorded;
  std::string error;
  const std::optional<chaos::Scenario> scenario =
      chaos::scenario_from_json(buffer.str(), &recorded, &error);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 2;
  }
  const chaos::Outcome outcome = chaos::execute(*scenario);
  const chaos::InvariantReport report = recheck(*scenario, outcome);
  std::printf("%s n=%zu t=%zu: effective faulty %zu (budget %zu)\n",
              scenario->protocol.c_str(), scenario->config.n,
              scenario->config.t, outcome.effective_faulty_count,
              scenario->config.t);
  for (const std::string& violation : report.violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
  if (report.violations == recorded) {
    std::printf("matches the recorded violations.\n");
    return 0;
  }
  std::printf("recorded violations differ:\n");
  for (const std::string& violation : recorded) {
    std::printf("  recorded: %s\n", violation.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = argc > 1 ? argv[1] : "soak";
  if (mode == "--help") {
    std::printf("see the header of examples/chaos.cpp for usage\n");
    return 0;
  }

  std::size_t runs = 1000;
  std::uint64_t seed = 1;
  std::string protocols;
  std::string protocol = "dolev-strong";
  std::size_t n = 5, t = 1;
  chaos::Backend backend = chaos::Backend::kSim;
  double churn_probability = 0.0;
  const char* replay_path = nullptr;

  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing argument value");
      return argv[++i];
    };
    if (arg == "--runs") {
      runs = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--protocols") {
      protocols = next();
    } else if (arg == "--protocol") {
      protocol = next();
    } else if (arg == "--n") {
      n = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--t") {
      t = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--backend") {
      if (!chaos::backend_from_string(next(), backend)) {
        usage_error("unknown backend (sim | net)");
      }
    } else if (arg == "--churn") {
      churn_probability = std::strtod(next(), nullptr);
      if (churn_probability < 0.0 || churn_probability > 1.0) {
        usage_error("--churn wants a probability in [0, 1]");
      }
    } else if (mode == "replay" && replay_path == nullptr &&
               !arg.empty() && arg[0] != '-') {
      replay_path = argv[i];
    } else {
      usage_error("unknown option");
    }
  }

  if (mode == "soak") {
    return run_soak(runs, seed, protocols, backend, churn_probability);
  }
  if (mode == "demo") return run_demo(protocol, n, t, seed);
  if (mode == "replay") {
    if (replay_path == nullptr) usage_error("replay needs a file path");
    return run_replay(replay_path);
  }
  usage_error("unknown mode (soak | demo | replay)");
}
