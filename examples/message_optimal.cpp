// The paper's headline result in action: Algorithm 5 reaches Byzantine
// Agreement with O(n + t^2) messages. This example scales n with t fixed
// and shows the per-processor message cost flattening while Dolev-Strong's
// keeps its factor-t slope — including under faults placed to hurt
// Algorithm 5 most (silent tree roots).
//
//   ./message_optimal [t]
#include <cstdio>
#include <cstdlib>

#include "adversary/strategies.h"
#include "ba/registry.h"
#include "ba/tree.h"
#include "bounds/formulas.h"

using namespace dr;

namespace {

std::vector<ba::ScenarioFault> silent_tree_roots(std::size_t n,
                                                 std::size_t t,
                                                 std::size_t s) {
  std::vector<ba::ScenarioFault> faults;
  if (n < ba::alpha_for(t)) return faults;
  const ba::Forest forest = ba::Forest::build(n, t, s);
  for (std::size_t i = 0; i < forest.trees.size() && faults.size() < t;
       ++i) {
    faults.push_back(ba::ScenarioFault{
        forest.trees[i].first_id, [](ba::ProcId, const ba::BAConfig&) {
          return std::make_unique<adversary::SilentProcess>();
        }});
  }
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t t = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  std::size_t s = 3;  // largest 2^lambda - 1 <= max(t, 3)
  while (2 * s + 1 <= std::max<std::size_t>(t, 3)) s = 2 * s + 1;

  std::printf("Algorithm 5 (tree size s=%zu) vs Dolev-Strong relay "
              "variant, t=%zu, worst-case faults\n\n", s, t);
  std::printf("%6s | %12s %10s | %12s %10s\n", "n", "alg5 msgs", "per proc",
              "ds-relay", "per proc");

  const auto alg5 = ba::make_alg5_protocol(s);
  const auto& relay = *ba::find_protocol("dolev-strong-relay");
  for (std::size_t n = 200; n <= 3200; n *= 2) {
    const ba::BAConfig config{n, t, 0, 1};
    const auto faults = silent_tree_roots(n, t, s);
    const auto a = ba::run_scenario(alg5, config, 1, faults);
    const auto d = ba::run_scenario(relay, config, 1, faults);
    const auto ca = sim::check_byzantine_agreement(a, 0, 1);
    const auto cd = sim::check_byzantine_agreement(d, 0, 1);
    if (!ca.agreement || !ca.validity || !cd.agreement || !cd.validity) {
      std::printf("agreement failure at n=%zu!\n", n);
      return 1;
    }
    std::printf("%6zu | %12zu %10.1f | %12zu %10.1f\n", n,
                a.metrics.messages_by_correct(),
                static_cast<double>(a.metrics.messages_by_correct()) /
                    static_cast<double>(n),
                d.metrics.messages_by_correct(),
                static_cast<double>(d.metrics.messages_by_correct()) /
                    static_cast<double>(n));
  }

  std::printf("\nTheorem 2 says no algorithm can beat "
              "max{(n-1)/2, (1+t/2)^2}; at n=3200, t=%zu that is %.0f "
              "messages.\n", t,
              bounds::theorem2_message_lower_bound(3200, t));
  std::printf("Algorithm 5's price: ~%zu phases instead of Dolev-Strong's "
              "t+2 = %zu.\n",
              static_cast<std::size_t>(bounds::alg5_phase_bound(t, s)),
              t + 2);
  return 0;
}
