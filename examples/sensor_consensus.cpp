// A downstream-user scenario: n redundant sensors, up to t of them
// arbitrarily faulty, must agree on a fused reading. Interactive
// consistency (n parallel Byzantine broadcasts — the setting of the
// paper's reference [15]) gives every correct sensor the same vector of
// claimed readings; each then applies the same median fusion, so all
// correct sensors act on the same fused value even though the faulty
// sensors lie differently to different peers.
//
//   ./sensor_consensus [n] [t]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "adversary/strategies.h"
#include "ba/interactive_consistency.h"

using namespace dr;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
  const std::size_t t = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

  // True physical quantity ~ 5000 units; correct sensors read it with a
  // little deterministic "noise".
  std::vector<ba::Value> readings(n);
  for (std::size_t i = 0; i < n; ++i) readings[i] = 4990 + 3 * i;

  // Faults: one sensor reports wildly different values to different peers
  // (a RandomByzantine), one goes dark.
  std::vector<ba::ScenarioFault> faults;
  if (t >= 1) {
    faults.push_back(ba::ScenarioFault{
        static_cast<ba::ProcId>(n - 1), [](ba::ProcId p, const ba::BAConfig&) {
          return std::make_unique<adversary::RandomByzantine>(p, 0.5);
        }});
  }
  if (t >= 2) {
    faults.push_back(ba::ScenarioFault{
        static_cast<ba::ProcId>(n - 2), [](ba::ProcId, const ba::BAConfig&) {
          return std::make_unique<adversary::SilentProcess>();
        }});
  }

  const ba::Protocol& base = *ba::find_protocol("dolev-strong");
  const auto result =
      ba::run_interactive_consistency(base, readings, t, 1, faults);

  std::printf("sensor consensus: n=%zu, t=%zu, base protocol %s\n", n, t,
              base.name.c_str());
  std::printf("messages exchanged by correct sensors: %zu\n\n",
              result.run.metrics.messages_by_correct());

  std::vector<ba::Value> fused_values;
  for (ba::ProcId p = 0; p < n; ++p) {
    if (result.run.faulty[p]) {
      std::printf("sensor %u: faulty\n", p);
      continue;
    }
    const auto& vec = result.vectors[p];
    std::printf("sensor %u sees vector [", p);
    std::vector<ba::Value> entries;
    for (const auto& entry : vec) {
      const ba::Value v = entry.value_or(0);
      entries.push_back(v);
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
    // Common deterministic fusion: median of the agreed vector.
    std::sort(entries.begin(), entries.end());
    const ba::Value fused = entries[entries.size() / 2];
    fused_values.push_back(fused);
    std::printf(" ] -> fused %llu\n",
                static_cast<unsigned long long>(fused));
  }

  const bool all_equal =
      std::all_of(fused_values.begin(), fused_values.end(),
                  [&](ba::Value v) { return v == fused_values.front(); });
  std::printf("\nall correct sensors fused the same value: %s\n",
              all_equal ? "yes" : "NO (bug!)");
  return all_equal ? 0 : 1;
}
