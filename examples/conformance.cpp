// Conformance driver: hold randomized protocol runs against the paper's
// bounds, differentially across the three runtimes, and close the loop on
// shrinking + deterministic replay.
//
// Usage:
//   ./conformance run [--cases N] [--seed S] [--protocols a,b,...]
//                 [--no-differential] [--no-shrink]
//                 [--message-scale X] [--phase-scale X]
//       Draw N random cases (default 200) and check every paper oracle —
//       agreement, validity, phase budgets, message budgets, Theorem 1's
//       failure-free signature floors — plus, unless --no-differential,
//       sim vs in-process vs TCP-loopback parity. Violations are shrunk
//       to 1-minimal fault sets and printed as JSON reproducers. Exit 1
//       if any found. --message-scale 0.05 deliberately tightens the
//       message bounds to demonstrate the find -> shrink -> replay loop
//       on a "broken constant".
//
//   ./conformance replay FILE.json [--message-scale X] [--phase-scale X]
//                 [--no-differential]
//       Load a reproducer, re-evaluate it, and report whether the
//       recorded violations recur bit-exactly. Exit 0 iff they match.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/engine.h"

using namespace dr;

namespace {

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr,
               "error: %s (see the header of examples/conformance.cpp)\n",
               message);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run_sweep(const check::EngineOptions& options) {
  check::ConformanceEngine engine(options);
  const check::ConformanceStats stats = engine.run();
  std::printf("conformance: %zu cases, seed %llu, differential %s\n",
              stats.cases, static_cast<unsigned long long>(options.seed),
              options.differential ? "on" : "off");
  std::printf("  within fault budget (checked): %zu\n", stats.checked);
  std::printf("  over budget (skipped):         %zu\n",
              stats.skipped_over_budget);
  std::printf("  theorem-1 shapes checked:      %zu\n",
              stats.signature_shapes_checked);
  std::printf("  per protocol:\n");
  for (const auto& [name, per] : stats.per_protocol) {
    std::printf("    %-22s cases %4zu  checked %4zu  findings %zu\n",
                name.c_str(), per.cases, per.checked, per.findings);
  }
  std::printf("  oracle violations:             %zu\n",
              stats.findings.size());
  for (const chaos::Finding& finding : stats.findings) {
    std::printf("\nVIOLATION (%s, n=%zu, t=%zu):\n",
                finding.scenario.protocol.c_str(), finding.scenario.config.n,
                finding.scenario.config.t);
    for (const std::string& violation : finding.violations) {
      std::printf("  - %s\n", violation.c_str());
    }
    std::printf("reproducer: %s\n", finding.reproducer_json.c_str());
  }
  return stats.findings.empty() ? 0 : 1;
}

int run_replay(const char* path, const check::EngineOptions& options) {
  std::ifstream file(path);
  if (!file) usage_error("cannot open reproducer file");
  std::stringstream buffer;
  buffer << file.rdbuf();

  std::vector<std::string> recorded;
  std::string error;
  const std::optional<chaos::Scenario> scenario =
      chaos::scenario_from_json(buffer.str(), &recorded, &error);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 2;
  }
  check::ConformanceEngine engine(options);
  const check::CaseReport report = engine.evaluate(*scenario);
  if (!report.within_budget) {
    std::fprintf(stderr, "replay: scenario exceeds the fault budget\n");
    return 1;
  }
  std::printf("replay: %zu violation(s) recorded, %zu reproduced\n",
              recorded.size(), report.violations.size());
  for (const std::string& violation : report.violations) {
    std::printf("  - %s\n", violation.c_str());
  }
  if (report.violations != recorded) {
    std::fprintf(stderr, "replay: violations do not match the recording\n");
    return 1;
  }
  std::printf("replay: deterministic.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage_error("missing mode (run | replay)");
  const std::string mode = argv[1];
  const char* replay_path = nullptr;
  check::EngineOptions options;
  int i = 2;
  if (mode == "replay") {
    if (argc < 3 || argv[2][0] == '-') usage_error("replay needs FILE.json");
    replay_path = argv[2];
    i = 3;
  } else if (mode != "run") {
    usage_error("mode must be run or replay");
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing argument value");
      return argv[++i];
    };
    if (arg == "--cases") {
      options.cases = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--protocols") {
      options.generator.protocols = split_csv(next());
    } else if (arg == "--no-differential") {
      options.differential = false;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--message-scale") {
      options.oracles.message_scale = std::strtod(next(), nullptr);
    } else if (arg == "--phase-scale") {
      options.oracles.phase_scale = std::strtod(next(), nullptr);
    } else {
      usage_error("unknown flag");
    }
  }
  return mode == "run" ? run_sweep(options)
                       : run_replay(replay_path, options);
}
