// General-purpose simulation driver: pick a protocol, size, adversary mix
// and scheme from the command line; get agreement verdicts and
// information-exchange metrics (optionally as a CSV row for scripted
// sweeps).
//
// Usage:
//   ./simulate [options]
//     --protocol NAME   dolev-strong | dolev-strong-relay | eig | alg1 |
//                       alg1-mv | alg2 | alg3 | alg5 | alg5-ungated
//                       (default: alg5)
//     --n N             processors (default 100)
//     --t T             fault budget (default 2)
//     --s S             set/tree size for alg3/alg5 (default max(t,3))
//     --value V         transmitter input (default 1)
//     --seed S          master seed (default 1)
//     --faults SPEC     comma list of id:kind with kind in
//                       silent | chaos | crash (e.g. "7:silent,9:chaos")
//     --equivocate      make the transmitter two-faced (counts as a fault)
//     --rushing         rushing adversary semantics
//     --merkle          Lamport+Merkle signatures instead of HMAC (small n!)
//     --wots            W-OTS+Merkle signatures instead of HMAC (small n!)
//     --threads K       parallel phase execution with K worker threads
//     --trace           print the full message history (text timeline)
//     --dot             print the full message history as Graphviz DOT
//     --csv             one CSV row instead of the report
//
// Examples:
//   ./simulate --protocol alg3 --n 400 --t 4 --s 16 --faults 25:silent
//   ./simulate --protocol dolev-strong --n 9 --t 2 --equivocate --csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "adversary/strategies.h"
#include "ba/registry.h"
#include "ba/signed_value.h"
#include "hist/export.h"

using namespace dr;

namespace {

struct Args {
  std::string protocol = "alg5";
  std::size_t n = 100;
  std::size_t t = 2;
  std::size_t s = 0;
  ba::Value value = 1;
  std::uint64_t seed = 1;
  std::string faults;
  bool equivocate = false;
  bool rushing = false;
  bool merkle = false;
  bool wots = false;
  bool csv = false;
  bool trace = false;
  bool dot = false;
  std::size_t threads = 1;
};

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "error: %s (run with --help)\n", message);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing argument value");
      return argv[++i];
    };
    if (arg == "--protocol") {
      args.protocol = next();
    } else if (arg == "--n") {
      args.n = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--t") {
      args.t = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--s") {
      args.s = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--value") {
      args.value = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      args.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--faults") {
      args.faults = next();
    } else if (arg == "--equivocate") {
      args.equivocate = true;
    } else if (arg == "--rushing") {
      args.rushing = true;
    } else if (arg == "--merkle") {
      args.merkle = true;
    } else if (arg == "--wots") {
      args.wots = true;
    } else if (arg == "--threads") {
      args.threads = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--trace") {
      args.trace = true;
    } else if (arg == "--dot") {
      args.dot = true;
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--help") {
      std::printf("see the header of examples/simulate.cpp for usage\n");
      std::exit(0);
    } else {
      usage_error("unknown option");
    }
  }
  if (args.s == 0) args.s = std::max<std::size_t>(args.t, 3);
  return args;
}

ba::Protocol resolve_protocol(const Args& args) {
  if (args.protocol == "alg3") return ba::make_alg3_protocol(args.s);
  if (args.protocol == "alg5") return ba::make_alg5_protocol(args.s);
  if (args.protocol == "alg5-ungated") {
    return ba::make_alg5_ungated_protocol(args.s);
  }
  const ba::Protocol* fixed = ba::find_protocol(args.protocol);
  if (fixed == nullptr) usage_error("unknown protocol");
  return *fixed;
}

std::vector<ba::ScenarioFault> parse_faults(const Args& args,
                                            const ba::Protocol& protocol) {
  std::vector<ba::ScenarioFault> faults;
  if (args.equivocate) {
    std::set<ba::ProcId> ones;
    for (ba::ProcId q = 1; q < args.n; q += 2) ones.insert(q);
    faults.push_back(ba::ScenarioFault{
        0, [ones](ba::ProcId, const ba::BAConfig& c) {
          return std::make_unique<adversary::EquivocatingTransmitter>(ones,
                                                                      c.n);
        }});
  }
  std::string spec = args.faults;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    const std::string item = spec.substr(0, comma);
    spec = comma == std::string::npos ? "" : spec.substr(comma + 1);
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) usage_error("fault spec needs id:kind");
    const auto id =
        static_cast<ba::ProcId>(std::strtoul(item.c_str(), nullptr, 10));
    const std::string kind = item.substr(colon + 1);
    if (id >= args.n) usage_error("fault id out of range");
    if (kind == "silent") {
      faults.push_back(ba::ScenarioFault{
          id, [](ba::ProcId, const ba::BAConfig&) {
            return std::make_unique<adversary::SilentProcess>();
          }});
    } else if (kind == "chaos") {
      faults.push_back(ba::ScenarioFault{
          id, [seed = args.seed](ba::ProcId p, const ba::BAConfig&) {
            return std::make_unique<adversary::RandomByzantine>(seed ^ p,
                                                                0.3);
          }});
    } else if (kind == "crash") {
      faults.push_back(ba::ScenarioFault{
          id, [&protocol](ba::ProcId p, const ba::BAConfig& c) {
            return std::make_unique<adversary::CrashProcess>(
                protocol.make(p, c), protocol.steps(c) / 2);
          }});
    } else {
      usage_error("unknown fault kind");
    }
  }
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const ba::Protocol protocol = resolve_protocol(args);
  const ba::BAConfig config{args.n, args.t, 0, args.value};
  if (!protocol.supports(config)) {
    usage_error("protocol does not support this (n, t, value)");
  }
  const auto faults = parse_faults(args, protocol);
  if (faults.size() > args.t) usage_error("more faults than t");

  ba::ScenarioOptions options;
  options.seed = args.seed;
  options.rushing = args.rushing;
  if (args.merkle) {
    options.scheme = sim::SchemeKind::kMerkle;
    options.merkle_height = 8;
  }
  if (args.wots) {
    options.scheme = sim::SchemeKind::kWots;
    options.merkle_height = 8;
  }
  options.threads = std::max<std::size_t>(args.threads, 1);
  options.record_history = args.trace || args.dot;

  const auto result = ba::run_scenario(protocol, config, options, faults);
  if (args.dot) {
    std::fputs(hist::to_dot(result.history,
                            ba::chain_label_printer()).c_str(), stdout);
    return 0;
  }
  if (args.trace) {
    std::fputs(hist::to_text(result.history,
                             ba::chain_label_printer()).c_str(), stdout);
  }
  const auto check = sim::check_byzantine_agreement(result, 0, args.value);

  if (args.csv) {
    std::printf("protocol,n,t,faults,rushing,agreement,validity,messages,"
                "signatures,phases\n");
    std::printf("%s,%zu,%zu,%zu,%d,%d,%d,%zu,%zu,%u\n",
                protocol.name.c_str(), args.n, args.t, faults.size(),
                args.rushing ? 1 : 0, check.agreement ? 1 : 0,
                check.validity ? 1 : 0,
                result.metrics.messages_by_correct(),
                result.metrics.signatures_by_correct(),
                result.metrics.last_active_phase());
    return check.agreement && check.validity ? 0 : 1;
  }

  std::printf("protocol:   %s\n", protocol.name.c_str());
  std::printf("n=%zu t=%zu value=%llu seed=%llu faults=%zu%s%s\n", args.n,
              args.t, static_cast<unsigned long long>(args.value),
              static_cast<unsigned long long>(args.seed), faults.size(),
              args.rushing ? " rushing" : "",
              args.merkle ? " merkle" : (args.wots ? " wots" : ""));
  std::printf("agreement:  %s\n", check.agreement ? "yes" : "NO");
  std::printf("validity:   %s\n", check.validity ? "yes" : "NO");
  if (check.agreed_value.has_value()) {
    std::printf("common value: %llu\n",
                static_cast<unsigned long long>(*check.agreed_value));
  }
  std::printf("messages (correct senders):   %zu\n",
              result.metrics.messages_by_correct());
  std::printf("signatures (correct senders): %zu\n",
              result.metrics.signatures_by_correct());
  std::printf("phases with traffic:          %u\n",
              result.metrics.last_active_phase());
  return check.agreement && check.validity ? 0 : 1;
}
