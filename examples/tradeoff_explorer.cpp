// Explore the paper's message/phase trade-off (Section 5): Algorithm 3
// parameterised by its set size s spans the frontier from "few phases, many
// messages" (s small) to "many phases, few messages" (s near 4t). The
// paper phrases this as t+3+t/alpha phases against O(alpha*n) messages.
//
//   ./tradeoff_explorer [n] [t]
//
// Prints the measured frontier under the worst fault placement (t silent
// set roots) and marks the message-optimal and phase-optimal corners.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "adversary/strategies.h"
#include "ba/algorithm3.h"
#include "ba/registry.h"
#include "bounds/formulas.h"

using namespace dr;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1000;
  const std::size_t t = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  if (n < 2 * t + 2) {
    std::fprintf(stderr, "need n >= 2t+2\n");
    return 1;
  }

  struct Point {
    std::size_t s;
    std::size_t phases;
    std::size_t messages;
  };
  std::vector<Point> frontier;

  std::printf("Algorithm 3 trade-off frontier, n=%zu, t=%zu "
              "(worst case: t silent roots)\n\n", n, t);
  std::printf("%5s | %7s %8s | %9s %10s | %s\n", "s", "phases", "(bound)",
              "messages", "(bound)", "frontier");

  for (std::size_t s = 1; s <= 8 * t; s *= 2) {
    const ba::Alg3Layout layout{n, t, s};
    std::vector<ba::ScenarioFault> faults;
    for (std::size_t set = 0; set < layout.set_count() && faults.size() < t;
         ++set) {
      faults.push_back(ba::ScenarioFault{
          layout.root_of(set), [](ba::ProcId, const ba::BAConfig&) {
            return std::make_unique<adversary::SilentProcess>();
          }});
    }
    const auto result = ba::run_scenario(ba::make_alg3_protocol(s),
                                         ba::BAConfig{n, t, 0, 1}, 1,
                                         faults);
    const auto check = sim::check_byzantine_agreement(result, 0, 1);
    if (!check.agreement || !check.validity) {
      std::printf("agreement failure at s=%zu!\n", s);
      return 1;
    }
    frontier.push_back(Point{s, result.metrics.last_active_phase(),
                             result.metrics.messages_by_correct()});
    // A simple bar visualising message cost (one '#' per n messages).
    const std::size_t bars = result.metrics.messages_by_correct() / n;
    std::printf("%5zu | %7u %8zu | %9zu %10.0f | ", s,
                result.metrics.last_active_phase(),
                bounds::alg3_phase_bound(t, s),
                result.metrics.messages_by_correct(),
                bounds::alg3_message_upper_bound(n, t, s));
    for (std::size_t b = 0; b < bars && b < 48; ++b) std::printf("#");
    std::printf("\n");
  }

  const auto min_msg = std::min_element(
      frontier.begin(), frontier.end(),
      [](const Point& a, const Point& b) { return a.messages < b.messages; });
  const auto min_ph = std::min_element(
      frontier.begin(), frontier.end(),
      [](const Point& a, const Point& b) { return a.phases < b.phases; });
  std::printf("\nmessage-optimal: s=%zu (%zu messages in %zu phases)\n",
              min_msg->s, min_msg->messages, min_msg->phases);
  std::printf("phase-optimal:   s=%zu (%zu phases at %zu messages)\n",
              min_ph->s, min_ph->phases, min_ph->messages);
  std::printf("\nThe paper's Theorem 5 point sits at s = 4t = %zu: "
              "O(n + t^3) messages.\n", 4 * t);
  return 0;
}
