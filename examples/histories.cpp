// The paper's Section-2 formal model, hands-on: record full histories,
// extract individual subhistories, and watch the indistinguishability
// argument that powers every lower-bound proof.
//
//   ./histories
//
// 1. Runs Dolev-Strong twice failure-free (value 0 -> history H, value 1 ->
//    history G) and shows that each processor's *individual subhistory*
//    pH — the only thing the model lets it decide from — differs between
//    the two worlds (that is why it can decide correctly).
// 2. Replays the recorded histories through the correctness-rule validator
//    (Section 2's "correct at phase k" predicate).
// 3. Builds a hybrid history that agrees with H toward one processor and
//    with G toward the others, and shows the validator flag exactly the
//    processors that would have to be faulty to produce it.
#include <cstdio>
#include <set>

#include "ba/registry.h"
#include "ba/replay.h"
#include "codec/codec.h"

using namespace dr;

int main() {
  const std::size_t n = 6;
  const std::size_t t = 1;
  const ba::Protocol& protocol = *ba::find_protocol("dolev-strong");

  std::printf("Recording failure-free histories H (value 0) and G "
              "(value 1), n=%zu, t=%zu...\n\n", n, t);
  const auto run_h =
      ba::run_scenario(protocol, ba::BAConfig{n, t, 0, 0}, 1, {}, true);
  const auto run_g =
      ba::run_scenario(protocol, ba::BAConfig{n, t, 0, 1}, 1, {}, true);
  const hist::History& h = run_h.history;
  const hist::History& g = run_g.history;

  std::printf("H has %u phases; phase 1 carries %zu edges, phase 2 carries "
              "%zu.\n", h.phases(), h.phase(1).edges().size(),
              h.phase(2).edges().size());

  std::printf("\nIndividual subhistories (what each processor can decide "
              "from):\n");
  for (ba::ProcId p = 0; p < n; ++p) {
    const hist::History ph = h.individual(p);
    const hist::History pg = g.individual(p);
    std::size_t edges = 0;
    for (hist::PhaseNum k = 1; k <= ph.phases(); ++k) {
      edges += ph.phase(k).edges().size();
    }
    std::printf("  p%u: %zu in-edges in H; pH %s pG\n", p, edges,
                ph == pg ? "==" : "!=");
  }
  std::printf("Every pH differs from pG — the processors can (and must) "
              "decide differently\nin the two worlds.\n");

  std::printf("\nValidating both histories against the correctness rule "
              "(Section 2)...\n");
  const auto rep_h = ba::validate_correctness(h, protocol,
                                              ba::BAConfig{n, t, 0, 0},
                                              run_h.faulty, 1);
  const auto rep_g = ba::validate_correctness(g, protocol,
                                              ba::BAConfig{n, t, 0, 1},
                                              run_g.faulty, 1);
  std::printf("  H conforms: %s   G conforms: %s\n",
              rep_h.conforming ? "yes" : "NO",
              rep_g.conforming ? "yes" : "NO");

  // The hybrid: processor n-1 sees H, everyone else sees G. No single
  // correct world can produce it — the validator must blame somebody.
  std::printf("\nBuilding the hybrid history (p%zu sees H, the rest see "
              "G)...\n", n - 1);
  const ba::ProcId victim = static_cast<ba::ProcId>(n - 1);
  hist::History hybrid;
  hybrid.set_initial(0, encode_u64(1));
  for (hist::PhaseNum k = 1; k <= std::max(h.phases(), g.phases()); ++k) {
    for (const hist::Edge& e : h.phase(k).edges()) {
      if (e.to == victim) hybrid.record(k, e);
    }
    for (const hist::Edge& e : g.phase(k).edges()) {
      if (e.to != victim) hybrid.record(k, e);
    }
  }
  const auto rep_hybrid = ba::validate_correctness(
      hybrid, protocol, ba::BAConfig{n, t, 0, 1},
      std::vector<bool>(n, false), 1);
  std::printf("  hybrid conforms with everyone correct: %s\n",
              rep_hybrid.conforming ? "yes (!?)" : "no");
  std::printf("  processors the correctness rule blames:");
  std::set<ba::ProcId> blamed;
  for (const auto& v : rep_hybrid.violations) blamed.insert(v.processor);
  for (ba::ProcId p : blamed) std::printf(" p%u", p);
  std::printf("\n\nTheorem 1's whole game is to make that blamed set "
              "smaller than t+1 —\npossible only if some processor's "
              "signature partner set A(p) has size <= t.\n");
  return 0;
}
