// The lower-bound proofs of Theorems 1 and 2 as runnable attacks.
//
//   ./lower_bound_attack [n] [t]
//
// Part 1 (Theorem 1): a protocol that lets one processor exchange
// signatures with only t others is split from the rest by a two-faced
// coalition — the observer decides 0 while everyone else decides 1.
// Part 2 (Theorem 2): the ignore-first-ceil(t/2) coalition B demonstrates
// why correct algorithms are forced to send every suspect processor at
// least ceil(1+t/2) messages.
#include <cstdio>
#include <cstdlib>

#include "ba/registry.h"
#include "bounds/formulas.h"
#include "bounds/theorem1.h"
#include "bounds/theorem2.h"

using namespace dr;

int main(int argc, char** argv) {
  const std::size_t t = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  const std::size_t n =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2 * t + 5;

  std::printf("=== Theorem 1: the two-faced coalition attack ===\n\n");
  std::printf("The 'sparse observer' protocol runs Dolev-Strong among "
              "processors 0..%zu,\nbut processor %zu only listens to t=%zu "
              "reporters. Its signature partner set\nA(p) therefore has "
              "size <= t — exactly what Theorem 1 forbids.\n\n",
              n - 2, n - 1, t);

  const auto attack = bounds::run_theorem1_attack(n, t, /*seed=*/1);
  std::printf("|A(observer)| across both reference histories: %zu "
              "(<= t = %zu)\n", attack.partner_set_size, t);
  std::printf("After the coalition shows the observer the value-0 world "
              "and everyone else\nthe value-1 world:\n");
  std::printf("  observer decided:            %lld\n",
              attack.observer_decision
                  ? static_cast<long long>(*attack.observer_decision)
                  : -1);
  std::printf("  every other correct decided: %lld\n",
              attack.others_decision
                  ? static_cast<long long>(*attack.others_decision)
                  : -1);
  std::printf("  Byzantine Agreement violated: %s\n\n",
              attack.agreement_violated ? "YES (as the proof predicts)"
                                        : "no (unexpected!)");
  std::printf("Hence any correct authenticated algorithm must make every "
              "processor exchange\nsignatures with >= t+1 others, giving "
              "the Omega(nt) bound: n(t+1)/4 = %.1f here.\n\n",
              bounds::theorem1_signature_lower_bound(n, t));

  std::printf("=== Theorem 2: the message-starving coalition B ===\n\n");
  for (const char* name : {"dolev-strong", "alg1"}) {
    const ba::Protocol& protocol = *ba::find_protocol(name);
    ba::BAConfig config{n, t, 0, 1};
    if (std::string(name) == "alg1") config.n = 2 * t + 1;
    if (!protocol.supports(config)) continue;
    const auto probe = bounds::run_theorem2_probe(protocol, config, 1);
    std::printf("%s (n=%zu): B = {", name, config.n);
    for (ba::ProcId b : probe.b_members) std::printf(" %u", b);
    std::printf(" } ignores its first ceil(t/2) messages.\n");
    std::printf("  agreement still holds: %s, validity: %s\n",
                probe.agreement ? "yes" : "NO",
                probe.validity ? "yes" : "NO");
    std::printf("  min messages a B-member was sent: %zu (theorem's bound: "
                ">= %zu)\n",
                probe.min_received_by_b, probe.per_member_bound);
    std::printf("  total messages by correct: %zu (>= max{(n-1)/2, "
                "(1+t/2)^2} = %.1f)\n\n",
                probe.messages_sent_by_correct,
                bounds::theorem2_message_lower_bound(config.n, t));
  }
  std::printf("And the history swap itself, on a protocol thrifty enough "
              "to be attackable:\n");
  const auto swap = bounds::run_theorem2_attack(n, t, 1);
  std::printf("  one-shot broadcast, transmitter withholds processor "
              "%zu's message:\n", n - 1);
  std::printf("  starved processor decided %lld, everyone else %lld — "
              "agreement %s.\n",
              swap.starved_decision
                  ? static_cast<long long>(*swap.starved_decision)
                  : -1,
              swap.others_decision
                  ? static_cast<long long>(*swap.others_decision)
                  : -1,
              swap.agreement_violated ? "VIOLATED (as the proof predicts)"
                                      : "held (unexpected!)");
  std::printf("\nA correct algorithm escapes only by sending every "
              "suspect processor enough\nmessages — hence Omega(n + t^2) "
              "messages in total.\n");
  return 0;
}
