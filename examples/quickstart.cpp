// Quickstart: run Byzantine Agreement among 7 processors with 2 Byzantine
// ones — one equivocating transmitter and one silent processor — using the
// authenticated Dolev-Strong baseline, then the paper's Algorithm 1.
//
//   ./quickstart [n] [t]
//
// Shows the three things the library gives you: protocol selection by name,
// adversary injection, and information-exchange accounting.
#include <cstdio>
#include <cstdlib>
#include <set>

#include "adversary/strategies.h"
#include "ba/registry.h"
#include "bounds/formulas.h"

using namespace dr;

namespace {

void report(const char* label, const sim::RunResult& result,
            ba::ProcId transmitter, ba::Value sent) {
  const auto check =
      sim::check_byzantine_agreement(result, transmitter, sent);
  std::printf("\n--- %s ---\n", label);
  std::printf("decisions: ");
  for (std::size_t p = 0; p < result.decisions.size(); ++p) {
    if (result.faulty[p]) {
      std::printf("[%zu:faulty] ", p);
    } else if (result.decisions[p].has_value()) {
      std::printf("[%zu:%llu] ", p,
                  static_cast<unsigned long long>(*result.decisions[p]));
    } else {
      std::printf("[%zu:?] ", p);
    }
  }
  std::printf("\nagreement: %s   validity: %s\n",
              check.agreement ? "yes" : "NO",
              check.validity ? "yes" : "NO");
  std::printf("messages sent by correct processors:   %zu\n",
              result.metrics.messages_by_correct());
  std::printf("signatures sent by correct processors: %zu\n",
              result.metrics.signatures_by_correct());
  std::printf("last phase with traffic:               %u\n",
              result.metrics.last_active_phase());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t t = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const std::size_t n =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2 * t + 3;
  if (n < 2 * t + 1) {
    std::fprintf(stderr, "need n >= 2t+1 (got n=%zu, t=%zu)\n", n, t);
    return 1;
  }

  std::printf("Byzantine Agreement playground: n=%zu processors, up to "
              "t=%zu faults\n", n, t);

  // 1. Failure-free run: the transmitter (processor 0) sends value 1.
  const ba::Protocol& ds = *ba::find_protocol("dolev-strong");
  const ba::BAConfig config{n, t, /*transmitter=*/0, /*value=*/1};
  report("Dolev-Strong, failure-free, value 1",
         ba::run_scenario(ds, config, /*seed=*/1), 0, 1);

  // 2. An equivocating transmitter (says 1 to odd ids, 0 to even ids) plus
  // a silent co-conspirator. Correct processors must still agree with each
  // other — on which value is up to the algorithm.
  std::set<ba::ProcId> ones;
  for (ba::ProcId q = 1; q < n; q += 2) ones.insert(q);
  std::vector<ba::ScenarioFault> faults;
  faults.push_back(ba::ScenarioFault{
      0, [ones](ba::ProcId, const ba::BAConfig& c) {
        return std::make_unique<adversary::EquivocatingTransmitter>(ones,
                                                                    c.n);
      }});
  if (t >= 2) {
    faults.push_back(ba::ScenarioFault{
        static_cast<ba::ProcId>(n - 1), [](ba::ProcId, const ba::BAConfig&) {
          return std::make_unique<adversary::SilentProcess>();
        }});
  }
  report("Dolev-Strong, equivocating transmitter + silent processor",
         ba::run_scenario(ds, config, 1, faults), 0, 1);

  // 3. The paper's Algorithm 1 at its native configuration n = 2t+1,
  // hitting exactly its 2t^2+2t message bound.
  const ba::BAConfig tight{2 * t + 1, t, 0, 1};
  const auto result =
      ba::run_scenario(*ba::find_protocol("alg1"), tight, 1);
  report("Algorithm 1 (n = 2t+1), failure-free, value 1", result, 0, 1);
  std::printf("Theorem 3 bound: %zu messages\n",
              dr::bounds::alg1_message_upper_bound(t));
  return 0;
}
