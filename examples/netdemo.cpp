// Byzantine Agreement over a real network stack: each processor on its own
// thread, talking framed messages over TCP loopback (or the in-process
// channel transport), with the phase synchronizer recovering the paper's
// lock-step rounds.
//
// Usage:
//   ./netdemo [--backend tcp|inprocess] [--seed S]
//
// Runs Dolev-Strong (n=7, t=2), Algorithm 2 (n=9, t=4) and Algorithm 5
// (n=9, t=4, s=2) — fault-free and with t scripted Byzantine processors —
// and checks agreement, validity and the paper's closed-form message
// budgets (Theorems 3-5) against what actually crossed the wire. A final
// crash-tolerance run kills one endpoint mid-protocol (on tcp its sockets
// really die) and checks that the survivors demote it to omission-faulty
// and still decide. Exits 1 on any violation.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adversary/strategies.h"
#include "net/harness.h"
#include "sim/chaos.h"

using namespace dr;

namespace {

struct Job {
  std::string name;  // chaos-resolvable, so budgets_for() finds the bound
  ba::BAConfig config;
};

ba::ScenarioFault silent(ba::ProcId id) {
  return ba::ScenarioFault{id, [](ba::ProcId, const ba::BAConfig&) {
                             return std::make_unique<
                                 adversary::SilentProcess>();
                           }};
}

ba::ScenarioFault random_byzantine(ba::ProcId id, std::uint64_t seed) {
  return ba::ScenarioFault{
      id, [seed](ba::ProcId p, const ba::BAConfig&) {
        return std::make_unique<adversary::RandomByzantine>(seed ^ p, 0.3);
      }};
}

bool run_job(const Job& job, net::Backend backend, std::uint64_t seed,
             bool with_faults) {
  const std::optional<ba::Protocol> protocol =
      chaos::resolve_protocol(job.name);
  if (!protocol.has_value() || !protocol->supports(job.config)) {
    std::fprintf(stderr, "%s: unsupported configuration\n", job.name.c_str());
    return false;
  }
  std::vector<ba::ScenarioFault> faults;
  if (with_faults && job.config.t >= 1) {
    faults.push_back(silent(1));
    if (job.config.t >= 2) faults.push_back(random_byzantine(2, seed));
  }
  net::NetScenarioOptions options;
  options.seed = seed;
  const net::NetRunResult result =
      net::run_scenario(*protocol, job.config, backend, options, faults);

  const sim::AgreementCheck check = sim::check_byzantine_agreement(
      result.run, job.config.transmitter, job.config.value);
  const chaos::Budgets budgets = chaos::budgets_for(job.name, job.config);
  const std::size_t messages = result.run.metrics.messages_by_correct();
  const bool within_budget =
      !budgets.messages.has_value() ||
      static_cast<double>(messages) <= *budgets.messages;

  char budget_text[32] = "-";
  if (budgets.messages.has_value()) {
    std::snprintf(budget_text, sizeof budget_text, "%.0f",
                  *budgets.messages);
  }
  std::printf(
      "%-14s n=%zu t=%zu %-9s | %-5s | msgs %6zu / %-7s sigs %6zu | "
      "frames %6zu wire %8zu B | %s%s\n",
      job.name.c_str(), job.config.n, job.config.t,
      with_faults ? "byzantine" : "fault-free",
      check.agreement && check.validity ? "AGREE" : "FAIL",
      messages, budget_text, result.run.metrics.signatures_by_correct(),
      result.run.metrics.frames_sent(),
      result.run.metrics.wire_bytes_by_correct(),
      within_budget ? "within budget" : "OVER BUDGET",
      result.sync.omission_faulty.empty() ? "" : " (stragglers!)");

  return check.agreement && check.validity && within_budget &&
         result.sync.omission_faulty.empty() &&
         result.sync.frames.rejected() == 0;
}

bool run_churn_job(net::Backend backend, std::uint64_t seed) {
  // Crash tolerance: processor 6 is killed after phase 1 — on the tcp
  // backend its sockets really die mid-run. The survivors charge it to
  // the omission-faulty set (against the same budget t) and still reach
  // a correct decision; the run-level watchdog guarantees this prints a
  // structured verdict even if the recovery path wedges.
  const Job job{"dolev-strong", {7, 2, 0, 1}};
  const std::optional<ba::Protocol> protocol =
      chaos::resolve_protocol(job.name);
  if (!protocol.has_value()) return false;
  net::NetScenarioOptions options;
  options.seed = seed;
  options.reconnect_window = std::chrono::milliseconds(250);
  options.run_deadline = std::chrono::seconds(30);
  options.churn.push_back(sim::ChurnRule{sim::ChurnKind::kKill, 6, 1, 0});
  const net::NetRunResult result =
      net::run_scenario(*protocol, job.config, backend, options);

  bool agree = !result.watchdog_fired;
  for (std::size_t p = 0; p + 1 < job.config.n; ++p) {
    agree = agree && result.run.decisions[p] == job.config.value;
  }
  bool demoted = !result.sync.omission_faulty.empty();
  for (ba::ProcId q : result.sync.omission_faulty) {
    demoted = demoted && q == 6;
  }
  std::printf(
      "%-14s n=%zu t=%zu kill p6@1  | %-5s | disconnects %zu "
      "reconnect-attempts %zu | omission-faulty %s\n",
      job.name.c_str(), job.config.n, job.config.t,
      agree && demoted ? "AGREE" : "FAIL", result.sync.link.disconnects,
      result.sync.link.reconnect_attempts, demoted ? "{6}" : "wrong");
  return agree && demoted;
}

}  // namespace

int main(int argc, char** argv) {
  net::Backend backend = net::Backend::kTcpLoopback;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      if (!net::backend_from_string(argv[++i], backend)) {
        std::fprintf(stderr, "unknown backend (tcp | inprocess)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: netdemo [--backend tcp|inprocess] "
                           "[--seed S]\n");
      return 2;
    }
  }

  std::printf("Byzantine Agreement over the %s transport "
              "(threaded endpoints, framed wire protocol)\n\n",
              net::to_string(backend));
  const std::vector<Job> jobs = {
      {"dolev-strong", {7, 2, 0, 1}},
      {"alg2", {9, 4, 0, 1}},
      {"alg5[s=2]", {9, 4, 0, 1}},
  };
  bool ok = true;
  for (const Job& job : jobs) {
    ok = run_job(job, backend, seed, /*with_faults=*/false) && ok;
    ok = run_job(job, backend, seed, /*with_faults=*/true) && ok;
  }
  ok = run_churn_job(backend, seed) && ok;
  std::printf("\n%s\n", ok ? "all runs agreed within the paper's budgets."
                           : "VIOLATIONS FOUND");
  return ok ? 0 : 1;
}
