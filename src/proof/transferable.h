// Transferable proof objects — Algorithm 2's defining artifact made
// first-class. A proof::Transferable wraps the decision-time evidence a
// protocol instance retained (ba/evidence.h) with the *realm* parameters a
// third party needs to verify it with zero protocol context: the scheme
// kind, the key-derivation seed, and the (n, t, transmitter) the run was
// configured with. Keys derive deterministically from the seed
// (sim::make_signature_scheme), so "offline" verification means rebuilding
// the public Verifier from the realm and re-checking every chain link —
// the paper's Section 5 claim that a possession proof convinces anyone,
// executed literally.
//
// Identity is content-addressed: digest() is a domain-separated SHA-256
// over the canonical wire encoding, so two proofs are the same proof iff
// their bytes are the same — the key of the proven-value store and the
// equality the differential parity test asserts across backends.
#pragma once

#include <memory>
#include <optional>

#include "ba/evidence.h"
#include "crypto/scheme.h"
#include "crypto/verify_cache.h"
#include "sim/runner.h"

namespace dr::proof {

using ba::Value;
using sim::ProcId;

/// Current (and only) wire version. decode_transferable rejects anything
/// else, so the version byte both gates format evolution and poisons
/// single-bit flips of itself (0x01 -> any other value fails decoding).
inline constexpr std::uint8_t kProofVersion = 1;

/// The run parameters that fix the verification context. Two runs agree on
/// every signature key iff their realms are equal — which is why replaying
/// a proof across realms fails even before the MACs do: verify() requires
/// the proof's embedded realm to equal the realm the verifier expects.
struct Realm {
  sim::SchemeKind scheme = sim::SchemeKind::kHmac;
  std::uint64_t n = 0;
  std::uint64_t t = 0;
  ProcId transmitter = 0;
  std::uint64_t seed = 1;
  std::uint64_t merkle_height = 6;

  friend bool operator==(const Realm&, const Realm&) = default;
};

/// Realm of a sim/net run configuration (the daemon builds its realms from
/// SubmitRequest fields the same way).
Realm realm_of(const sim::RunConfig& config);

/// Stable 64-bit key for realm-scoped tables (proof::Store buckets,
/// StripedVerifyCache sessions): SHA-256 over the encoded realm, first 8
/// bytes little-endian.
std::uint64_t realm_key(const Realm& realm);

struct Transferable {
  Realm realm;
  /// The processor whose decision this proof certifies. Load-bearing for
  /// kPossession (Theorem 4 counts signatures of processors *other* than
  /// the holder) and kExtraction (the chain must end with the holder's
  /// signature).
  ProcId holder = 0;
  ba::Evidence evidence;

  Value value() const { return evidence.sv.value; }

  friend bool operator==(const Transferable&, const Transferable&) = default;
};

/// Canonical wire encoding: version byte, realm fields, holder, evidence
/// blob — all through the codec's varints. Deterministic; digest() covers
/// exactly these bytes.
Bytes encode_transferable(const Transferable& p);
std::optional<Transferable> decode_transferable(ByteView data);

/// Content address: domain-separated SHA-256 of encode_transferable(p).
crypto::Digest digest(const Transferable& p);

/// Content address of already-encoded bytes: equals digest(p) whenever
/// `encoded` is p's canonical encoding (the only thing honest producers
/// emit). The store's light path keys on this, so answering a duplicate
/// costs one hash and one lookup — no decoding.
crypto::Digest digest_of_encoded(ByteView encoded);

/// Wraps a runner-collected evidence blob (sim::RunResult::evidence[p])
/// into a proof for holder `p` under `realm`. nullopt when the blob does
/// not decode.
std::optional<Transferable> from_evidence(const Realm& realm, ProcId holder,
                                          ByteView evidence_blob);

/// The offline verification context: the scheme rebuilt from the realm
/// (keys derive from realm.seed) and a Verifier over it. Self-contained —
/// this is all a third party needs.
class OfflineVerifier {
 public:
  explicit OfflineVerifier(const Realm& realm);

  const Realm& realm() const { return realm_; }
  const crypto::Verifier& verifier() const { return verifier_; }

 private:
  Realm realm_;
  std::unique_ptr<crypto::SignatureScheme> scheme_;
  crypto::Verifier verifier_;
};

/// Why a proof was rejected (kOk == accepted). Distinct codes so the
/// forgery battery can assert *that* a case fails, and the daemon can
/// report *why* in kVerifyResp.
enum class Verdict : std::uint8_t {
  kOk = 0,
  kWrongRealm = 1,      // embedded realm != the realm being verified against
  kMalformedChain = 2,  // structural rule of the kind violated
  kBelowThreshold = 3,  // too few qualifying signatures for the kind
  kBadSignature = 4,    // some chain link failed cryptographic verification
};

const char* to_string(Verdict v);

/// The number of distinct "active" signers a kValidMessage proof must
/// carry signatures from: ids below alpha_for(t) when the realm is large
/// enough for Algorithm 5's layout, ids below 2t+1 otherwise (the
/// Algorithm2Ext fallback) — the same selection make_algorithm5 performs,
/// derived purely from (n, t).
std::uint64_t active_bound(const Realm& realm);

/// Offline verification with zero protocol context. Checks, in order:
/// realm equality against `expected`; the kind's structural rule
/// (kPossession: >= t distinct signatures of processors other than the
/// holder; kExtraction: transmitter-rooted, holder-terminated, distinct
/// signers; kValidMessage: >= t+1 distinct active signers); then every
/// chain link cryptographically. With a non-null `cache`, chain links are
/// verified in one pass: cache probes answer warm links without hashing,
/// and every miss goes through a single crypto::verify_batch call (multi-
/// buffer SHA-256 lanes for the HMAC scheme) — so bulk verification of
/// overlapping chains hits SIMD lanes cold and pure lookups warm. Accepts
/// exactly the honest-run proofs and nothing else — see
/// tests/proof_forgery_test.
Verdict verify(const Transferable& p, const Realm& expected,
               const crypto::Verifier& verifier,
               crypto::VerifyCache* cache = nullptr);

/// verify() with the verifier rebuilt from p.realm — the fully offline
/// path (p.realm is also the expected realm; cross-realm replay is the
/// caller comparing digests/realms beforehand, or passing `expected`
/// explicitly via the overload above).
Verdict verify_offline(const Transferable& p, const OfflineVerifier& offline,
                       crypto::VerifyCache* cache = nullptr);

}  // namespace dr::proof
