#include "proof/transferable.h"

#include <algorithm>
#include <string_view>

#include "ba/tree.h"
#include "ba/valid_message.h"

namespace dr::proof {

namespace {

/// Domain tag for proof content addresses — disjoint from the chain
/// domain ("dr82.chain.v1"), so a proof digest can never collide with any
/// digest a signature covers.
constexpr std::string_view kProofDomain = "dr82.proof.v1";

ByteView view(const Bytes& b) { return ByteView{b.data(), b.size()}; }

/// Number of distinct ids in `ids` (consumes its argument).
std::size_t distinct_count(std::vector<ProcId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

void encode_realm(Writer& w, const Realm& realm) {
  w.u8(static_cast<std::uint8_t>(realm.scheme));
  w.u64(realm.n);
  w.u64(realm.t);
  w.u32(realm.transmitter);
  w.u64(realm.seed);
  w.u64(realm.merkle_height);
}

std::optional<Realm> decode_realm(Reader& r) {
  Realm realm;
  const std::uint8_t scheme = r.u8();
  realm.n = r.u64();
  realm.t = r.u64();
  realm.transmitter = r.u32();
  realm.seed = r.u64();
  realm.merkle_height = r.u64();
  if (!r.ok()) return std::nullopt;
  switch (static_cast<sim::SchemeKind>(scheme)) {
    case sim::SchemeKind::kHmac:
    case sim::SchemeKind::kMerkle:
    case sim::SchemeKind::kWots:
      break;
    default:
      return std::nullopt;
  }
  realm.scheme = static_cast<sim::SchemeKind>(scheme);
  return realm;
}

/// ba::verify_chain's cached walk with the planning pass folded in: probe
/// the cache per link, feed every miss through one crypto::verify_batch
/// call (multi-buffer SHA-256 lanes for the HMAC scheme), and accept iff
/// every miss verified. Soundness is the cache's: only triples that
/// passed full verification are ever inserted, so this accepts exactly
/// what ba::verify_chain's cached walk would — in a single pass, so a
/// fully warm chain costs one cache lookup per link and no hashing.
bool verify_chain_batched(const ba::SignedValue& sv,
                          const crypto::Verifier& verifier,
                          crypto::VerifyCache* cache) {
  const crypto::SignatureScheme* scheme = verifier.scheme();
  if (cache == nullptr || scheme == nullptr) {
    return ba::verify_chain(sv, verifier, cache);
  }
  if (sv.chain.empty()) return true;
  std::vector<crypto::VerifyRequest> requests;
  requests.reserve(sv.chain.size());
  crypto::Sha256 h;
  ba::detail::absorb_chain_head(h, sv.value);
  crypto::Digest covered = h.peek();
  std::size_t streamed = 0;
  for (std::size_t i = 0; i < sv.chain.size(); ++i) {
    const crypto::Signature& sig = sv.chain[i];
    // lookup, not probe: warm links must register as cache hits (the
    // daemon's dr82_proof_cache_* counters and the forgery suite's
    // warm-pass assertions both watch them).
    if (const auto extended =
            cache->lookup(sig.signer, covered, view(sig.sig))) {
      covered = *extended;
      continue;
    }
    while (streamed < i) {
      ba::detail::absorb_signature_raw(h, sv.chain[streamed].signer,
                                       view(sv.chain[streamed].sig));
      ++streamed;
    }
    ba::detail::absorb_signature_raw(h, sig.signer, view(sig.sig));
    streamed = i + 1;
    const crypto::Digest extended = h.peek();
    requests.push_back(
        crypto::VerifyRequest{sig.signer, view(sig.sig), covered, extended});
    covered = extended;
  }
  if (requests.empty()) return true;  // every link was a cache hit
  crypto::verify_batch(*scheme, cache, requests.data(), requests.size());
  for (const crypto::VerifyRequest& request : requests) {
    if (!request.ok) return false;
  }
  return true;
}

/// Structural rule of each kind — everything that can be checked without
/// touching a signature. Split from the crypto so verify() can report
/// kMalformedChain/kBelowThreshold vs kBadSignature distinctly.
Verdict check_structure(const Transferable& p) {
  const Realm& realm = p.realm;
  const ba::SignedValue& sv = p.evidence.sv;
  if (p.holder >= realm.n) return Verdict::kMalformedChain;
  for (const crypto::Signature& sig : sv.chain) {
    if (sig.signer >= realm.n) return Verdict::kMalformedChain;
  }
  switch (p.evidence.kind) {
    case ba::EvidenceKind::kPossession: {
      // Theorem 4: >= t signatures of distinct processors other than the
      // holder (the holder's own signature may appear but counts for
      // nothing).
      std::vector<ProcId> others;
      for (const auto& sig : sv.chain) {
        if (sig.signer != p.holder) others.push_back(sig.signer);
      }
      if (distinct_count(std::move(others)) < realm.t) {
        return Verdict::kBelowThreshold;
      }
      return Verdict::kOk;
    }
    case ba::EvidenceKind::kExtraction: {
      // A Dolev-Strong relay chain: rooted at the transmitter, ending with
      // the holder's own signature (length 1 forces holder == transmitter),
      // nobody signing twice.
      if (sv.chain.empty()) return Verdict::kMalformedChain;
      if (sv.chain.front().signer != realm.transmitter) {
        return Verdict::kMalformedChain;
      }
      if (sv.chain.back().signer != p.holder) return Verdict::kMalformedChain;
      if (!ba::distinct_signers(sv)) return Verdict::kMalformedChain;
      return Verdict::kOk;
    }
    case ba::EvidenceKind::kValidMessage: {
      // Section 6: >= t+1 signatures of distinct active processors.
      const std::uint64_t bound = active_bound(realm);
      std::vector<ProcId> active;
      for (const auto& sig : sv.chain) {
        if (sig.signer < bound) active.push_back(sig.signer);
      }
      if (distinct_count(std::move(active)) < realm.t + 1) {
        return Verdict::kBelowThreshold;
      }
      return Verdict::kOk;
    }
  }
  return Verdict::kMalformedChain;
}

}  // namespace

Realm realm_of(const sim::RunConfig& config) {
  return Realm{config.scheme,
               config.n,
               config.t,
               config.transmitter,
               config.seed,
               config.merkle_height};
}

std::uint64_t realm_key(const Realm& realm) {
  Writer w;
  encode_realm(w, realm);
  const crypto::Digest d = crypto::sha256(view(w.out()));
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    key |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  }
  return key;
}

Bytes encode_transferable(const Transferable& p) {
  Writer w;
  w.u8(kProofVersion);
  encode_realm(w, p.realm);
  w.u32(p.holder);
  const Bytes ev = ba::encode_evidence(p.evidence);
  w.bytes(ev);
  return std::move(w).take();
}

std::optional<Transferable> decode_transferable(ByteView data) {
  Reader r(data);
  if (r.u8() != kProofVersion) return std::nullopt;
  auto realm = decode_realm(r);
  if (!realm) return std::nullopt;
  Transferable p;
  p.realm = *realm;
  p.holder = r.u32();
  const Bytes ev_bytes = r.bytes();
  if (!r.done()) return std::nullopt;
  auto ev = ba::decode_evidence(ev_bytes);
  if (!ev) return std::nullopt;
  p.evidence = std::move(*ev);
  return p;
}

crypto::Digest digest(const Transferable& p) {
  const Bytes encoded = encode_transferable(p);
  return digest_of_encoded(view(encoded));
}

crypto::Digest digest_of_encoded(ByteView encoded) {
  crypto::Sha256 h;
  h.update(as_bytes(kProofDomain));
  h.update(encoded);
  return h.finish();
}

std::optional<Transferable> from_evidence(const Realm& realm, ProcId holder,
                                          ByteView evidence_blob) {
  auto ev = ba::decode_evidence(evidence_blob);
  if (!ev) return std::nullopt;
  return Transferable{realm, holder, std::move(*ev)};
}

OfflineVerifier::OfflineVerifier(const Realm& realm)
    : realm_(realm),
      scheme_(sim::make_signature_scheme(realm.scheme, realm.n, realm.seed,
                                         realm.merkle_height)),
      verifier_(scheme_.get()) {}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kWrongRealm:
      return "wrong-realm";
    case Verdict::kMalformedChain:
      return "malformed-chain";
    case Verdict::kBelowThreshold:
      return "below-threshold";
    case Verdict::kBadSignature:
      return "bad-signature";
  }
  return "unknown";
}

std::uint64_t active_bound(const Realm& realm) {
  const std::uint64_t alpha = ba::alpha_for(realm.t);
  return realm.n >= alpha ? alpha : 2 * realm.t + 1;
}

Verdict verify(const Transferable& p, const Realm& expected,
               const crypto::Verifier& verifier, crypto::VerifyCache* cache) {
  if (p.realm != expected) return Verdict::kWrongRealm;
  const Verdict structure = check_structure(p);
  if (structure != Verdict::kOk) return structure;
  if (!verify_chain_batched(p.evidence.sv, verifier, cache)) {
    return Verdict::kBadSignature;
  }
  return Verdict::kOk;
}

Verdict verify_offline(const Transferable& p, const OfflineVerifier& offline,
                       crypto::VerifyCache* cache) {
  return verify(p, offline.realm(), offline.verifier(), cache);
}

}  // namespace dr::proof
