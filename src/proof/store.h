// Persistent proven-value table — the EOSIO IBC bridge's proven-root table
// reshaped for agreement proofs. Entries are keyed by content digest
// (proof::digest), scoped to their instance realm, and aged out by an
// explicit sweep with tombstone accounting.
//
// Two access paths with very different costs:
//   * heavy (admit): decode + full offline verification (the realm's
//     verifier is rebuilt once and memoised per realm key) + insert. The
//     only way anything enters the table.
//   * light (contains/get/proven): a pure digest/realm map lookup — no
//     decoding, no hashing, no signature checks. Sound because admit
//     verified the bytes whose digest is the key.
//
// Time is an explicit uint64 milliseconds tick supplied by the caller (the
// daemon passes its reactor clock; tests pass constants), so expiry
// semantics are exactly testable. All operations lock one internal mutex —
// the store is shared between the daemon's verify path and its GC timer.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "proof/transferable.h"

namespace dr::proof {

class Store {
 public:
  struct Options {
    /// Entry lifetime; 0 = entries never expire. Measured from the
    /// `now_ms` the entry was admitted at.
    std::uint64_t ttl_ms = 0;
  };

  struct Stats {
    std::uint64_t entries = 0;       // live entries right now
    std::uint64_t light_hits = 0;    // contains/get/proven answered yes
    std::uint64_t admitted = 0;      // heavy-path verifications that passed
    std::uint64_t rejected = 0;      // heavy-path verifications that failed
    std::uint64_t duplicate = 0;     // admits of an already-live digest
    std::uint64_t sweeps = 0;        // sweep() calls
    std::uint64_t tombstones = 0;    // entries evicted by sweeps, ever
  };

  Store() = default;
  explicit Store(const Options& options) : options_(options) {}

  /// Heavy path: decode `proof_bytes`, verify fully offline against the
  /// proof's own realm (the verifier is built once per realm and reused),
  /// and insert under its content digest on success. `cache` (optional)
  /// carries signature-verification memos across admits — the daemon
  /// passes a realm-scoped session of its striped cache. Admitting a
  /// digest that is already live verifies nothing and counts `duplicate`.
  Verdict admit(ByteView proof_bytes, std::uint64_t now_ms,
                crypto::VerifyCache* cache = nullptr);

  /// Light path: digest lookup only. Never hashes, never verifies.
  bool contains(const crypto::Digest& digest) const;
  std::optional<Transferable> get(const crypto::Digest& digest) const;

  /// Realm-scoped proven-value query: true iff some live entry of exactly
  /// this realm proves `value`. A proof admitted under another realm —
  /// same value, same digest algorithm, different seed/n/t — is invisible
  /// here; that is the isolation the replay battery checks.
  bool proven(const Realm& realm, Value value) const;

  /// Digests of the live entries of one realm, insertion-ordered.
  std::vector<crypto::Digest> digests_in(const Realm& realm) const;

  /// Evicts exactly the entries whose admit-time + ttl <= now (no-op when
  /// ttl is 0). Returns how many were evicted; each counts a tombstone.
  std::size_t sweep(std::uint64_t now_ms);

  /// Serialises the live table (admit timestamps included) to `path` /
  /// re-admits every record through the heavy path. load() returns the
  /// number of entries admitted; records that fail verification are
  /// dropped (counted `rejected`), which makes a tampered store file
  /// harmless.
  bool save(const std::string& path) const;
  std::size_t load(const std::string& path, crypto::VerifyCache* cache = nullptr);

  Stats stats() const;

 private:
  struct Entry {
    Bytes bytes;           // canonical encoding (digest preimage)
    Transferable proof;    // decoded once at admit
    std::uint64_t realm = 0;
    std::uint64_t admitted_ms = 0;
    std::uint64_t order = 0;  // insertion order, for digests_in
  };

  struct DigestKey {
    crypto::Digest d{};
    friend bool operator==(const DigestKey&, const DigestKey&) = default;
  };
  struct DigestKeyHash {
    std::size_t operator()(const DigestKey& key) const;
  };

  const OfflineVerifier& verifier_for(const Realm& realm);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<DigestKey, Entry, DigestKeyHash> entries_;
  /// Memoised per-realm verification contexts (key derivation is O(n)).
  std::unordered_map<std::uint64_t, std::unique_ptr<OfflineVerifier>>
      verifiers_;
  std::uint64_t next_order_ = 0;
  mutable Stats stats_;
};

}  // namespace dr::proof
