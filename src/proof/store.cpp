#include "proof/store.h"

#include <algorithm>
#include <fstream>

namespace dr::proof {

std::size_t Store::DigestKeyHash::operator()(const DigestKey& key) const {
  // The digest is already uniform; fold the first 8 bytes.
  std::size_t h = 0;
  for (std::size_t i = 0; i < 8 && i < key.d.size(); ++i) {
    h |= static_cast<std::size_t>(key.d[i]) << (8 * i);
  }
  return h;
}

const OfflineVerifier& Store::verifier_for(const Realm& realm) {
  const std::uint64_t key = realm_key(realm);
  auto it = verifiers_.find(key);
  if (it == verifiers_.end()) {
    it = verifiers_.emplace(key, std::make_unique<OfflineVerifier>(realm))
             .first;
  }
  return *it->second;
}

Verdict Store::admit(ByteView proof_bytes, std::uint64_t now_ms,
                     crypto::VerifyCache* cache) {
  // Light path: entries are keyed by the content address of their
  // canonical encoding, and honest producers only ever emit canonical
  // encodings — so a resubmission is answered by hashing the raw bytes
  // and probing the table, without decoding a single field. (Equal
  // SHA-256 means equal bytes, and those bytes were verified when the
  // entry was admitted.)
  {
    const crypto::Digest raw = digest_of_encoded(proof_bytes);
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.contains(DigestKey{raw})) {
      ++stats_.duplicate;
      return Verdict::kOk;
    }
  }
  auto decoded = decode_transferable(proof_bytes);
  if (!decoded) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return Verdict::kMalformedChain;
  }
  const crypto::Digest d = digest(*decoded);

  std::lock_guard<std::mutex> lock(mu_);
  // Re-checked under the same lock that inserts: a non-canonical
  // resubmission (raw digest differs from the canonical key) and a racing
  // admit of the same new proof both land here.
  if (entries_.contains(DigestKey{d})) {
    ++stats_.duplicate;
    return Verdict::kOk;
  }
  const Verdict verdict =
      verify_offline(*decoded, verifier_for(decoded->realm), cache);
  if (verdict != Verdict::kOk) {
    ++stats_.rejected;
    return verdict;
  }
  Entry entry;
  // Store the canonical re-encoding, not the caller's bytes: the digest is
  // computed over the canonical form, so stored bytes and key always match.
  entry.bytes = encode_transferable(*decoded);
  entry.realm = realm_key(decoded->realm);
  entry.proof = std::move(*decoded);
  entry.admitted_ms = now_ms;
  entry.order = next_order_++;
  entries_.emplace(DigestKey{d}, std::move(entry));
  ++stats_.admitted;
  return Verdict::kOk;
}

bool Store::contains(const crypto::Digest& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  const bool hit = entries_.contains(DigestKey{digest});
  if (hit) ++stats_.light_hits;
  return hit;
}

std::optional<Transferable> Store::get(const crypto::Digest& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(DigestKey{digest});
  if (it == entries_.end()) return std::nullopt;
  ++stats_.light_hits;
  return it->second.proof;
}

bool Store::proven(const Realm& realm, Value value) const {
  const std::uint64_t key = realm_key(realm);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [_, entry] : entries_) {
    if (entry.realm == key && entry.proof.value() == value) {
      ++stats_.light_hits;
      return true;
    }
  }
  return false;
}

std::vector<crypto::Digest> Store::digests_in(const Realm& realm) const {
  const std::uint64_t key = realm_key(realm);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::uint64_t, crypto::Digest>> ordered;
  for (const auto& [dk, entry] : entries_) {
    if (entry.realm == key) ordered.emplace_back(entry.order, dk.d);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<crypto::Digest> out;
  out.reserve(ordered.size());
  for (auto& [_, d] : ordered) out.push_back(d);
  return out;
}

std::size_t Store::sweep(std::uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sweeps;
  if (options_.ttl_ms == 0) return 0;
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.admitted_ms + options_.ttl_ms <= now_ms) {
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  stats_.tombstones += evicted;
  return evicted;
}

bool Store::save(const std::string& path) const {
  Writer w;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const Entry*> ordered;
    ordered.reserve(entries_.size());
    for (const auto& [_, entry] : entries_) ordered.push_back(&entry);
    std::sort(ordered.begin(), ordered.end(),
              [](const Entry* a, const Entry* b) { return a->order < b->order; });
    w.seq(ordered.size());
    for (const Entry* entry : ordered) {
      w.u64(entry->admitted_ms);
      w.bytes(ByteView{entry->bytes.data(), entry->bytes.size()});
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(w.out().data()),
            static_cast<std::streamsize>(w.out().size()));
  return static_cast<bool>(out);
}

std::size_t Store::load(const std::string& path, crypto::VerifyCache* cache) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  Reader r(ByteView{data.data(), data.size()});
  const std::size_t count = r.seq();
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t at = r.u64();
    const Bytes bytes = r.bytes();
    if (!r.ok()) break;
    if (admit(ByteView{bytes.data(), bytes.size()}, at, cache) ==
        Verdict::kOk) {
      ++admitted;
    }
  }
  return admitted;
}

Store::Stats Store::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace dr::proof
