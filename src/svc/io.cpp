#include "svc/io.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace dr::svc {

std::optional<Bytes> read_message(int fd, net::FrameChunker& chunker,
                                  std::deque<Bytes>& ready,
                                  net::SockClock::time_point deadline) {
  std::size_t poisoned = 0;
  while (true) {
    if (!ready.empty()) {
      Bytes body = std::move(ready.front());
      ready.pop_front();
      return body;
    }
    if (chunker.poisoned()) return std::nullopt;

    pollfd pfd{fd, POLLIN, 0};
    const int rc = poll(&pfd, 1, net::remaining_ms(deadline));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return std::nullopt;  // deadline or poll failure

    std::uint8_t buf[64 * 1024];
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got == 0) return std::nullopt;  // peer closed
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return std::nullopt;
    }
    bool bad = false;
    chunker.feed(
        ByteView(buf, static_cast<std::size_t>(got)),
        [&](net::ChunkStatus status, ByteView body) {
          if (status == net::ChunkStatus::kBody) {
            ready.emplace_back(body.begin(), body.end());
          } else {
            // Corruption between trusted daemon components: treat the
            // connection as broken rather than resyncing past it.
            bad = true;
          }
        },
        poisoned);
    if (bad) return std::nullopt;
  }
}

bool write_all(int fd, ByteView bytes, net::SockClock::time_point deadline) {
  net::LinkHealth scratch;
  return !net::write_with_deadline(fd, 0, bytes.data(), bytes.size(),
                                   deadline, scratch)
              .has_value();
}

}  // namespace dr::svc
