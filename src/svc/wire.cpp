#include "svc/wire.h"

#include <bit>
#include <utility>

#include "codec/crc32.h"
#include "net/frame.h"

namespace dr::svc {

namespace {

// A decoded sequence length is already bounded by Reader::seq's
// remaining-bytes guard; these helpers just keep the call sites short.

void encode_proc_list(Writer& w, const std::vector<ProcId>& v) {
  w.seq(v.size());
  for (const ProcId p : v) w.u32(p);
}

std::vector<ProcId> decode_proc_list(Reader& r) {
  const std::size_t len = r.seq();
  std::vector<ProcId> out;
  if (!r.ok()) return out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(r.u32());
  return out;
}

void encode_sync(Writer& w, const net::SyncStats& s) {
  w.u64(s.frames.accepted);
  w.u64(s.frames.bad_version);
  w.u64(s.frames.bad_crc);
  w.u64(s.frames.bad_structure);
  w.u64(s.frames.oversized);
  w.u64(s.frames.spoofed_from);
  w.u64(s.frames.misrouted);
  w.u64(s.frames.poisoned_bytes);
  w.u64(s.link.disconnects);
  w.u64(s.link.reconnect_attempts);
  w.u64(s.link.reconnects);
  w.u64(s.link.send_retries);
  w.u64(s.link.send_timeouts);
  w.u64(s.stragglers);
  w.u64(s.stale_frames);
  w.u64(s.disconnects);
  w.u64(s.reconnected_peers);
  w.u64(s.truncated_frames);
  w.u64(s.send_errors);
  w.u64(s.poisoned_links);
  encode_proc_list(w, s.omission_faulty);
}

net::SyncStats decode_sync(Reader& r) {
  net::SyncStats s;
  s.frames.accepted = static_cast<std::size_t>(r.u64());
  s.frames.bad_version = static_cast<std::size_t>(r.u64());
  s.frames.bad_crc = static_cast<std::size_t>(r.u64());
  s.frames.bad_structure = static_cast<std::size_t>(r.u64());
  s.frames.oversized = static_cast<std::size_t>(r.u64());
  s.frames.spoofed_from = static_cast<std::size_t>(r.u64());
  s.frames.misrouted = static_cast<std::size_t>(r.u64());
  s.frames.poisoned_bytes = static_cast<std::size_t>(r.u64());
  s.link.disconnects = static_cast<std::size_t>(r.u64());
  s.link.reconnect_attempts = static_cast<std::size_t>(r.u64());
  s.link.reconnects = static_cast<std::size_t>(r.u64());
  s.link.send_retries = static_cast<std::size_t>(r.u64());
  s.link.send_timeouts = static_cast<std::size_t>(r.u64());
  s.stragglers = static_cast<std::size_t>(r.u64());
  s.stale_frames = static_cast<std::size_t>(r.u64());
  s.disconnects = static_cast<std::size_t>(r.u64());
  s.reconnected_peers = static_cast<std::size_t>(r.u64());
  s.truncated_frames = static_cast<std::size_t>(r.u64());
  s.send_errors = static_cast<std::size_t>(r.u64());
  s.poisoned_links = static_cast<std::size_t>(r.u64());
  s.omission_faulty = decode_proc_list(r);
  return s;
}

void encode_request_fields(Writer& w, const SubmitRequest& req) {
  w.str(req.protocol);
  w.u64(req.config.n);
  w.u64(req.config.t);
  w.u32(req.config.transmitter);
  w.u64(req.config.value);
  w.u64(req.seed);
  w.u64(req.plan_seed);
  w.seq(req.scripted.size());
  for (const chaos::ScriptedFault& f : req.scripted) {
    w.u8(static_cast<std::uint8_t>(f.kind));
    w.u32(f.id);
    w.u32(f.crash_phase);
    w.u64(f.seed);
    // Doubles travel as their bit pattern: exact round-trip, no locale or
    // formatting dependence — the daemon must replay a kChaos fault with
    // the precise probability the client specified.
    w.u64(std::bit_cast<std::uint64_t>(f.send_prob));
    w.u32(f.delay);
    w.u64(f.ones_mask);
  }
  w.seq(req.rules.size());
  for (const sim::FaultRule& rule : req.rules) {
    w.u8(static_cast<std::uint8_t>(rule.kind));
    w.u32(rule.from);
    w.u32(rule.to);
    w.u32(rule.phase);
  }
}

}  // namespace

void write_header(Writer& w, MsgType type, std::uint64_t id) {
  w.u8(kSvcVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(id);
}

Bytes seal_body(ByteView body) {
  Bytes out;
  out.reserve(4 + body.size() + 4);
  put_u32le(out, static_cast<std::uint32_t>(body.size() + 4));
  append(out, body);
  put_u32le(out, crc32(body));
  return out;
}

std::optional<MsgHeader> read_header(Reader& r) {
  const std::uint8_t version = r.u8();
  const std::uint8_t type = r.u8();
  const std::uint64_t id = r.u64();
  if (!r.ok() || version != kSvcVersion ||
      type > static_cast<std::uint8_t>(MsgType::kVerifyResp)) {
    return std::nullopt;
  }
  return MsgHeader{static_cast<MsgType>(type), id};
}

Bytes encode_hello(const Hello& hello) {
  Writer w;
  write_header(w, MsgType::kHello, 0);
  w.u8(static_cast<std::uint8_t>(hello.role));
  w.u32(hello.proc);
  w.str(hello.mesh_addr);
  return seal_body(w.out());
}

std::optional<Hello> decode_hello(Reader& r) {
  Hello hello;
  const std::uint8_t role = r.u8();
  hello.proc = r.u32();
  hello.mesh_addr = r.str();
  if (!r.done() || role > static_cast<std::uint8_t>(Role::kMeshPeer)) {
    return std::nullopt;
  }
  hello.role = static_cast<Role>(role);
  return hello;
}

Bytes encode_peers(const Peers& peers) {
  Writer w;
  write_header(w, MsgType::kPeers, 0);
  w.seq(peers.addrs.size());
  for (const std::string& addr : peers.addrs) w.str(addr);
  return seal_body(w.out());
}

std::optional<Peers> decode_peers(Reader& r) {
  Peers peers;
  const std::size_t len = r.seq();
  for (std::size_t i = 0; r.ok() && i < len; ++i) {
    peers.addrs.push_back(r.str());
  }
  if (!r.done()) return std::nullopt;
  return peers;
}

Bytes encode_ready(ProcId p) {
  Writer w;
  write_header(w, MsgType::kReady, p);
  return seal_body(w.out());
}

Bytes encode_submit(std::uint64_t req_id, const SubmitRequest& req) {
  Writer w;
  write_header(w, MsgType::kSubmit, req_id);
  encode_request_fields(w, req);
  return seal_body(w.out());
}

Bytes encode_start(std::uint64_t instance, const SubmitRequest& req) {
  Writer w;
  write_header(w, MsgType::kStart, instance);
  encode_request_fields(w, req);
  return seal_body(w.out());
}

std::optional<SubmitRequest> decode_submit(Reader& r) {
  SubmitRequest req;
  req.protocol = r.str();
  req.config.n = static_cast<std::size_t>(r.u64());
  req.config.t = static_cast<std::size_t>(r.u64());
  req.config.transmitter = r.u32();
  req.config.value = r.u64();
  req.seed = r.u64();
  req.plan_seed = r.u64();
  const std::size_t scripted = r.seq();
  for (std::size_t i = 0; r.ok() && i < scripted; ++i) {
    chaos::ScriptedFault f;
    const std::uint8_t kind = r.u8();
    f.id = r.u32();
    f.crash_phase = r.u32();
    f.seed = r.u64();
    f.send_prob = std::bit_cast<double>(r.u64());
    f.delay = r.u32();
    f.ones_mask = r.u64();
    if (kind > static_cast<std::uint8_t>(chaos::ScriptedKind::kEquivocate)) {
      return std::nullopt;
    }
    f.kind = static_cast<chaos::ScriptedKind>(kind);
    req.scripted.push_back(f);
  }
  const std::size_t rules = r.seq();
  for (std::size_t i = 0; r.ok() && i < rules; ++i) {
    sim::FaultRule rule;
    const std::uint8_t kind = r.u8();
    rule.from = r.u32();
    rule.to = r.u32();
    rule.phase = r.u32();
    if (kind > static_cast<std::uint8_t>(sim::FaultKind::kOmitReceive)) {
      return std::nullopt;
    }
    rule.kind = static_cast<sim::FaultKind>(kind);
    req.rules.push_back(rule);
  }
  if (!r.done()) return std::nullopt;
  return req;
}

Bytes encode_done(std::uint64_t instance, const EndpointDone& done) {
  Writer w;
  write_header(w, MsgType::kDone, instance);
  w.u32(done.p);
  w.u8(done.decided ? 1 : 0);
  w.u64(done.decision);
  w.u8(done.unfinished ? 1 : 0);
  done.metrics.encode(w);
  encode_sync(w, done.sync);
  encode_proc_list(w, done.perturbed);
  w.seq(done.verify_stripe_hits.size());
  for (const std::uint64_t h : done.verify_stripe_hits) w.u64(h);
  w.seq(done.verify_stripe_misses.size());
  for (const std::uint64_t m : done.verify_stripe_misses) w.u64(m);
  w.bytes(ByteView{done.evidence.data(), done.evidence.size()});
  return seal_body(w.out());
}

std::optional<EndpointDone> decode_done(Reader& r) {
  EndpointDone done;
  done.p = r.u32();
  done.decided = r.u8() != 0;
  done.decision = r.u64();
  done.unfinished = r.u8() != 0;
  std::optional<sim::Metrics> metrics = sim::Metrics::decode(r);
  if (!metrics.has_value()) return std::nullopt;
  done.metrics = *std::move(metrics);
  done.sync = decode_sync(r);
  done.perturbed = decode_proc_list(r);
  const std::size_t hits = r.seq();
  for (std::size_t i = 0; r.ok() && i < hits; ++i) {
    done.verify_stripe_hits.push_back(r.u64());
  }
  const std::size_t misses = r.seq();
  for (std::size_t i = 0; r.ok() && i < misses; ++i) {
    done.verify_stripe_misses.push_back(r.u64());
  }
  done.evidence = r.bytes();
  if (!r.done()) return std::nullopt;
  return done;
}

Bytes encode_decision(std::uint64_t req_id, const DecisionResponse& resp) {
  Writer w;
  write_header(w, MsgType::kDecision, req_id);
  w.u8(resp.ok ? 1 : 0);
  w.str(resp.error);
  w.seq(resp.decisions.size());
  for (const std::optional<Value>& d : resp.decisions) {
    w.u8(d.has_value() ? 1 : 0);
    w.u64(d.value_or(0));
  }
  w.seq(resp.scripted_faulty.size());
  for (const bool f : resp.scripted_faulty) w.u8(f ? 1 : 0);
  resp.metrics.encode(w);
  encode_sync(w, resp.sync);
  encode_proc_list(w, resp.perturbed);
  w.u8(resp.watchdog_fired ? 1 : 0);
  encode_proc_list(w, resp.unfinished);
  w.u64(resp.instance);
  return seal_body(w.out());
}

std::optional<DecisionResponse> decode_decision(Reader& r) {
  DecisionResponse resp;
  resp.ok = r.u8() != 0;
  resp.error = r.str();
  const std::size_t n_decisions = r.seq();
  for (std::size_t i = 0; r.ok() && i < n_decisions; ++i) {
    const bool has = r.u8() != 0;
    const Value v = r.u64();
    resp.decisions.push_back(has ? std::optional<Value>(v) : std::nullopt);
  }
  const std::size_t n_faulty = r.seq();
  for (std::size_t i = 0; r.ok() && i < n_faulty; ++i) {
    resp.scripted_faulty.push_back(r.u8() != 0);
  }
  std::optional<sim::Metrics> metrics = sim::Metrics::decode(r);
  if (!metrics.has_value()) return std::nullopt;
  resp.metrics = *std::move(metrics);
  resp.sync = decode_sync(r);
  resp.perturbed = decode_proc_list(r);
  resp.watchdog_fired = r.u8() != 0;
  resp.unfinished = decode_proc_list(r);
  resp.instance = r.u64();
  if (!r.done()) return std::nullopt;
  return resp;
}

Bytes encode_error(std::uint64_t req_id, std::string_view what) {
  Writer w;
  write_header(w, MsgType::kError, req_id);
  w.str(what);
  return seal_body(w.out());
}

Bytes encode_metrics_req(std::uint64_t req_id) {
  Writer w;
  write_header(w, MsgType::kMetricsReq, req_id);
  return seal_body(w.out());
}

Bytes encode_metrics_resp(std::uint64_t req_id, std::string_view text) {
  Writer w;
  write_header(w, MsgType::kMetricsResp, req_id);
  w.str(text);
  return seal_body(w.out());
}

Bytes encode_shutdown() {
  Writer w;
  write_header(w, MsgType::kShutdown, 0);
  return seal_body(w.out());
}

Bytes encode_prove_req(std::uint64_t req_id, const ProveRequest& req) {
  Writer w;
  write_header(w, MsgType::kProveReq, req_id);
  w.u64(req.instance);
  w.u32(req.holder);
  return seal_body(w.out());
}

std::optional<ProveRequest> decode_prove_req(Reader& r) {
  ProveRequest req;
  req.instance = r.u64();
  req.holder = r.u32();
  if (!r.done()) return std::nullopt;
  return req;
}

Bytes encode_proof(std::uint64_t req_id, const ProofResponse& resp) {
  Writer w;
  write_header(w, MsgType::kProof, req_id);
  w.u8(resp.ok ? 1 : 0);
  w.str(resp.error);
  w.bytes(ByteView{resp.proof.data(), resp.proof.size()});
  return seal_body(w.out());
}

std::optional<ProofResponse> decode_proof(Reader& r) {
  ProofResponse resp;
  resp.ok = r.u8() != 0;
  resp.error = r.str();
  resp.proof = r.bytes();
  if (!r.done()) return std::nullopt;
  return resp;
}

Bytes encode_verify_req(std::uint64_t req_id,
                        const std::vector<Bytes>& proofs) {
  Writer w;
  write_header(w, MsgType::kVerifyReq, req_id);
  w.seq(proofs.size());
  for (const Bytes& p : proofs) w.bytes(ByteView{p.data(), p.size()});
  return seal_body(w.out());
}

std::optional<std::vector<Bytes>> decode_verify_req(Reader& r) {
  const std::size_t count = r.seq();
  std::vector<Bytes> proofs;
  if (!r.ok()) return std::nullopt;
  proofs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) proofs.push_back(r.bytes());
  if (!r.done()) return std::nullopt;
  return proofs;
}

Bytes encode_verify_resp(std::uint64_t req_id,
                         const std::vector<std::uint8_t>& verdicts) {
  Writer w;
  write_header(w, MsgType::kVerifyResp, req_id);
  w.seq(verdicts.size());
  for (const std::uint8_t v : verdicts) w.u8(v);
  return seal_body(w.out());
}

std::optional<std::vector<std::uint8_t>> decode_verify_resp(Reader& r) {
  const std::size_t count = r.seq();
  std::vector<std::uint8_t> verdicts;
  if (!r.ok()) return std::nullopt;
  verdicts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) verdicts.push_back(r.u8());
  if (!r.done()) return std::nullopt;
  return verdicts;
}

net::WireParts seal_mesh_parts(std::uint64_t instance,
                               const net::WireParts& inner) {
  // The svc prefix runs up to and including the nested frame's length
  // varint — Writer::bytes would emit exactly this prefix before the raw
  // bytes, so head|payload|tail concatenates to the sealed single-buffer
  // form bit-for-bit, with the CRC computed incrementally across the split.
  Writer w;
  write_header(w, MsgType::kMesh, instance);
  w.u64(inner.size());
  const Bytes prefix = std::move(w).take();
  const std::size_t body_size =
      prefix.size() + inner.head.size() + inner.payload.size() +
      inner.tail.size();

  net::WireParts parts;
  parts.head.reserve(4 + prefix.size() + inner.head.size());
  put_u32le(parts.head, static_cast<std::uint32_t>(body_size + 4));
  append(parts.head, prefix);
  append(parts.head, inner.head);
  parts.payload = inner.payload;
  parts.tail = inner.tail;
  std::uint32_t crc = crc32_init();
  crc = crc32_update(crc, prefix);
  crc = crc32_update(crc, inner.head);
  crc = crc32_update(crc, inner.payload.view());
  crc = crc32_update(crc, inner.tail);
  put_u32le(parts.tail, crc32_final(crc));
  return parts;
}

std::optional<Bytes> decode_mesh(Reader& r) {
  Bytes inner = r.bytes();
  if (!r.done()) return std::nullopt;
  return inner;
}

}  // namespace dr::svc
