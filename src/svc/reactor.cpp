#include "svc/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <utility>

#include "util/contracts.h"

namespace dr::svc {

namespace {
// writev gathers at most this many segments per call. Linux allows 1024
// (IOV_MAX); a smaller batch keeps the stack array cheap and one flush
// already drains dozens of frames.
constexpr std::size_t kMaxIov = 64;

// Conn::flush writes with writev, which has no MSG_NOSIGNAL equivalent —
// a peer racing its close against our flush must surface as EPIPE, not
// kill the process. Process-wide, set once at first Reactor construction.
void ignore_sigpipe() {
  static const int once = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)once;
}
}  // namespace

Reactor::Reactor() {
  ignore_sigpipe();
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  DR_EXPECTS(epfd_ >= 0);
  wakefd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  DR_EXPECTS(wakefd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakefd_;
  DR_EXPECTS(epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) == 0);
}

Reactor::~Reactor() {
  if (wakefd_ >= 0) ::close(wakefd_);
  if (epfd_ >= 0) ::close(epfd_);
}

void Reactor::add(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  DR_EXPECTS(epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0);
  handlers_[fd] = std::move(handler);
}

void Reactor::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  DR_EXPECTS(epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0);
}

void Reactor::remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
  epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

Reactor::TimerId Reactor::add_timer(net::SockClock::time_point when,
                                    std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timers_.emplace(when, std::make_pair(id, std::move(fn)));
  return id;
}

void Reactor::cancel_timer(TimerId id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.first == id) {
      timers_.erase(it);
      return;
    }
  }
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; the write result only
  // matters for that, so a short/failed write is fine to ignore.
  [[maybe_unused]] const ssize_t rc =
      ::write(wakefd_, &one, sizeof(one));
}

void Reactor::stop() {
  post([this] { stop_ = true; });
}

void Reactor::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (std::function<void()>& fn : batch) fn();
}

void Reactor::fire_timers() {
  const net::SockClock::time_point now = net::SockClock::now();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    std::function<void()> fn = std::move(timers_.begin()->second.second);
    timers_.erase(timers_.begin());
    fn();
  }
}

int Reactor::timeout_to_next_timer() const {
  if (timers_.empty()) return 1000;  // wake periodically regardless
  return net::remaining_ms(timers_.begin()->first);
}

void Reactor::run() {
  std::vector<epoll_event> events(64);
  while (!stop_) {
    drain_posted();
    fire_timers();
    if (stop_) break;
    const int n = epoll_wait(epfd_, events.data(),
                             static_cast<int>(events.size()),
                             timeout_to_next_timer());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed: unrecoverable, exit the loop
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == wakefd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t rc =
            ::read(wakefd_, &drained, sizeof(drained));
        continue;
      }
      // A handler may remove other fds (even ones with pending events in
      // this batch), so re-look-up per event and copy the closure — the
      // copy stays valid if the handler deregisters itself.
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      const FdHandler handler = it->second;
      handler(mask);
    }
  }
}

// ---------------------------------------------------------------------------

Conn::Conn(Reactor& reactor, int fd) : reactor_(reactor), fd_(fd) {
  DR_EXPECTS(fd >= 0);
}

Conn::~Conn() {
  closing_ = true;  // never fire on_close_ out of the destructor
  close();
}

void Conn::start(MsgHandler on_msg, CloseHandler on_close) {
  on_msg_ = std::move(on_msg);
  on_close_ = std::move(on_close);
  reactor_.add(fd_, EPOLLIN, [this](std::uint32_t ev) { on_events(ev); });
}

void Conn::on_events(std::uint32_t events) {
  if (fd_ < 0) return;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close();
    return;
  }
  if ((events & EPOLLOUT) != 0) flush();
  if ((events & EPOLLIN) != 0) read_ready();
}

void Conn::read_ready() {
  std::uint8_t buf[64 * 1024];
  while (fd_ >= 0) {
    const ssize_t got = ::read(fd_, buf, sizeof(buf));
    if (got > 0) {
      std::vector<std::pair<net::ChunkStatus, Bytes>> bodies;
      chunker_.feed(
          ByteView(buf, static_cast<std::size_t>(got)),
          [&](net::ChunkStatus status, ByteView body) {
            // Copy out: the sink's view aliases the chunker's pending
            // buffer, and the message handler may send (which must not
            // reenter feed()'s iteration anyway).
            bodies.emplace_back(status, Bytes(body.begin(), body.end()));
          },
          poisoned_bytes_);
      for (auto& [status, body] : bodies) {
        if (status == net::ChunkStatus::kBody) {
          if (on_msg_) on_msg_(body);
          if (fd_ < 0) return;  // handler closed us
        } else if (status == net::ChunkStatus::kOversized) {
          // Service peers are trusted daemon components; a poisoned
          // stream means the connection is garbage. Drop it.
          close();
          return;
        }
        // kBadCrc / kTooShort: line corruption on loopback is effectively
        // impossible; skip the frame (the chunker already resynced).
      }
      continue;
    }
    if (got == 0) {
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close();
    return;
  }
}

void Conn::send(Bytes message) {
  if (fd_ < 0) return;
  outbox_bytes_ += message.size();
  Segment seg;
  seg.owned = std::move(message);
  outbox_.push_back(std::move(seg));
  flush();
}

void Conn::send_parts(const net::WireParts& parts) {
  if (fd_ < 0) return;
  outbox_bytes_ += parts.size();
  Segment head;
  head.owned = parts.head;
  outbox_.push_back(std::move(head));
  if (!parts.payload.empty()) {
    Segment payload;
    payload.payload = parts.payload;  // handle copy, not a byte copy
    outbox_.push_back(std::move(payload));
  }
  Segment tail;
  tail.owned = parts.tail;
  outbox_.push_back(std::move(tail));
  flush();
}

void Conn::flush() {
  while (fd_ >= 0 && !outbox_.empty()) {
    iovec iov[kMaxIov];
    std::size_t iovs = 0;
    std::size_t offset = head_offset_;
    for (const Segment& seg : outbox_) {
      if (iovs == kMaxIov) break;
      const ByteView view = seg.view();
      iov[iovs].iov_base =
          const_cast<std::uint8_t*>(view.data() + offset);  // NOLINT
      iov[iovs].iov_len = view.size() - offset;
      ++iovs;
      offset = 0;
    }
    const ssize_t wrote = ::writev(fd_, iov, static_cast<int>(iovs));
    if (wrote < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        arm_write(true);
        return;
      }
      if (errno == EINTR) continue;
      close();
      return;
    }
    std::size_t left = static_cast<std::size_t>(wrote);
    outbox_bytes_ -= left;
    while (left > 0) {
      const std::size_t seg_left =
          outbox_.front().view().size() - head_offset_;
      if (left >= seg_left) {
        left -= seg_left;
        head_offset_ = 0;
        outbox_.pop_front();
      } else {
        head_offset_ += left;
        left = 0;
      }
    }
  }
  if (outbox_.empty()) arm_write(false);
}

void Conn::arm_write(bool want) {
  if (fd_ < 0 || want == write_armed_) return;
  write_armed_ = want;
  reactor_.modify(fd_, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void Conn::close() {
  if (fd_ < 0) return;
  reactor_.remove(fd_);
  ::close(fd_);
  fd_ = -1;
  outbox_.clear();
  outbox_bytes_ = 0;
  head_offset_ = 0;
  if (!closing_) {
    closing_ = true;
    if (on_close_) on_close_();
  }
}

}  // namespace dr::svc
