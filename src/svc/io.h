// Blocking message I/O for the daemon's handshake phases and the client.
//
// The reactor owns every socket once a node is serving, but both ends of
// the protocol have a blocking prologue — an endpoint dialing the
// coordinator and waiting for the peer table, a client waiting for a
// decision — and the client library is blocking by design. These helpers
// run the same FrameChunker delimiter over a blocking descriptor, so the
// two read paths share one definition of "a complete message".
#pragma once

#include <deque>
#include <optional>

#include "net/frame.h"
#include "net/sockets.h"
#include "util/bytes.h"

namespace dr::svc {

/// Reads until one complete, CRC-verified message body is available or
/// `deadline` passes. `chunker` and `ready` persist across calls on the
/// same connection: partial bytes stay in the chunker, and when one read
/// delimits several messages the extras queue in `ready` and are returned
/// first by later calls. nullopt on deadline, peer close, hard error or a
/// poisoned stream.
std::optional<Bytes> read_message(int fd, net::FrameChunker& chunker,
                                  std::deque<Bytes>& ready,
                                  net::SockClock::time_point deadline);

/// Writes all of `bytes` or gives up at `deadline`.
bool write_all(int fd, ByteView bytes, net::SockClock::time_point deadline);

}  // namespace dr::svc
