#include "svc/instance_pool.h"

#include <utility>

#include "util/contracts.h"

namespace dr::svc {

InstancePool::InstancePool(std::size_t workers) {
  DR_EXPECTS(workers >= 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

InstancePool::~InstancePool() { shutdown(); }

void InstancePool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void InstancePool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t InstancePool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void InstancePool::worker_main() {
  // One arena per worker, reused for every instance this worker runs:
  // reset() recycles the block list, so once the first few jobs have sized
  // it, later instances' phase scratch bump-allocates without touching the
  // heap at all (the endpoint loop threads it via EndpointRun::scratch).
  Arena scratch;
  t_scratch_ = &scratch;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_, nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    scratch.reset();
    job();
  }
  t_scratch_ = nullptr;
}

}  // namespace dr::svc
