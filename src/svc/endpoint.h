// One agreement endpoint of the daemon: an OS process owning processor id
// `p` for every instance the coordinator starts.
//
// Lifecycle (docs/SERVICE.md):
//   1. bind a mesh listener on an ephemeral port;
//   2. dial the coordinator, introduce itself (kHello: id + mesh address);
//   3. receive the full peer table (kPeers), establish the mesh — dial
//      every lower-id endpoint, accept every higher-id one (the same
//      deadlock-free orientation net/tcp.cpp uses);
//   4. report kReady, hand every socket to the epoll reactor, serve.
//
// Serving: kStart enqueues an instance job on a fixed FIFO worker pool
// (svc/instance_pool.h); a pool worker runs net::run_endpoint_phases over
// an InstanceTransport with a per-instance session of the endpoint's
// shared striped verification store; the reactor
// demultiplexes kMesh envelopes into per-instance mailboxes, flushes
// worker sends out of Conn outboxes, and arms a per-instance watchdog
// timer. Frames for instances this endpoint has not started yet are
// buffered (a faster peer's phase-1 traffic may beat our kStart); frames
// for completed instances are dropped as stale.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/verify_cache.h"
#include "svc/instance.h"
#include "svc/instance_pool.h"
#include "svc/reactor.h"
#include "svc/wire.h"

namespace dr::svc {

class EndpointNode final : public MeshSender {
 public:
  struct Options {
    ProcId id = 0;
    std::size_t endpoints = 1;  // mesh size E; instance n must be <= E
    std::string coord_host = "127.0.0.1";
    std::uint16_t coord_port = 0;
    std::string mesh_host = "127.0.0.1";
    std::chrono::milliseconds handshake_timeout{30000};
    std::chrono::milliseconds phase_timeout{5000};
    std::chrono::milliseconds reconnect_window{1000};
    /// Per-instance watchdog: an instance still running after this long is
    /// aborted and reported unfinished (never a hang, same contract as
    /// NetConfig::run_deadline).
    std::chrono::milliseconds instance_deadline{120000};
    /// Fixed instance-pool size; 0 = auto (hardware concurrency, at
    /// least 2). Concurrency per endpoint is capped here — further
    /// kStarts queue FIFO inside the pool (see svc/instance_pool.h for
    /// why FIFO makes the cap deadlock-free across the mesh).
    std::size_t max_workers = 0;
    /// Lock stripes of the shared verification store all instances on
    /// this endpoint use (crypto::StripedVerifyCache).
    std::size_t verify_stripes = crypto::StripedVerifyCache::kDefaultStripes;
  };

  explicit EndpointNode(const Options& options);
  ~EndpointNode() override;

  /// Handshake + serve until kShutdown or coordinator loss. Returns a
  /// process exit code (0 on clean shutdown).
  int run();

  // MeshSender (worker threads).
  bool mesh_send(std::uint64_t instance, ProcId to,
                 const net::WireParts& inner) override;

 private:
  struct Running {
    SubmitRequest req;
    std::shared_ptr<InstanceChannel> channel;
    Reactor::TimerId deadline_timer = 0;
  };

  bool handshake();
  void on_coord_msg(ByteView body);
  void on_mesh_msg(ProcId peer, ByteView body);
  void on_mesh_close(ProcId peer);
  void handle_start(std::uint64_t id, SubmitRequest req);
  void launch(std::uint64_t id, SubmitRequest req);
  void worker_main(std::uint64_t id, SubmitRequest req,
                   std::shared_ptr<InstanceChannel> channel);
  /// Reactor-thread completion: sends kDone and retires the record (the
  /// pool admits the next queued instance on its own).
  void complete(std::uint64_t id, Bytes done_msg);
  void abort_all_instances();

  Options options_;
  Reactor reactor_;
  int listener_fd_ = -1;
  int coord_fd_ = -1;
  std::vector<int> mesh_fds_;  // indexed by peer id; -1 for self/absent
  std::unique_ptr<Conn> coord_conn_;
  std::vector<std::unique_ptr<Conn>> mesh_conns_;
  std::unique_ptr<std::atomic<bool>[]> mesh_up_;

  std::map<std::uint64_t, Running> running_;       // reactor thread
  std::unordered_set<std::uint64_t> completed_;    // reactor thread
  std::unordered_map<std::uint64_t, std::vector<net::RawChunk>> pending_;
  int exit_code_ = 0;

  /// Shared verification store: one striped map for every instance this
  /// endpoint runs, accessed through per-instance realm Sessions.
  crypto::StripedVerifyCache verify_cache_;
  /// Declared last so its destructor joins the workers while the reactor,
  /// connections and verify store above are still alive.
  InstancePool pool_;
};

}  // namespace dr::svc
