// One agreement endpoint of the daemon: an OS process owning processor id
// `p` for every instance the coordinator starts.
//
// Lifecycle (docs/SERVICE.md):
//   1. bind a mesh listener on an ephemeral port;
//   2. dial the coordinator, introduce itself (kHello: id + mesh address);
//   3. receive the full peer table (kPeers), establish the mesh — dial
//      every lower-id endpoint, accept every higher-id one (the same
//      deadlock-free orientation net/tcp.cpp uses);
//   4. report kReady, hand every socket to the epoll reactor, serve.
//
// Serving: kStart spawns an instance worker thread that runs
// net::run_endpoint_phases over an InstanceTransport; the reactor
// demultiplexes kMesh envelopes into per-instance mailboxes, flushes
// worker sends out of Conn outboxes, and arms a per-instance watchdog
// timer. Frames for instances this endpoint has not started yet are
// buffered (a faster peer's phase-1 traffic may beat our kStart); frames
// for completed instances are dropped as stale.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "svc/instance.h"
#include "svc/reactor.h"
#include "svc/wire.h"

namespace dr::svc {

class EndpointNode final : public MeshSender {
 public:
  struct Options {
    ProcId id = 0;
    std::size_t endpoints = 1;  // mesh size E; instance n must be <= E
    std::string coord_host = "127.0.0.1";
    std::uint16_t coord_port = 0;
    std::string mesh_host = "127.0.0.1";
    std::chrono::milliseconds handshake_timeout{30000};
    std::chrono::milliseconds phase_timeout{5000};
    std::chrono::milliseconds reconnect_window{1000};
    /// Per-instance watchdog: an instance still running after this long is
    /// aborted and reported unfinished (never a hang, same contract as
    /// NetConfig::run_deadline).
    std::chrono::milliseconds instance_deadline{120000};
    /// Concurrent instance workers; further kStarts queue FIFO.
    std::size_t max_workers = 256;
  };

  explicit EndpointNode(const Options& options);
  ~EndpointNode() override;

  /// Handshake + serve until kShutdown or coordinator loss. Returns a
  /// process exit code (0 on clean shutdown).
  int run();

  // MeshSender (worker threads).
  bool mesh_send(std::uint64_t instance, ProcId to,
                 const net::WireParts& inner) override;

 private:
  struct Running {
    SubmitRequest req;
    std::shared_ptr<InstanceChannel> channel;
    std::thread worker;
    Reactor::TimerId deadline_timer = 0;
  };

  bool handshake();
  void on_coord_msg(ByteView body);
  void on_mesh_msg(ProcId peer, ByteView body);
  void on_mesh_close(ProcId peer);
  void handle_start(std::uint64_t id, SubmitRequest req);
  void launch(std::uint64_t id, SubmitRequest req);
  void worker_main(std::uint64_t id, SubmitRequest req,
                   std::shared_ptr<InstanceChannel> channel);
  /// Reactor-thread completion: sends kDone, retires the record, admits
  /// the next queued start.
  void complete(std::uint64_t id, Bytes done_msg);
  void abort_all_instances();

  Options options_;
  Reactor reactor_;
  int listener_fd_ = -1;
  int coord_fd_ = -1;
  std::vector<int> mesh_fds_;  // indexed by peer id; -1 for self/absent
  std::unique_ptr<Conn> coord_conn_;
  std::vector<std::unique_ptr<Conn>> mesh_conns_;
  std::unique_ptr<std::atomic<bool>[]> mesh_up_;

  std::map<std::uint64_t, Running> running_;       // reactor thread
  std::unordered_set<std::uint64_t> completed_;    // reactor thread
  std::unordered_map<std::uint64_t, std::vector<net::RawChunk>> pending_;
  std::deque<std::pair<std::uint64_t, SubmitRequest>> admission_;
  std::size_t active_workers_ = 0;
  int exit_code_ = 0;
};

}  // namespace dr::svc
