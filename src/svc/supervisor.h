// Child-process supervision for daemon mode: each agreement endpoint runs
// as a separate OS process (fork + execv of the dr82d binary), so endpoint
// isolation is real — separate address spaces, separate key material
// derived from the shared seed, real sockets between them. The supervisor
// is deliberately small: spawn, signal, reap. Restart policy belongs to
// whoever runs the daemon (CI wraps it in a timeout; tests assert on exit
// codes).
//
// fork+exec, never bare fork: the spawning process may hold threads (test
// binaries, the smoke harness), and only exec resets the child to a sane
// single-threaded world.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace dr::svc {

class Supervisor {
 public:
  Supervisor() = default;
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// fork + execv. argv[0] is the binary path. Returns the child pid, or
  /// -1 if fork failed. A child whose exec fails _exits with 127.
  pid_t spawn(const std::vector<std::string>& argv);

  /// Signals every still-tracked child (default SIGTERM).
  void kill_all(int sig);

  /// Reaps every tracked child. Returns the number that exited abnormally
  /// (nonzero status or killed by a signal).
  std::size_t wait_all();

  std::size_t alive() const { return pids_.size(); }

 private:
  std::vector<pid_t> pids_;
};

}  // namespace dr::svc
