// The daemon's front door: accepts client and endpoint connections on one
// listening port, assembles the endpoint mesh, routes instances.
//
// Startup: endpoints dial in and introduce themselves (kHello with their
// mesh listener address); once all E are registered the coordinator
// broadcasts the peer table, the endpoints wire up their mesh and report
// kReady. Client submissions arriving earlier are queued, not rejected —
// a client may connect the moment the listening port exists.
//
// Serving: each kSubmit is validated (protocol resolves, configuration
// supported, n <= E, scripted faults within t), assigned a fresh instance
// id, and broadcast as kStart to the participating endpoints 0..n-1. The
// instance table holds one slot per participant; when the last kDone
// lands (or the instance deadline fires first), the per-endpoint Metrics
// fragments are merged exactly as NetRunner merges its endpoint threads,
// the perturbed sets unioned, and the kDecision response goes back to the
// submitting client. Many instances run concurrently; the table is the
// only shared state, and it lives on the reactor thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "crypto/verify_cache.h"
#include "proof/store.h"
#include "svc/reactor.h"
#include "svc/wire.h"

namespace dr::svc {

class Coordinator {
 public:
  struct Options {
    std::string listen_host = "127.0.0.1";
    std::uint16_t listen_port = 0;  // 0: ephemeral, see port()
    std::size_t endpoints = 1;
    /// Coordinator-side instance watchdog; fires only if an endpoint
    /// process died mid-instance (the endpoints' own watchdog is shorter
    /// and reports unfinished through the normal kDone path).
    std::chrono::milliseconds instance_deadline{180000};
  };

  explicit Coordinator(const Options& options);
  ~Coordinator();

  /// Binds the listening socket. port() is valid afterwards.
  bool bind();
  std::uint16_t port() const { return port_; }

  /// Runs the reactor until a client-initiated shutdown (or stop()).
  /// Returns a process exit code.
  int serve();

  /// Thread-safe: makes serve() return (used by in-test coordinators).
  void stop();

 private:
  struct Session {
    std::uint64_t key = 0;
    std::unique_ptr<Conn> conn;
    bool greeted = false;
    Role role = Role::kClient;
    ProcId proc = 0;        // endpoints only
    std::string mesh_addr;  // endpoints only
  };

  struct Instance {
    std::uint64_t client_key = 0;
    std::uint64_t req_id = 0;
    SubmitRequest req;
    std::vector<std::optional<EndpointDone>> done;  // slot per participant
    std::size_t received = 0;
    Reactor::TimerId deadline_timer = 0;
  };

  /// Service-level counters for the Prometheus dump: instance lifecycle
  /// plus the paper/link metrics summed over completed instances (plain
  /// scalars — instances of different n cannot share a sim::Metrics).
  struct Totals {
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;  // watchdog-fired or unfinished endpoints
    std::size_t rejected = 0;
    std::size_t messages_by_correct = 0;
    std::size_t signatures_by_correct = 0;
    std::size_t messages_total = 0;
    std::size_t bytes_by_correct = 0;
    std::size_t frames_sent = 0;
    std::size_t wire_bytes_by_correct = 0;
    std::size_t chain_cache_hits = 0;
    std::size_t chain_cache_misses = 0;
    std::size_t net_disconnects = 0;
    std::size_t net_reconnect_attempts = 0;
    std::size_t net_send_retries = 0;
    std::size_t net_endpoints_degraded = 0;
    std::size_t frames_accepted = 0;
    std::size_t frames_rejected = 0;
    std::size_t stale_frames = 0;
    std::size_t send_errors = 0;
    // Proof service (kProveReq / kVerifyReq) counters.
    std::size_t proofs_extracted = 0;
    std::size_t prove_requests = 0;
    std::size_t prove_misses = 0;
    std::size_t verify_requests = 0;
    std::size_t verify_proofs_ok = 0;
    std::size_t verify_proofs_fail = 0;
  };

  /// A finished instance's proof material, kept so kProveReq can fetch
  /// proofs after the kDecision already went out: the realm the run's keys
  /// derive from, and one encoded Transferable per processor (empty bytes
  /// where the processor produced no evidence).
  struct ProvenInstance {
    proof::Realm realm;
    std::vector<Bytes> proofs;
  };

  void on_accept();
  void on_msg(std::uint64_t key, ByteView body);
  void on_close(std::uint64_t key);
  void handle_hello(Session& session, const Hello& hello);
  void handle_submit(Session& session, std::uint64_t req_id,
                     SubmitRequest req);
  /// nullopt when valid; otherwise the rejection reason.
  std::optional<std::string> validate(const SubmitRequest& req) const;
  void start_instance(std::uint64_t client_key, std::uint64_t req_id,
                      SubmitRequest req);
  void handle_done(std::uint64_t instance_id, EndpointDone done);
  void finish_instance(std::uint64_t instance_id);
  void handle_prove(Session& session, std::uint64_t req_id,
                    const ProveRequest& req);
  void handle_verify(Session& session, std::uint64_t req_id,
                     const std::vector<Bytes>& proofs);
  void begin_shutdown();
  std::string metrics_text() const;

  Options options_;
  Reactor reactor_;
  int listener_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_session_ = 1;
  std::uint64_t next_instance_ = 1;
  std::map<std::uint64_t, Session> sessions_;
  std::vector<std::uint64_t> endpoint_sessions_;  // proc -> session key (0 = none)
  std::size_t registered_ = 0;
  std::size_t ready_ = 0;
  bool serving_ = false;
  bool shutting_down_ = false;
  /// Submissions that arrived before every endpoint was ready.
  std::vector<std::tuple<std::uint64_t, std::uint64_t, SubmitRequest>>
      queued_;
  std::map<std::uint64_t, Instance> instances_;
  Totals totals_;
  /// Latest cumulative per-stripe verification-store snapshot reported by
  /// each endpoint (EndpointDone carries cumulative counters, so keeping
  /// the newest one per endpoint and summing is order-independent).
  std::vector<std::vector<std::uint64_t>> stripe_hits_;
  std::vector<std::vector<std::uint64_t>> stripe_misses_;
  /// Proof material of finished instances, by instance id; the proven-value
  /// store every extracted proof is admitted into (and kVerifyReq verifies
  /// against); the coordinator-side signature-verification cache bulk
  /// verification warms (realm-scoped sessions of one striped store).
  std::map<std::uint64_t, ProvenInstance> proven_;
  proof::Store proof_store_;
  crypto::StripedVerifyCache proof_cache_;
  int exit_code_ = 0;
};

}  // namespace dr::svc
