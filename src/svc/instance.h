// Per-instance plumbing inside an endpoint process.
//
// The daemon multiplexes many concurrent BA instances over one mesh of
// sockets. Each instance gets its own InstanceTransport — a net::Transport
// whose "wire" is (a) a mailbox fed by the reactor with the net frames it
// demultiplexed for this instance, and (b) a MeshSender that wraps
// outbound frames in kMesh envelopes onto the shared mesh connections.
// The instance worker then runs the exact net::run_endpoint_phases loop
// the threaded NetRunner runs — same synchronizer, same submission seam —
// which is what makes daemon-vs-sim parity the same theorem as
// net-vs-sim parity, instance by instance.
//
// Threading: the reactor thread pushes into the channel; the instance's
// worker thread drains it. Those are the only two parties, and the
// channel's mutex is the only synchronization between them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/transport.h"

namespace dr::svc {

using sim::ProcId;

/// The seam between an InstanceTransport and the endpoint's socket layer.
/// Implemented by EndpointNode: checks the mesh link, seals the kMesh
/// envelope (zero-copy around the payload handle) and posts it to the
/// reactor. Thread-safe — called from instance worker threads.
class MeshSender {
 public:
  virtual ~MeshSender() = default;
  /// False when the mesh link to `to` is down (the frame was not sent).
  virtual bool mesh_send(std::uint64_t instance, ProcId to,
                         const net::WireParts& inner) = 0;
};

/// The reactor->worker mailbox of one instance: demultiplexed inbound
/// frames and link events, plus the per-instance link-health counters and
/// the instance watchdog's abort flag.
struct InstanceChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<net::RawChunk> mail;       // guarded by mu
  net::LinkHealth health;               // guarded by mu
  std::atomic<bool> abort{false};

  void push(net::RawChunk chunk);
  /// Appends everything available, waiting up to `timeout` for the first
  /// chunk. True if anything was appended. (Transport::recv semantics.)
  bool drain(std::vector<net::RawChunk>& out,
             std::chrono::milliseconds timeout);
};

class InstanceTransport final : public net::Transport {
 public:
  InstanceTransport(std::uint64_t instance, ProcId self, std::size_t n,
                    MeshSender& mesh,
                    std::shared_ptr<InstanceChannel> channel);

  std::size_t n() const override { return n_; }
  std::optional<net::TransportError> send(ProcId from, ProcId to,
                                          ByteView bytes) override;
  std::optional<net::TransportError> send_parts(
      ProcId from, ProcId to, const net::WireParts& parts) override;
  bool recv(ProcId self, std::vector<net::RawChunk>& out,
            std::chrono::milliseconds timeout) override;
  /// Churn injection is a runner-mode feature; the daemon's failure mode
  /// is real process death, observed as mesh link closure. No-op.
  void drop_endpoint(ProcId p) override;
  net::LinkHealth health(ProcId p) const override;
  const char* kind() const override { return "svc"; }
  void shutdown() override {}

 private:
  std::uint64_t instance_;
  ProcId self_;
  std::size_t n_;
  MeshSender& mesh_;
  std::shared_ptr<InstanceChannel> channel_;
};

}  // namespace dr::svc
