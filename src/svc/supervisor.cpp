#include "svc/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace dr::svc {

Supervisor::~Supervisor() {
  if (!pids_.empty()) {
    kill_all(SIGKILL);
    wait_all();
  }
}

pid_t Supervisor::spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));  // NOLINT: execv API
  }
  cargv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    execv(cargv[0], cargv.data());
    _exit(127);  // exec failed; async-signal-safe exit only
  }
  pids_.push_back(pid);
  return pid;
}

void Supervisor::kill_all(int sig) {
  for (const pid_t pid : pids_) kill(pid, sig);
}

std::size_t Supervisor::wait_all() {
  std::size_t failures = 0;
  for (const pid_t pid : pids_) {
    int status = 0;
    if (waitpid(pid, &status, 0) != pid) {
      ++failures;
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  pids_.clear();
  return failures;
}

}  // namespace dr::svc
