#include "svc/instance.h"

#include <utility>

#include "util/contracts.h"

namespace dr::svc {

void InstanceChannel::push(net::RawChunk chunk) {
  {
    std::lock_guard<std::mutex> lock(mu);
    if (chunk.event.has_value()) ++health.disconnects;
    mail.push_back(std::move(chunk));
  }
  cv.notify_one();
}

bool InstanceChannel::drain(std::vector<net::RawChunk>& out,
                            std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu);
  if (mail.empty()) {
    cv.wait_for(lock, timeout, [this] { return !mail.empty(); });
  }
  if (mail.empty()) return false;
  while (!mail.empty()) {
    out.push_back(std::move(mail.front()));
    mail.pop_front();
  }
  return true;
}

InstanceTransport::InstanceTransport(std::uint64_t instance, ProcId self,
                                     std::size_t n, MeshSender& mesh,
                                     std::shared_ptr<InstanceChannel> channel)
    : instance_(instance),
      self_(self),
      n_(n),
      mesh_(mesh),
      channel_(std::move(channel)) {
  DR_EXPECTS(channel_ != nullptr);
  DR_EXPECTS(self_ < n_);
}

std::optional<net::TransportError> InstanceTransport::send(ProcId from,
                                                           ProcId to,
                                                           ByteView bytes) {
  net::WireParts parts;
  parts.head.assign(bytes.begin(), bytes.end());
  return send_parts(from, to, parts);
}

std::optional<net::TransportError> InstanceTransport::send_parts(
    ProcId from, ProcId to, const net::WireParts& parts) {
  DR_EXPECTS(from == self_ && to < n_);
  if (to == self_) {
    // Local loopback, delivered on the next recv — same contract as the
    // blocking transports, no envelope needed.
    net::RawChunk chunk;
    chunk.from = self_;
    chunk.bytes = parts.concat();
    channel_->push(std::move(chunk));
    return std::nullopt;
  }
  if (!mesh_.mesh_send(instance_, to, parts)) {
    return net::TransportError{net::TransportErrorKind::kDisconnect, to, 0};
  }
  return std::nullopt;
}

bool InstanceTransport::recv(ProcId self, std::vector<net::RawChunk>& out,
                             std::chrono::milliseconds timeout) {
  DR_EXPECTS(self == self_);
  return channel_->drain(out, timeout);
}

void InstanceTransport::drop_endpoint(ProcId p) { DR_EXPECTS(p == self_); }

net::LinkHealth InstanceTransport::health(ProcId p) const {
  DR_EXPECTS(p == self_);
  std::lock_guard<std::mutex> lock(channel_->mu);
  return channel_->health;
}

}  // namespace dr::svc
