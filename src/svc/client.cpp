#include "svc/client.h"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "svc/io.h"

namespace dr::svc {

namespace {

net::SockClock::time_point deadline_from(std::chrono::milliseconds timeout) {
  return net::SockClock::now() + timeout;
}

}  // namespace

Client::~Client() { close(); }

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::chrono::milliseconds timeout) {
  if (fd_ >= 0) return true;
  const int fd = net::tcp_connect_retry(host, port, deadline_from(timeout));
  if (fd < 0) return false;
  // Every connection opens with a kHello; the coordinator drops frames
  // that arrive before one.
  Hello hello;
  hello.role = Role::kClient;
  if (!write_all(fd, encode_hello(hello), deadline_from(timeout))) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  dead_ = false;
  return true;
}

void Client::close() {
  {
    const std::scoped_lock lock(write_mu_, mu_);
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    dead_ = true;
  }
  cv_.notify_all();
}

bool Client::send_locked(ByteView bytes) {
  // Long deadline: the coordinator drains its socket continuously, so a
  // stalled write means the connection is gone, not that it is busy.
  return fd_ >= 0 &&
         write_all(fd_, bytes, deadline_from(std::chrono::seconds(30)));
}

std::uint64_t Client::submit(const SubmitRequest& req) {
  std::uint64_t id = 0;
  {
    const std::lock_guard lock(mu_);
    if (dead_) return 0;
    id = next_id_++;
  }
  const Bytes msg = encode_submit(id, req);
  const std::lock_guard lock(write_mu_);
  if (!send_locked(msg)) return 0;
  return id;
}

std::optional<Client::Parked> Client::await(
    std::uint64_t id, std::chrono::milliseconds timeout) {
  const auto deadline = net::SockClock::now() + timeout;
  std::unique_lock lock(mu_);
  while (true) {
    if (const auto it = parked_.find(id); it != parked_.end()) {
      Parked out = std::move(it->second);
      parked_.erase(it);
      return out;
    }
    if (dead_) return std::nullopt;
    if (net::SockClock::now() >= deadline) return std::nullopt;

    if (reader_active_) {
      // Someone else holds the socket; they will notify when they park a
      // response or the connection dies.
      cv_.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }

    // Become the reader for one message. The socket and the chunker are
    // ours alone while reader_active_ is set.
    reader_active_ = true;
    const int fd = fd_;
    lock.unlock();
    // Short slices so a waiter whose response already landed in the
    // ready queue is not starved behind a long poll.
    const auto slice = std::min(
        deadline, net::SockClock::now() + std::chrono::milliseconds(100));
    std::optional<Bytes> body;
    if (fd >= 0) body = read_message(fd, chunker_, ready_, slice);
    lock.lock();
    reader_active_ = false;
    if (!body.has_value()) {
      // A slice expiring is routine. Anything that returns clearly before
      // the slice elapsed — peer close, read error, poisoned stream — is
      // the connection dying. The 10ms margin absorbs poll()'s
      // millisecond truncation of the deadline; a real close returns
      // instantly, far inside the margin.
      if (fd < 0 || chunker_.poisoned() ||
          net::SockClock::now() + std::chrono::milliseconds(10) < slice) {
        dead_ = true;
        cv_.notify_all();
        return std::nullopt;
      }
      cv_.notify_all();
      continue;
    }

    Reader r(*body);
    const auto header = read_header(r);
    if (!header.has_value()) {
      dead_ = true;
      cv_.notify_all();
      return std::nullopt;
    }
    Parked parked;
    parked.type = header->type;
    parked.body.assign(body->begin(), body->end());
    parked_.insert_or_assign(header->id, std::move(parked));
    cv_.notify_all();
  }
}

std::optional<DecisionResponse> Client::wait(
    std::uint64_t id, std::chrono::milliseconds timeout) {
  auto parked = await(id, timeout);
  if (!parked.has_value()) return std::nullopt;
  Reader r(parked->body);
  const auto header = read_header(r);
  if (!header.has_value()) return std::nullopt;
  if (header->type == MsgType::kDecision) return decode_decision(r);
  if (header->type == MsgType::kError) {
    DecisionResponse resp;
    resp.ok = false;
    resp.error = r.str();
    if (!r.ok() || !r.done()) return std::nullopt;
    return resp;
  }
  return std::nullopt;
}

std::optional<DecisionResponse> Client::run(
    const SubmitRequest& req, std::chrono::milliseconds timeout) {
  const std::uint64_t id = submit(req);
  if (id == 0) return std::nullopt;
  return wait(id, timeout);
}

std::optional<std::string> Client::metrics(
    std::chrono::milliseconds timeout) {
  std::uint64_t id = 0;
  {
    const std::lock_guard lock(mu_);
    if (dead_) return std::nullopt;
    id = next_id_++;
  }
  {
    const std::lock_guard lock(write_mu_);
    if (!send_locked(encode_metrics_req(id))) return std::nullopt;
  }
  auto parked = await(id, timeout);
  if (!parked.has_value() || parked->type != MsgType::kMetricsResp) {
    return std::nullopt;
  }
  Reader r(parked->body);
  if (!read_header(r).has_value()) return std::nullopt;
  std::string text = r.str();
  if (!r.ok() || !r.done()) return std::nullopt;
  return text;
}

std::optional<ProofResponse> Client::prove(std::uint64_t instance,
                                           ProcId holder,
                                           std::chrono::milliseconds timeout) {
  std::uint64_t id = 0;
  {
    const std::lock_guard lock(mu_);
    if (dead_) return std::nullopt;
    id = next_id_++;
  }
  {
    const std::lock_guard lock(write_mu_);
    ProveRequest req;
    req.instance = instance;
    req.holder = holder;
    if (!send_locked(encode_prove_req(id, req))) return std::nullopt;
  }
  auto parked = await(id, timeout);
  if (!parked.has_value()) return std::nullopt;
  Reader r(parked->body);
  if (!read_header(r).has_value()) return std::nullopt;
  if (parked->type == MsgType::kProof) return decode_proof(r);
  if (parked->type == MsgType::kError) {
    ProofResponse resp;
    resp.error = r.str();
    if (!r.ok() || !r.done()) return std::nullopt;
    return resp;
  }
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> Client::verify_proofs(
    const std::vector<Bytes>& proofs, std::chrono::milliseconds timeout) {
  std::uint64_t id = 0;
  {
    const std::lock_guard lock(mu_);
    if (dead_) return std::nullopt;
    id = next_id_++;
  }
  {
    const std::lock_guard lock(write_mu_);
    if (!send_locked(encode_verify_req(id, proofs))) return std::nullopt;
  }
  auto parked = await(id, timeout);
  if (!parked.has_value() || parked->type != MsgType::kVerifyResp) {
    return std::nullopt;
  }
  Reader r(parked->body);
  if (!read_header(r).has_value()) return std::nullopt;
  return decode_verify_resp(r);
}

bool Client::shutdown_server() {
  const std::lock_guard lock(write_mu_);
  return send_locked(encode_shutdown());
}

}  // namespace dr::svc
