#include "svc/coordinator.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "sim/chaos.h"
#include "util/arena.h"
#include "util/contracts.h"
#include "util/log.h"

namespace dr::svc {

namespace {

/// The store's expiry tick: the reactor's monotonic clock in milliseconds.
std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          net::SockClock::now().time_since_epoch())
          .count());
}

}  // namespace

Coordinator::Coordinator(const Options& options) : options_(options) {
  DR_EXPECTS(options.endpoints >= 1);
  endpoint_sessions_.assign(options.endpoints, 0);
}

Coordinator::~Coordinator() {
  if (listener_fd_ >= 0) ::close(listener_fd_);
}

bool Coordinator::bind() {
  listener_fd_ =
      net::tcp_listen(options_.listen_host, options_.listen_port, port_);
  if (listener_fd_ < 0) {
    DR_LOG_ERROR("svc coordinator: listen on %s:%u failed",
                 options_.listen_host.c_str(), options_.listen_port);
    return false;
  }
  return true;
}

int Coordinator::serve() {
  if (listener_fd_ < 0 && !bind()) return 2;
  reactor_.add(listener_fd_, EPOLLIN, [this](std::uint32_t) { on_accept(); });
  reactor_.run();
  // Drop the listener and every session now, not at destruction:
  // endpoints treat the coordinator socket closing as their exit signal
  // (and a closed listener resets dials still queued in the accept
  // backlog), so whoever runs serve() can reap the endpoint processes
  // right after it returns.
  ::close(listener_fd_);
  listener_fd_ = -1;
  sessions_.clear();
  return exit_code_;
}

void Coordinator::stop() { reactor_.stop(); }

void Coordinator::on_accept() {
  while (true) {
    const int fd = accept(listener_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN and friends: batch drained
    net::set_nonblocking(fd);
    net::set_nodelay(fd);
    const std::uint64_t key = next_session_++;
    Session session;
    session.key = key;
    session.conn = std::make_unique<Conn>(reactor_, fd);
    auto [it, inserted] = sessions_.emplace(key, std::move(session));
    DR_EXPECTS(inserted);
    it->second.conn->start(
        [this, key](ByteView body) { on_msg(key, body); },
        [this, key] { on_close(key); });
  }
}

void Coordinator::on_msg(std::uint64_t key, ByteView body) {
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  Session& session = it->second;

  Reader r(body);
  const std::optional<MsgHeader> header = read_header(r);
  if (!header.has_value()) return;

  if (!session.greeted) {
    if (header->type != MsgType::kHello) return;  // protocol violation
    const std::optional<Hello> hello = decode_hello(r);
    if (!hello.has_value()) return;
    handle_hello(session, *hello);
    return;
  }

  switch (header->type) {
    case MsgType::kReady:
      if (session.role == Role::kEndpoint) {
        ++ready_;
        if (ready_ == options_.endpoints && !serving_) {
          serving_ = true;
          for (auto& [client_key, req_id, req] : queued_) {
            start_instance(client_key, req_id, std::move(req));
          }
          queued_.clear();
        }
      }
      break;
    case MsgType::kSubmit: {
      if (session.role != Role::kClient) break;
      std::optional<SubmitRequest> req = decode_submit(r);
      if (!req.has_value()) {
        session.conn->send(encode_error(header->id, "malformed request"));
        break;
      }
      handle_submit(session, header->id, *std::move(req));
      break;
    }
    case MsgType::kDone: {
      if (session.role != Role::kEndpoint) break;
      std::optional<EndpointDone> done = decode_done(r);
      if (done.has_value()) handle_done(header->id, *std::move(done));
      break;
    }
    case MsgType::kMetricsReq:
      if (session.role == Role::kClient) {
        session.conn->send(encode_metrics_resp(header->id, metrics_text()));
      }
      break;
    case MsgType::kProveReq: {
      if (session.role != Role::kClient) break;
      const std::optional<ProveRequest> req = decode_prove_req(r);
      if (!req.has_value()) {
        session.conn->send(encode_error(header->id, "malformed request"));
        break;
      }
      handle_prove(session, header->id, *req);
      break;
    }
    case MsgType::kVerifyReq: {
      if (session.role != Role::kClient) break;
      const std::optional<std::vector<Bytes>> proofs = decode_verify_req(r);
      if (!proofs.has_value()) {
        session.conn->send(encode_error(header->id, "malformed request"));
        break;
      }
      handle_verify(session, header->id, *proofs);
      break;
    }
    case MsgType::kShutdown:
      if (session.role == Role::kClient) begin_shutdown();
      break;
    default:
      break;
  }
}

void Coordinator::on_close(std::uint64_t key) {
  const auto it = sessions_.find(key);
  if (it == sessions_.end()) return;
  const Session& session = it->second;
  if (session.role == Role::kEndpoint &&
      session.proc < endpoint_sessions_.size() &&
      endpoint_sessions_[session.proc] == key) {
    endpoint_sessions_[session.proc] = 0;
    // An endpoint process died. Every instance it participates in can no
    // longer complete normally; let its deadline timer resolve it (the
    // remaining endpoints' watchdogs will report unfinished first).
    if (!shutting_down_) {
      DR_LOG_WARN("svc coordinator: endpoint %u disconnected", session.proc);
    }
  }
  // Destroying the session destroys the Conn. Deferred to a post so we
  // never delete a Conn from inside its own callback stack.
  reactor_.post([this, key] { sessions_.erase(key); });
}

void Coordinator::handle_hello(Session& session, const Hello& hello) {
  session.greeted = true;
  session.role = hello.role;
  if (hello.role != Role::kEndpoint) return;
  if (hello.proc >= options_.endpoints ||
      endpoint_sessions_[hello.proc] != 0) {
    session.conn->close();
    return;
  }
  session.proc = hello.proc;
  session.mesh_addr = hello.mesh_addr;
  endpoint_sessions_[hello.proc] = session.key;
  ++registered_;
  if (registered_ == options_.endpoints) {
    Peers peers;
    peers.addrs.resize(options_.endpoints);
    for (std::size_t p = 0; p < options_.endpoints; ++p) {
      peers.addrs[p] = sessions_.at(endpoint_sessions_[p]).mesh_addr;
    }
    const Bytes msg = encode_peers(peers);
    for (std::size_t p = 0; p < options_.endpoints; ++p) {
      sessions_.at(endpoint_sessions_[p]).conn->send(msg);
    }
  }
}

std::optional<std::string> Coordinator::validate(
    const SubmitRequest& req) const {
  const std::optional<ba::Protocol> protocol =
      chaos::resolve_protocol(req.protocol);
  if (!protocol.has_value()) {
    return "unknown protocol: " + req.protocol;
  }
  if (req.config.n == 0 || req.config.n > options_.endpoints) {
    std::ostringstream os;
    os << "n=" << req.config.n << " outside 1.." << options_.endpoints
       << " (daemon endpoint count)";
    return os.str();
  }
  if (!protocol->supports(req.config)) {
    return "configuration not supported by " + req.protocol;
  }
  if (req.scripted.size() > req.config.t) {
    return "more scripted faults than the fault budget t";
  }
  std::set<ProcId> ids;
  for (const chaos::ScriptedFault& fault : req.scripted) {
    if (fault.id >= req.config.n) return "scripted fault id out of range";
    if (!ids.insert(fault.id).second) return "duplicate scripted fault id";
  }
  return std::nullopt;
}

void Coordinator::handle_submit(Session& session, std::uint64_t req_id,
                                SubmitRequest req) {
  if (shutting_down_) {
    session.conn->send(encode_error(req_id, "shutting down"));
    return;
  }
  if (const std::optional<std::string> reason = validate(req)) {
    ++totals_.rejected;
    session.conn->send(encode_error(req_id, *reason));
    return;
  }
  if (!serving_) {
    queued_.emplace_back(session.key, req_id, std::move(req));
    return;
  }
  start_instance(session.key, req_id, std::move(req));
}

void Coordinator::start_instance(std::uint64_t client_key,
                                 std::uint64_t req_id, SubmitRequest req) {
  const std::uint64_t id = next_instance_++;
  ++totals_.submitted;
  Instance inst;
  inst.client_key = client_key;
  inst.req_id = req_id;
  inst.req = req;
  inst.done.resize(req.config.n);
  inst.deadline_timer = reactor_.add_timer(
      net::SockClock::now() + options_.instance_deadline,
      [this, id] { finish_instance(id); });

  const Bytes start = encode_start(id, req);
  instances_.emplace(id, std::move(inst));
  for (ProcId p = 0; p < req.config.n; ++p) {
    const std::uint64_t key = endpoint_sessions_[p];
    const auto it = key != 0 ? sessions_.find(key) : sessions_.end();
    if (it == sessions_.end()) {
      // Participant already gone; the deadline timer will resolve this
      // instance with that endpoint missing.
      continue;
    }
    it->second.conn->send(start);
  }
}

void Coordinator::handle_done(std::uint64_t instance_id, EndpointDone done) {
  const auto it = instances_.find(instance_id);
  if (it == instances_.end()) return;  // late kDone after the deadline
  Instance& inst = it->second;
  if (done.p >= inst.done.size() || inst.done[done.p].has_value()) return;
  if (!done.verify_stripe_hits.empty() && done.p < options_.endpoints) {
    if (stripe_hits_.size() < options_.endpoints) {
      stripe_hits_.resize(options_.endpoints);
      stripe_misses_.resize(options_.endpoints);
    }
    stripe_hits_[done.p] = done.verify_stripe_hits;
    stripe_misses_[done.p] = done.verify_stripe_misses;
  }
  inst.done[done.p] = std::move(done);
  ++inst.received;
  if (inst.received == inst.done.size()) finish_instance(instance_id);
}

void Coordinator::finish_instance(std::uint64_t instance_id) {
  const auto it = instances_.find(instance_id);
  if (it == instances_.end()) return;
  Instance inst = std::move(it->second);
  instances_.erase(it);
  reactor_.cancel_timer(inst.deadline_timer);

  const std::size_t n = inst.req.config.n;
  DecisionResponse resp;
  resp.ok = true;
  resp.decisions.resize(n);
  resp.scripted_faulty.assign(n, false);
  for (const chaos::ScriptedFault& fault : inst.req.scripted) {
    resp.scripted_faulty[fault.id] = true;
  }
  sim::Metrics merged(n);
  std::set<ProcId> perturbed;
  for (ProcId p = 0; p < n; ++p) {
    if (!inst.done[p].has_value()) {
      resp.watchdog_fired = true;
      resp.unfinished.push_back(p);
      continue;
    }
    const EndpointDone& done = *inst.done[p];
    if (done.decided) resp.decisions[p] = done.decision;
    if (done.unfinished) {
      resp.watchdog_fired = true;
      resp.unfinished.push_back(p);
    }
    merged.merge(done.metrics);
    resp.sync.merge(done.sync);
    perturbed.insert(done.perturbed.begin(), done.perturbed.end());
  }
  resp.metrics = std::move(merged);
  resp.perturbed.assign(perturbed.begin(), perturbed.end());
  resp.instance = instance_id;

  // Wrap each endpoint's decision-time evidence into a Transferable under
  // this instance's realm (exactly the scheme the endpoints built:
  // HMAC-SHA256, keys derived from the submit seed), admit it into the
  // proven-value store, and retain the encoded bytes so kProveReq can
  // serve them long after the kDecision went out.
  ProvenInstance proven;
  proven.realm = proof::Realm{.scheme = sim::SchemeKind::kHmac,
                              .n = n,
                              .t = inst.req.config.t,
                              .transmitter = inst.req.config.transmitter,
                              .seed = inst.req.seed,
                              .merkle_height = 6};
  proven.proofs.resize(n);
  crypto::StripedVerifyCache::Session cache_session =
      proof_cache_.session(proof::realm_key(proven.realm));
  for (ProcId p = 0; p < n; ++p) {
    if (!inst.done[p].has_value() || inst.done[p]->evidence.empty()) continue;
    const std::optional<proof::Transferable> proof = proof::from_evidence(
        proven.realm, p,
        ByteView{inst.done[p]->evidence.data(),
                 inst.done[p]->evidence.size()});
    if (!proof.has_value()) continue;
    Bytes encoded = proof::encode_transferable(*proof);
    if (proof_store_.admit(ByteView{encoded.data(), encoded.size()}, now_ms(),
                           &cache_session) != proof::Verdict::kOk) {
      continue;  // an endpoint sent evidence that does not verify: drop it
    }
    proven.proofs[p] = std::move(encoded);
    ++totals_.proofs_extracted;
  }
  proven_.emplace(instance_id, std::move(proven));

  ++totals_.completed;
  if (resp.watchdog_fired) ++totals_.failed;
  totals_.messages_by_correct += resp.metrics.messages_by_correct();
  totals_.signatures_by_correct += resp.metrics.signatures_by_correct();
  totals_.messages_total += resp.metrics.messages_total();
  totals_.bytes_by_correct += resp.metrics.bytes_by_correct();
  totals_.frames_sent += resp.metrics.frames_sent();
  totals_.wire_bytes_by_correct += resp.metrics.wire_bytes_by_correct();
  totals_.chain_cache_hits += resp.metrics.chain_cache_hits();
  totals_.chain_cache_misses += resp.metrics.chain_cache_misses();
  totals_.net_disconnects += resp.metrics.net_disconnects();
  totals_.net_reconnect_attempts += resp.metrics.net_reconnect_attempts();
  totals_.net_send_retries += resp.metrics.net_send_retries();
  totals_.net_endpoints_degraded += resp.metrics.net_endpoints_degraded();
  totals_.frames_accepted += resp.sync.frames.accepted;
  totals_.frames_rejected += resp.sync.frames.rejected();
  totals_.stale_frames += resp.sync.stale_frames;
  totals_.send_errors += resp.sync.send_errors;

  const auto client = sessions_.find(inst.client_key);
  if (client != sessions_.end() && client->second.conn != nullptr &&
      !client->second.conn->closed()) {
    client->second.conn->send(encode_decision(inst.req_id, resp));
  }
}

void Coordinator::handle_prove(Session& session, std::uint64_t req_id,
                               const ProveRequest& req) {
  ++totals_.prove_requests;
  ProofResponse resp;
  const auto it = proven_.find(req.instance);
  if (it == proven_.end()) {
    ++totals_.prove_misses;
    resp.error = "unknown instance";
  } else if (req.holder >= it->second.proofs.size() ||
             it->second.proofs[req.holder].empty()) {
    ++totals_.prove_misses;
    resp.error = "no proof for holder";
  } else {
    resp.ok = true;
    resp.proof = it->second.proofs[req.holder];
  }
  session.conn->send(encode_proof(req_id, resp));
}

void Coordinator::handle_verify(Session& session, std::uint64_t req_id,
                                const std::vector<Bytes>& proofs) {
  ++totals_.verify_requests;
  std::vector<std::uint8_t> verdicts;
  verdicts.reserve(proofs.size());
  for (const Bytes& blob : proofs) {
    const ByteView view{blob.data(), blob.size()};
    proof::Verdict verdict;
    // Decode once up front to learn the realm, so the admit's signature
    // verifications run against (and warm) that realm's cache session.
    if (const auto decoded = proof::decode_transferable(view)) {
      crypto::StripedVerifyCache::Session cache_session =
          proof_cache_.session(proof::realm_key(decoded->realm));
      verdict = proof_store_.admit(view, now_ms(), &cache_session);
    } else {
      // Undecodable: admit still counts the rejection in the store stats.
      verdict = proof_store_.admit(view, now_ms(), nullptr);
    }
    if (verdict == proof::Verdict::kOk) {
      ++totals_.verify_proofs_ok;
    } else {
      ++totals_.verify_proofs_fail;
    }
    verdicts.push_back(static_cast<std::uint8_t>(verdict));
  }
  session.conn->send(encode_verify_resp(req_id, verdicts));
}

void Coordinator::begin_shutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  const Bytes msg = encode_shutdown();
  for (const std::uint64_t key : endpoint_sessions_) {
    if (key == 0) continue;
    const auto it = sessions_.find(key);
    if (it != sessions_.end()) it->second.conn->send(msg);
  }
  // Give the shutdown frames one dispatch round to flush, then stop.
  reactor_.add_timer(net::SockClock::now() + std::chrono::milliseconds(50),
                     [this] { reactor_.stop(); });
}

std::string Coordinator::metrics_text() const {
  std::ostringstream os;
  const auto counter = [&os](const char* name, const char* help,
                             std::size_t value) {
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " counter\n"
       << name << " " << value << "\n";
  };
  const auto gauge = [&os](const char* name, const char* help,
                           std::size_t value) {
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " gauge\n"
       << name << " " << value << "\n";
  };
  gauge("dr82_endpoints", "endpoint processes configured",
        options_.endpoints);
  gauge("dr82_endpoints_ready", "endpoints that completed mesh setup",
        ready_);
  gauge("dr82_instances_inflight", "instances running right now",
        instances_.size());
  gauge("dr82_arena_bytes_high_water",
        "peak bytes reserved across all arenas in this process",
        Arena::global_high_water());
  counter("dr82_instances_submitted_total", "instances accepted",
          totals_.submitted);
  counter("dr82_instances_completed_total", "instances finished",
          totals_.completed);
  counter("dr82_instances_failed_total",
          "instances with a fired watchdog or unfinished endpoint",
          totals_.failed);
  counter("dr82_instances_rejected_total", "submissions failing validation",
          totals_.rejected);
  counter("dr82_messages_by_correct_total",
          "paper metric: messages sent by correct processors",
          totals_.messages_by_correct);
  counter("dr82_signatures_by_correct_total",
          "paper metric: signatures sent by correct processors",
          totals_.signatures_by_correct);
  counter("dr82_messages_total", "messages sent by anyone",
          totals_.messages_total);
  counter("dr82_bytes_by_correct_total",
          "payload bytes sent by correct processors",
          totals_.bytes_by_correct);
  counter("dr82_frames_sent_total", "wire frames sent", totals_.frames_sent);
  counter("dr82_wire_bytes_by_correct_total",
          "wire bytes sent by correct processors",
          totals_.wire_bytes_by_correct);
  counter("dr82_chain_cache_hits_total", "chain verification cache hits",
          totals_.chain_cache_hits);
  counter("dr82_chain_cache_misses_total", "chain verification cache misses",
          totals_.chain_cache_misses);
  counter("dr82_net_disconnects_total", "links observed dead",
          totals_.net_disconnects);
  counter("dr82_net_reconnect_attempts_total", "redial attempts",
          totals_.net_reconnect_attempts);
  counter("dr82_net_send_retries_total", "send-path backpressure waits",
          totals_.net_send_retries);
  counter("dr82_net_endpoints_degraded_total",
          "peers demoted omission-faulty, summed over observers",
          totals_.net_endpoints_degraded);
  counter("dr82_frames_accepted_total", "frames decoded and delivered",
          totals_.frames_accepted);
  counter("dr82_frames_rejected_total", "frames dropped at the frame layer",
          totals_.frames_rejected);
  counter("dr82_sync_stale_frames_total",
          "frames past their phase release point", totals_.stale_frames);
  counter("dr82_sync_send_errors_total", "frame sends that failed",
          totals_.send_errors);

  // Proof service: extraction at decision time, the kProveReq/kVerifyReq
  // request paths, and the proven-value store's own lifecycle counters.
  const proof::Store::Stats store = proof_store_.stats();
  counter("dr82_proof_extracted_total",
          "proofs extracted from finished instances",
          totals_.proofs_extracted);
  counter("dr82_proof_prove_requests_total", "kProveReq messages served",
          totals_.prove_requests);
  counter("dr82_proof_prove_misses_total",
          "kProveReq for an unknown instance or proofless holder",
          totals_.prove_misses);
  counter("dr82_proof_verify_requests_total", "kVerifyReq messages served",
          totals_.verify_requests);
  counter("dr82_proof_verify_ok_total", "submitted proofs that verified",
          totals_.verify_proofs_ok);
  counter("dr82_proof_verify_fail_total", "submitted proofs rejected",
          totals_.verify_proofs_fail);
  gauge("dr82_proof_store_entries", "live proven-value store entries",
        static_cast<std::size_t>(store.entries));
  counter("dr82_proof_store_light_hits_total",
          "digest lookups answered without re-verification",
          static_cast<std::size_t>(store.light_hits));
  counter("dr82_proof_store_admitted_total",
          "heavy-path verifications that passed",
          static_cast<std::size_t>(store.admitted));
  counter("dr82_proof_store_rejected_total",
          "heavy-path verifications that failed",
          static_cast<std::size_t>(store.rejected));
  counter("dr82_proof_store_duplicate_total",
          "admits of an already-proven digest",
          static_cast<std::size_t>(store.duplicate));
  counter("dr82_proof_store_sweeps_total", "expiry sweeps run",
          static_cast<std::size_t>(store.sweeps));
  counter("dr82_proof_store_tombstones_total",
          "entries evicted by expiry sweeps",
          static_cast<std::size_t>(store.tombstones));
  std::uint64_t proof_cache_hits = 0;
  std::uint64_t proof_cache_misses = 0;
  for (std::size_t s = 0; s < proof_cache_.stripe_count(); ++s) {
    const auto stats = proof_cache_.stripe_stats(s);
    proof_cache_hits += stats.hits;
    proof_cache_misses += stats.misses;
  }
  counter("dr82_proof_cache_hits_total",
          "coordinator proof-verification cache hits",
          static_cast<std::size_t>(proof_cache_hits));
  counter("dr82_proof_cache_misses_total",
          "coordinator proof-verification cache misses",
          static_cast<std::size_t>(proof_cache_misses));

  // Striped verification store: per-stripe counters summed element-wise
  // over the endpoints' latest cumulative snapshots. Hit rate per stripe =
  // hits / (hits + misses); a flat distribution across stripes means the
  // lock striping is actually spreading contention.
  std::size_t stripes = 0;
  for (const auto& per_endpoint : stripe_hits_) {
    stripes = std::max(stripes, per_endpoint.size());
  }
  std::vector<std::uint64_t> hits(stripes, 0);
  std::vector<std::uint64_t> misses(stripes, 0);
  std::uint64_t hits_total = 0;
  std::uint64_t misses_total = 0;
  for (std::size_t e = 0; e < stripe_hits_.size(); ++e) {
    for (std::size_t i = 0; i < stripe_hits_[e].size(); ++i) {
      hits[i] += stripe_hits_[e][i];
      hits_total += stripe_hits_[e][i];
    }
    for (std::size_t i = 0;
         i < stripe_misses_[e].size() && i < stripes; ++i) {
      misses[i] += stripe_misses_[e][i];
      misses_total += stripe_misses_[e][i];
    }
  }
  gauge("dr82_verify_stripes", "lock stripes per endpoint verify store",
        stripes);
  counter("dr82_verify_stripe_hits_total",
          "striped verify-store hits summed over stripes and endpoints",
          static_cast<std::size_t>(hits_total));
  counter("dr82_verify_stripe_misses_total",
          "striped verify-store misses summed over stripes and endpoints",
          static_cast<std::size_t>(misses_total));
  if (stripes > 0) {
    os << "# HELP dr82_verify_stripe_hits per-stripe verify-store hits"
       << " summed over endpoints\n"
       << "# TYPE dr82_verify_stripe_hits counter\n";
    for (std::size_t i = 0; i < stripes; ++i) {
      os << "dr82_verify_stripe_hits{stripe=\"" << i << "\"} " << hits[i]
         << "\n";
    }
    os << "# HELP dr82_verify_stripe_misses per-stripe verify-store misses"
       << " summed over endpoints\n"
       << "# TYPE dr82_verify_stripe_misses counter\n";
    for (std::size_t i = 0; i < stripes; ++i) {
      os << "dr82_verify_stripe_misses{stripe=\"" << i << "\"} "
         << misses[i] << "\n";
    }
  }
  return os.str();
}

}  // namespace dr::svc
