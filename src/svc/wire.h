// The agreement daemon's wire protocol (docs/SERVICE.md).
//
// Every service message — client<->coordinator, coordinator<->endpoint and
// the endpoint mesh — uses the same outer structure as a net frame:
//
//   length : u32le            bytes that follow (body + crc)
//   body   : Writer-encoded   u8 svc version | u8 type | u64 id | fields
//   crc    : u32le            crc32(body)
//
// so one delimiter (net::FrameChunker) serves every connection the reactor
// owns. `id` is the correlation key: the client's request id on the submit
// path, the coordinator-assigned instance id on the instance path.
//
// Mesh traffic nests the existing net frame untouched: a kMesh body is
// `header | bytes(<inner net frame>)`, and the inner frame is fed verbatim
// to the per-instance PhaseSynchronizer's assembler on the receiving side.
// seal_mesh_parts builds that envelope as scatter/gather segments around
// the payload handle, so a protocol payload crosses the daemon's socket
// layer without ever being copied (the same zero-copy discipline as
// net::encode_frame_parts, extended one envelope out).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ba/config.h"
#include "codec/codec.h"
#include "net/synchronizer.h"
#include "net/transport.h"
#include "sim/chaos.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "util/bytes.h"

namespace dr::svc {

using sim::PhaseNum;
using sim::ProcId;
using sim::Value;

inline constexpr std::uint8_t kSvcVersion = 1;

enum class MsgType : std::uint8_t {
  kHello = 0,        // first message on any connection (role + identity)
  kPeers = 1,        // coordinator -> endpoint: the mesh address table
  kReady = 2,        // endpoint -> coordinator: mesh established
  kSubmit = 3,       // client -> coordinator: run one BA instance
  kStart = 4,        // coordinator -> endpoint: begin instance `id`
  kDone = 5,         // endpoint -> coordinator: instance `id` finished here
  kDecision = 6,     // coordinator -> client: the instance's outcome
  kMesh = 7,         // endpoint <-> endpoint: one nested net frame
  kMetricsReq = 8,   // client -> coordinator: Prometheus text dump
  kMetricsResp = 9,  // coordinator -> client
  kError = 10,       // coordinator -> client: request-level failure
  kShutdown = 11,    // client -> coordinator -> endpoints: clean stop
  kProveReq = 12,    // client -> coordinator: proof of (instance, holder)
  kProof = 13,       // coordinator -> client: the serialized proof
  kVerifyReq = 14,   // client -> coordinator: bulk proof verification
  kVerifyResp = 15,  // coordinator -> client: one verdict per proof
};

enum class Role : std::uint8_t {
  kClient = 0,
  kEndpoint = 1,  // endpoint registering with the coordinator
  kMeshPeer = 2,  // endpoint dialing a fellow endpoint's mesh listener
};

struct MsgHeader {
  MsgType type = MsgType::kError;
  std::uint64_t id = 0;
};

/// Appends the svc header (version | type | id) to `w`.
void write_header(Writer& w, MsgType type, std::uint64_t id);

/// Wraps an encoded body in the outer `length | body | crc` structure.
Bytes seal_body(ByteView body);

/// Reads and validates the header. nullopt on version or type mismatch.
std::optional<MsgHeader> read_header(Reader& r);

// ---------------------------------------------------------------------------
// Message bodies. Each encode_* appends the full body (header included);
// each decode_* assumes read_header already consumed the header and
// returns nullopt unless the remaining bytes decode exactly.

struct Hello {
  Role role = Role::kClient;
  ProcId proc = 0;         // endpoint / mesh-peer id; 0 for clients
  std::string mesh_addr;   // endpoint's mesh listener ("host:port")
};

/// One BA instance, fully described: the registry protocol (parameterised
/// forms included), the paper configuration, the key seed, and the same
/// serializable fault surface the chaos harness runs — scripted Byzantine
/// processes plus a transport FaultPlan. Exactly a chaos::Scenario minus
/// backend/churn: the daemon *is* the backend, and churn there is real
/// process death, not a rule.
struct SubmitRequest {
  std::string protocol;
  ba::BAConfig config;
  std::uint64_t seed = 1;
  std::uint64_t plan_seed = 1;
  std::vector<chaos::ScriptedFault> scripted;
  std::vector<sim::FaultRule> rules;
};

/// One endpoint's share of a finished instance: its decision, its Metrics
/// fragment (merged coordinator-side exactly as NetRunner merges endpoint
/// threads), its synchronizer counters, and the processors its local
/// FaultPlan copy perturbed (a pure function of plan_seed and message
/// coordinates, so the per-endpoint sets union to the sim plan's set).
struct EndpointDone {
  ProcId p = 0;
  bool decided = false;
  Value decision = 0;
  bool unfinished = false;  // the instance watchdog aborted this endpoint
  sim::Metrics metrics;
  net::SyncStats sync;
  std::vector<ProcId> perturbed;
  /// Cumulative per-stripe hit/miss counters of the endpoint's shared
  /// StripedVerifyCache, snapshotted when this instance completed. The
  /// coordinator keeps the latest snapshot per endpoint (cumulative beats
  /// delta: reporting order does not matter) for its Prometheus export;
  /// per-instance Metrics stay stripe-free so parity holds.
  std::vector<std::uint64_t> verify_stripe_hits;
  std::vector<std::uint64_t> verify_stripe_misses;
  /// This processor's decision-time evidence blob (sim::Process::evidence;
  /// empty = none). The coordinator wraps it into a proof::Transferable
  /// under the instance's realm and serves it through kProveReq.
  Bytes evidence;
};

struct DecisionResponse {
  bool ok = false;
  std::string error;
  std::vector<std::optional<Value>> decisions;  // indexed by processor
  std::vector<bool> scripted_faulty;
  sim::Metrics metrics;  // merged across endpoints
  net::SyncStats sync;   // merged across endpoints
  std::vector<ProcId> perturbed;  // union, ascending
  bool watchdog_fired = false;
  std::vector<ProcId> unfinished;
  /// The coordinator-assigned instance id — the key kProveReq takes to
  /// fetch this run's proofs after the fact.
  std::uint64_t instance = 0;
};

struct Peers {
  std::vector<std::string> addrs;  // mesh address of endpoint p at index p
};

Bytes encode_hello(const Hello& hello);
std::optional<Hello> decode_hello(Reader& r);

Bytes encode_peers(const Peers& peers);
std::optional<Peers> decode_peers(Reader& r);

Bytes encode_ready(ProcId p);

Bytes encode_submit(std::uint64_t req_id, const SubmitRequest& req);
Bytes encode_start(std::uint64_t instance, const SubmitRequest& req);
std::optional<SubmitRequest> decode_submit(Reader& r);

Bytes encode_done(std::uint64_t instance, const EndpointDone& done);
std::optional<EndpointDone> decode_done(Reader& r);

Bytes encode_decision(std::uint64_t req_id, const DecisionResponse& resp);
std::optional<DecisionResponse> decode_decision(Reader& r);

Bytes encode_error(std::uint64_t req_id, std::string_view what);

Bytes encode_metrics_req(std::uint64_t req_id);
Bytes encode_metrics_resp(std::uint64_t req_id, std::string_view text);

/// Proof extraction: which run, whose proof.
struct ProveRequest {
  std::uint64_t instance = 0;
  ProcId holder = 0;
};

struct ProofResponse {
  bool ok = false;
  std::string error;
  Bytes proof;  // encode_transferable bytes when ok
};

Bytes encode_prove_req(std::uint64_t req_id, const ProveRequest& req);
std::optional<ProveRequest> decode_prove_req(Reader& r);

Bytes encode_proof(std::uint64_t req_id, const ProofResponse& resp);
std::optional<ProofResponse> decode_proof(Reader& r);

/// Bulk third-party verification: opaque serialized proofs in, one
/// verdict byte (proof::Verdict) per proof out, same order.
Bytes encode_verify_req(std::uint64_t req_id,
                        const std::vector<Bytes>& proofs);
std::optional<std::vector<Bytes>> decode_verify_req(Reader& r);

Bytes encode_verify_resp(std::uint64_t req_id,
                         const std::vector<std::uint8_t>& verdicts);
std::optional<std::vector<std::uint8_t>> decode_verify_resp(Reader& r);

Bytes encode_shutdown();

/// The zero-copy mesh envelope: wraps an encoded net frame (itself split
/// around the payload handle) in a kMesh message without copying the
/// payload. Satisfies `seal_mesh_parts(i, p).concat() ==
/// seal_body(<kMesh body with bytes(p.concat())>)` — the receiving side
/// cannot tell which path built it.
net::WireParts seal_mesh_parts(std::uint64_t instance,
                               const net::WireParts& inner);

/// Inverse: after read_header returned kMesh, extracts the nested net
/// frame bytes. nullopt on malformed body.
std::optional<Bytes> decode_mesh(Reader& r);

}  // namespace dr::svc
