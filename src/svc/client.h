// The client submission API: a blocking library over one connection to the
// coordinator, multiplexing any number of concurrent BA instances.
//
// submit() assigns a request id and writes the kSubmit frame; wait()
// blocks until that id's kDecision (or kError) arrives. Responses arriving
// for other ids are parked in a table, so many threads can have requests
// outstanding over the single connection — the bench drives 100+
// concurrent instances this way — with one thread reading the socket at a
// time (the shared-reader pattern below; no dedicated reader thread).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "net/frame.h"
#include "svc/wire.h"

namespace dr::svc {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Dials the coordinator (retrying until `timeout`). False on failure.
  bool connect(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout);
  bool connected() const { return fd_ >= 0; }

  /// Thread-safe. Returns the request id to wait() on, or 0 if the
  /// connection is gone.
  std::uint64_t submit(const SubmitRequest& req);

  /// Blocks until the response for `id` arrives or `timeout` passes.
  /// A kError response returns a DecisionResponse with ok=false and the
  /// reason in `error`. Thread-safe; concurrent waiters share the socket.
  std::optional<DecisionResponse> wait(std::uint64_t id,
                                       std::chrono::milliseconds timeout);

  /// submit + wait.
  std::optional<DecisionResponse> run(const SubmitRequest& req,
                                      std::chrono::milliseconds timeout);

  /// Prometheus-style plaintext dump of the daemon's counters.
  std::optional<std::string> metrics(std::chrono::milliseconds timeout);

  /// Fetches holder `holder`'s serialized proof::Transferable for a
  /// finished instance (DecisionResponse::instance names it). Thread-safe.
  std::optional<ProofResponse> prove(std::uint64_t instance, ProcId holder,
                                     std::chrono::milliseconds timeout);

  /// Bulk third-party verification: the daemon verifies each serialized
  /// proof against its proven-value store and returns one proof::Verdict
  /// byte per proof, same order. Thread-safe.
  std::optional<std::vector<std::uint8_t>> verify_proofs(
      const std::vector<Bytes>& proofs, std::chrono::milliseconds timeout);

  /// Asks the daemon to shut down (coordinator and all endpoints).
  bool shutdown_server();

  void close();

 private:
  /// One parked response (kDecision / kMetricsResp / kError), keyed by id.
  struct Parked {
    MsgType type = MsgType::kError;
    Bytes body;  // fields after the header
  };

  bool send_locked(ByteView bytes);
  /// Blocks until `id` is parked, the deadline passes, or the connection
  /// dies. Exactly one thread reads the socket at a time; others sleep on
  /// the condvar and re-check the table when the reader parks something.
  std::optional<Parked> await(std::uint64_t id,
                              std::chrono::milliseconds timeout);

  int fd_ = -1;
  std::mutex write_mu_;
  std::mutex mu_;  // table + reader election
  std::condition_variable cv_;
  bool reader_active_ = false;
  bool dead_ = false;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Parked> parked_;
  net::FrameChunker chunker_;      // guarded by reader election
  std::deque<Bytes> ready_;        // guarded by reader election
};

}  // namespace dr::svc
