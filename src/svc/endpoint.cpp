#include "svc/endpoint.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <thread>
#include <utility>

#include "crypto/signature.h"
#include "net/runner.h"
#include "sim/chaos.h"
#include "sim/runner.h"
#include "svc/io.h"
#include "util/contracts.h"
#include "util/log.h"

namespace dr::svc {

namespace {
/// Buffered pre-start frames per instance: a faster peer can be at most a
/// phase ahead (its barrier waits for us), so this bound is generous; past
/// it the instance is considered garbage and the extra frames dropped.
constexpr std::size_t kMaxPendingChunks = 4096;

/// Options::max_workers == 0 means "size the pool to the machine".
std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 2 ? hw : 2;
}
}  // namespace

EndpointNode::EndpointNode(const Options& options)
    : options_(options),
      verify_cache_(options.verify_stripes),
      pool_(resolve_workers(options.max_workers)) {
  DR_EXPECTS(options.endpoints >= 1);
  DR_EXPECTS(options.id < options.endpoints);
  mesh_fds_.assign(options.endpoints, -1);
  mesh_conns_.resize(options.endpoints);
  mesh_up_ = std::make_unique<std::atomic<bool>[]>(options.endpoints);
  for (std::size_t q = 0; q < options.endpoints; ++q) {
    mesh_up_[q].store(false, std::memory_order_relaxed);
  }
}

EndpointNode::~EndpointNode() {
  abort_all_instances();
  pool_.shutdown();  // joins in-flight instance workers
  if (listener_fd_ >= 0) ::close(listener_fd_);
  // Conns close their own fds; raw fds that never became Conns need help.
  if (coord_conn_ == nullptr && coord_fd_ >= 0) ::close(coord_fd_);
  for (std::size_t q = 0; q < mesh_fds_.size(); ++q) {
    if (mesh_conns_[q] == nullptr && mesh_fds_[q] >= 0) {
      ::close(mesh_fds_[q]);
    }
  }
}

bool EndpointNode::handshake() {
  const net::SockClock::time_point deadline =
      net::SockClock::now() + options_.handshake_timeout;
  const ProcId self = options_.id;

  // 1. Mesh listener first, so the address we advertise is already live.
  std::uint16_t mesh_port = 0;
  listener_fd_ = net::tcp_listen(options_.mesh_host, 0, mesh_port);
  if (listener_fd_ < 0) {
    DR_LOG_ERROR("svc endpoint %u: mesh listen failed", self);
    return false;
  }
  std::ostringstream mesh_addr;
  mesh_addr << options_.mesh_host << ":" << mesh_port;

  // 2. Introduce ourselves to the coordinator.
  coord_fd_ =
      net::tcp_connect_retry(options_.coord_host, options_.coord_port,
                             deadline);
  if (coord_fd_ < 0) {
    DR_LOG_ERROR("svc endpoint %u: coordinator unreachable", self);
    return false;
  }
  net::set_nodelay(coord_fd_);
  Hello hello;
  hello.role = Role::kEndpoint;
  hello.proc = self;
  hello.mesh_addr = mesh_addr.str();
  if (!write_all(coord_fd_, encode_hello(hello), deadline)) return false;

  // 3. The peer table arrives once every endpoint has registered.
  net::FrameChunker coord_chunker;
  std::deque<Bytes> coord_ready;
  std::optional<Peers> peers;
  {
    const std::optional<Bytes> body =
        read_message(coord_fd_, coord_chunker, coord_ready, deadline);
    if (!body.has_value()) return false;
    Reader r(*body);
    const std::optional<MsgHeader> header = read_header(r);
    if (!header.has_value() || header->type != MsgType::kPeers) return false;
    peers = decode_peers(r);
  }
  if (!peers.has_value() || peers->addrs.size() != options_.endpoints) {
    return false;
  }

  // 4. Mesh: dial lower ids, accept higher ids — the orientation cannot
  // deadlock (every pair has exactly one dialer).
  for (ProcId q = 0; q < self; ++q) {
    std::string host;
    std::uint16_t port = 0;
    if (!net::split_hostport(peers->addrs[q], host, port)) return false;
    const int fd = net::tcp_connect_retry(host, port, deadline);
    if (fd < 0) return false;
    net::set_nodelay(fd);
    Hello mesh_hello;
    mesh_hello.role = Role::kMeshPeer;
    mesh_hello.proc = self;
    if (!write_all(fd, encode_hello(mesh_hello), deadline)) {
      ::close(fd);
      return false;
    }
    mesh_fds_[q] = fd;
  }
  std::size_t expected =
      options_.endpoints - static_cast<std::size_t>(self) - 1;
  while (expected > 0) {
    pollfd pfd{listener_fd_, POLLIN, 0};
    const int rc = poll(&pfd, 1, net::remaining_ms(deadline));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return false;
    const int fd = accept(listener_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    net::set_nodelay(fd);
    net::FrameChunker chunker;
    std::deque<Bytes> ready;
    const std::optional<Bytes> body =
        read_message(fd, chunker, ready, deadline);
    std::optional<Hello> mesh_hello;
    if (body.has_value()) {
      Reader r(*body);
      const std::optional<MsgHeader> header = read_header(r);
      if (header.has_value() && header->type == MsgType::kHello) {
        mesh_hello = decode_hello(r);
      }
    }
    if (!mesh_hello.has_value() || mesh_hello->role != Role::kMeshPeer ||
        mesh_hello->proc <= self || mesh_hello->proc >= options_.endpoints ||
        mesh_fds_[mesh_hello->proc] >= 0) {
      ::close(fd);
      return false;
    }
    mesh_fds_[mesh_hello->proc] = fd;
    --expected;
  }

  // 5. Everything nonblocking, everything on the reactor.
  net::set_nonblocking(coord_fd_);
  coord_conn_ = std::make_unique<Conn>(reactor_, coord_fd_);
  coord_conn_->start([this](ByteView body) { on_coord_msg(body); },
                     [this] {
                       // Coordinator gone: nothing left to report to —
                       // a clean exit either way (the coordinator decides
                       // what a missing kDone means).
                       reactor_.stop();
                     });
  for (ProcId q = 0; q < options_.endpoints; ++q) {
    if (q == self || mesh_fds_[q] < 0) continue;
    net::set_nonblocking(mesh_fds_[q]);
    mesh_conns_[q] = std::make_unique<Conn>(reactor_, mesh_fds_[q]);
    mesh_conns_[q]->start(
        [this, q](ByteView body) { on_mesh_msg(q, body); },
        [this, q] { on_mesh_close(q); });
    mesh_up_[q].store(true, std::memory_order_release);
  }
  coord_conn_->send(encode_ready(self));
  return true;
}

int EndpointNode::run() {
  if (!handshake()) return 2;
  reactor_.run();
  abort_all_instances();
  pool_.shutdown();
  running_.clear();
  return exit_code_;
}

void EndpointNode::on_coord_msg(ByteView body) {
  Reader r(body);
  const std::optional<MsgHeader> header = read_header(r);
  if (!header.has_value()) return;
  switch (header->type) {
    case MsgType::kStart: {
      std::optional<SubmitRequest> req = decode_submit(r);
      if (req.has_value()) handle_start(header->id, *std::move(req));
      break;
    }
    case MsgType::kShutdown:
      exit_code_ = 0;
      reactor_.stop();
      break;
    default:
      break;  // coordinator never sends anything else; ignore
  }
}

void EndpointNode::on_mesh_msg(ProcId peer, ByteView body) {
  Reader r(body);
  const std::optional<MsgHeader> header = read_header(r);
  if (!header.has_value() || header->type != MsgType::kMesh) return;
  std::optional<Bytes> inner = decode_mesh(r);
  if (!inner.has_value()) return;

  net::RawChunk chunk;
  chunk.from = peer;
  chunk.bytes = *std::move(inner);

  const std::uint64_t id = header->id;
  const auto it = running_.find(id);
  if (it != running_.end()) {
    // The synchronizer owns frames from peers inside the instance only.
    if (peer < it->second.req.config.n) {
      it->second.channel->push(std::move(chunk));
    }
    return;
  }
  if (completed_.contains(id)) return;  // stale traffic, drop
  std::vector<net::RawChunk>& queue = pending_[id];
  if (queue.size() < kMaxPendingChunks) queue.push_back(std::move(chunk));
}

void EndpointNode::on_mesh_close(ProcId peer) {
  mesh_up_[peer].store(false, std::memory_order_release);
  // Every live instance the peer participates in observes the link event
  // at its current stream position — the synchronizer resets the link's
  // assembler and starts the peer's reconnect window, exactly as it does
  // on the blocking transports.
  for (auto& [id, inst] : running_) {
    if (peer >= inst.req.config.n) continue;
    net::RawChunk event;
    event.from = peer;
    event.event =
        net::TransportError{net::TransportErrorKind::kDisconnect, peer, 0};
    inst.channel->push(std::move(event));
  }
}

void EndpointNode::handle_start(std::uint64_t id, SubmitRequest req) {
  if (completed_.contains(id) || running_.contains(id)) return;
  if (options_.id >= req.config.n) {
    // Not a participant; remember the id so any misdirected frame drops.
    completed_.insert(id);
    pending_.erase(id);
    return;
  }
  launch(id, std::move(req));
}

void EndpointNode::launch(std::uint64_t id, SubmitRequest req) {
  Running inst;
  inst.req = req;
  inst.channel = std::make_shared<InstanceChannel>();

  // Flush frames that beat the kStart here; order within each link's
  // buffered run is arrival order, so per-link FIFO survives the detour.
  if (const auto pending = pending_.find(id); pending != pending_.end()) {
    for (net::RawChunk& chunk : pending->second) {
      if (chunk.from < req.config.n) {
        inst.channel->push(std::move(chunk));
      }
    }
    pending_.erase(pending);
  }

  std::shared_ptr<InstanceChannel> channel = inst.channel;
  inst.deadline_timer = reactor_.add_timer(
      net::SockClock::now() + options_.instance_deadline,
      [channel] { channel->abort.store(true, std::memory_order_relaxed); });

  // The record goes live before the job is queued: frames arriving while
  // the instance waits for a pool worker flow straight into the channel,
  // and the deadline timer above is already armed — an instance starved in
  // the queue past the deadline aborts the moment a worker picks it up.
  SubmitRequest worker_req = std::move(req);
  running_.emplace(id, std::move(inst));
  pool_.submit([this, id, req = std::move(worker_req), channel] {
    worker_main(id, req, channel);
  });
}

void EndpointNode::worker_main(std::uint64_t id, SubmitRequest req,
                               std::shared_ptr<InstanceChannel> channel) {
  const ProcId self = options_.id;
  const std::size_t n = req.config.n;

  EndpointDone done;
  done.p = self;

  const std::optional<ba::Protocol> protocol =
      chaos::resolve_protocol(req.protocol);
  if (!protocol.has_value() || !protocol->supports(req.config)) {
    // The coordinator validates before broadcasting; reaching this means
    // version skew. Report unfinished so the instance fails loudly.
    done.unfinished = true;
    done.metrics = sim::Metrics(n);
  } else {
    // Deterministic reconstruction from the request alone: every endpoint
    // process derives the same keys from the seed, the same scripted
    // processes from the fault list, and an identical FaultPlan copy —
    // corruption bytes are a pure function of (plan seed, coordinates),
    // so independent per-process plans perturb identically.
    const std::unique_ptr<crypto::SignatureScheme> scheme =
        sim::make_signature_scheme(sim::SchemeKind::kHmac, n, req.seed, 6);
    const crypto::Verifier verifier(scheme.get());
    std::vector<bool> faulty(n, false);
    for (const chaos::ScriptedFault& fault : req.scripted) {
      if (fault.id < n) faulty[fault.id] = true;
    }
    const sim::SignerPool pool(scheme.get(), faulty);

    std::unique_ptr<sim::Process> process;
    if (faulty[self]) {
      for (const chaos::ScriptedFault& fault : req.scripted) {
        if (fault.id == self) {
          process =
              chaos::to_scenario_fault(*protocol, fault).make(self, req.config);
          break;
        }
      }
    } else {
      process = protocol->make(self, req.config);
    }

    sim::FaultPlan plan(req.rules, req.plan_seed);
    InstanceTransport transport(id, self, n, *this, channel);

    // Per-instance view of the endpoint-wide striped verification store.
    // Realm scoping makes this session's hit/miss sequence identical to a
    // private cache's, so per-instance metrics stay parity-clean while the
    // map itself is shared (and striped) across every concurrent instance.
    crypto::StripedVerifyCache::Session session = verify_cache_.session(id);

    net::EndpointRun run;
    run.p = self;
    run.n = n;
    run.t = req.config.t;
    run.phases = protocol->steps(req.config);
    run.correct = !faulty[self];
    run.process = process.get();
    run.signer = &pool.signer_for(self);
    run.verifier = &verifier;
    run.transport = &transport;
    run.phase_timeout = options_.phase_timeout;
    run.reconnect_window = options_.reconnect_window;
    // The plan is worker-local: no other thread touches it, so the
    // submission seam needs no mutex (route_submission's contract).
    run.fault_plan = req.rules.empty() ? nullptr : &plan;
    run.fault_mu = nullptr;
    run.abort = &channel->abort;
    run.chain_cache = &session;
    // This function runs on a pool worker, so the worker's per-thread
    // arena (reset by the pool before each job) backs this instance's
    // per-phase outgoing/prewarm scratch. Null outside a pool (tests
    // calling run_instance directly) just means plain heap.
    run.scratch = InstancePool::current_scratch();

    sim::Metrics metrics(n);
    net::SyncStats sync;
    net::run_endpoint_phases(run, metrics, sync);

    const std::optional<Value> decision = process->decision();
    done.decided = decision.has_value();
    done.decision = decision.value_or(0);
    done.evidence = process->evidence().value_or(Bytes{});
    done.unfinished = channel->abort.load(std::memory_order_relaxed);
    done.metrics = std::move(metrics);
    done.sync = sync;
    done.perturbed.assign(plan.perturbed().begin(), plan.perturbed().end());

    // Cumulative endpoint-level stripe counters, snapshotted at completion.
    // Cumulative (not delta) snapshots are robust to reporting order: the
    // coordinator just keeps the latest snapshot per endpoint and sums.
    const std::size_t stripes = verify_cache_.stripe_count();
    done.verify_stripe_hits.resize(stripes);
    done.verify_stripe_misses.resize(stripes);
    for (std::size_t i = 0; i < stripes; ++i) {
      const crypto::StripedVerifyCache::StripeStats stats =
          verify_cache_.stripe_stats(i);
      done.verify_stripe_hits[i] = stats.hits;
      done.verify_stripe_misses[i] = stats.misses;
    }
  }

  Bytes done_msg = encode_done(id, done);
  reactor_.post([this, id, msg = std::move(done_msg)]() mutable {
    complete(id, std::move(msg));
  });
}

void EndpointNode::complete(std::uint64_t id, Bytes done_msg) {
  const auto it = running_.find(id);
  if (it == running_.end()) return;
  reactor_.cancel_timer(it->second.deadline_timer);
  running_.erase(it);
  completed_.insert(id);
  if (coord_conn_ != nullptr && !coord_conn_->closed()) {
    coord_conn_->send(std::move(done_msg));
  }
}

void EndpointNode::abort_all_instances() {
  for (auto& [id, inst] : running_) {
    inst.channel->abort.store(true, std::memory_order_relaxed);
  }
}

bool EndpointNode::mesh_send(std::uint64_t instance, ProcId to,
                             const net::WireParts& inner) {
  DR_EXPECTS(to < options_.endpoints && to != options_.id);
  if (!mesh_up_[to].load(std::memory_order_acquire)) return false;
  net::WireParts sealed = seal_mesh_parts(instance, inner);
  reactor_.post([this, to, sealed = std::move(sealed)] {
    Conn* conn = mesh_conns_[to].get();
    if (conn != nullptr && !conn->closed()) conn->send_parts(sealed);
  });
  return true;
}

}  // namespace dr::svc
