// dr82d — the agreement daemon (docs/SERVICE.md).
//
//   dr82d coord --listen HOST:PORT --endpoints E [--spawn]
//   dr82d endpoint --coord HOST:PORT --id P --endpoints E
//   dr82d submit --connect HOST:PORT --protocol NAME --n N --t T
//                [--transmitter P] [--value V] [--seed S] [--timeout MS]
//   dr82d metrics --connect HOST:PORT
//   dr82d smoke [--endpoints E]
//   dr82d backends
//
// `coord --spawn` re-executes this binary (via /proc/self/exe) once per
// endpoint, so one command brings up the whole multi-process deployment.
// `smoke` is the self-contained acceptance drill CI runs: spawn a full
// daemon, push a batch of instances (clean and faulty) through the client
// API, and verify every decision and metric against the in-memory
// simulator running the identical scenario.

#include <unistd.h>

#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "crypto/hash_backend.h"
#include "net/harness.h"
#include "net/sockets.h"
#include "proof/transferable.h"
#include "sim/chaos.h"
#include "svc/client.h"
#include "svc/coordinator.h"
#include "svc/endpoint.h"
#include "svc/supervisor.h"

namespace {

using namespace dr;
using namespace dr::svc;

std::string self_binary() {
  char buf[4096];
  const ssize_t got = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (got <= 0) return {};
  buf[got] = '\0';
  return std::string(buf);
}

std::optional<std::uint64_t> parse_u64(const char* s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s, s + std::strlen(s), v);
  if (ec != std::errc() || *ptr != '\0') return std::nullopt;
  return v;
}

/// Pulls `--flag value` pairs out of argv. Returns false (after printing)
/// on an unknown flag or a missing value.
struct Args {
  std::vector<std::pair<std::string, std::string>> kv;
  std::vector<std::string> flags;  // value-less switches seen

  const std::string* get(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::vector<std::string> get_all(const std::string& key) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : kv) {
      if (k == key) out.push_back(v);
    }
    return out;
  }
  bool has_flag(const std::string& key) const {
    for (const auto& f : flags) {
      if (f == key) return true;
    }
    return false;
  }
};

bool parse_args(int argc, char** argv, int start,
                const std::vector<std::string>& value_keys,
                const std::vector<std::string>& switch_keys, Args& out) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    bool matched = false;
    for (const auto& key : switch_keys) {
      if (arg == key) {
        out.flags.push_back(key);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const auto& key : value_keys) {
      if (arg == key) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "dr82d: %s needs a value\n", key.c_str());
          return false;
        }
        out.kv.emplace_back(key, argv[++i]);
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "dr82d: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool parse_hostport(const std::string& addr, std::string& host,
                    std::uint16_t& port) {
  return net::split_hostport(addr, host, port);
}

std::vector<std::string> endpoint_argv(const std::string& binary,
                                       const std::string& coord_addr,
                                       std::size_t id, std::size_t e) {
  return {binary,          "endpoint",
          "--coord",       coord_addr,
          "--id",          std::to_string(id),
          "--endpoints",   std::to_string(e)};
}

int cmd_coord(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, 2, {"--listen", "--endpoints"}, {"--spawn"},
                  args)) {
    return 2;
  }
  Coordinator::Options options;
  if (const auto* listen = args.get("--listen")) {
    if (!parse_hostport(*listen, options.listen_host, options.listen_port)) {
      std::fprintf(stderr, "dr82d: bad --listen %s\n", listen->c_str());
      return 2;
    }
  }
  if (const auto* e = args.get("--endpoints")) {
    const auto v = parse_u64(e->c_str());
    if (!v.has_value() || *v == 0) {
      std::fprintf(stderr, "dr82d: bad --endpoints\n");
      return 2;
    }
    options.endpoints = static_cast<std::size_t>(*v);
  }

  Coordinator coordinator(options);
  if (!coordinator.bind()) {
    std::fprintf(stderr, "dr82d: cannot bind %s:%u\n",
                 options.listen_host.c_str(), options.listen_port);
    return 1;
  }
  std::printf("dr82d: coordinator on %s:%u, %zu endpoints\n",
              options.listen_host.c_str(), coordinator.port(),
              options.endpoints);
  std::fflush(stdout);

  Supervisor supervisor;
  if (args.has_flag("--spawn")) {
    const std::string binary = self_binary();
    if (binary.empty()) {
      std::fprintf(stderr, "dr82d: cannot resolve own binary for --spawn\n");
      return 1;
    }
    const std::string coord_addr = options.listen_host + ":" +
                                   std::to_string(coordinator.port());
    for (std::size_t p = 0; p < options.endpoints; ++p) {
      if (supervisor.spawn(endpoint_argv(binary, coord_addr, p,
                                         options.endpoints)) < 0) {
        std::fprintf(stderr, "dr82d: spawn failed for endpoint %zu\n", p);
        supervisor.kill_all(SIGTERM);
        supervisor.wait_all();
        return 1;
      }
    }
  }

  const int rc = coordinator.serve();
  const std::size_t abnormal = supervisor.wait_all();
  if (abnormal != 0) {
    std::fprintf(stderr, "dr82d: %zu endpoint(s) exited abnormally\n",
                 abnormal);
    return 1;
  }
  return rc;
}

int cmd_endpoint(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, 2, {"--coord", "--id", "--endpoints"}, {},
                  args)) {
    return 2;
  }
  EndpointNode::Options options;
  const auto* coord = args.get("--coord");
  const auto* id = args.get("--id");
  const auto* endpoints = args.get("--endpoints");
  if (coord == nullptr || id == nullptr || endpoints == nullptr) {
    std::fprintf(stderr,
                 "dr82d: endpoint needs --coord, --id and --endpoints\n");
    return 2;
  }
  if (!parse_hostport(*coord, options.coord_host, options.coord_port)) {
    std::fprintf(stderr, "dr82d: bad --coord %s\n", coord->c_str());
    return 2;
  }
  const auto id_v = parse_u64(id->c_str());
  const auto e_v = parse_u64(endpoints->c_str());
  if (!id_v.has_value() || !e_v.has_value() || *e_v == 0 || *id_v >= *e_v) {
    std::fprintf(stderr, "dr82d: need 0 <= --id < --endpoints\n");
    return 2;
  }
  options.id = static_cast<ProcId>(*id_v);
  options.endpoints = static_cast<std::size_t>(*e_v);
  EndpointNode node(options);
  return node.run();
}

/// Builds the kSim reference for a submitted scenario and diffs the
/// daemon's response against it with the shared parity comparator.
/// Returns the number of mismatches (0 = parity holds).
std::size_t diff_against_sim(const char* label, const SubmitRequest& req,
                             const DecisionResponse& resp) {
  chaos::Scenario scenario;
  scenario.protocol = req.protocol;
  scenario.config = req.config;
  scenario.seed = req.seed;
  scenario.plan_seed = req.plan_seed;
  scenario.scripted = req.scripted;
  scenario.rules = req.rules;
  const chaos::Outcome want = chaos::execute(scenario, chaos::Backend::kSim);

  sim::RunResult got;
  got.decisions = resp.decisions;
  got.faulty = resp.scripted_faulty;
  got.metrics = resp.metrics;

  net::ParityReport report;
  net::compare_parity_runs(label, want.result, got, report);
  if (want.perturbed != resp.perturbed) {
    report.ok = false;
    report.mismatches.push_back(std::string(label) +
                                ": perturbed set differs");
  }
  if (resp.watchdog_fired) {
    report.ok = false;
    report.mismatches.push_back(std::string(label) + ": watchdog fired");
  }
  for (const auto& m : report.mismatches) {
    std::fprintf(stderr, "dr82d smoke: %s\n", m.c_str());
  }
  return report.mismatches.size();
}

int cmd_smoke(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, 2, {"--endpoints"}, {}, args)) return 2;
  std::size_t endpoints = 5;
  if (const auto* e = args.get("--endpoints")) {
    const auto v = parse_u64(e->c_str());
    if (!v.has_value() || *v < 2) {
      std::fprintf(stderr, "dr82d: bad --endpoints\n");
      return 2;
    }
    endpoints = static_cast<std::size_t>(*v);
  }

  const std::string binary = self_binary();
  if (binary.empty()) {
    std::fprintf(stderr, "dr82d: cannot resolve own binary\n");
    return 1;
  }

  Coordinator::Options coptions;
  coptions.endpoints = endpoints;
  Coordinator coordinator(coptions);
  if (!coordinator.bind()) {
    std::fprintf(stderr, "dr82d: smoke bind failed\n");
    return 1;
  }
  std::thread serve_thread([&coordinator] { (void)coordinator.serve(); });

  Supervisor supervisor;
  const std::string coord_addr =
      "127.0.0.1:" + std::to_string(coordinator.port());
  bool spawned = true;
  for (std::size_t p = 0; p < endpoints; ++p) {
    if (supervisor.spawn(endpoint_argv(binary, coord_addr, p, endpoints)) <
        0) {
      spawned = false;
      break;
    }
  }

  std::size_t failures = spawned ? 0 : 1;
  Client client;
  if (spawned && client.connect("127.0.0.1", coordinator.port(),
                                std::chrono::seconds(10))) {
    const auto n = endpoints;
    const auto t = (n - 1) / 2;

    // Clean run.
    SubmitRequest clean;
    clean.protocol = "dolev-strong";
    clean.config = {n, t, 0, 1};
    clean.seed = 7;
    // Scripted Byzantine processor.
    SubmitRequest scripted = clean;
    scripted.protocol = "alg1";
    scripted.seed = 11;
    if (t >= 1) {
      chaos::ScriptedFault fault;
      fault.kind = chaos::ScriptedKind::kSilent;
      fault.id = 1;
      scripted.scripted.push_back(fault);
    }
    // Transport fault plan. EIG needs n >= 3t + 1.
    SubmitRequest plan = clean;
    plan.protocol = "eig";
    plan.config.t = (n - 1) / 3;
    plan.seed = 13;
    plan.plan_seed = 5;
    plan.rules.push_back({sim::FaultKind::kDrop, 1, 2, 1});
    plan.rules.push_back({sim::FaultKind::kCorrupt, 0, 3, sim::kAnyPhase});

    const std::vector<std::pair<const char*, SubmitRequest>> cases = {
        {"clean/dolev-strong", clean},
        {"scripted/alg1", scripted},
        {"faultplan/eig", plan},
    };
    // Submit everything up front — the instances run concurrently — then
    // collect in order.
    std::vector<std::uint64_t> ids;
    for (const auto& [label, req] : cases) {
      (void)label;
      ids.push_back(client.submit(req));
    }
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const auto& [label, req] = cases[i];
      if (ids[i] == 0) {
        std::fprintf(stderr, "dr82d smoke: %s: submit failed\n", label);
        ++failures;
        continue;
      }
      const auto resp = client.wait(ids[i], std::chrono::seconds(60));
      if (!resp.has_value() || !resp->ok) {
        std::fprintf(stderr, "dr82d smoke: %s: no decision (%s)\n", label,
                     resp.has_value() ? resp->error.c_str() : "timeout");
        ++failures;
        continue;
      }
      failures += diff_against_sim(label, req, *resp);
    }

    const auto metrics = client.metrics(std::chrono::seconds(10));
    if (!metrics.has_value() ||
        metrics->find("dr82_instances_completed_total") ==
            std::string::npos) {
      std::fprintf(stderr, "dr82d smoke: metrics dump missing counters\n");
      ++failures;
    }

    (void)client.shutdown_server();
  } else if (spawned) {
    std::fprintf(stderr, "dr82d smoke: client connect failed\n");
    ++failures;
  } else {
    std::fprintf(stderr, "dr82d smoke: endpoint spawn failed\n");
  }

  coordinator.stop();
  serve_thread.join();
  failures += supervisor.wait_all();

  if (failures == 0) {
    std::printf("dr82d smoke: OK (%zu endpoints, daemon == simulator)\n",
                endpoints);
    return 0;
  }
  std::fprintf(stderr, "dr82d smoke: FAILED (%zu problem(s))\n", failures);
  return 1;
}

int cmd_submit(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, 2,
                  {"--connect", "--protocol", "--n", "--t", "--transmitter",
                   "--value", "--seed", "--timeout"},
                  {}, args)) {
    return 2;
  }
  const auto* connect = args.get("--connect");
  const auto* protocol = args.get("--protocol");
  const auto* n = args.get("--n");
  const auto* t = args.get("--t");
  if (connect == nullptr || protocol == nullptr || n == nullptr ||
      t == nullptr) {
    std::fprintf(
        stderr,
        "dr82d: submit needs --connect, --protocol, --n and --t\n");
    return 2;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!parse_hostport(*connect, host, port)) {
    std::fprintf(stderr, "dr82d: bad --connect %s\n", connect->c_str());
    return 2;
  }
  SubmitRequest req;
  req.protocol = *protocol;
  const auto n_v = parse_u64(n->c_str());
  const auto t_v = parse_u64(t->c_str());
  if (!n_v.has_value() || !t_v.has_value() || *n_v == 0) {
    std::fprintf(stderr, "dr82d: bad --n/--t\n");
    return 2;
  }
  req.config.n = static_cast<std::size_t>(*n_v);
  req.config.t = static_cast<std::size_t>(*t_v);
  if (const auto* v = args.get("--transmitter")) {
    const auto p = parse_u64(v->c_str());
    if (!p.has_value()) return 2;
    req.config.transmitter = static_cast<ProcId>(*p);
  }
  if (const auto* v = args.get("--value")) {
    const auto val = parse_u64(v->c_str());
    if (!val.has_value()) return 2;
    req.config.value = *val;
  }
  if (const auto* v = args.get("--seed")) {
    const auto s = parse_u64(v->c_str());
    if (!s.has_value()) return 2;
    req.seed = *s;
  }
  auto timeout = std::chrono::milliseconds(60000);
  if (const auto* v = args.get("--timeout")) {
    const auto ms = parse_u64(v->c_str());
    if (!ms.has_value()) return 2;
    timeout = std::chrono::milliseconds(*ms);
  }

  Client client;
  if (!client.connect(host, port, std::chrono::seconds(10))) {
    std::fprintf(stderr, "dr82d: cannot connect %s\n", connect->c_str());
    return 1;
  }
  const auto resp = client.run(req, timeout);
  if (!resp.has_value()) {
    std::fprintf(stderr, "dr82d: no response\n");
    return 1;
  }
  if (!resp->ok) {
    std::fprintf(stderr, "dr82d: rejected: %s\n", resp->error.c_str());
    return 1;
  }
  for (std::size_t p = 0; p < resp->decisions.size(); ++p) {
    if (resp->decisions[p].has_value()) {
      std::printf("processor %zu decided %llu\n", p,
                  static_cast<unsigned long long>(*resp->decisions[p]));
    } else {
      std::printf("processor %zu undecided\n", p);
    }
  }
  if (resp->watchdog_fired) std::printf("watchdog fired\n");
  std::printf("instance %llu\n",
              static_cast<unsigned long long>(resp->instance));
  return resp->watchdog_fired ? 1 : 0;
}

int cmd_metrics(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, 2, {"--connect"}, {}, args)) return 2;
  const auto* connect = args.get("--connect");
  if (connect == nullptr) {
    std::fprintf(stderr, "dr82d: metrics needs --connect\n");
    return 2;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!parse_hostport(*connect, host, port)) {
    std::fprintf(stderr, "dr82d: bad --connect %s\n", connect->c_str());
    return 2;
  }
  Client client;
  if (!client.connect(host, port, std::chrono::seconds(10))) {
    std::fprintf(stderr, "dr82d: cannot connect %s\n", connect->c_str());
    return 1;
  }
  const auto text = client.metrics(std::chrono::seconds(10));
  if (!text.has_value()) {
    std::fprintf(stderr, "dr82d: no metrics response\n");
    return 1;
  }
  std::fputs(text->c_str(), stdout);
  return 0;
}

bool write_file(const std::string& path, ByteView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

std::optional<Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

/// Fetches one holder's proof::Transferable from the daemon and writes the
/// raw bytes to --out (or prints them as hex). The printed digest is the
/// proof's content address — what the proven-value store keys on.
int cmd_prove(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, 2,
                  {"--connect", "--instance", "--holder", "--out"}, {},
                  args)) {
    return 2;
  }
  const auto* connect = args.get("--connect");
  const auto* instance = args.get("--instance");
  const auto* holder = args.get("--holder");
  if (connect == nullptr || instance == nullptr || holder == nullptr) {
    std::fprintf(stderr,
                 "dr82d: prove needs --connect, --instance and --holder\n");
    return 2;
  }
  std::string host;
  std::uint16_t port = 0;
  if (!parse_hostport(*connect, host, port)) {
    std::fprintf(stderr, "dr82d: bad --connect %s\n", connect->c_str());
    return 2;
  }
  const auto instance_v = parse_u64(instance->c_str());
  const auto holder_v = parse_u64(holder->c_str());
  if (!instance_v.has_value() || !holder_v.has_value()) {
    std::fprintf(stderr, "dr82d: bad --instance/--holder\n");
    return 2;
  }
  Client client;
  if (!client.connect(host, port, std::chrono::seconds(10))) {
    std::fprintf(stderr, "dr82d: cannot connect %s\n", connect->c_str());
    return 1;
  }
  const auto resp = client.prove(*instance_v,
                                 static_cast<ProcId>(*holder_v),
                                 std::chrono::seconds(10));
  if (!resp.has_value()) {
    std::fprintf(stderr, "dr82d: no proof response\n");
    return 1;
  }
  if (!resp->ok) {
    std::fprintf(stderr, "dr82d: prove failed: %s\n", resp->error.c_str());
    return 1;
  }
  const auto decoded = proof::decode_transferable(
      ByteView{resp->proof.data(), resp->proof.size()});
  if (!decoded.has_value()) {
    std::fprintf(stderr, "dr82d: daemon returned an undecodable proof\n");
    return 1;
  }
  std::printf("proof %zu bytes, value %llu, digest %s\n", resp->proof.size(),
              static_cast<unsigned long long>(decoded->value()),
              to_hex(ByteView{proof::digest(*decoded).data(),
                              proof::digest(*decoded).size()})
                  .c_str());
  if (const auto* out = args.get("--out")) {
    if (!write_file(*out, ByteView{resp->proof.data(), resp->proof.size()})) {
      std::fprintf(stderr, "dr82d: cannot write %s\n", out->c_str());
      return 1;
    }
  } else {
    std::printf("%s\n",
                to_hex(ByteView{resp->proof.data(), resp->proof.size()})
                    .c_str());
  }
  return 0;
}

/// Verifies serialized proofs: against a running daemon's proven-value
/// store (--connect) or fully offline with the verifier rebuilt from each
/// proof's own realm (--offline — works with no daemon anywhere).
int cmd_verify(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, 2, {"--connect", "--proof"}, {"--offline"},
                  args)) {
    return 2;
  }
  const std::vector<std::string> paths = args.get_all("--proof");
  const auto* connect = args.get("--connect");
  const bool offline = args.has_flag("--offline");
  if (paths.empty() || (connect == nullptr) == !offline) {
    std::fprintf(
        stderr,
        "dr82d: verify needs --proof FILE... and exactly one of"
        " --connect HOST:PORT or --offline\n");
    return 2;
  }
  std::vector<Bytes> proofs;
  for (const std::string& path : paths) {
    auto bytes = read_file(path);
    if (!bytes.has_value()) {
      std::fprintf(stderr, "dr82d: cannot read %s\n", path.c_str());
      return 1;
    }
    proofs.push_back(*std::move(bytes));
  }

  std::size_t rejected = 0;
  if (offline) {
    for (std::size_t i = 0; i < proofs.size(); ++i) {
      proof::Verdict verdict = proof::Verdict::kMalformedChain;
      const auto decoded = proof::decode_transferable(
          ByteView{proofs[i].data(), proofs[i].size()});
      if (decoded.has_value()) {
        const proof::OfflineVerifier verifier(decoded->realm);
        verdict = proof::verify_offline(*decoded, verifier);
      }
      if (verdict != proof::Verdict::kOk) ++rejected;
      std::printf("%s: %s\n", paths[i].c_str(), proof::to_string(verdict));
    }
  } else {
    std::string host;
    std::uint16_t port = 0;
    if (!parse_hostport(*connect, host, port)) {
      std::fprintf(stderr, "dr82d: bad --connect %s\n", connect->c_str());
      return 2;
    }
    Client client;
    if (!client.connect(host, port, std::chrono::seconds(10))) {
      std::fprintf(stderr, "dr82d: cannot connect %s\n", connect->c_str());
      return 1;
    }
    const auto verdicts =
        client.verify_proofs(proofs, std::chrono::seconds(30));
    if (!verdicts.has_value() || verdicts->size() != proofs.size()) {
      std::fprintf(stderr, "dr82d: no verification response\n");
      return 1;
    }
    for (std::size_t i = 0; i < proofs.size(); ++i) {
      const auto verdict = static_cast<proof::Verdict>((*verdicts)[i]);
      if (verdict != proof::Verdict::kOk) ++rejected;
      std::printf("%s: %s\n", paths[i].c_str(), proof::to_string(verdict));
    }
  }
  return rejected == 0 ? 0 : 1;
}

/// CI's proof acceptance drill: bring up a full daemon, run an instance,
/// extract every holder's proof over the wire, shut the daemon down, then
/// verify every proof offline — the coordinator that produced them no
/// longer exists, which is the whole point of a transferable proof. A
/// tampered copy must fail the same offline check.
int cmd_proof_smoke(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, 2, {"--endpoints"}, {}, args)) return 2;
  std::size_t endpoints = 5;
  if (const auto* e = args.get("--endpoints")) {
    const auto v = parse_u64(e->c_str());
    if (!v.has_value() || *v < 2) {
      std::fprintf(stderr, "dr82d: bad --endpoints\n");
      return 2;
    }
    endpoints = static_cast<std::size_t>(*v);
  }
  const std::string binary = self_binary();
  if (binary.empty()) {
    std::fprintf(stderr, "dr82d: cannot resolve own binary\n");
    return 1;
  }

  Coordinator::Options coptions;
  coptions.endpoints = endpoints;
  Coordinator coordinator(coptions);
  if (!coordinator.bind()) {
    std::fprintf(stderr, "dr82d: proof-smoke bind failed\n");
    return 1;
  }
  std::thread serve_thread([&coordinator] { (void)coordinator.serve(); });

  Supervisor supervisor;
  const std::string coord_addr =
      "127.0.0.1:" + std::to_string(coordinator.port());
  bool spawned = true;
  for (std::size_t p = 0; p < endpoints; ++p) {
    if (supervisor.spawn(endpoint_argv(binary, coord_addr, p, endpoints)) <
        0) {
      spawned = false;
      break;
    }
  }

  std::size_t failures = spawned ? 0 : 1;
  std::vector<Bytes> proofs;
  Client client;
  if (spawned && client.connect("127.0.0.1", coordinator.port(),
                                std::chrono::seconds(10))) {
    SubmitRequest req;
    req.protocol = "dolev-strong";
    req.config = {endpoints, (endpoints - 1) / 2, 0, 1};
    req.seed = 17;
    const auto resp = client.run(req, std::chrono::seconds(60));
    if (!resp.has_value() || !resp->ok || resp->watchdog_fired) {
      std::fprintf(stderr, "dr82d proof-smoke: instance failed\n");
      ++failures;
    } else {
      for (std::size_t p = 0; p < endpoints; ++p) {
        const auto proof = client.prove(resp->instance,
                                        static_cast<ProcId>(p),
                                        std::chrono::seconds(10));
        if (!proof.has_value() || !proof->ok) {
          std::fprintf(stderr, "dr82d proof-smoke: no proof for %zu\n", p);
          ++failures;
          continue;
        }
        proofs.push_back(proof->proof);
      }
      // The daemon's own bulk path must accept what it extracted (these
      // digests are already in its store: the light path answers).
      const auto verdicts =
          client.verify_proofs(proofs, std::chrono::seconds(30));
      if (!verdicts.has_value() || verdicts->size() != proofs.size()) {
        std::fprintf(stderr, "dr82d proof-smoke: bulk verify failed\n");
        ++failures;
      } else {
        for (const std::uint8_t v : *verdicts) {
          if (static_cast<proof::Verdict>(v) != proof::Verdict::kOk) {
            std::fprintf(stderr,
                         "dr82d proof-smoke: daemon rejected own proof\n");
            ++failures;
          }
        }
      }
    }
    (void)client.shutdown_server();
  } else if (spawned) {
    std::fprintf(stderr, "dr82d proof-smoke: client connect failed\n");
    ++failures;
  } else {
    std::fprintf(stderr, "dr82d proof-smoke: endpoint spawn failed\n");
  }

  coordinator.stop();
  serve_thread.join();
  failures += supervisor.wait_all();

  // The daemon is gone. Every proof must still verify from its bytes
  // alone; a flipped byte must not.
  if (proofs.size() != endpoints) {
    std::fprintf(stderr, "dr82d proof-smoke: %zu/%zu proofs extracted\n",
                 proofs.size(), endpoints);
    ++failures;
  }
  for (const Bytes& bytes : proofs) {
    const auto decoded =
        proof::decode_transferable(ByteView{bytes.data(), bytes.size()});
    if (!decoded.has_value()) {
      std::fprintf(stderr, "dr82d proof-smoke: undecodable proof\n");
      ++failures;
      continue;
    }
    const proof::OfflineVerifier verifier(decoded->realm);
    if (proof::verify_offline(*decoded, verifier) != proof::Verdict::kOk) {
      std::fprintf(stderr,
                   "dr82d proof-smoke: offline verification rejected an"
                   " honest proof\n");
      ++failures;
    }
  }
  if (!proofs.empty()) {
    Bytes tampered = proofs.front();
    tampered[tampered.size() / 2] ^= 0x01;
    const auto decoded = proof::decode_transferable(
        ByteView{tampered.data(), tampered.size()});
    bool rejected = !decoded.has_value();
    if (!rejected) {
      const proof::OfflineVerifier verifier(decoded->realm);
      rejected =
          proof::verify_offline(*decoded, verifier) != proof::Verdict::kOk;
    }
    if (!rejected) {
      std::fprintf(stderr,
                   "dr82d proof-smoke: tampered proof accepted offline\n");
      ++failures;
    }
  }

  if (failures == 0) {
    std::printf(
        "dr82d proof-smoke: OK (%zu proofs verified offline after daemon"
        " shutdown)\n",
        proofs.size());
    return 0;
  }
  std::fprintf(stderr, "dr82d proof-smoke: FAILED (%zu problem(s))\n",
               failures);
  return 1;
}

// Capability probe: which SHA-256 backends this build + CPU can run and
// which one dispatch resolved to (after DR82_HASH_BACKEND). CI prints
// this before the crypto suites so a skipped SIMD equivalence test is
// attributable to the runner, not the build.
int cmd_backends(int, char**) {
  std::printf("cpu: sha_ni=%s avx2=%s\n",
              crypto::cpu_supports_sha_ni() ? "yes" : "no",
              crypto::cpu_supports_avx2() ? "yes" : "no");
  for (const crypto::HashBackend* backend :
       crypto::supported_hash_backends()) {
    std::printf("supported: %-6s (lanes=%zu)\n", backend->name,
                backend->lanes);
  }
  std::printf("active: %s\n", crypto::hash_backend().name);
  return 0;
}

void usage() {
  std::fputs(
      "usage: dr82d <coord|endpoint|submit|metrics|prove|verify|smoke|"
      "proof-smoke|backends> [options]\n"
      "  coord       --listen HOST:PORT --endpoints E [--spawn]\n"
      "  endpoint    --coord HOST:PORT --id P --endpoints E\n"
      "  submit      --connect HOST:PORT --protocol NAME --n N --t T\n"
      "              [--transmitter P] [--value V] [--seed S]"
      " [--timeout MS]\n"
      "  metrics     --connect HOST:PORT\n"
      "  prove       --connect HOST:PORT --instance I --holder P"
      " [--out FILE]\n"
      "  verify      --proof FILE... (--connect HOST:PORT | --offline)\n"
      "  smoke       [--endpoints E]\n"
      "  proof-smoke [--endpoints E]\n"
      "  backends\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "coord") return cmd_coord(argc, argv);
  if (cmd == "endpoint") return cmd_endpoint(argc, argv);
  if (cmd == "submit") return cmd_submit(argc, argv);
  if (cmd == "metrics") return cmd_metrics(argc, argv);
  if (cmd == "prove") return cmd_prove(argc, argv);
  if (cmd == "verify") return cmd_verify(argc, argv);
  if (cmd == "smoke") return cmd_smoke(argc, argv);
  if (cmd == "proof-smoke") return cmd_proof_smoke(argc, argv);
  if (cmd == "backends") return cmd_backends(argc, argv);
  usage();
  return 2;
}
