// A fixed pool of instance workers for the agreement daemon's endpoints.
//
// The endpoint used to spawn one OS thread per kStart (bounded only by an
// admission counter), so N concurrent instances cost N stacks and N
// schedulable threads per endpoint process. The pool inverts that: a fixed
// set of workers drains a FIFO queue of instance jobs, so concurrency per
// endpoint is capped at the pool size and further instances wait their
// turn in line.
//
// FIFO order is what makes the cap deadlock-free across the mesh. Every
// endpoint receives kStart messages over one TCP connection from the
// coordinator, so all endpoints enqueue instances in the same global
// order. Consider the earliest-started instance not yet finished
// everywhere: on each participating endpoint, every instance ordered
// before it has finished there, so it is either already running or at the
// head of the queue — either way it holds (or immediately gets) a worker
// on all of its participants, its phase barriers can complete, and it
// terminates (the per-instance watchdog bounds even the faulty cases). By
// induction the whole backlog drains, for any pool size >= 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/arena.h"

namespace dr::svc {

class InstancePool {
 public:
  /// Starts `workers` threads (at least 1).
  explicit InstancePool(std::size_t workers);

  /// Equivalent to shutdown().
  ~InstancePool();

  InstancePool(const InstancePool&) = delete;
  InstancePool& operator=(const InstancePool&) = delete;

  /// Appends a job to the FIFO queue. Jobs submitted after shutdown() are
  /// silently dropped (the daemon is exiting; their instances report
  /// nothing, which the coordinator's watchdog already handles).
  void submit(std::function<void()> job);

  /// Stops accepting work, discards jobs still queued (running jobs finish
  /// normally — they hold instance state that must unwind), and joins the
  /// workers. Idempotent.
  void shutdown();

  std::size_t worker_count() const { return workers_.size(); }

  /// Jobs waiting for a worker (diagnostics/tests; racy by nature).
  std::size_t queued() const;

  /// The calling pool worker's reusable scratch arena, or nullptr when the
  /// caller is not a pool worker thread. The pool resets it before each
  /// job, so every instance starts from a recycled-but-empty arena and a
  /// worker's steady-state message plane reuses one block list across all
  /// the instances it ever runs. Nothing carved from it may outlive the
  /// job that carved it.
  static Arena* current_scratch() { return t_scratch_; }

 private:
  void worker_main();

  inline static thread_local Arena* t_scratch_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dr::svc
