// The daemon's event loop: a single-threaded epoll reactor.
//
// Every socket the daemon owns — the listener, the coordinator link, the
// mesh links, client connections — is nonblocking and registered here with
// a callback; one thread multiplexes all of them. Instance workers (the
// only other threads) never touch a socket: they talk to the reactor
// exclusively through post(), which enqueues a closure and wakes the loop
// via an eventfd. That one rule is the whole threading model — sockets,
// Conn outboxes, timers and the instance table are reactor-thread state
// and need no locks.
//
// Contrast with net/tcp.cpp: the blocking transport spends a thread per
// endpoint parked in poll(); the reactor replaces thread-per-connection
// with connection state machines, which is what lets one endpoint process
// multiplex hundreds of concurrent BA instances over a handful of mesh
// sockets.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "net/sockets.h"
#include "net/transport.h"
#include "sim/payload.h"
#include "util/bytes.h"

namespace dr::svc {

class Reactor {
 public:
  using FdHandler = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT). Reactor thread only
  /// (before run() counts: the caller is about to become the loop).
  void add(int fd, std::uint32_t events, FdHandler handler);
  void modify(int fd, std::uint32_t events);
  /// Deregisters; does not close. Safe from inside the fd's own handler.
  void remove(int fd);

  /// One-shot timer. Reactor thread only. Returns an id for cancel_timer.
  TimerId add_timer(net::SockClock::time_point when,
                    std::function<void()> fn);
  void cancel_timer(TimerId id);

  /// Thread-safe: enqueues `fn` to run on the reactor thread and wakes the
  /// loop. The only entry point worker threads may use.
  void post(std::function<void()> fn);

  /// Runs until stop(). Dispatches fd events, expired timers and posted
  /// closures; epoll_wait sleeps until the next timer deadline.
  void run();
  /// Thread-safe; makes run() return after the current dispatch round.
  void stop();

 private:
  void drain_posted();
  void fire_timers();
  int timeout_to_next_timer() const;

  int epfd_ = -1;
  int wakefd_ = -1;
  std::unordered_map<int, FdHandler> handlers_;
  std::multimap<net::SockClock::time_point, std::pair<TimerId, std::function<void()>>>
      timers_;
  TimerId next_timer_ = 1;
  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;  // guarded by post_mu_
  bool stop_ = false;  // reactor thread only; stop() posts the flip
};

/// One framed, nonblocking connection owned by the reactor.
//
// Inbound: arbitrary read chunks feed a net::FrameChunker; each delimited,
// CRC-verified body is handed to the message callback (the same delimiter
// the net frame layer uses, so the two read paths cannot drift).
//
// Outbound: a deque of segments — owned byte buffers interleaved with
// sim::Payload handles — flushed with writev. A queued protocol payload is
// never copied: the kernel gathers it straight from the buffer the
// protocol layer allocated (the zero-copy plane's last hop). EPOLLOUT is
// armed only while the outbox is non-empty.
class Conn {
 public:
  /// `body` is one verified message body (header not yet parsed).
  using MsgHandler = std::function<void(ByteView body)>;
  using CloseHandler = std::function<void()>;

  /// Takes ownership of `fd` (must already be nonblocking).
  Conn(Reactor& reactor, int fd);
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  /// Registers with the reactor. Handlers fire on the reactor thread.
  /// `on_close` fires at most once (peer close, error, or poisoned
  /// stream); the Conn stays allocated until the owner destroys it.
  void start(MsgHandler on_msg, CloseHandler on_close);

  /// Queues one sealed message / message parts. Reactor thread only
  /// (workers post() a closure that calls this). No-op after close.
  void send(Bytes message);
  void send_parts(const net::WireParts& parts);

  /// Deregisters and closes the descriptor. Idempotent.
  void close();

  bool closed() const { return fd_ < 0; }
  std::size_t outbox_bytes() const { return outbox_bytes_; }

 private:
  struct Segment {
    Bytes owned;          // used when payload is empty
    sim::Payload payload; // shared handle, flushed without a copy
    ByteView view() const {
      return payload.empty() ? ByteView(owned) : payload.view();
    }
  };

  void on_events(std::uint32_t events);
  void read_ready();
  void flush();
  void arm_write(bool want);

  Reactor& reactor_;
  int fd_;
  MsgHandler on_msg_;
  CloseHandler on_close_;
  net::FrameChunker chunker_;
  std::size_t poisoned_bytes_ = 0;
  std::deque<Segment> outbox_;
  std::size_t outbox_bytes_ = 0;
  std::size_t head_offset_ = 0;  // flushed bytes of outbox_.front()
  bool write_armed_ = false;
  bool closing_ = false;  // on_close_ dispatched
};

}  // namespace dr::svc
