// Lightweight contract macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations are programming errors, not
// recoverable conditions, so they terminate after printing a diagnostic.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dr::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace dr::detail

#define DR_EXPECTS(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::dr::detail::contract_failure("Precondition", #cond, __FILE__,     \
                                     __LINE__);                           \
  } while (0)

#define DR_ENSURES(cond)                                                  \
  do {                                                                    \
    if (!(cond))                                                          \
      ::dr::detail::contract_failure("Postcondition", #cond, __FILE__,    \
                                     __LINE__);                           \
  } while (0)

#define DR_ASSERT(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::dr::detail::contract_failure("Invariant", #cond, __FILE__,        \
                                     __LINE__);                           \
  } while (0)
