// Deterministic pseudo-random generators for reproducible simulations.
//
// SplitMix64 seeds Xoshiro256**; both follow the published reference
// algorithms (Blackman & Vigna). Satisfies std::uniform_random_bit_generator
// so it plugs into <random> distributions, but the helpers below are the
// intended interface: they are stable across standard-library versions,
// which <random> distributions are not.
#pragma once

#include <cstdint>
#include <limits>

#include "util/bytes.h"

namespace dr {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform in [0, bound). Precondition: bound > 0. Uses Lemire rejection.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// `n` random bytes.
  Bytes bytes(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace dr
