// Global operator new/delete replacements backing util::AllocStats.
//
// Linking rule: any object file in the final binary that calls operator new
// leaves the symbol undefined, the linker searches libdr82 before the C++
// runtime, and this TU defines it — so every allocation in every binary of
// this repo (tests, benches, the daemon) is counted. The replacements
// forward to std::malloc/std::free, which keeps them compatible with
// ASan/LSan/TSan (those intercept at the malloc layer, below us).
//
// The counters deliberately measure *requested* sizes, not malloc's rounded
// block sizes: the question the message plane asks is "how many allocations
// did this phase perform", and for that the request count is the signal.
#include "util/alloc_stats.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace dr::util {
namespace {

std::atomic<std::uint64_t> g_blocks{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_frees{0};

// Plain (non-atomic) per-thread tallies: only this thread writes them.
struct ThreadTally {
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
  std::uint64_t frees = 0;
};
thread_local ThreadTally t_tally;

}  // namespace

AllocCounters AllocStats::process() {
  return {g_blocks.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed)};
}

AllocCounters AllocStats::thread() {
  return {t_tally.blocks, t_tally.bytes, t_tally.frees};
}

void AllocStats::note_alloc(std::size_t bytes) noexcept {
  g_blocks.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
  t_tally.blocks += 1;
  t_tally.bytes += bytes;
}

void AllocStats::note_free() noexcept {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  t_tally.frees += 1;
}

}  // namespace dr::util

namespace {

void* counted_alloc(std::size_t size) {
  // malloc(0) may return null legally; operator new must not.
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p != nullptr) dr::util::AllocStats::note_alloc(size);
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded);
  if (p != nullptr) dr::util::AllocStats::note_alloc(size);
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  dr::util::AllocStats::note_free();
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p =
      counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
