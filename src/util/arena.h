// A monotonic bump allocator for phase- and run-scoped scratch.
//
// The message plane routes its per-phase traffic through arenas: the
// batch-verification prepass (ba::prewarm_inbox) builds digest and request
// arrays sized by the whole inbox, the Context stages its outgoing queue,
// and sim::Payload carves run-scoped message buffers. Growing std::vectors
// from the heap each time costs a malloc/free pair per array per phase; an
// Arena turns that into pointer bumps against blocks that are recycled with
// reset() — zero allocator traffic per phase once the block list has warmed
// up, which the counting allocator (util/alloc_stats.h) verifies.
//
// Not thread-safe; the intended shape is one arena per worker lane, reset
// at the top of each phase (scratch) or each run (payload buffers).
// Destructors of arena-allocated objects are NOT run by reset() — only use
// it for trivially-destructible payloads or via containers that don't own
// non-arena resources.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/contracts.h"

namespace dr {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockSize = 64 * 1024;

  explicit Arena(std::size_t block_size = kDefaultBlockSize)
      : block_size_(block_size == 0 ? kDefaultBlockSize : block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    global_reserved_.fetch_sub(bytes_reserved(), std::memory_order_relaxed);
  }

  /// Bump-allocates `size` bytes aligned to `align` (a power of two).
  /// Oversized requests get a dedicated block; everything stays owned by
  /// the arena until destruction.
  void* allocate(std::size_t size, std::size_t align) {
    DR_EXPECTS(align != 0 && (align & (align - 1)) == 0);
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (base + (align - 1)) & ~(align - 1);
    const std::size_t padding = aligned - base;
    if (current_ == nullptr || padding + size > remaining_) {
      grow(size + align);
      return allocate(size, align);
    }
    cursor_ = reinterpret_cast<std::uint8_t*>(aligned) + size;
    remaining_ -= padding + size;
    used_ += padding + size;
    if (used_ > high_water_) high_water_ = used_;
    return reinterpret_cast<void*>(aligned);
  }

  /// Ensures a current block exists, so the consumer's first bump cannot
  /// hit the heap. Lets a run set up its lanes eagerly and keep lazy
  /// first-touch block creation out of its measured steady state (worker
  /// lanes may see their first allocation at an arbitrary phase).
  void prewarm() {
    if (current_ == nullptr) grow(0);
  }

  /// Recycles every block for reuse without releasing memory: subsequent
  /// allocations bump through the existing blocks again. Anything
  /// previously allocated is invalidated.
  void reset() {
    next_block_ = 0;
    current_ = nullptr;
    cursor_ = nullptr;
    remaining_ = 0;
    used_ = 0;
    ++cycles_;
    advance();
  }

  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& block : blocks_) total += block.size;
    return total;
  }

  /// Bytes handed out since the last reset (including alignment padding).
  std::size_t bytes_used() const { return used_; }
  /// Largest bytes_used() any cycle reached — sizes the steady-state
  /// footprint a consumer of this arena needs.
  std::size_t high_water() const { return high_water_; }
  /// reset() calls so far.
  std::size_t cycles() const { return cycles_; }

  /// Sum of every live Arena's reserved block bytes, process-wide, and the
  /// maximum that sum ever reached. The daemon exports the high water as
  /// the dr82_arena_bytes_high_water gauge.
  static std::size_t global_reserved() {
    return global_reserved_.load(std::memory_order_relaxed);
  }
  static std::size_t global_high_water() {
    return global_high_water_.load(std::memory_order_relaxed);
  }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  /// Moves to the next recycled block that fits, or appends a new one.
  void grow(std::size_t need) {
    while (next_block_ < blocks_.size()) {
      if (blocks_[next_block_].size >= need) {
        advance();
        return;
      }
      ++next_block_;  // too small for this request; skip it this cycle
    }
    const std::size_t size = need > block_size_ ? need : block_size_;
    blocks_.push_back(Block{std::make_unique<std::uint8_t[]>(size), size});
    const std::size_t reserved =
        global_reserved_.fetch_add(size, std::memory_order_relaxed) + size;
    std::size_t seen = global_high_water_.load(std::memory_order_relaxed);
    while (seen < reserved &&
           !global_high_water_.compare_exchange_weak(
               seen, reserved, std::memory_order_relaxed)) {
    }
    advance();
  }

  void advance() {
    if (next_block_ >= blocks_.size()) return;
    Block& block = blocks_[next_block_++];
    current_ = &block;
    cursor_ = block.data.get();
    remaining_ = block.size;
  }

  inline static std::atomic<std::size_t> global_reserved_{0};
  inline static std::atomic<std::size_t> global_high_water_{0};

  std::size_t block_size_;
  std::vector<Block> blocks_;
  std::size_t next_block_ = 0;  // first block not yet handed out this cycle
  Block* current_ = nullptr;
  std::uint8_t* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t cycles_ = 0;
};

/// Std-allocator adapter over Arena so standard containers can use phase
/// scratch: std::vector<T, ArenaAllocator<T>> v{ArenaAllocator<T>(&a)}.
/// deallocate is a no-op for arena memory (it returns on arena reset).
///
/// A null arena is a valid state meaning "plain heap": allocate/deallocate
/// forward to operator new/delete, so container types can be parameterized
/// on ArenaAllocator once and run arena-backed or heap-backed depending on
/// what the constructor received (sim::Context does this for its outgoing
/// queue). Moves propagate the allocator (the moved-to container adopts the
/// buffer and the arena that owns it); copies deliberately fall back to the
/// heap, so copying a container out of an arena never silently extends the
/// arena's lifetime obligations.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using propagate_on_container_copy_assignment = std::false_type;

  ArenaAllocator() : arena_(nullptr) {}
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  ArenaAllocator select_on_container_copy_construction() const {
    return ArenaAllocator(nullptr);
  }

  T* allocate(std::size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace dr
