// A monotonic bump allocator for phase-scoped scratch.
//
// The batch-verification prepass (ba::prewarm_inbox) builds digest and
// request arrays sized by the whole inbox, every phase, for every process.
// Growing std::vectors from the heap each time costs a malloc/free pair
// per array per phase; an Arena turns that into pointer bumps against
// blocks that are recycled with reset() — O(1) allocator traffic per
// inbox batch once the block list has warmed up.
//
// Not thread-safe; the intended shape is one thread_local arena per
// worker, reset at the top of each batch. Destructors of arena-allocated
// objects are NOT run by reset() — only use it for trivially-destructible
// payloads or via containers that don't own non-arena resources.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/contracts.h"

namespace dr {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockSize = 64 * 1024;

  explicit Arena(std::size_t block_size = kDefaultBlockSize)
      : block_size_(block_size == 0 ? kDefaultBlockSize : block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `size` bytes aligned to `align` (a power of two).
  /// Oversized requests get a dedicated block; everything stays owned by
  /// the arena until destruction.
  void* allocate(std::size_t size, std::size_t align) {
    DR_EXPECTS(align != 0 && (align & (align - 1)) == 0);
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (base + (align - 1)) & ~(align - 1);
    const std::size_t padding = aligned - base;
    if (current_ == nullptr || padding + size > remaining_) {
      grow(size + align);
      return allocate(size, align);
    }
    cursor_ = reinterpret_cast<std::uint8_t*>(aligned) + size;
    remaining_ -= padding + size;
    return reinterpret_cast<void*>(aligned);
  }

  /// Recycles every block for reuse without releasing memory: subsequent
  /// allocations bump through the existing blocks again. Anything
  /// previously allocated is invalidated.
  void reset() {
    next_block_ = 0;
    current_ = nullptr;
    cursor_ = nullptr;
    remaining_ = 0;
    advance();
  }

  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& block : blocks_) total += block.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  /// Moves to the next recycled block that fits, or appends a new one.
  void grow(std::size_t need) {
    while (next_block_ < blocks_.size()) {
      if (blocks_[next_block_].size >= need) {
        advance();
        return;
      }
      ++next_block_;  // too small for this request; skip it this cycle
    }
    const std::size_t size = need > block_size_ ? need : block_size_;
    blocks_.push_back(Block{std::make_unique<std::uint8_t[]>(size), size});
    advance();
  }

  void advance() {
    if (next_block_ >= blocks_.size()) return;
    Block& block = blocks_[next_block_++];
    current_ = &block;
    cursor_ = block.data.get();
    remaining_ = block.size;
  }

  std::size_t block_size_;
  std::vector<Block> blocks_;
  std::size_t next_block_ = 0;  // first block not yet handed out this cycle
  Block* current_ = nullptr;
  std::uint8_t* cursor_ = nullptr;
  std::size_t remaining_ = 0;
};

/// Minimal std-allocator adapter over Arena so standard containers can use
/// phase scratch: std::vector<T, ArenaAllocator<T>> v{ArenaAllocator<T>(&a)}.
/// deallocate is a no-op (memory returns on arena reset).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace dr
