// Process-wide heap-allocation accounting — the measurement half of the
// arena-backed message plane.
//
// alloc_stats.cpp replaces the global operator new/delete family with thin
// wrappers over malloc/free that bump two relaxed atomic counters (blocks,
// bytes) plus a per-thread tally. The cost is a handful of nanoseconds per
// allocation and exactly zero per allocation-free region, so it is compiled
// in always — there is no "instrumented build": the numbers the benches
// report and the zero-allocation assertions the tests make are facts about
// the production binary.
//
// What a counter means: `process()` counts every operator-new block from
// any thread since process start; `thread()` counts only the calling
// thread's. Deltas over a region (AllocProbe) are the useful quantity —
// "this phase performed N heap allocations". Process-wide deltas include
// whatever other threads did in the window, so single-threaded tests get
// exact numbers and multi-threaded ones get an upper bound on their own
// traffic (still exact when all running threads belong to the measured
// region, as in the runner's worker pool).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dr::util {

struct AllocCounters {
  std::uint64_t blocks = 0;  // operator-new calls
  std::uint64_t bytes = 0;   // sum of requested sizes
  std::uint64_t frees = 0;   // operator-delete calls (null deletes excluded)

  friend AllocCounters operator-(const AllocCounters& a,
                                 const AllocCounters& b) {
    return {a.blocks - b.blocks, a.bytes - b.bytes, a.frees - b.frees};
  }
  friend bool operator==(const AllocCounters&, const AllocCounters&) =
      default;
};

class AllocStats {
 public:
  /// Totals across all threads since process start.
  static AllocCounters process();
  /// Totals for the calling thread since it first allocated.
  static AllocCounters thread();

  // Called by the operator new/delete replacements only.
  static void note_alloc(std::size_t bytes) noexcept;
  static void note_free() noexcept;
};

/// Delta probe: counts heap traffic between construction (or the last
/// reset()) and the query. `process` scope by default; thread scope counts
/// only the constructing thread.
class AllocProbe {
 public:
  enum class Scope { kProcess, kThread };

  explicit AllocProbe(Scope scope = Scope::kProcess) : scope_(scope) {
    reset();
  }

  void reset() { start_ = read(); }

  AllocCounters delta() const { return read() - start_; }
  std::uint64_t blocks() const { return delta().blocks; }
  std::uint64_t bytes() const { return delta().bytes; }

 private:
  AllocCounters read() const {
    return scope_ == Scope::kProcess ? AllocStats::process()
                                     : AllocStats::thread();
  }

  Scope scope_;
  AllocCounters start_;
};

}  // namespace dr::util
