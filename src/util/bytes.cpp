#include "util/bytes.h"

#include <cstring>

namespace dr {

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void append(Bytes& dst, std::string_view src) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(src.data());
  dst.insert(dst.end(), p, p + src.size());
}

Bytes concat(ByteView a, ByteView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  append(out, a);
  append(out, b);
  return out;
}

std::string to_hex(ByteView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Bytes from_hex(std::string_view hex, bool& ok) {
  ok = false;
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  ok = true;
  return out;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

ByteView as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

Bytes to_bytes(std::string_view s) {
  Bytes out;
  append(out, s);
  return out;
}

namespace {

// Depth × capacity caps bound the worst-case retained memory per thread at
// kPoolDepth * kMaxRecycledCapacity (2 MiB). Buffers bigger than the cap
// (Merkle signature bundles, oversized adversarial payloads) are freed
// rather than hoarded.
constexpr std::size_t kPoolDepth = 16;
constexpr std::size_t kMaxRecycledCapacity = 128 * 1024;

struct ScratchPool {
  Bytes slots[kPoolDepth];
  std::size_t count = 0;
};
thread_local ScratchPool t_scratch;

}  // namespace

Bytes acquire_scratch() {
  ScratchPool& pool = t_scratch;
  if (pool.count == 0) return {};
  return std::move(pool.slots[--pool.count]);
}

void recycle_scratch(Bytes&& buf) {
  ScratchPool& pool = t_scratch;
  if (buf.capacity() == 0 || buf.capacity() > kMaxRecycledCapacity ||
      pool.count == kPoolDepth) {
    Bytes dropped(std::move(buf));  // freed here
    return;
  }
  buf.clear();
  pool.slots[pool.count++] = std::move(buf);
}

}  // namespace dr
