// Byte-buffer helpers shared by the codec and crypto layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dr {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Appends the raw bytes of a string literal/view (no terminator).
void append(Bytes& dst, std::string_view src);

/// Returns `a || b`.
Bytes concat(ByteView a, ByteView b);

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(ByteView data);

/// Inverse of to_hex. Returns empty vector for odd-length or non-hex input
/// together with `ok=false`.
Bytes from_hex(std::string_view hex, bool& ok);

/// Constant-time equality; length mismatch returns false (in constant time
/// with respect to the contents, not the lengths).
bool ct_equal(ByteView a, ByteView b);

/// View over a string's bytes.
ByteView as_bytes(std::string_view s);

/// Bytes from a string.
Bytes to_bytes(std::string_view s);

}  // namespace dr
