// Byte-buffer helpers shared by the codec and crypto layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dr {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Appends the raw bytes of a string literal/view (no terminator).
void append(Bytes& dst, std::string_view src);

/// Returns `a || b`.
Bytes concat(ByteView a, ByteView b);

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(ByteView data);

/// Inverse of to_hex. Returns empty vector for odd-length or non-hex input
/// together with `ok=false`.
Bytes from_hex(std::string_view hex, bool& ok);

/// Constant-time equality; length mismatch returns false (in constant time
/// with respect to the contents, not the lengths).
bool ct_equal(ByteView a, ByteView b);

/// View over a string's bytes.
ByteView as_bytes(std::string_view s);

/// Bytes from a string.
Bytes to_bytes(std::string_view s);

// ---------------------------------------------------------------------------
// Per-thread staging-buffer recycling.
//
// Every message the simulator moves is first staged in a Bytes (the codec
// Writer's output, a Reader's length-prefixed copy) and then either kept or
// immediately folded into a sim::Payload. Fresh vectors cost a malloc each;
// these two functions close the loop instead: acquire_scratch() hands out an
// empty Bytes with recycled capacity when one is available, and
// recycle_scratch() takes a dead buffer's capacity back. The pool is
// thread-local (no locks, deterministic behavior), bounded in depth and
// per-buffer capacity so nothing hoards memory, and entirely transparent:
// callers see ordinary empty/full vectors either way.

/// An empty Bytes, reusing recycled capacity when available.
Bytes acquire_scratch();

/// Returns `buf`'s capacity to the calling thread's pool (contents are
/// discarded). Buffers over the retention cap are simply freed.
void recycle_scratch(Bytes&& buf);

}  // namespace dr
