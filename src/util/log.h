// Minimal leveled logger. The simulator is deterministic and single-threaded,
// so this is intentionally simple: a global level and printf-style sinks.
#pragma once

#include <cstdarg>

namespace dr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log level. Messages below the level are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. Appends a newline.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define DR_LOG_DEBUG(...) ::dr::logf(::dr::LogLevel::kDebug, __VA_ARGS__)
#define DR_LOG_INFO(...) ::dr::logf(::dr::LogLevel::kInfo, __VA_ARGS__)
#define DR_LOG_WARN(...) ::dr::logf(::dr::LogLevel::kWarn, __VA_ARGS__)
#define DR_LOG_ERROR(...) ::dr::logf(::dr::LogLevel::kError, __VA_ARGS__)

}  // namespace dr
