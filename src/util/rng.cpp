#include "util/rng.h"

#include "util/contracts.h"

namespace dr {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  DR_EXPECTS(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  while (true) {
    const std::uint64_t x = next();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const auto lo = static_cast<std::uint64_t>(m);
    if (lo >= bound || lo >= (-bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::uint64_t Xoshiro256::range(std::uint64_t lo, std::uint64_t hi) {
  DR_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return next();
  return lo + below(span + 1);
}

bool Xoshiro256::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // 53-bit mantissa comparison keeps the draw exactly representable.
  const double draw =
      static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  return draw < p;
}

Bytes Xoshiro256::bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t x = next();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(x & 0xff));
      x >>= 8;
    }
  }
  return out;
}

}  // namespace dr
