#include "adversary/strategies.h"

#include <utility>

#include "util/contracts.h"

namespace dr::adversary {

CrashProcess::CrashProcess(std::unique_ptr<Process> inner,
                           PhaseNum crash_phase)
    : inner_(std::move(inner)), crash_phase_(crash_phase) {
  DR_EXPECTS(inner_ != nullptr);
}

void CrashProcess::on_phase(Context& ctx) {
  if (ctx.phase() >= crash_phase_) return;
  inner_->on_phase(ctx);
}

EquivocatingTransmitter::EquivocatingTransmitter(std::set<ProcId> ones,
                                                 std::size_t n)
    : ones_(std::move(ones)), n_(n) {}

void EquivocatingTransmitter::on_phase(Context& ctx) {
  if (ctx.phase() != 1) return;
  for (ProcId q = 0; q < n_; ++q) {
    if (q == ctx.self()) continue;
    const Value v = ones_.contains(q) ? 1 : 0;
    const ba::SignedValue sv = ba::make_signed(v, ctx.signer(), ctx.self());
    ctx.send(q, encode(sv), 1);
  }
}

ValueMapTransmitter::ValueMapTransmitter(std::map<ProcId, Value> values)
    : values_(std::move(values)) {}

void ValueMapTransmitter::on_phase(Context& ctx) {
  if (ctx.phase() != 1) return;
  for (const auto& [to, value] : values_) {
    if (to == ctx.self()) continue;
    const ba::SignedValue sv = ba::make_signed(value, ctx.signer(),
                                               ctx.self());
    ctx.send(to, encode(sv), 1);
  }
}

IgnoreFirstK::IgnoreFirstK(std::unique_ptr<Process> inner,
                           std::size_t ignore_count, std::set<ProcId> peers)
    : inner_(std::move(inner)), to_ignore_(ignore_count),
      peers_(std::move(peers)) {
  DR_EXPECTS(inner_ != nullptr);
}

void IgnoreFirstK::on_phase(Context& ctx) {
  std::vector<Envelope> filtered;
  filtered.reserve(ctx.inbox().size());
  for (const Envelope& env : ctx.inbox()) {
    if (!peers_.contains(env.from) && ignored_ < to_ignore_) {
      ++ignored_;
      continue;
    }
    filtered.push_back(env);
  }

  Context inner_ctx(ctx.self(), ctx.phase(), ctx.n(), ctx.t(), &filtered,
                    &ctx.signer(), &ctx.verifier());
  inner_->on_phase(inner_ctx);
  for (auto& out : inner_ctx.outgoing()) {
    if (out.broadcast) {
      // Expand, still skipping the other B's (handle copies per target).
      for (ProcId q = 0; q < ctx.n(); ++q) {
        if (q == ctx.self() || peers_.contains(q)) continue;
        ctx.send(q, out.payload, out.signatures);
      }
      continue;
    }
    if (peers_.contains(out.to)) continue;  // never talk to the other B's
    ctx.send(out.to, std::move(out.payload), out.signatures);
  }
}

TwoFacedReplay::TwoFacedReplay(Trace trace_a, std::set<ProcId> face_a_targets,
                               Trace trace_b)
    : trace_a_(std::move(trace_a)),
      face_a_targets_(std::move(face_a_targets)),
      trace_b_(std::move(trace_b)) {}

void TwoFacedReplay::on_phase(Context& ctx) {
  if (const auto it = trace_a_.find(ctx.phase()); it != trace_a_.end()) {
    for (const auto& [to, payload] : it->second) {
      if (face_a_targets_.contains(to)) ctx.send(to, payload, 0);
    }
  }
  if (const auto it = trace_b_.find(ctx.phase()); it != trace_b_.end()) {
    for (const auto& [to, payload] : it->second) {
      if (!face_a_targets_.contains(to)) ctx.send(to, payload, 0);
    }
  }
}

DelayedEcho::DelayedEcho(PhaseNum delay) : delay_(delay) {}

void DelayedEcho::on_phase(Context& ctx) {
  for (const Envelope& env : ctx.inbox()) {
    buffered_[ctx.phase() + delay_].push_back(env.payload);
  }
  const auto it = buffered_.find(ctx.phase());
  if (it == buffered_.end()) return;
  for (const sim::Payload& payload : it->second) {
    ctx.send_all(payload, 0);
  }
  buffered_.erase(it);
}

RandomByzantine::RandomByzantine(std::uint64_t seed, double send_prob)
    : rng_(seed), send_prob_(send_prob) {}

void RandomByzantine::on_phase(Context& ctx) {
  for (const Envelope& env : ctx.inbox()) {
    if (seen_.size() < 256) seen_.push_back(env.payload);
  }
  for (ProcId q = 0; q < ctx.n(); ++q) {
    if (q == ctx.self() || !rng_.chance(send_prob_)) continue;
    Bytes payload;
    if (!seen_.empty() && rng_.chance(0.5)) {
      payload = seen_[rng_.below(seen_.size())].to_bytes();
      if (!payload.empty() && rng_.chance(0.75)) {
        // Mutate: flip a byte or truncate.
        if (rng_.chance(0.5)) {
          payload[rng_.below(payload.size())] ^=
              static_cast<std::uint8_t>(rng_.range(1, 255));
        } else {
          payload.resize(rng_.below(payload.size() + 1));
        }
      }
    } else {
      payload = rng_.bytes(rng_.below(65));
    }
    ctx.send(q, std::move(payload), 0);
  }
}

TwoFacedReplay::Trace trace_of(const hist::History& history, ProcId p) {
  TwoFacedReplay::Trace trace;
  for (PhaseNum k = 1; k <= history.phases(); ++k) {
    for (const hist::Edge& e : history.phase(k).out_edges(p)) {
      trace[k].emplace_back(e.to, e.label);
    }
  }
  return trace;
}

}  // namespace dr::adversary
