// Shared state for colluding faulty processors.
//
// The paper's adversary model: "We allow faulty processors to collude for
// cheating. Therefore every message that contains only signatures of faulty
// processors can be produced by them." The Runner already pools the faulty
// keys into one Signer; this blackboard gives scripted attacks a place to
// coordinate beyond what the network would allow correct processors.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/envelope.h"
#include "util/bytes.h"

namespace dr::adversary {

struct Coalition {
  std::vector<sim::ProcId> members;
  /// Free-form shared notes, keyed by attack-defined strings.
  std::map<std::string, Bytes> notes;

  bool contains(sim::ProcId p) const;
};

}  // namespace dr::adversary
