#include "adversary/coalition.h"

#include <algorithm>

namespace dr::adversary {

bool Coalition::contains(sim::ProcId p) const {
  return std::find(members.begin(), members.end(), p) != members.end();
}

}  // namespace dr::adversary
