// Byzantine behaviours used across tests, benchmarks and the executable
// lower-bound experiments. Each is a sim::Process; the Runner gives faulty
// instances the pooled coalition Signer automatically.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "ba/signed_value.h"
#include "hist/history.h"
#include "sim/process.h"
#include "util/rng.h"

namespace dr::adversary {

using sim::Context;
using sim::Envelope;
using sim::PhaseNum;
using sim::ProcId;
using sim::Process;
using sim::Value;

/// Sends nothing, ever. The cheapest fault; also the worst case for the
/// correction phases of Algorithms 3 and 5 (silent roots force the active
/// processors to contact subtree members directly).
class SilentProcess final : public Process {
 public:
  void on_phase(Context&) override {}
  std::optional<Value> decision() const override { return std::nullopt; }
};

/// Runs the wrapped (correct) implementation until `crash_phase`, then goes
/// silent forever — the classic crash/omission fault expressed as a special
/// case of Byzantine behaviour.
class CrashProcess final : public Process {
 public:
  CrashProcess(std::unique_ptr<Process> inner, PhaseNum crash_phase);

  void on_phase(Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

 private:
  std::unique_ptr<Process> inner_;
  PhaseNum crash_phase_;
};

/// A faulty transmitter that signs and sends value 1 to receivers in `ones`
/// and value 0 to everybody else in phase 1, then stays silent. This is the
/// canonical equivocation that the signature chains of Algorithms 1/2 and
/// Dolev-Strong must neutralise.
class EquivocatingTransmitter final : public Process {
 public:
  EquivocatingTransmitter(std::set<ProcId> ones, std::size_t n);

  void on_phase(Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

 private:
  std::set<ProcId> ones_;
  std::size_t n_;
};

/// A faulty transmitter for the multi-valued setting: sends each receiver
/// the signed value chosen for it (receivers missing from the map get
/// nothing), phase 1 only.
class ValueMapTransmitter final : public Process {
 public:
  explicit ValueMapTransmitter(std::map<ProcId, Value> values);

  void on_phase(Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

 private:
  std::map<ProcId, Value> values_;
};

/// Wraps a correct implementation but (a) ignores the first `ignore_count`
/// messages received from processors outside `peers` and (b) never sends to
/// processors in `peers`. With peers = B and ignore_count = ceil(t/2), this
/// is exactly the faulty behaviour of the set B in the proof of Theorem 2:
/// "it behaves like a correct processor with one exception — it ignores the
/// first ceil(t/2) messages received from processors in A" and "never sends
/// a message to other processors in B".
class IgnoreFirstK final : public Process {
 public:
  IgnoreFirstK(std::unique_ptr<Process> inner, std::size_t ignore_count,
               std::set<ProcId> peers);

  void on_phase(Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

  std::size_t ignored_so_far() const { return ignored_; }

 private:
  std::unique_ptr<Process> inner_;
  std::size_t to_ignore_;
  std::size_t ignored_ = 0;
  std::set<ProcId> peers_;
};

/// Replays prerecorded sends, routing by receiver: messages to processors in
/// `face_a_targets` follow `trace_a`; everyone else gets `trace_b`. This is
/// the two-faced coalition member from the proof of Theorem 1 (behave toward
/// p as in history H, toward the rest as in history G).
class TwoFacedReplay final : public Process {
 public:
  /// trace maps phase -> list of (receiver, payload). Payload handles share
  /// the recorded history's buffers; replaying copies no bytes.
  using Trace =
      std::map<PhaseNum, std::vector<std::pair<ProcId, sim::Payload>>>;

  TwoFacedReplay(Trace trace_a, std::set<ProcId> face_a_targets,
                 Trace trace_b);

  void on_phase(Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

 private:
  Trace trace_a_;
  std::set<ProcId> face_a_targets_;
  Trace trace_b_;
};

/// Buffers everything it receives and echoes it verbatim to every
/// processor `delay` phases later — stresses protocols' phase-labelled
/// acceptance rules (stale chains must be rejected, not re-accepted).
class DelayedEcho final : public Process {
 public:
  explicit DelayedEcho(PhaseNum delay);

  void on_phase(Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

 private:
  PhaseNum delay_;
  // release phase -> payload handles (shared with the originals; echoing
  // buffers no bytes)
  std::map<PhaseNum, std::vector<sim::Payload>> buffered_;
};

/// Fuzzing adversary: each phase, with probability `send_prob` per receiver,
/// sends either random bytes or a randomly mutated copy of a message it
/// received. Exercises every decoder and validity check in the protocols.
class RandomByzantine final : public Process {
 public:
  RandomByzantine(std::uint64_t seed, double send_prob);

  void on_phase(Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

 private:
  Xoshiro256 rng_;
  double send_prob_;
  std::vector<sim::Payload> seen_;  // handles; mutation copies on write
};

/// Extracts a trace (phase -> sends) for processor `p` from a recorded
/// history; used to script TwoFacedReplay from failure-free reference runs.
TwoFacedReplay::Trace trace_of(const hist::History& history, ProcId p);

}  // namespace dr::adversary
