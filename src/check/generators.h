// Randomized case generation for the conformance engine.
//
// Each case is a chaos::Scenario — protocol name, (n, t, s) configuration,
// seeds, scripted Byzantine faults, transport fault rules — drawn from a
// seeded Xoshiro256, so a (seed, index) pair identifies a case bit-exactly
// and every finding replays from its JSON alone.
//
// The (n, t, s) ranges track each family's supports() envelope, biased
// toward the tight regimes the paper's bounds are stated for (n = 2t+1
// for Algorithms 1/2, n > 3t for EIG, n > 4t for phase-king, the s-chain
// extremes for Algorithm 3). Scripted faults draw from the full
// serializable kind set — silent, crash, chaos, delayed-echo, and (for
// the transmitter only) equivocate — and transport rules reuse
// chaos::random_fault_rule, the same seam the soak generator draws from.
#pragma once

#include <string>
#include <vector>

#include "sim/chaos.h"
#include "util/rng.h"

namespace dr::check {

struct GenOptions {
  /// Protocol name pool; empty = default_protocols().
  std::vector<std::string> protocols;
  double scripted_probability = 0.6;
  double rules_probability = 0.5;
  std::size_t max_rules = 4;
  double wildcard_probability = 0.1;
};

/// The full fixed registry plus representative parameterised instances of
/// the alg3 / alg5 families.
const std::vector<std::string>& default_protocols();

/// One random conformance case. Always satisfies the executed model's
/// preconditions: supports(config) holds and |scripted| <= t with distinct
/// processor ids.
chaos::Scenario generate_case(Xoshiro256& rng, const GenOptions& options);

}  // namespace dr::check
