#include "check/generators.h"

#include <set>

#include "util/contracts.h"

namespace dr::check {
namespace {

using chaos::Scenario;
using chaos::ScriptedFault;
using chaos::ScriptedKind;
using sim::PhaseNum;
using sim::ProcId;

std::string base_of(std::string_view name) {
  const std::size_t bracket = name.find('[');
  return std::string(bracket == std::string_view::npos
                         ? name
                         : name.substr(0, bracket));
}

/// Samples (n, t, transmitter, value) inside the family's supports()
/// envelope, keeping n <= 9 so the differential stage's TCP mesh stays
/// cheap. Families with a free transmitter get a random one; the
/// Section 5/6 algorithms are pinned to transmitter 0 by supports().
ba::BAConfig random_config(Xoshiro256& rng, std::string_view name) {
  const std::string base = base_of(name);
  ba::BAConfig config;
  if (base == "dolev-strong") {
    config.t = 1 + rng.below(3);
    config.n = config.t + 3 + rng.below(3);
    config.transmitter = static_cast<ProcId>(rng.below(config.n));
    config.value = rng.below(5);
  } else if (base == "dolev-strong-relay") {
    config.t = 1 + rng.below(2);
    config.n = config.t + 3 + rng.below(3);
    config.transmitter = static_cast<ProcId>(rng.below(config.n));
    config.value = rng.below(5);
  } else if (base == "eig") {
    config.t = 1 + rng.below(2);
    config.n = 3 * config.t + 1 + rng.below(2);
    config.transmitter = static_cast<ProcId>(rng.below(config.n));
    config.value = rng.below(5);
  } else if (base == "phase-king") {
    // n > 4t: t = 1 lands in {5, 6}, t = 2 in {9, 10}.
    config.t = 1 + rng.below(2);
    config.n = 4 * config.t + 1 + rng.below(2);
    config.transmitter = static_cast<ProcId>(rng.below(config.n));
    config.value = rng.below(2);
  } else if (base == "alg1" || base == "alg2") {
    config.t = 1 + rng.below(4);
    config.n = 2 * config.t + 1;
    config.value = rng.below(2);
  } else if (base == "alg1-mv" || base == "alg2-mv") {
    config.t = 1 + rng.below(4);
    config.n = 2 * config.t + 1;
    config.value = rng.below(7);
  } else if (base == "alg3" || base == "alg3-mv") {
    config.t = 1 + rng.below(2);
    config.n = 2 * config.t + 2 + rng.below(4);
    config.value = base == "alg3" ? rng.below(2) : rng.below(7);
  } else {  // the alg5 family
    config.t = 1 + rng.below(2);
    config.n = 2 * config.t + 1 + rng.below(4);
    config.value = base == "alg5" ? rng.below(2) : rng.below(7);
  }
  return config;
}

ScriptedFault random_scripted(Xoshiro256& rng, const ba::BAConfig& config,
                              PhaseNum steps, ProcId id) {
  ScriptedFault fault;
  fault.id = id;
  // Equivocation only makes sense on the transmitter; other ids redraw
  // from the remaining kinds.
  const std::size_t kinds = id == config.transmitter ? 5 : 4;
  fault.kind = static_cast<ScriptedKind>(rng.below(kinds));
  switch (fault.kind) {
    case ScriptedKind::kCrash:
      fault.crash_phase = static_cast<PhaseNum>(rng.range(1, steps));
      break;
    case ScriptedKind::kChaos:
      fault.seed = rng.below(std::uint64_t{1} << 32) + 1;
      fault.send_prob = 0.25;
      break;
    case ScriptedKind::kDelayedEcho:
      fault.delay = static_cast<PhaseNum>(
          rng.range(1, std::min<PhaseNum>(3, steps)));
      break;
    case ScriptedKind::kEquivocate:
      fault.ones_mask = rng.next() & ((std::uint64_t{1} << config.n) - 1);
      break;
    case ScriptedKind::kSilent:
      break;
  }
  return fault;
}

}  // namespace

const std::vector<std::string>& default_protocols() {
  static const std::vector<std::string> kPool = [] {
    std::vector<std::string> pool;
    for (const ba::Protocol& p : ba::protocols()) pool.push_back(p.name);
    pool.push_back("alg3[s=1]");
    pool.push_back("alg3[s=2]");
    pool.push_back("alg3[s=4]");
    pool.push_back("alg3-mv[s=2]");
    pool.push_back("alg5[s=1]");
    pool.push_back("alg5[s=2]");
    pool.push_back("alg5-mv[s=2]");
    return pool;
  }();
  return kPool;
}

chaos::Scenario generate_case(Xoshiro256& rng, const GenOptions& options) {
  const std::vector<std::string>& pool =
      options.protocols.empty() ? default_protocols() : options.protocols;
  Scenario scenario;
  scenario.protocol = pool[rng.below(pool.size())];
  scenario.config = random_config(rng, scenario.protocol);
  const std::optional<ba::Protocol> protocol =
      chaos::resolve_protocol(scenario.protocol);
  DR_EXPECTS(protocol.has_value());
  DR_EXPECTS(protocol->supports(scenario.config));
  scenario.seed = rng.below(std::uint64_t{1} << 32) + 1;
  scenario.plan_seed = rng.below(std::uint64_t{1} << 32) + 1;
  const PhaseNum steps = protocol->steps(scenario.config);

  if (rng.chance(options.scripted_probability)) {
    const std::size_t count = 1 + rng.below(scenario.config.t);
    std::set<ProcId> used;
    for (std::size_t i = 0; i < count; ++i) {
      const ProcId id = static_cast<ProcId>(rng.below(scenario.config.n));
      if (!used.insert(id).second) continue;
      scenario.scripted.push_back(
          random_scripted(rng, scenario.config, steps, id));
    }
  }

  if (rng.chance(options.rules_probability)) {
    const std::size_t count = 1 + rng.below(options.max_rules);
    for (std::size_t i = 0; i < count; ++i) {
      scenario.rules.push_back(chaos::random_fault_rule(
          rng, scenario.config.n, steps, options.wildcard_probability));
    }
  }
  return scenario;
}

}  // namespace dr::check
