// The property-based conformance engine.
//
// run() draws `cases` scenarios from the generator (generators.h),
// executes each on the recorded-history simulator, and holds it against
// the paper oracles (oracles.h). Cases whose effective faulty set exceeds
// t are outside the model's preconditions and are counted but not
// asserted, exactly like the chaos soak. For every authenticated protocol
// shape encountered, Theorem 1's failure-free signature floors are checked
// once (memoized per (protocol, n, t) — failure-free runs do not depend on
// the case's faults).
//
// With `differential` on, each in-budget case is additionally executed on
// all three runtimes — serial simulator, in-process transport threads,
// TCP loopback — via net::check_parity; any divergence in decisions or
// paper-level accounting is a violation like any other.
//
// A violating case is shrunk before it is reported: chaos::ddmin over the
// scripted fault list, then chaos::minimize over the transport rules, both
// under "still violates" — yielding a 1-minimal chaos::Finding whose JSON
// reproducer replays bit-deterministically (examples/conformance replay).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "check/generators.h"
#include "check/oracles.h"
#include "sim/chaos.h"

namespace dr::check {

struct EngineOptions {
  std::size_t cases = 200;
  std::uint64_t seed = 1;
  GenOptions generator;
  OracleOptions oracles;
  /// Cross-backend differential stage (sim vs in-process vs TCP).
  bool differential = true;
  /// Shrink findings to 1-minimal fault sets before reporting.
  bool shrink = true;
};

/// One case's verdict. `within_budget` false means the transport perturbed
/// more processors than t allows — skipped, not a failure.
struct CaseReport {
  bool within_budget = true;
  std::vector<std::string> violations;
};

struct ProtocolStats {
  std::size_t cases = 0;
  std::size_t checked = 0;
  std::size_t skipped_over_budget = 0;
  std::size_t findings = 0;
};

struct ConformanceStats {
  std::size_t cases = 0;
  std::size_t checked = 0;
  std::size_t skipped_over_budget = 0;
  std::size_t signature_shapes_checked = 0;  // memoized Theorem 1 checks
  std::map<std::string, ProtocolStats> per_protocol;
  std::vector<chaos::Finding> findings;
};

class ConformanceEngine {
 public:
  explicit ConformanceEngine(EngineOptions options);

  /// Oracles + (optionally) the differential stage for one scenario.
  CaseReport evaluate(const chaos::Scenario& scenario);

  /// ddmin scripted faults, then transport rules, preserving failure.
  chaos::Scenario shrink_case(const chaos::Scenario& scenario);

  /// The sweep. Deterministic in (options.seed, options.cases).
  ConformanceStats run();

 private:
  EngineOptions options_;
  /// "<protocol>|<n>|<t>" -> Theorem 1 floor violations (usually empty).
  std::map<std::string, std::vector<std::string>> signature_memo_;
};

}  // namespace dr::check
