#include "check/oracles.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>

#include "bounds/formulas.h"
#include "bounds/theorem1.h"
#include "util/contracts.h"

namespace dr::check {
namespace {

/// "alg3[s=4]" -> {"alg3", 4}; names without a parameter get s = 0.
struct ParsedName {
  std::string base;
  std::size_t s = 0;
};

ParsedName parse_name(std::string_view name) {
  ParsedName parsed;
  const std::size_t bracket = name.find('[');
  if (bracket == std::string_view::npos) {
    parsed.base = std::string(name);
    return parsed;
  }
  parsed.base = std::string(name.substr(0, bracket));
  const std::string_view rest = name.substr(bracket);
  if (rest.size() >= 5 && rest.substr(0, 3) == "[s=" && rest.back() == ']') {
    parsed.s = static_cast<std::size_t>(
        std::strtoul(std::string(rest.substr(3, rest.size() - 4)).c_str(),
                     nullptr, 10));
  }
  return parsed;
}

std::size_t scaled(double scale, std::size_t bound) {
  return static_cast<std::size_t>(scale * static_cast<double>(bound));
}

sim::AgreementCheck ba_conditions(const CaseContext& context) {
  // check_byzantine_agreement reads decisions against a faulty mask; feed
  // it the mask the oracle quantifies over rather than the scripted one
  // recorded in the run.
  sim::RunResult probe;
  probe.decisions = context.outcome.result.decisions;
  probe.faulty = context.faulty;
  return sim::check_byzantine_agreement(probe,
                                        context.scenario.config.transmitter,
                                        context.scenario.config.value);
}

}  // namespace

BoundProfile profile_for(std::string_view protocol_name,
                         const BAConfig& config,
                         const OracleOptions& options) {
  BoundProfile profile;
  const ParsedName parsed = parse_name(protocol_name);
  const std::size_t n = config.n;
  const std::size_t t = config.t;

  if (parsed.base == "alg1") {
    profile.message_upper = bounds::alg1_message_upper_bound(t);
    profile.phase_upper = bounds::alg1_phase_bound(t);
  } else if (parsed.base == "alg1-mv") {
    // The multi-valued variant relays the first two distinct committed
    // values, doubling Theorem 3's cascade budget; phases are unchanged.
    profile.message_upper = 2 * bounds::alg1_message_upper_bound(t);
    profile.phase_upper = bounds::alg1_phase_bound(t);
  } else if (parsed.base == "alg2") {
    profile.message_upper = bounds::alg2_message_upper_bound(t);
    profile.phase_upper = bounds::alg2_phase_bound(t);
  } else if (parsed.base == "alg2-mv") {
    profile.phase_upper = bounds::alg2_phase_bound(t);
  } else if (parsed.base == "alg3") {
    profile.message_upper =
        bounds::alg3_message_upper_bound_exact(n, t, parsed.s);
    profile.phase_upper = bounds::alg3_phase_bound(t, parsed.s);
  } else if (parsed.base == "alg3-mv") {
    profile.phase_upper = bounds::alg3_phase_bound(t, parsed.s);
  } else if (parsed.base == "dolev-strong") {
    profile.message_upper = bounds::dolev_strong_broadcast_message_bound(n);
  } else if (parsed.base == "dolev-strong-relay") {
    profile.message_upper = bounds::dolev_strong_relay_message_bound(n, t);
  } else if (parsed.base == "eig") {
    // One broadcast per correct processor per communication round (t+1 of
    // them): the implementation-exact ceiling next to [9]'s Theta(nt).
    profile.message_upper = (t + 1) * n * (n - 1);
  } else if (parsed.base == "phase-king") {
    // broadcast_value at most once per processor per communication phase.
    profile.message_upper = (2 * t + 3) * n * (n - 1);
  }
  // alg5's closed form is asymptotic (O(t^2 + nt/s), Lemma 5) and its
  // paper phase count 3t+4s+2 assumes sub-phase overlap the simulator
  // serialises (DESIGN.md) — no message bound, phases from steps below.

  if (!profile.phase_upper.has_value()) {
    if (const std::optional<Protocol> protocol =
            chaos::resolve_protocol(protocol_name)) {
      // Communication phases + one trailing processing-only step.
      profile.phase_upper = protocol->steps(config) - 1;
    }
  }

  if (profile.message_upper.has_value()) {
    profile.message_upper = scaled(options.message_scale,
                                   *profile.message_upper);
  }
  if (profile.phase_upper.has_value()) {
    profile.phase_upper = static_cast<PhaseNum>(
        scaled(options.phase_scale, *profile.phase_upper));
  }

  if (const std::optional<Protocol> protocol =
          chaos::resolve_protocol(protocol_name)) {
    profile.authenticated = protocol->authenticated;
  }
  if (profile.authenticated && t >= 1 && n >= t + 2) {
    profile.signature_floor = bounds::theorem1_signature_lower_bound_exact(n, t);
    profile.partner_floor = t + 1;
  }
  return profile;
}

const std::vector<Oracle>& paper_oracles() {
  static const std::vector<Oracle> kOracles = {
      {"agreement",
       [](const CaseContext& context) -> std::optional<std::string> {
         if (ba_conditions(context).agreement) return std::nullopt;
         return "correct processors disagree or failed to decide";
       }},
      {"validity",
       [](const CaseContext& context) -> std::optional<std::string> {
         if (ba_conditions(context).validity) return std::nullopt;
         return "correct transmitter but agreement not on its value";
       }},
      {"phase-budget",
       [](const CaseContext& context) -> std::optional<std::string> {
         if (!context.profile.phase_upper.has_value()) return std::nullopt;
         const hist::History& history = context.outcome.result.history;
         PhaseNum last = 0;
         for (PhaseNum k = 1; k <= history.phases(); ++k) {
           for (const hist::Edge& edge : history.phase(k).edges()) {
             if (!context.faulty[edge.from]) {
               last = k;
               break;
             }
           }
         }
         if (last <= *context.profile.phase_upper) return std::nullopt;
         std::ostringstream what;
         what << "correct traffic in phase " << last << " > bound "
              << *context.profile.phase_upper;
         return what.str();
       }},
      {"message-budget",
       [](const CaseContext& context) -> std::optional<std::string> {
         if (!context.profile.message_upper.has_value()) return std::nullopt;
         std::size_t sent = 0;
         for (ProcId p = 0; p < context.scenario.config.n; ++p) {
           if (!context.faulty[p]) {
             sent += context.outcome.result.metrics.sent_by(p);
           }
         }
         if (sent <= *context.profile.message_upper) return std::nullopt;
         std::ostringstream what;
         what << "correct processors sent " << sent << " > bound "
              << *context.profile.message_upper;
         return what.str();
       }},
  };
  return kOracles;
}

std::vector<std::string> evaluate_oracles(const CaseContext& context) {
  DR_EXPECTS(context.faulty.size() == context.scenario.config.n);
  std::vector<std::string> violations;
  for (const Oracle& oracle : paper_oracles()) {
    if (const std::optional<std::string> detail = oracle.check(context)) {
      violations.push_back(oracle.name + ": " + *detail);
    }
  }
  return violations;
}

std::vector<std::string> check_signature_floors(const Protocol& protocol,
                                                const BAConfig& config,
                                                std::uint64_t seed) {
  std::vector<std::string> violations;
  ba::ScenarioOptions options;
  options.seed = seed;
  options.record_history = true;

  BAConfig h_config = config;
  h_config.value = 0;
  BAConfig g_config = config;
  g_config.value = 1;
  const sim::RunResult h = ba::run_scenario(protocol, h_config, options);
  const sim::RunResult g = ba::run_scenario(protocol, g_config, options);

  // Theorem 1 counts H and G together; the repo's established per-history
  // reading is 2 * max >= ceil(n(t+1)/4), integer-exact because the LHS is
  // an integer (see tests/theorem1_test.cpp SignatureLowerBound).
  const std::size_t floor =
      bounds::theorem1_signature_lower_bound_exact(config.n, config.t);
  const std::size_t worst = std::max(h.metrics.signatures_by_correct(),
                                     g.metrics.signatures_by_correct());
  if (2 * worst < floor) {
    std::ostringstream what;
    what << "theorem1-signatures: failure-free worst history carries "
         << worst << " signatures, 2x < bound " << floor;
    violations.push_back(what.str());
  }

  std::size_t min_partners = config.n;
  ProcId argmin = 0;
  for (ProcId p = 0; p < config.n; ++p) {
    std::set<ProcId> partners = bounds::signature_partners(h.history, p);
    const std::set<ProcId> in_g = bounds::signature_partners(g.history, p);
    partners.insert(in_g.begin(), in_g.end());
    if (partners.size() < min_partners) {
      min_partners = partners.size();
      argmin = p;
    }
  }
  if (min_partners < config.t + 1) {
    std::ostringstream what;
    what << "theorem1-partners: processor " << argmin << " exchanges "
         << "signatures with only " << min_partners << " partners across "
         << "H u G, bound " << config.t + 1;
    violations.push_back(what.str());
  }
  return violations;
}

}  // namespace dr::check
