#include "check/engine.h"

#include <sstream>

#include "net/harness.h"
#include "util/contracts.h"

namespace dr::check {

ConformanceEngine::ConformanceEngine(EngineOptions options)
    : options_(std::move(options)) {}

CaseReport ConformanceEngine::evaluate(const chaos::Scenario& scenario) {
  const std::optional<ba::Protocol> protocol =
      chaos::resolve_protocol(scenario.protocol);
  DR_EXPECTS(protocol.has_value());

  CaseReport report;
  const chaos::Outcome outcome =
      chaos::execute(scenario, chaos::Backend::kSim);
  if (outcome.effective_faulty_count > scenario.config.t) {
    report.within_budget = false;
    return report;
  }

  const CaseContext context{
      scenario, outcome, outcome.effective_faulty,
      profile_for(scenario.protocol, scenario.config, options_.oracles)};
  report.violations = evaluate_oracles(context);

  if (context.profile.partner_floor > 0) {
    std::ostringstream key;
    key << scenario.protocol << '|' << scenario.config.n << '|'
        << scenario.config.t;
    auto [it, inserted] = signature_memo_.try_emplace(key.str());
    if (inserted) {
      ba::BAConfig shape = scenario.config;
      shape.transmitter = 0;  // the failure-free histories H(0) / G(1)
      it->second =
          check_signature_floors(*protocol, shape, options_.seed);
    }
    report.violations.insert(report.violations.end(), it->second.begin(),
                             it->second.end());
  }

  if (options_.differential) {
    std::vector<ba::ScenarioFault> faults;
    faults.reserve(scenario.scripted.size());
    for (const chaos::ScriptedFault& fault : scenario.scripted) {
      faults.push_back(chaos::to_scenario_fault(*protocol, fault));
    }
    const net::ParityReport parity =
        net::check_parity(*protocol, scenario.config, scenario.seed, faults,
                          scenario.rules, scenario.plan_seed);
    for (const std::string& mismatch : parity.mismatches) {
      report.violations.push_back("differential: " + mismatch);
    }
  }
  return report;
}

chaos::Scenario ConformanceEngine::shrink_case(
    const chaos::Scenario& scenario) {
  const auto still_fails = [this](const chaos::Scenario& candidate) {
    const CaseReport report = evaluate(candidate);
    return report.within_budget && !report.violations.empty();
  };
  chaos::Scenario best = scenario;
  best.scripted = chaos::ddmin(
      best.scripted, [&](const std::vector<chaos::ScriptedFault>& subset) {
        chaos::Scenario candidate = best;
        candidate.scripted = subset;
        return still_fails(candidate);
      });
  return chaos::minimize(best, still_fails);
}

ConformanceStats ConformanceEngine::run() {
  ConformanceStats stats;
  for (std::size_t i = 0; i < options_.cases; ++i) {
    Xoshiro256 rng(SplitMix64(options_.seed + i).next());
    const chaos::Scenario scenario =
        generate_case(rng, options_.generator);
    ++stats.cases;
    ProtocolStats& per = stats.per_protocol[scenario.protocol];
    ++per.cases;

    const CaseReport report = evaluate(scenario);
    if (!report.within_budget) {
      ++stats.skipped_over_budget;
      ++per.skipped_over_budget;
      continue;
    }
    ++stats.checked;
    ++per.checked;
    if (report.violations.empty()) continue;

    const chaos::Scenario minimal =
        options_.shrink ? shrink_case(scenario) : scenario;
    const CaseReport confirmed = evaluate(minimal);
    DR_ASSERT(!confirmed.violations.empty());
    ++per.findings;
    stats.findings.push_back(chaos::Finding{
        minimal, confirmed.violations,
        chaos::to_json(minimal, confirmed.violations)});
  }
  stats.signature_shapes_checked = signature_memo_.size();
  return stats;
}

}  // namespace dr::check
