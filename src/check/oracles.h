// The paper's bounds as executable oracles.
//
// Every closed-form statement in bounds/formulas.h that constrains an
// *observable* of a protocol run — phase counts, message counts by correct
// processors, failure-free signature floors — becomes a named predicate
// over a chaos::Outcome. The conformance engine (engine.h) holds every
// randomized run against these; a violation means either the
// implementation or the encoded constant is wrong, which is exactly the
// property the suite exists to detect (break 2t^2+2t into 2t^2+t and the
// engine hands back a shrunk reproducer).
//
// Per-run upper bounds (quantified over every <= t-faulty schedule):
//   alg1 / alg1-mv    messages <= 2t^2+2t (x2 mv)     phases <= t+2
//   alg2              messages <= 5t^2+5t             phases <= 3t+3
//   alg3[s]           messages <= 2n+ceil(4tn/s)+3t^2s  phases <= t+2s+3
//   dolev-strong      repo worst case (n-1)+2(n-1)^2  phases <= t+1
//   dolev-strong-relay repo worst case                phases <= steps-1
//   eig / phase-king  one broadcast per comm phase    phases <= steps-1
//
// Failure-free lower bounds (Theorem 1, authenticated algorithms): over
// the two histories H (value 0) and G (value 1), 2*max(sigs_H, sigs_G)
// must reach n(t+1)/4 signatures by correct processors, and every
// processor's signature partner set across H u G must exceed t.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/chaos.h"

namespace dr::check {

using ba::BAConfig;
using ba::Protocol;
using sim::PhaseNum;
using sim::ProcId;

/// Deliberate threshold distortion. Production runs keep both scales at
/// 1.0; tests and the CLI lower one to prove the whole engine closes —
/// a "broken constant" is found, shrunk, serialized and replayed —
/// without editing bounds/formulas.cpp.
struct OracleOptions {
  double message_scale = 1.0;
  double phase_scale = 1.0;
};

/// The thresholds one (protocol, config) pair is held against. Unset
/// optionals mean the paper states no closed form for that observable
/// (alg5's O(t^2 + nt/s), the mv variants of alg2/alg3).
struct BoundProfile {
  std::optional<std::size_t> message_upper;
  std::optional<PhaseNum> phase_upper;
  bool authenticated = false;
  std::size_t signature_floor = 0;  // Theorem 1: ceil(n(t+1)/4) over H u G
  std::size_t partner_floor = 0;    // Theorem 1: > t partners per processor
};

BoundProfile profile_for(std::string_view protocol_name,
                         const BAConfig& config,
                         const OracleOptions& options = {});

/// Everything a per-run oracle may look at. `faulty` is the mask the
/// bounds quantify over — the effective faulty set (scripted union
/// transport-perturbed) for model-conforming runs.
struct CaseContext {
  const chaos::Scenario& scenario;
  const chaos::Outcome& outcome;
  const std::vector<bool>& faulty;
  BoundProfile profile;
};

/// A named machine-checkable predicate: nullopt = satisfied, else a
/// deterministic human-readable violation.
struct Oracle {
  std::string name;
  std::function<std::optional<std::string>(const CaseContext&)> check;
};

/// The per-run oracle set: agreement, validity, phase budget, message
/// budget. (Theorem 1's floors are not per-run — see check_signature_floors.)
const std::vector<Oracle>& paper_oracles();

/// Runs every per-run oracle; returns "<oracle>: <detail>" strings.
std::vector<std::string> evaluate_oracles(const CaseContext& context);

/// Theorem 1's failure-free floors for an authenticated protocol: executes
/// the two failure-free histories H (value 0) and G (value 1) with recorded
/// history and checks (a) 2 * max(signatures by correct in H, in G) reaches
/// ceil(n(t+1)/4) — the integer-exact form of the repo's established
/// reading that the bound counts both histories together — and (b) every
/// processor's partner set across H u G exceeds t (bounds::signature_partners).
/// Deterministic in (protocol, config.n, config.t, seed); callers memoize.
std::vector<std::string> check_signature_floors(const Protocol& protocol,
                                                const BAConfig& config,
                                                std::uint64_t seed);

}  // namespace dr::check
