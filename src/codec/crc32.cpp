#include "codec/crc32.h"

#include <array>

#include "util/contracts.h"

namespace dr {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, ByteView data) {
  for (std::uint8_t byte : data) {
    state = kTable[(state ^ byte) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(ByteView data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

void put_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFFu));
}

std::uint32_t get_u32le(ByteView data, std::size_t offset) {
  DR_EXPECTS(offset + 4 <= data.size());
  return static_cast<std::uint32_t>(data[offset]) |
         static_cast<std::uint32_t>(data[offset + 1]) << 8 |
         static_cast<std::uint32_t>(data[offset + 2]) << 16 |
         static_cast<std::uint32_t>(data[offset + 3]) << 24;
}

}  // namespace dr
