#include "codec/codec.h"

namespace dr {

namespace {

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

void Writer::u8(std::uint8_t v) { out_.push_back(v); }

void Writer::u32(std::uint32_t v) { put_varint(out_, v); }

void Writer::u64(std::uint64_t v) { put_varint(out_, v); }

void Writer::bytes(ByteView data) {
  put_varint(out_, data.size());
  append(out_, data);
}

void Writer::str(std::string_view s) { bytes(as_bytes(s)); }

void Writer::seq(std::size_t count) { put_varint(out_, count); }

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (!ok_ || pos_ >= data_.size() || shift >= 64) {
      fail();
      return 0;
    }
    const std::uint8_t b = data_[pos_++];
    // Reject bits that would overflow 64-bit.
    if (shift == 63 && (b & 0x7e) != 0) {
      fail();
      return 0;
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::uint8_t Reader::u8() {
  if (!ok_ || pos_ >= data_.size()) {
    fail();
    return 0;
  }
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  const std::uint64_t v = varint();
  if (v > 0xffffffffULL) {
    fail();
    return 0;
  }
  return static_cast<std::uint32_t>(v);
}

std::uint64_t Reader::u64() { return varint(); }

Bytes Reader::bytes() {
  const std::uint64_t len = varint();
  if (!ok_ || len > remaining()) {
    fail();
    return {};
  }
  Bytes out = acquire_scratch();
  out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

ByteView Reader::view() {
  const std::uint64_t len = varint();
  if (!ok_ || len > remaining()) {
    fail();
    return {};
  }
  const ByteView out = data_.subspan(pos_, static_cast<std::size_t>(len));
  pos_ += len;
  return out;
}

std::string Reader::str() {
  const Bytes raw = bytes();
  return std::string(raw.begin(), raw.end());
}

std::size_t Reader::seq() {
  const std::uint64_t count = varint();
  if (!ok_ || count > remaining()) {
    fail();
    return 0;
  }
  return static_cast<std::size_t>(count);
}

Bytes encode_u64(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return std::move(w).take();
}

std::optional<std::uint64_t> decode_u64(ByteView data) {
  Reader r(data);
  const std::uint64_t v = r.u64();
  if (!r.done()) return std::nullopt;
  return v;
}

}  // namespace dr
