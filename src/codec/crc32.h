// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) plus the fixed-width
// little-endian helpers the frame layer needs. The varint codec in codec.h
// stays the payload encoding; frames need a fixed-size length prefix so a
// byte-stream receiver can delimit the next frame before parsing it, and a
// checksum so line corruption is distinguishable from Byzantine content
// (which is valid at the frame layer and adjudicated by the protocols).
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace dr {

/// CRC of `data` with the standard init/final xor (0xFFFFFFFF).
std::uint32_t crc32(ByteView data);

/// Incremental form: feed `crc32_init()`, then chunks, then finalize.
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, ByteView data);
std::uint32_t crc32_final(std::uint32_t state);

/// Appends `v` as 4 little-endian bytes.
void put_u32le(Bytes& out, std::uint32_t v);

/// Reads 4 little-endian bytes at `offset`. Precondition: in range.
std::uint32_t get_u32le(ByteView data, std::size_t offset);

}  // namespace dr
