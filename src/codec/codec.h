// Binary serialization used for every wire message in the simulator.
//
// Design goals:
//  * deterministic encoding (identical input -> identical bytes), because
//    signatures are computed over encoded bytes;
//  * robust decoding — a Byzantine processor controls the payload bytes of
//    everything it sends, so Reader never trusts lengths and never throws on
//    malformed input; each read reports failure through its `ok()` state.
//
// Encoding: LEB128-style varints for integers; length-prefixed byte strings;
// length-prefixed sequences.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace dr {

class Writer {
 public:
  /// Starts from a recycled staging buffer when the calling thread has one
  /// (util/bytes.h): encode-then-wrap message paths reuse capacity instead
  /// of paying a malloc per message. Behavior is otherwise identical — the
  /// buffer starts empty either way.
  Writer() : out_(acquire_scratch()) {}

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Varint-encoded length followed by raw bytes.
  void bytes(ByteView data);
  void str(std::string_view s);
  /// Sequence length prefix; caller then writes `count` elements.
  void seq(std::size_t count);

  const Bytes& out() const& { return out_; }
  Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  /// All reads return a value; on failure the value is zero/empty and ok()
  /// flips to false and stays false ("poisoned"), so callers may decode a
  /// whole structure and check ok() once at the end.
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes();
  /// Zero-copy variant of bytes(): a view into the underlying input, valid
  /// only while that input lives. Same length/failure rules as bytes().
  ByteView view();
  std::string str();
  /// Reads a sequence length; additionally fails if the claimed count
  /// exceeds the number of remaining input bytes (cheap DoS guard — every
  /// element costs at least one byte).
  std::size_t seq();

  bool ok() const { return ok_; }
  /// True when the whole input has been consumed and no error occurred.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::uint64_t varint();
  void fail() { ok_ = false; }

  ByteView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Convenience: encode a u64 as a standalone byte string.
Bytes encode_u64(std::uint64_t v);
/// Decode a standalone u64; nullopt on malformed or trailing bytes.
std::optional<std::uint64_t> decode_u64(ByteView data);

}  // namespace dr
