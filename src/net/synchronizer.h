// Recovers the paper's lock-step rounds on top of an asynchronous,
// threaded Transport.
//
// The paper's model delivers a phase-k message at the beginning of phase
// k+1, for every processor at once. Over real channels nothing arrives "at
// once", so each endpoint runs a barrier per phase:
//
//   * after stepping its process for phase k and sending that phase's
//     payload frames, the endpoint broadcasts a DONE(k) control frame on
//     every link;
//   * per-link FIFO order then makes DONE(k) from peer q a receipt for all
//     of q's phase-k traffic: once every live peer's DONE(k) is in, the
//     phase-k inbox is provably complete and is released, sorted by sender
//     — byte-for-byte the order the in-memory Network delivers;
//   * frames from peers that are already in a later phase are buffered
//     until their own release point (a fast peer cannot outrun the barrier
//     by more than the synchronizer can buffer);
//   * a peer whose DONE(k) does not arrive within the phase timeout is
//     treated as omission-faulty from then on: the barrier stops waiting
//     for it forever, its late frames for already-released phases are
//     dropped as stale, and the paper's accounting charges it against the
//     fault budget t exactly like a crashed processor (docs/MODEL.md).
#pragma once

#include <chrono>
#include <map>
#include <vector>

#include "net/frame.h"
#include "net/transport.h"
#include "sim/envelope.h"
#include "sim/metrics.h"

namespace dr::net {

using sim::Envelope;

/// Per-endpoint synchronizer counters, merged across endpoints by the
/// runner after the join.
struct SyncStats {
  FrameStats frames;
  std::size_t stragglers = 0;    // peers this endpoint declared
                                 // omission-faulty at some barrier
  std::size_t stale_frames = 0;  // payload frames past their release point
  std::vector<ProcId> omission_faulty;  // the declared peers, in order

  void merge(const SyncStats& other);
};

class PhaseSynchronizer {
 public:
  PhaseSynchronizer(ProcId self, std::size_t n, Transport& transport,
                    std::chrono::milliseconds phase_timeout);

  /// Ends `phase`: broadcasts DONE(phase), waits until every live peer's
  /// DONE(phase) arrived or the timeout expired, marks stragglers
  /// omission-faulty, and returns the complete inbox for phase+1 (all
  /// payload frames with sent_phase == phase), sorted by sender with
  /// per-sender send order preserved. Counts the DONE frames it sends into
  /// `metrics` (`self_correct` flags whether this endpoint's process is
  /// scripted-correct).
  std::vector<Envelope> advance(PhaseNum phase, bool self_correct,
                                sim::Metrics& metrics);

  const SyncStats& stats() const { return stats_; }

 private:
  /// Drains the transport once (waiting up to `wait`) and dispatches every
  /// decoded frame into done-tracking or the phase buffer.
  void pump(std::chrono::milliseconds wait);
  bool barrier_met(PhaseNum phase) const;

  ProcId self_;
  std::size_t n_;
  Transport& transport_;
  std::chrono::milliseconds timeout_;
  std::vector<FrameAssembler> assemblers_;  // indexed by link peer
  std::vector<PhaseNum> done_phase_;        // highest DONE seen per peer
  std::vector<bool> dead_;                  // declared omission-faulty
  PhaseNum released_ = 0;                   // phases <= this are delivered
  // sent_phase -> per-sender payload envelopes (sender order = arrival
  // order = send order, by per-link FIFO).
  std::map<PhaseNum, std::vector<std::vector<Envelope>>> buffered_;
  SyncStats stats_;
};

}  // namespace dr::net
