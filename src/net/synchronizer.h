// Recovers the paper's lock-step rounds on top of an asynchronous,
// threaded Transport.
//
// The paper's model delivers a phase-k message at the beginning of phase
// k+1, for every processor at once. Over real channels nothing arrives "at
// once", so each endpoint runs a barrier per phase:
//
//   * after stepping its process for phase k and sending that phase's
//     payload frames, the endpoint broadcasts a DONE(k) control frame on
//     every link;
//   * per-link FIFO order then makes DONE(k) from peer q a receipt for all
//     of q's phase-k traffic: once every live peer's DONE(k) is in, the
//     phase-k inbox is provably complete and is released, sorted by sender
//     — byte-for-byte the order the in-memory Network delivers;
//   * frames from peers that are already in a later phase are buffered
//     until their own release point (a fast peer cannot outrun the barrier
//     by more than the synchronizer can buffer);
//   * a link that dies (kDisconnect event, failed send) marks its peer
//     down and resets the frame assembler — a partial frame straddling the
//     cut is truncation, discarded and counted, never spliced with
//     fresh-connection bytes. A down peer may reconnect: its next chunk
//     clears the mark. While every missing peer is link-down, the barrier
//     waits only to the end of their reconnect windows instead of the full
//     phase timeout — the degradation is proportional to the number of
//     actual failures, not to worst-case timeouts;
//   * a peer whose DONE(k) does not arrive in time is treated as
//     omission-faulty from then on: the barrier stops waiting for it
//     forever, nothing further is sent to it, its late frames for
//     already-released phases are dropped as stale, and the paper's
//     accounting charges it against the fault budget t exactly like a
//     crashed processor (docs/MODEL.md, "Failure semantics of the net
//     runtime").
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <vector>

#include "net/frame.h"
#include "net/transport.h"
#include "sim/envelope.h"
#include "sim/metrics.h"

namespace dr::net {

using sim::Envelope;

/// Per-endpoint synchronizer counters, merged across endpoints by the
/// runner after the join.
struct SyncStats {
  FrameStats frames;
  LinkHealth link;  // transport-side lifecycle counters (runner-harvested)
  std::size_t stragglers = 0;    // peers this endpoint declared
                                 // omission-faulty at some barrier
  std::size_t stale_frames = 0;  // payload frames past their release point
  std::size_t disconnects = 0;       // link-down events observed
  std::size_t reconnected_peers = 0; // down links seen alive again
  std::size_t truncated_frames = 0;  // partial frames cut off by a dead link
  std::size_t send_errors = 0;       // frames a send() failed to deliver
  std::size_t poisoned_links = 0;    // assemblers driven into poisoning
  std::vector<ProcId> omission_faulty;  // the declared peers, in order

  void merge(const SyncStats& other);
};

class PhaseSynchronizer {
 public:
  /// `abort`, when non-null, is the runner's watchdog flag: a set flag
  /// makes every barrier wait return promptly (the run is being torn
  /// down). `reconnect_window` bounds how long a barrier waits for a
  /// link-down peer to come back before giving up on it.
  PhaseSynchronizer(
      ProcId self, std::size_t n, Transport& transport,
      std::chrono::milliseconds phase_timeout,
      std::chrono::milliseconds reconnect_window =
          std::chrono::milliseconds(1000),
      const std::atomic<bool>* abort = nullptr);

  /// Encodes and sends one frame from this endpoint, counting it into
  /// `metrics`. Links to peers already demoted as omission-faulty are
  /// skipped (the paper stops charging correct processors for traffic to
  /// crashed ones); a failed send marks the link down and is absorbed into
  /// the stats — never an abort. The runner's payload path and the DONE
  /// broadcast both go through here.
  void send_frame(const Frame& frame, bool self_correct,
                  sim::Metrics& metrics);

  /// Ends `phase`: broadcasts DONE(phase), waits until every live peer's
  /// DONE(phase) arrived or the timeout expired, marks stragglers
  /// omission-faulty, and returns the complete inbox for phase+1 (all
  /// payload frames with sent_phase == phase), sorted by sender with
  /// per-sender send order preserved. Counts the DONE frames it sends into
  /// `metrics` (`self_correct` flags whether this endpoint's process is
  /// scripted-correct).
  std::vector<Envelope> advance(PhaseNum phase, bool self_correct,
                                sim::Metrics& metrics);

  const SyncStats& stats() const { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Drains the transport once (waiting up to `wait`) and dispatches every
  /// decoded frame into done-tracking or the phase buffer; link events
  /// reset the assembler at their exact stream position.
  void pump(std::chrono::milliseconds wait);
  bool barrier_met(PhaseNum phase) const;
  /// Marks q's link down (idempotent for the window start), discards any
  /// partial frame, and resets the assembler for the next connection.
  void note_link_down(ProcId q);
  bool abort_requested() const {
    return abort_ != nullptr && abort_->load(std::memory_order_relaxed);
  }

  ProcId self_;
  std::size_t n_;
  Transport& transport_;
  std::chrono::milliseconds timeout_;
  std::chrono::milliseconds reconnect_window_;
  const std::atomic<bool>* abort_;
  std::vector<FrameAssembler> assemblers_;  // indexed by link peer
  std::vector<PhaseNum> done_phase_;        // highest DONE seen per peer
  std::vector<bool> dead_;                  // declared omission-faulty
  std::vector<bool> down_;                  // link currently severed
  std::vector<Clock::time_point> down_since_;  // reconnect window start
  PhaseNum released_ = 0;                   // phases <= this are delivered
  // sent_phase -> per-sender payload envelopes (sender order = arrival
  // order = send order, by per-link FIFO).
  std::map<PhaseNum, std::vector<std::vector<Envelope>>> buffered_;
  SyncStats stats_;
};

}  // namespace dr::net
