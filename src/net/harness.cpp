#include "net/harness.h"

#include <sstream>
#include <utility>

#include "net/inprocess.h"
#include "net/tcp.h"
#include "util/contracts.h"

namespace dr::net {

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kInProcess:
      return "inprocess";
    case Backend::kTcpLoopback:
      break;
  }
  return "tcp";
}

bool backend_from_string(std::string_view name, Backend& out) {
  if (name == "inprocess") {
    out = Backend::kInProcess;
    return true;
  }
  if (name == "tcp") {
    out = Backend::kTcpLoopback;
    return true;
  }
  return false;
}

std::unique_ptr<Transport> make_transport(Backend backend, std::size_t n) {
  if (backend == Backend::kInProcess) {
    return std::make_unique<InProcessTransport>(n);
  }
  return std::make_unique<TcpLoopbackTransport>(n);
}

NetRunResult run_scenario(const ba::Protocol& protocol,
                          const ba::BAConfig& config, Backend backend,
                          const NetScenarioOptions& options,
                          const std::vector<ba::ScenarioFault>& faults) {
  DR_EXPECTS(protocol.supports(config));
  DR_EXPECTS(faults.size() <= config.t);

  const std::unique_ptr<Transport> transport =
      make_transport(backend, config.n);
  NetConfig net_config{.n = config.n,
                       .t = config.t,
                       .transmitter = config.transmitter,
                       .value = config.value,
                       .seed = options.seed,
                       .scheme = sim::SchemeKind::kHmac,
                       .merkle_height = 6,
                       .phase_timeout = options.phase_timeout,
                       .reconnect_window = options.reconnect_window,
                       .run_deadline = options.run_deadline,
                       .fault_plan = options.fault_plan,
                       .churn = options.churn};
  NetRunner runner(net_config, *transport);
  for (const ba::ScenarioFault& fault : faults) {
    runner.mark_faulty(fault.id);
  }
  for (ProcId p = 0; p < config.n; ++p) {
    if (!runner.is_faulty(p)) {
      runner.install(p, protocol.make(p, config));
    }
  }
  for (const ba::ScenarioFault& fault : faults) {
    runner.install(fault.id, fault.make(fault.id, config));
  }
  return runner.run(protocol.steps(config));
}

void compare_parity_runs(const char* backend, const sim::RunResult& want,
                         const sim::RunResult& got, ParityReport& report) {
  const auto fail = [&](const std::string& what) {
    report.ok = false;
    report.mismatches.push_back(std::string(backend) + ": " + what);
  };
  if (got.decisions != want.decisions) fail("decisions differ");

  const sim::Metrics& a = want.metrics;
  const sim::Metrics& b = got.metrics;
  const auto check = [&](const char* name, std::size_t lhs, std::size_t rhs) {
    if (lhs == rhs) return;
    std::ostringstream os;
    os << name << " sim=" << lhs << " net=" << rhs;
    fail(os.str());
  };
  check("messages_by_correct", a.messages_by_correct(),
        b.messages_by_correct());
  check("signatures_by_correct", a.signatures_by_correct(),
        b.signatures_by_correct());
  check("messages_total", a.messages_total(), b.messages_total());
  check("bytes_by_correct", a.bytes_by_correct(), b.bytes_by_correct());
  check("max_payload_by_correct", a.max_payload_by_correct(),
        b.max_payload_by_correct());
  check("last_active_phase", a.last_active_phase(), b.last_active_phase());
  check("chain_cache_hits", a.chain_cache_hits(), b.chain_cache_hits());
  check("chain_cache_misses", a.chain_cache_misses(), b.chain_cache_misses());
  // Connection-lifecycle counters: always zero for sim (no wire), and a
  // parity scenario injects no churn, so any disconnect/retry on the net
  // side is a real transport bug — compared as hard equalities.
  check("net_disconnects", a.net_disconnects(), b.net_disconnects());
  check("net_reconnect_attempts", a.net_reconnect_attempts(),
        b.net_reconnect_attempts());
  check("net_send_retries", a.net_send_retries(), b.net_send_retries());
  check("net_endpoints_degraded", a.net_endpoints_degraded(),
        b.net_endpoints_degraded());
  if (a.per_phase() != b.per_phase()) fail("per-phase counts differ");
  for (ProcId p = 0; p < a.n(); ++p) {
    std::ostringstream os;
    os << "[p=" << p << "]";
    const std::string tag = os.str();
    check(("sent_by" + tag).c_str(), a.sent_by(p), b.sent_by(p));
    check(("received_from_correct" + tag).c_str(), a.received_from_correct(p),
          b.received_from_correct(p));
    check(("signatures_exchanged" + tag).c_str(), a.signatures_exchanged(p),
          b.signatures_exchanged(p));
  }
}

ParityReport check_parity(const ba::Protocol& protocol,
                          const ba::BAConfig& config, std::uint64_t seed,
                          const std::vector<ba::ScenarioFault>& faults,
                          const std::vector<sim::FaultRule>& rules,
                          std::uint64_t plan_seed) {
  ParityReport report;

  sim::FaultPlan sim_plan(rules, plan_seed);
  ba::ScenarioOptions sim_options;
  sim_options.seed = seed;
  sim_options.fault_plan = rules.empty() ? nullptr : &sim_plan;
  report.sim = ba::run_scenario(protocol, config, sim_options, faults);

  const Backend backends[] = {Backend::kInProcess, Backend::kTcpLoopback};
  for (const Backend backend : backends) {
    sim::FaultPlan net_plan(rules, plan_seed);
    NetScenarioOptions net_options;
    net_options.seed = seed;
    net_options.fault_plan = rules.empty() ? nullptr : &net_plan;
    NetRunResult net_result =
        run_scenario(protocol, config, backend, net_options, faults);
    compare_parity_runs(to_string(backend), report.sim, net_result.run,
                        report);
    if (!rules.empty() && net_plan.perturbed() != sim_plan.perturbed()) {
      report.ok = false;
      report.mismatches.push_back(std::string(to_string(backend)) +
                                  ": perturbed sets differ");
    }
    if (backend == Backend::kInProcess) {
      report.inprocess = std::move(net_result);
    } else {
      report.tcp = std::move(net_result);
    }
  }
  return report;
}

}  // namespace dr::net
