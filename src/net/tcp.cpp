#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/contracts.h"

namespace dr::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DR_ASSERT(flags >= 0);
  DR_ASSERT(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  const int one = 1;
  DR_ASSERT(::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) ==
            0);
}

void write_all_blocking(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t k = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    DR_ASSERT(k < 0 && (errno == EINTR || errno == EAGAIN ||
                        errno == EWOULDBLOCK));
    if (errno == EINTR) continue;
    struct pollfd pfd {fd, POLLOUT, 0};
    ::poll(&pfd, 1, /*timeout_ms=*/100);
  }
}

void read_all_blocking(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t k = ::read(fd, data + off, size - off);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    DR_ASSERT(k < 0 && errno == EINTR);
  }
}

}  // namespace

TcpLoopbackTransport::TcpLoopbackTransport(std::size_t n)
    : fds_(n, std::vector<int>(n, -1)), loopback_(n) {
  DR_EXPECTS(n >= 1);

  // One listener per endpoint on an ephemeral loopback port.
  std::vector<int> listeners(n, -1);
  std::vector<std::uint16_t> ports(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DR_ASSERT(fd >= 0);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    DR_ASSERT(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0);
    DR_ASSERT(::listen(fd, static_cast<int>(n)) == 0);
    socklen_t len = sizeof(addr);
    DR_ASSERT(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
              0);
    listeners[p] = fd;
    ports[p] = ntohs(addr.sin_port);
  }

  // Dial every pair i < j: i connects to j's listener and announces its id
  // (the authenticated-channel handshake, performed by the trusted setup,
  // never by a process).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const int c = ::socket(AF_INET, SOCK_STREAM, 0);
      DR_ASSERT(c >= 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(ports[j]);
      DR_ASSERT(::connect(c, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0);
      std::uint8_t hello[4] = {
          static_cast<std::uint8_t>(i & 0xFF),
          static_cast<std::uint8_t>((i >> 8) & 0xFF),
          static_cast<std::uint8_t>((i >> 16) & 0xFF),
          static_cast<std::uint8_t>((i >> 24) & 0xFF)};
      write_all_blocking(c, hello, sizeof(hello));

      const int s = ::accept(listeners[j], nullptr, nullptr);
      DR_ASSERT(s >= 0);
      std::uint8_t peer[4];
      read_all_blocking(s, peer, sizeof(peer));
      const std::size_t announced = static_cast<std::size_t>(peer[0]) |
                                    static_cast<std::size_t>(peer[1]) << 8 |
                                    static_cast<std::size_t>(peer[2]) << 16 |
                                    static_cast<std::size_t>(peer[3]) << 24;
      DR_ASSERT(announced == i);

      set_nonblocking(c);
      set_nodelay(c);
      set_nonblocking(s);
      set_nodelay(s);
      fds_[i][j] = c;
      fds_[j][i] = s;
    }
  }
  for (const int fd : listeners) ::close(fd);
}

TcpLoopbackTransport::~TcpLoopbackTransport() { shutdown(); }

void TcpLoopbackTransport::send(ProcId from, ProcId to, ByteView bytes) {
  DR_EXPECTS(from < n() && to < n());
  if (from == to) {
    loopback_[from].emplace_back(bytes.begin(), bytes.end());
    return;
  }
  write_all_blocking(fds_[from][to], bytes.data(), bytes.size());
}

bool TcpLoopbackTransport::recv(ProcId self, std::vector<RawChunk>& out,
                                std::chrono::milliseconds timeout) {
  DR_EXPECTS(self < n());
  const std::size_t base = out.size();
  for (Bytes& chunk : loopback_[self]) {
    out.push_back(RawChunk{self, std::move(chunk)});
  }
  loopback_[self].clear();

  std::vector<struct pollfd> pfds;
  std::vector<ProcId> peer_of;
  pfds.reserve(n() - 1);
  for (ProcId q = 0; q < n(); ++q) {
    if (q == self) continue;
    pfds.push_back({fds_[self][q], POLLIN, 0});
    peer_of.push_back(q);
  }
  const int wait_ms =
      out.size() > base ? 0 : static_cast<int>(timeout.count());
  const int ready = ::poll(pfds.data(),
                           static_cast<nfds_t>(pfds.size()), wait_ms);
  if (ready <= 0) return out.size() > base;

  std::uint8_t buf[65536];
  for (std::size_t k = 0; k < pfds.size(); ++k) {
    if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    while (true) {
      const ssize_t got = ::read(pfds[k].fd, buf, sizeof(buf));
      if (got > 0) {
        out.push_back(RawChunk{
            peer_of[k], Bytes(buf, buf + static_cast<std::size_t>(got))});
        continue;
      }
      if (got == 0) break;  // peer end closed (teardown)
      if (errno == EINTR) continue;
      DR_ASSERT(errno == EAGAIN || errno == EWOULDBLOCK);
      break;
    }
  }
  return out.size() > base;
}

void TcpLoopbackTransport::shutdown() {
  if (down_) return;
  down_ = true;
  for (auto& row : fds_) {
    for (int& fd : row) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace dr::net
