#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "net/sockets.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace dr::net {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int TcpLoopbackTransport::dial_once(ProcId as, ProcId to, int& err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    err = errno;
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ports_[to]);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    err = errno;
    ::close(fd);
    return -1;
  }
  const std::uint8_t hello[4] = {
      static_cast<std::uint8_t>(as & 0xFF),
      static_cast<std::uint8_t>((as >> 8) & 0xFF),
      static_cast<std::uint8_t>((as >> 16) & 0xFF),
      static_cast<std::uint8_t>((as >> 24) & 0xFF)};
  LinkHealth scratch;
  if (write_with_deadline(fd, to, hello, sizeof(hello),
                          Clock::now() + std::chrono::milliseconds(500),
                          scratch)
          .has_value()) {
    err = EPIPE;
    ::close(fd);
    return -1;
  }
  err = 0;
  return fd;
}

TcpLoopbackTransport::TcpLoopbackTransport(std::size_t n, TcpOptions options)
    : listeners_(n, -1), ports_(n, 0), options_(options) {
  DR_EXPECTS(n >= 1);
  endpoints_.resize(n);
  for (Endpoint& ep : endpoints_) {
    ep.fds.assign(n, -1);
  }

  // One listener per endpoint on an ephemeral loopback port, kept open for
  // the whole run so a restarted endpoint can be redialed. Nonblocking:
  // recv() folds accepts into its poll loop.
  for (std::size_t p = 0; p < n; ++p) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DR_ASSERT(fd >= 0);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    DR_ASSERT(::bind(fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0);
    DR_ASSERT(::listen(fd, static_cast<int>(std::max<std::size_t>(n, 8))) ==
              0);
    socklen_t len = sizeof(addr);
    DR_ASSERT(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
              0);
    set_nonblocking(fd);
    listeners_[p] = fd;
    ports_[p] = ntohs(addr.sin_port);
  }

  // Dial every pair i < j: i connects to j's listener and announces its id
  // (the authenticated-channel handshake, performed by the trusted setup,
  // never by a process).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      int err = 0;
      const int c = dial_once(static_cast<ProcId>(i),
                              static_cast<ProcId>(j), err);
      DR_ASSERT(c >= 0);

      const Clock::time_point deadline =
          Clock::now() + std::chrono::milliseconds(2000);
      int s = -1;
      while (s < 0) {
        s = ::accept(listeners_[j], nullptr, nullptr);
        if (s >= 0) break;
        DR_ASSERT(errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK);
        DR_ASSERT(Clock::now() < deadline);
        struct pollfd pfd {listeners_[j], POLLIN, 0};
        ::poll(&pfd, 1, remaining_ms(deadline));
      }
      std::uint8_t peer[4];
      DR_ASSERT(read_exact(s, peer, sizeof(peer), deadline));
      const std::size_t announced = static_cast<std::size_t>(peer[0]) |
                                    static_cast<std::size_t>(peer[1]) << 8 |
                                    static_cast<std::size_t>(peer[2]) << 16 |
                                    static_cast<std::size_t>(peer[3]) << 24;
      DR_ASSERT(announced == i);

      set_nonblocking(c);
      set_nodelay(c);
      set_nonblocking(s);
      set_nodelay(s);
      endpoints_[i].fds[j] = c;
      endpoints_[j].fds[i] = s;
    }
  }
}

TcpLoopbackTransport::~TcpLoopbackTransport() { shutdown(); }

std::optional<TransportError> TcpLoopbackTransport::redial(
    ProcId from, ProcId to, Clock::time_point deadline) {
  Endpoint& ep = endpoints_[from];
  std::chrono::milliseconds backoff = options_.backoff_initial;
  // Deterministic jitter: a fixed function of (seed, link, attempt count),
  // so two endpoints redialing each other never lock into the same rhythm
  // and a replayed run sleeps the same schedule.
  SplitMix64 jitter(options_.jitter_seed ^
                    (static_cast<std::uint64_t>(from) << 32) ^
                    (static_cast<std::uint64_t>(to) << 16) ^
                    ep.health.reconnect_attempts);
  int err = 0;
  while (true) {
    ++ep.health.reconnect_attempts;
    const int fd = dial_once(from, to, err);
    if (fd >= 0) {
      set_nonblocking(fd);
      set_nodelay(fd);
      ep.fds[to] = fd;
      ++ep.health.reconnects;
      return std::nullopt;
    }
    const auto sleep =
        backoff + std::chrono::milliseconds(
                      jitter.next() %
                      static_cast<std::uint64_t>(backoff.count() + 1));
    if (Clock::now() + sleep >= deadline) {
      return TransportError{TransportErrorKind::kRefused, to, err};
    }
    ++ep.health.send_retries;
    std::this_thread::sleep_for(sleep);
    backoff = std::min(backoff * 2, options_.backoff_cap);
  }
}

std::optional<TransportError> TcpLoopbackTransport::send(ProcId from,
                                                         ProcId to,
                                                         ByteView bytes) {
  DR_EXPECTS(from < n() && to < n());
  if (from == to) {
    endpoints_[from].loopback.emplace_back(bytes.begin(), bytes.end());
    return std::nullopt;
  }
  if (down_) return TransportError{TransportErrorKind::kRefused, to, 0};
  Endpoint& ep = endpoints_[from];
  const Clock::time_point deadline = Clock::now() + options_.send_deadline;
  for (int attempt = 0;; ++attempt) {
    if (ep.fds[to] < 0) {
      if (auto error = redial(from, to, deadline)) return error;
    }
    auto error = write_with_deadline(ep.fds[to], to, bytes.data(),
                                     bytes.size(), deadline, ep.health);
    if (!error.has_value()) return std::nullopt;
    if (error->kind == TransportErrorKind::kDisconnect) {
      ::close(ep.fds[to]);
      ep.fds[to] = -1;
      ++ep.health.disconnects;
      // The frame was not fully accepted by the kernel, so the receiver
      // holds at most a partial copy — which it discards at the
      // kDisconnect event. One full resend over a fresh connection
      // therefore cannot double-deliver.
      if (attempt == 0 && Clock::now() < deadline) continue;
    }
    return error;
  }
}

void TcpLoopbackTransport::accept_pending(ProcId self,
                                          std::vector<RawChunk>& out) {
  Endpoint& ep = endpoints_[self];
  while (true) {
    const int s = ::accept(listeners_[self], nullptr, nullptr);
    if (s < 0) {
      if (errno == EINTR) continue;
      return;  // drained (EAGAIN) or transient: retry on the next recv
    }
    std::uint8_t hello[4];
    if (!read_exact(s, hello, sizeof(hello),
                    Clock::now() + std::chrono::milliseconds(200))) {
      ::close(s);  // dialer died before announcing itself
      continue;
    }
    const std::size_t announced = static_cast<std::size_t>(hello[0]) |
                                  static_cast<std::size_t>(hello[1]) << 8 |
                                  static_cast<std::size_t>(hello[2]) << 16 |
                                  static_cast<std::size_t>(hello[3]) << 24;
    if (announced >= n() || announced == self) {
      ::close(s);
      continue;
    }
    const ProcId peer = static_cast<ProcId>(announced);
    if (ep.fds[peer] >= 0) {
      // The peer redialed while its old connection was still open on our
      // side: the old stream is dead. Surface the event before any bytes
      // of the fresh connection (which is only read on the next recv).
      ::close(ep.fds[peer]);
      ++ep.health.disconnects;
      out.push_back(RawChunk{
          peer, {}, TransportError{TransportErrorKind::kDisconnect, peer, 0}});
    }
    set_nonblocking(s);
    set_nodelay(s);
    ep.fds[peer] = s;
  }
}

bool TcpLoopbackTransport::recv(ProcId self, std::vector<RawChunk>& out,
                                std::chrono::milliseconds timeout) {
  DR_EXPECTS(self < n());
  Endpoint& ep = endpoints_[self];
  const std::size_t base = out.size();
  for (Bytes& chunk : ep.loopback) {
    out.push_back(RawChunk{self, std::move(chunk), std::nullopt});
  }
  ep.loopback.clear();
  for (const ProcId q : ep.dropped) {
    out.push_back(RawChunk{
        q, {}, TransportError{TransportErrorKind::kDisconnect, q, 0}});
  }
  ep.dropped.clear();

  std::vector<struct pollfd> pfds;
  std::vector<ProcId> peer_of;
  pfds.reserve(n());
  for (ProcId q = 0; q < n(); ++q) {
    if (q == self || ep.fds[q] < 0) continue;
    pfds.push_back({ep.fds[q], POLLIN, 0});
    peer_of.push_back(q);
  }
  pfds.push_back({listeners_[self], POLLIN, 0});
  const int wait_ms =
      out.size() > base ? 0 : static_cast<int>(timeout.count());
  const int ready = ::poll(pfds.data(),
                           static_cast<nfds_t>(pfds.size()), wait_ms);
  if (ready <= 0) return out.size() > base;

  std::uint8_t buf[65536];
  for (std::size_t k = 0; k < peer_of.size(); ++k) {
    if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const ProcId q = peer_of[k];
    while (true) {
      const ssize_t got = ::read(pfds[k].fd, buf, sizeof(buf));
      if (got > 0) {
        out.push_back(RawChunk{
            q, Bytes(buf, buf + static_cast<std::size_t>(got)), std::nullopt});
        continue;
      }
      if (got < 0 && errno == EINTR) continue;
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // Clean close (0) or a hard error: the link is dead. Everything
      // already appended came over it in order; the event marks the cut.
      ::close(ep.fds[q]);
      ep.fds[q] = -1;
      ++ep.health.disconnects;
      out.push_back(RawChunk{
          q, {},
          TransportError{TransportErrorKind::kDisconnect, q,
                         got < 0 ? errno : 0}});
      break;
    }
  }
  // Accepts run last and fresh connections are first read on the next
  // call, so replacement events always precede new-connection bytes.
  if ((pfds.back().revents & POLLIN) != 0) accept_pending(self, out);
  return out.size() > base;
}

void TcpLoopbackTransport::drop_endpoint(ProcId p) {
  DR_EXPECTS(p < n());
  Endpoint& ep = endpoints_[p];
  for (ProcId q = 0; q < n(); ++q) {
    if (ep.fds[q] < 0) continue;
    ::close(ep.fds[q]);  // peers observe EOF/ECONNRESET on their end
    ep.fds[q] = -1;
    ++ep.health.disconnects;
    ep.dropped.push_back(q);
  }
  ep.loopback.clear();  // a restarted process loses its pending input
}

LinkHealth TcpLoopbackTransport::health(ProcId p) const {
  DR_EXPECTS(p < n());
  return endpoints_[p].health;
}

void TcpLoopbackTransport::shutdown() {
  if (down_) return;
  down_ = true;
  for (Endpoint& ep : endpoints_) {
    for (int& fd : ep.fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  for (int& fd : listeners_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

}  // namespace dr::net
