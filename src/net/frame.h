// The framed wire protocol of the real transports.
//
// A frame on the wire is
//
//   length : u32le            bytes that follow (body + crc)
//   body   : Writer-encoded   u8 version | u8 kind | u32 from | u32 to |
//                             u32 sent_phase | bytes payload
//   crc    : u32le            crc32(body)
//
// The fixed-width length prefix lets a byte-stream receiver delimit the
// next frame before parsing anything; the body reuses the repo's canonical
// varint codec (dr::Writer/Reader); the CRC separates line corruption from
// Byzantine *content*, which is perfectly valid at the frame layer and gets
// adjudicated by the protocols above.
//
// Authentication happens at decode time, not on the wire: a FrameAssembler
// is bound to the identity of the link it reads from (the paper's "for each
// labeled edge, processor p knows the source of that edge"), and the
// delivered Envelope::from is stamped with that link identity. A frame
// whose header claims a different `from` is dropped and counted — it is
// never delivered under either identity, so spoofing cannot cause
// misattribution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/transport.h"
#include "sim/envelope.h"
#include "sim/payload.h"
#include "util/bytes.h"

namespace dr::net {

using sim::PhaseNum;
using sim::ProcId;

inline constexpr std::uint8_t kFrameVersion = 1;

/// Hard cap on a frame's declared body length. A declared length beyond
/// this cannot be trusted as a resync boundary, so it poisons the link.
inline constexpr std::size_t kMaxFrameBody = std::size_t{1} << 24;  // 16 MiB

enum class FrameKind : std::uint8_t {
  kPayload = 0,  // one protocol message (an Envelope on the wire)
  kDone = 1,     // synchronizer marker: sender finished phase `sent_phase`
};

struct Frame {
  FrameKind kind = FrameKind::kPayload;
  ProcId from = 0;
  ProcId to = 0;
  PhaseNum sent_phase = 0;
  sim::Payload payload;  // empty for kDone; shared handle, not a copy

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serializes `frame` (length prefix + body + CRC).
Bytes encode_frame(const Frame& frame);

/// Zero-copy form of encode_frame: the returned parts reference
/// frame.payload's buffer instead of copying it, and satisfy
/// `encode_frame_parts(f).concat() == encode_frame(f)` bit-for-bit (the
/// CRC is computed incrementally across the split). This extends the
/// delivery plane's shared-handle discipline through the frame encoder:
/// a broadcast's n-1 frames share one payload buffer all the way to a
/// scatter/gather transport.
WireParts encode_frame_parts(const Frame& frame);

/// Outcome of delimiting one unit from the byte stream (FrameChunker).
enum class ChunkStatus : std::uint8_t {
  kBody,       // `body` is a complete, CRC-verified frame body
  kBadCrc,     // delimited, but the checksum failed (body invalid)
  kTooShort,   // declared length below the CRC's own size (body invalid)
  kOversized,  // declared length beyond the cap: the stream is poisoned
};

/// The transport-agnostic half of frame reassembly: consumes arbitrary
/// byte chunks and delimits `length | body | crc` units, verifying the
/// checksum. Shared by the FrameAssembler below (net frames) and the svc
/// reactor's connection state machines (service messages use the same
/// outer structure), so the blocking and nonblocking read paths cannot
/// drift apart. Never throws; an oversized declared length destroys the
/// only resync anchor, so the stream is poisoned and every further byte
/// is counted into `poisoned_bytes` and discarded.
class FrameChunker {
 public:
  using Sink = std::function<void(ChunkStatus, ByteView body)>;

  /// Consumes `chunk`, invoking `sink` once per delimited unit (body valid
  /// only for kBody). `poisoned_bytes` accrues discarded bytes: the
  /// remainder of the stream at the moment of poisoning, then every byte
  /// fed afterwards.
  void feed(ByteView chunk, const Sink& sink, std::size_t& poisoned_bytes);

  bool poisoned() const { return poisoned_; }
  /// Bytes of an incomplete trailing unit (truncation if the stream ends).
  std::size_t buffered() const { return pending_.size(); }

 private:
  Bytes pending_;
  bool poisoned_ = false;
};

/// Decode-side counters. Everything that is not `accepted` was dropped
/// without delivery; nothing here aborts the receiver.
struct FrameStats {
  std::size_t accepted = 0;
  std::size_t bad_version = 0;   // unknown version byte
  std::size_t bad_crc = 0;       // checksum mismatch
  std::size_t bad_structure = 0; // body fails to decode, bad kind, trailing
  std::size_t oversized = 0;     // declared length > kMaxFrameBody
  std::size_t spoofed_from = 0;  // header `from` != authenticated link peer
  std::size_t misrouted = 0;     // header `to` != receiving endpoint
  std::size_t poisoned_bytes = 0;  // bytes discarded after link poisoning

  std::size_t rejected() const {
    return bad_version + bad_crc + bad_structure + oversized + spoofed_from +
           misrouted;
  }
  void merge(const FrameStats& other);
};

/// Incremental frame parser for one authenticated link. Accepts arbitrary
/// chunking (TCP may deliver half a length prefix), never throws, never
/// aborts on malformed input. Recoverable errors (bad CRC, bad version,
/// bad structure) skip exactly one frame using its declared length; an
/// oversized declared length destroys the only resync anchor, so the link
/// is poisoned and every further byte is counted and discarded.
class FrameAssembler {
 public:
  FrameAssembler(ProcId link_peer, ProcId self)
      : link_peer_(link_peer), self_(self) {}

  /// Consumes `chunk`, appends every completed valid frame to `out` with
  /// `from` stamped to the link identity, and updates `stats`.
  void feed(ByteView chunk, std::vector<Frame>& out, FrameStats& stats);

  bool poisoned() const { return chunker_.poisoned(); }
  /// Bytes of an incomplete trailing frame (truncation if the link ends).
  std::size_t buffered() const { return chunker_.buffered(); }
  ProcId link_peer() const { return link_peer_; }

 private:
  ProcId link_peer_;
  ProcId self_;
  FrameChunker chunker_;
};

}  // namespace dr::net
