#include "net/frame.h"

#include "codec/codec.h"
#include "codec/crc32.h"

namespace dr::net {

Bytes encode_frame(const Frame& frame) {
  Writer w;
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(frame.kind));
  w.u32(frame.from);
  w.u32(frame.to);
  w.u32(frame.sent_phase);
  w.bytes(frame.payload);
  const Bytes body = std::move(w).take();

  Bytes out;
  out.reserve(4 + body.size() + 4);
  put_u32le(out, static_cast<std::uint32_t>(body.size() + 4));
  append(out, body);
  put_u32le(out, crc32(body));
  return out;
}

void FrameStats::merge(const FrameStats& other) {
  accepted += other.accepted;
  bad_version += other.bad_version;
  bad_crc += other.bad_crc;
  bad_structure += other.bad_structure;
  oversized += other.oversized;
  spoofed_from += other.spoofed_from;
  misrouted += other.misrouted;
  poisoned_bytes += other.poisoned_bytes;
}

void FrameAssembler::feed(ByteView chunk, std::vector<Frame>& out,
                          FrameStats& stats) {
  if (poisoned_) {
    stats.poisoned_bytes += chunk.size();
    return;
  }
  append(pending_, chunk);

  std::size_t pos = 0;
  while (pending_.size() - pos >= 4) {
    const ByteView view(pending_.data() + pos, pending_.size() - pos);
    const std::size_t declared = get_u32le(view, 0);
    if (declared > kMaxFrameBody) {
      ++stats.oversized;
      poisoned_ = true;
      stats.poisoned_bytes += pending_.size() - pos;
      pending_.clear();
      return;
    }
    if (view.size() < 4 + declared) break;  // frame not complete yet
    pos += 4 + declared;

    if (declared < 4) {  // no room for the CRC: garbage, but delimited
      ++stats.bad_structure;
      continue;
    }
    const ByteView body = view.subspan(4, declared - 4);
    const std::uint32_t wire_crc = get_u32le(view, 4 + declared - 4);
    if (crc32(body) != wire_crc) {
      ++stats.bad_crc;
      continue;
    }

    Reader r(body);
    const std::uint8_t version = r.u8();
    const std::uint8_t kind = r.u8();
    Frame frame;
    frame.from = r.u32();
    frame.to = r.u32();
    frame.sent_phase = r.u32();
    frame.payload = r.bytes();
    if (!r.done()) {
      ++stats.bad_structure;
      continue;
    }
    if (version != kFrameVersion) {
      ++stats.bad_version;
      continue;
    }
    if (kind != static_cast<std::uint8_t>(FrameKind::kPayload) &&
        kind != static_cast<std::uint8_t>(FrameKind::kDone)) {
      ++stats.bad_structure;
      continue;
    }
    if (frame.from != link_peer_) {
      ++stats.spoofed_from;
      continue;
    }
    if (frame.to != self_) {
      ++stats.misrouted;
      continue;
    }
    frame.kind = static_cast<FrameKind>(kind);
    frame.from = link_peer_;  // stamped, by construction equal to the header
    ++stats.accepted;
    out.push_back(std::move(frame));
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(pos));
}

}  // namespace dr::net
