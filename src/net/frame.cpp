#include "net/frame.h"

#include "codec/codec.h"
#include "codec/crc32.h"

namespace dr::net {

Bytes encode_frame(const Frame& frame) {
  Writer w;
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(frame.kind));
  w.u32(frame.from);
  w.u32(frame.to);
  w.u32(frame.sent_phase);
  w.bytes(frame.payload);
  const Bytes body = std::move(w).take();

  Bytes out;
  out.reserve(4 + body.size() + 4);
  put_u32le(out, static_cast<std::uint32_t>(body.size() + 4));
  append(out, body);
  put_u32le(out, crc32(body));
  return out;
}

WireParts encode_frame_parts(const Frame& frame) {
  // The body prefix up to and including the payload-length varint. Writer's
  // u64 is a plain LEB128 varint — byte-identical to the length prefix
  // Writer::bytes would emit — so the split reproduces encode_frame's body
  // exactly without touching the payload bytes.
  Writer w;
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(frame.kind));
  w.u32(frame.from);
  w.u32(frame.to);
  w.u32(frame.sent_phase);
  w.u64(frame.payload.size());
  const Bytes prefix = std::move(w).take();
  const std::size_t body_size = prefix.size() + frame.payload.size();

  WireParts parts;
  parts.head.reserve(4 + prefix.size());
  put_u32le(parts.head, static_cast<std::uint32_t>(body_size + 4));
  append(parts.head, prefix);
  parts.payload = frame.payload;
  std::uint32_t crc = crc32_init();
  crc = crc32_update(crc, prefix);
  crc = crc32_update(crc, frame.payload.view());
  put_u32le(parts.tail, crc32_final(crc));
  return parts;
}

void FrameStats::merge(const FrameStats& other) {
  accepted += other.accepted;
  bad_version += other.bad_version;
  bad_crc += other.bad_crc;
  bad_structure += other.bad_structure;
  oversized += other.oversized;
  spoofed_from += other.spoofed_from;
  misrouted += other.misrouted;
  poisoned_bytes += other.poisoned_bytes;
}

void FrameChunker::feed(ByteView chunk, const Sink& sink,
                        std::size_t& poisoned_bytes) {
  if (poisoned_) {
    poisoned_bytes += chunk.size();
    return;
  }
  append(pending_, chunk);

  std::size_t pos = 0;
  while (pending_.size() - pos >= 4) {
    const ByteView view(pending_.data() + pos, pending_.size() - pos);
    const std::size_t declared = get_u32le(view, 0);
    if (declared > kMaxFrameBody) {
      poisoned_ = true;
      poisoned_bytes += pending_.size() - pos;
      pending_.clear();
      sink(ChunkStatus::kOversized, {});
      return;
    }
    if (view.size() < 4 + declared) break;  // unit not complete yet
    pos += 4 + declared;

    if (declared < 4) {  // no room for the CRC: garbage, but delimited
      sink(ChunkStatus::kTooShort, {});
      continue;
    }
    const ByteView body = view.subspan(4, declared - 4);
    const std::uint32_t wire_crc = get_u32le(view, 4 + declared - 4);
    if (crc32(body) != wire_crc) {
      sink(ChunkStatus::kBadCrc, {});
      continue;
    }
    sink(ChunkStatus::kBody, body);
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(pos));
}

void FrameAssembler::feed(ByteView chunk, std::vector<Frame>& out,
                          FrameStats& stats) {
  chunker_.feed(
      chunk,
      [&](ChunkStatus status, ByteView body) {
        switch (status) {
          case ChunkStatus::kOversized:
            ++stats.oversized;
            return;
          case ChunkStatus::kTooShort:
            ++stats.bad_structure;
            return;
          case ChunkStatus::kBadCrc:
            ++stats.bad_crc;
            return;
          case ChunkStatus::kBody:
            break;
        }
        Reader r(body);
        const std::uint8_t version = r.u8();
        const std::uint8_t kind = r.u8();
        Frame frame;
        frame.from = r.u32();
        frame.to = r.u32();
        frame.sent_phase = r.u32();
        frame.payload = r.bytes();
        if (!r.done()) {
          ++stats.bad_structure;
          return;
        }
        if (version != kFrameVersion) {
          ++stats.bad_version;
          return;
        }
        if (kind != static_cast<std::uint8_t>(FrameKind::kPayload) &&
            kind != static_cast<std::uint8_t>(FrameKind::kDone)) {
          ++stats.bad_structure;
          return;
        }
        if (frame.from != link_peer_) {
          ++stats.spoofed_from;
          return;
        }
        if (frame.to != self_) {
          ++stats.misrouted;
          return;
        }
        frame.kind = static_cast<FrameKind>(kind);
        frame.from = link_peer_;  // stamped, by construction == the header
        ++stats.accepted;
        out.push_back(std::move(frame));
      },
      stats.poisoned_bytes);
}

}  // namespace dr::net
