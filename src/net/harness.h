// Scenario harness for the net runtime, mirroring ba::run_scenario, plus
// the sim-vs-net parity checker the acceptance tests are built on.
//
// The parity claim: for the same (protocol, config, seed, faults), the
// in-memory simulator, the in-process transport and the TCP-loopback
// transport produce identical decisions and identical paper-level
// accounting (messages/signatures/bytes by correct processors, per-phase
// and per-processor counts). The argument is structural — per-link FIFO
// plus the synchronizer's sender-sorted release reproduces the Network's
// delivery order, deterministic processes then produce identical
// submissions, and the shared route_submission seam maps those to
// identical accounting — and check_parity verifies it run by run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ba/registry.h"
#include "net/runner.h"
#include "net/transport.h"

namespace dr::net {

enum class Backend { kInProcess, kTcpLoopback };

/// "inprocess" / "tcp".
const char* to_string(Backend backend);
bool backend_from_string(std::string_view name, Backend& out);

/// Builds a fresh transport connecting `n` endpoints. The TCP backend
/// opens a full loopback mesh (n*(n-1)/2 socket pairs on 127.0.0.1).
std::unique_ptr<Transport> make_transport(Backend backend, std::size_t n);

struct NetScenarioOptions {
  std::uint64_t seed = 1;
  std::chrono::milliseconds phase_timeout{5000};
  /// See the NetConfig fields of the same names.
  std::chrono::milliseconds reconnect_window{1000};
  std::chrono::milliseconds run_deadline{0};
  /// Not owned; must outlive the call. See NetConfig::fault_plan.
  sim::FaultPlan* fault_plan = nullptr;
  /// Process-level churn rules, forwarded to NetConfig::churn.
  std::vector<sim::ChurnRule> churn;
};

/// ba::run_scenario on a real transport: builds the transport and the
/// NetRunner, installs correct processes everywhere except the listed
/// faults, runs protocol.steps(config) phases.
NetRunResult run_scenario(const ba::Protocol& protocol,
                          const ba::BAConfig& config, Backend backend,
                          const NetScenarioOptions& options = {},
                          const std::vector<ba::ScenarioFault>& faults = {});

struct ParityReport {
  bool ok = true;
  std::vector<std::string> mismatches;  // human-readable, deterministic
  sim::RunResult sim;
  NetRunResult inprocess;
  NetRunResult tcp;
};

/// The parity comparator itself: appends a mismatch per differing decision
/// vector or paper-level metric between `want` (the sim reference) and
/// `got`, tagging each with `backend`. Exported so the svc daemon's parity
/// test holds daemon runs against the simulator with the identical field
/// list — one comparator, one definition of "identical".
void compare_parity_runs(const char* backend, const sim::RunResult& want,
                         const sim::RunResult& got, ParityReport& report);

/// Runs the scenario on all three backends — sim::Runner, in-process,
/// TCP loopback — and compares decisions and every paper-level metric.
/// `rules`, when non-empty, becomes a fresh FaultPlan(rules, plan_seed)
/// per backend (the plan's perturbed accounting is per-run state); the
/// perturbed sets are compared too.
ParityReport check_parity(const ba::Protocol& protocol,
                          const ba::BAConfig& config, std::uint64_t seed,
                          const std::vector<ba::ScenarioFault>& faults = {},
                          const std::vector<sim::FaultRule>& rules = {},
                          std::uint64_t plan_seed = 1);

}  // namespace dr::net
