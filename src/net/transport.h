// The byte-moving seam under the message-passing runtime.
//
// A Transport connects n endpoints with authenticated, ordered,
// reliable-unless-faulted links: bytes sent on (from, to) arrive at `to`
// tagged with `from` (the identity of the physical link, never a claim in
// the data), in FIFO order per link. It moves opaque bytes — framing,
// phase recovery and fault injection live above it (net/frame.h,
// net/synchronizer.h, sim/delivery.h), which is what lets the in-process
// and TCP implementations share every other layer.
//
// Failure semantics: no syscall outcome aborts the process. A link that
// dies surfaces as a typed TransportError — on the send path as a return
// value, on the receive path as an event chunk interleaved at its exact
// stream position — and the layers above decide what it means (the
// PhaseSynchronizer maps a dead link to an omission-faulty peer charged
// against t; see docs/MODEL.md, "Failure semantics of the net runtime").
//
// Threading contract: send(from, ...), recv(self, ...), drop_endpoint(p)
// and health(p) are called only from endpoint `from`'s / `self`'s / `p`'s
// thread; different endpoints run on different threads concurrently.
// shutdown() must not race in-flight calls — the runner joins every
// endpoint thread first.
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <vector>

#include "sim/envelope.h"
#include "sim/payload.h"
#include "util/bytes.h"

namespace dr::net {

using sim::ProcId;

enum class TransportErrorKind : std::uint8_t {
  kDisconnect,    // the peer's end closed or reset the link
  kTimeout,       // the per-frame send deadline expired (stalled peer)
  kRefused,       // reconnect window exhausted without a fresh connection
  kFrameCorrupt,  // the byte stream is poisoned beyond resync (frame layer)
};

/// "disconnect" / "timeout" / "refused" / "frame-corrupt".
const char* to_string(TransportErrorKind kind);

/// One observed link failure. `err` carries errno where the OS produced
/// one, 0 otherwise. Never fatal by itself: the same peer may reconnect
/// within the synchronizer's reconnect window and resume.
struct TransportError {
  TransportErrorKind kind = TransportErrorKind::kDisconnect;
  ProcId peer = 0;
  int err = 0;

  friend bool operator==(const TransportError&,
                         const TransportError&) = default;
};

/// Per-endpoint connection-lifecycle counters, maintained by the transport
/// on the owner thread and harvested into SyncStats after the run.
struct LinkHealth {
  std::size_t disconnects = 0;        // links observed dead (either side)
  std::size_t reconnect_attempts = 0; // dial attempts after a link died
  std::size_t reconnects = 0;         // dials that produced a live link
  std::size_t send_retries = 0;       // send-path waits (backpressure/backoff)
  std::size_t send_timeouts = 0;      // frames abandoned at the deadline

  void merge(const LinkHealth& other);
};

/// A contiguous run of bytes received on one authenticated link, or a link
/// event at its exact position in that link's stream. Chunk boundaries
/// carry no meaning (TCP may split or merge frames); the FrameAssembler
/// reconstructs them. When `event` is set the link observed a failure at
/// this point: every byte before it belongs to the old connection, every
/// byte after it to a fresh one, so the receiver must reset its assembler
/// in between (a partial frame straddling the event is truncation, never
/// spliced with new-connection bytes).
struct RawChunk {
  ProcId from = 0;
  Bytes bytes;
  std::optional<TransportError> event;
};

/// A wire frame split into segments so the payload can travel to the socket
/// layer as a shared handle instead of a copy: `head` (length prefix + body
/// prefix up to and including the payload length) and `tail` (checksum) are
/// small owned buffers, `payload` is the ref-counted buffer the protocol
/// layer produced. concat() is the bit-exact single-buffer form —
/// encode_frame_parts guarantees concat() == encode_frame(frame) — so a
/// transport without a scatter/gather path loses nothing but the zero-copy.
struct WireParts {
  Bytes head;
  sim::Payload payload;
  Bytes tail;

  std::size_t size() const {
    return head.size() + payload.size() + tail.size();
  }
  Bytes concat() const {
    Bytes out;
    out.reserve(size());
    append(out, head);
    append(out, payload.view());
    append(out, tail);
    return out;
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::size_t n() const = 0;

  /// Enqueues `bytes` on the link (from, to). Preserves per-link FIFO
  /// order and never drops silently: the frame is either fully accepted
  /// (nullopt) or fully abandoned with the reason. A dead link is redialed
  /// with capped exponential backoff inside the per-frame deadline; under
  /// backpressure the call blocks up to that same deadline. from == to is
  /// a local loopback delivered on the next recv() and cannot fail.
  virtual std::optional<TransportError> send(ProcId from, ProcId to,
                                             ByteView bytes) = 0;

  /// Scatter/gather form of send(): same contract, but the frame arrives
  /// pre-split so an implementation with a vectored write path (the svc
  /// reactor's writev outbox) can hand the payload buffer to the kernel
  /// without ever copying it. The default flattens to one buffer and
  /// forwards to send(), which preserves the existing backends' behavior
  /// and copy count exactly.
  virtual std::optional<TransportError> send_parts(ProcId from, ProcId to,
                                                   const WireParts& parts) {
    return send(from, to, parts.concat());
  }

  /// Appends every chunk and link event currently available to endpoint
  /// `self`, waiting up to `timeout` for the first one. Returns true if
  /// anything was appended. Bytes from a connection accepted during this
  /// call are never returned in the same call as the kDisconnect event for
  /// the connection it replaced.
  virtual bool recv(ProcId self, std::vector<RawChunk>& out,
                    std::chrono::milliseconds timeout) = 0;

  /// Severs every link of endpoint `p` and discards its pending inbound
  /// bytes — the churn injector's model of a process crash or restart
  /// (fault injection, not teardown: peers see kDisconnect, and `p` itself
  /// receives one kDisconnect per severed link on its next recv). A
  /// restarted endpoint rejoins lazily: its next send() redials, and peers
  /// accept the fresh connection. Callable only from `p`'s own thread.
  virtual void drop_endpoint(ProcId p) = 0;

  /// Connection-lifecycle counters for endpoint `p` (owner thread only).
  virtual LinkHealth health(ProcId p) const = 0;

  /// "inprocess" / "tcp" — for logs and benchmark tables.
  virtual const char* kind() const = 0;

  /// Releases OS resources. Idempotent; only after endpoint threads exit.
  virtual void shutdown() = 0;
};

}  // namespace dr::net
