// The byte-moving seam under the message-passing runtime.
//
// A Transport connects n endpoints with authenticated, ordered,
// reliable-unless-faulted links: bytes sent on (from, to) arrive at `to`
// tagged with `from` (the identity of the physical link, never a claim in
// the data), in FIFO order per link. It moves opaque bytes — framing,
// phase recovery and fault injection live above it (net/frame.h,
// net/synchronizer.h, sim/delivery.h), which is what lets the in-process
// and TCP implementations share every other layer.
//
// Threading contract: send(from, ...) and recv(self, ...) are called only
// from endpoint `from`'s / `self`'s thread; different endpoints run on
// different threads concurrently. shutdown() must not race in-flight
// calls — the runner joins every endpoint thread first.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

#include "sim/envelope.h"
#include "util/bytes.h"

namespace dr::net {

using sim::ProcId;

/// A contiguous run of bytes received on one authenticated link. Chunk
/// boundaries carry no meaning (TCP may split or merge frames); the
/// FrameAssembler reconstructs them.
struct RawChunk {
  ProcId from = 0;
  Bytes bytes;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::size_t n() const = 0;

  /// Enqueues `bytes` on the link (from, to). Blocks under backpressure,
  /// never drops, preserves per-link FIFO order. from == to is a local
  /// loopback delivered on the next recv().
  virtual void send(ProcId from, ProcId to, ByteView bytes) = 0;

  /// Appends every chunk currently available to endpoint `self`, waiting
  /// up to `timeout` for the first one. Returns true if anything was
  /// appended.
  virtual bool recv(ProcId self, std::vector<RawChunk>& out,
                    std::chrono::milliseconds timeout) = 0;

  /// "inprocess" / "tcp" — for logs and benchmark tables.
  virtual const char* kind() const = 0;

  /// Releases OS resources. Idempotent; only after endpoint threads exit.
  virtual void shutdown() = 0;
};

}  // namespace dr::net
