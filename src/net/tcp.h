// TCP loopback transport: a full mesh of nonblocking stream sockets over
// 127.0.0.1, one connection per unordered endpoint pair.
//
// Link authentication is established at setup time, before any endpoint
// thread runs: the constructor dials every pair itself and records which
// descriptor belongs to which peer, modelling the paper's pre-authenticated
// channels. Nothing a process later writes can change that mapping — a
// frame claiming another sender is caught by the FrameAssembler against the
// link identity.
//
// Each socket's two ends are owned by the two endpoint threads exclusively
// (endpoint i reads and writes only fds_[i][*]), so the data path needs no
// locks. send() loops write(2)/poll(POLLOUT) under backpressure; recv()
// polls every peer descriptor and drains whatever is readable. Self-sends
// never touch the wire: they go through a thread-local loopback buffer,
// exactly like the in-process backend's same-thread delivery.
#pragma once

#include <vector>

#include "net/transport.h"

namespace dr::net {

class TcpLoopbackTransport final : public Transport {
 public:
  /// Builds the n*(n-1)/2 connection mesh; aborts on resource exhaustion
  /// (contract violation, not a recoverable condition).
  explicit TcpLoopbackTransport(std::size_t n);
  ~TcpLoopbackTransport() override;

  TcpLoopbackTransport(const TcpLoopbackTransport&) = delete;
  TcpLoopbackTransport& operator=(const TcpLoopbackTransport&) = delete;

  std::size_t n() const override { return fds_.size(); }
  void send(ProcId from, ProcId to, ByteView bytes) override;
  bool recv(ProcId self, std::vector<RawChunk>& out,
            std::chrono::milliseconds timeout) override;
  const char* kind() const override { return "tcp"; }
  void shutdown() override;

 private:
  // fds_[i][j] = descriptor endpoint i uses to talk to j (-1 for i == j).
  std::vector<std::vector<int>> fds_;
  // Per-endpoint self-loopback buffer; only touched by the owner's thread.
  std::vector<std::vector<Bytes>> loopback_;
  bool down_ = false;  // setup/teardown thread only
};

}  // namespace dr::net
