// TCP loopback transport: a full mesh of nonblocking stream sockets over
// 127.0.0.1, one connection per unordered endpoint pair.
//
// Link authentication is established at setup time, before any endpoint
// thread runs: the constructor dials every pair itself and records which
// descriptor belongs to which peer, modelling the paper's pre-authenticated
// channels. Reconnection preserves the property: each endpoint's listener
// stays open for the whole run, a redialing endpoint announces its id in a
// 4-byte hello, and the acceptor re-binds the fresh socket to that peer's
// slot — the mapping is still established by the transport, never by frame
// content (a frame claiming another sender is caught by the FrameAssembler
// against the link identity).
//
// Each socket's two ends are owned by the two endpoint threads exclusively
// (endpoint i reads, writes, closes and redials only its own row), so the
// data path needs no locks. send() either fully accepts a frame within the
// per-frame deadline — redialing a dead link with capped exponential
// backoff and deterministic seeded jitter — or returns a TransportError;
// recv() polls every live peer descriptor plus the listener, drains
// whatever is readable, surfaces dead links as kDisconnect events at their
// exact stream position, and accepts pending reconnections last (so bytes
// from a fresh connection never precede the event for the one it
// replaced). Self-sends never touch the wire: they go through a
// thread-local loopback buffer, exactly like the in-process backend's
// same-thread delivery.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "net/transport.h"

namespace dr::net {

struct TcpOptions {
  /// Budget for fully accepting one frame, including any redial time. On
  /// loopback a frame clears in microseconds; the deadline exists so a
  /// stalled or dead peer costs a bounded wait, never a wedged sender.
  std::chrono::milliseconds send_deadline{2000};
  /// Redial backoff: initial delay, doubled per failed attempt up to the
  /// cap, plus deterministic jitter in [0, backoff] drawn from jitter_seed.
  std::chrono::milliseconds backoff_initial{2};
  std::chrono::milliseconds backoff_cap{100};
  std::uint64_t jitter_seed = 1;
};

class TcpLoopbackTransport final : public Transport {
 public:
  /// Builds the n*(n-1)/2 connection mesh; aborts on resource exhaustion
  /// (contract violation, not a recoverable condition).
  explicit TcpLoopbackTransport(std::size_t n, TcpOptions options = {});
  ~TcpLoopbackTransport() override;

  TcpLoopbackTransport(const TcpLoopbackTransport&) = delete;
  TcpLoopbackTransport& operator=(const TcpLoopbackTransport&) = delete;

  std::size_t n() const override { return endpoints_.size(); }
  std::optional<TransportError> send(ProcId from, ProcId to,
                                     ByteView bytes) override;
  bool recv(ProcId self, std::vector<RawChunk>& out,
            std::chrono::milliseconds timeout) override;
  void drop_endpoint(ProcId p) override;
  LinkHealth health(ProcId p) const override;
  const char* kind() const override { return "tcp"; }
  void shutdown() override;

 private:
  using Clock = std::chrono::steady_clock;

  /// All state below is owned by one endpoint's thread exclusively.
  struct Endpoint {
    std::vector<int> fds;        // fds[q]: descriptor to peer q (-1: none)
    std::vector<Bytes> loopback; // self-sends, delivered on next recv
    std::vector<ProcId> dropped; // links severed by drop_endpoint, pending
                                 // kDisconnect delivery to this endpoint
    LinkHealth health;
  };

  /// One blocking dial + hello to `to`'s listener announcing `as`.
  /// Returns the connected descriptor or -1 with `err` set to errno.
  int dial_once(ProcId as, ProcId to, int& err);

  /// Redials (from, to) with capped exponential backoff + seeded jitter
  /// until a connection lands or `deadline` passes (kRefused).
  std::optional<TransportError> redial(ProcId from, ProcId to,
                                       Clock::time_point deadline);

  /// Accepts every pending connection on `self`'s listener, reading each
  /// dialer's hello and re-binding its slot. Emits a kDisconnect event
  /// into `out` when a fresh connection replaces a live one.
  void accept_pending(ProcId self, std::vector<RawChunk>& out);

  std::vector<Endpoint> endpoints_;
  std::vector<int> listeners_;          // kept open for reconnects
  std::vector<std::uint16_t> ports_;    // immutable after the constructor
  TcpOptions options_;
  bool down_ = false;  // setup/teardown thread only
};

}  // namespace dr::net
