// In-process channel transport: one mailbox (mutex + condvar + deque) per
// endpoint. Senders append under the receiver's lock; the receiving thread
// drains its whole mailbox in one recv(). Per-link FIFO follows from the
// mailbox being append-ordered, and link events (drop_endpoint) are plain
// queue entries, so they land at their exact stream position. This is the
// fast backend — no syscalls on the send path — and the reference
// implementation of the Transport contract the TCP backend must match.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "net/transport.h"

namespace dr::net {

class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(std::size_t n);

  std::size_t n() const override { return boxes_.size(); }
  std::optional<TransportError> send(ProcId from, ProcId to,
                                     ByteView bytes) override;
  bool recv(ProcId self, std::vector<RawChunk>& out,
            std::chrono::milliseconds timeout) override;
  void drop_endpoint(ProcId p) override;
  LinkHealth health(ProcId p) const override;
  const char* kind() const override { return "inprocess"; }
  void shutdown() override;

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<RawChunk> queue;
    bool down = false;
  };
  // unique_ptr so the vector is movable despite the mutexes.
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  // Per-endpoint counters, touched only on the owner's thread: recv()
  // counts the disconnect events it pops out of the owner's own mailbox.
  std::vector<LinkHealth> health_;
};

}  // namespace dr::net
