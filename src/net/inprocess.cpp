#include "net/inprocess.h"

#include "util/contracts.h"

namespace dr::net {

InProcessTransport::InProcessTransport(std::size_t n) {
  DR_EXPECTS(n >= 1);
  boxes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
}

void InProcessTransport::send(ProcId from, ProcId to, ByteView bytes) {
  DR_EXPECTS(from < n() && to < n());
  Mailbox& box = *boxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(RawChunk{from, Bytes(bytes.begin(), bytes.end())});
  }
  box.cv.notify_one();
}

bool InProcessTransport::recv(ProcId self, std::vector<RawChunk>& out,
                              std::chrono::milliseconds timeout) {
  DR_EXPECTS(self < n());
  Mailbox& box = *boxes_[self];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait_for(lock, timeout,
                  [&] { return !box.queue.empty() || box.down; });
  if (box.queue.empty()) return false;
  while (!box.queue.empty()) {
    out.push_back(std::move(box.queue.front()));
    box.queue.pop_front();
  }
  return true;
}

void InProcessTransport::shutdown() {
  for (auto& box : boxes_) {
    {
      std::lock_guard<std::mutex> lock(box->mu);
      box->down = true;
    }
    box->cv.notify_all();
  }
}

}  // namespace dr::net
