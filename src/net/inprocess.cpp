#include "net/inprocess.h"

#include "util/contracts.h"

namespace dr::net {

InProcessTransport::InProcessTransport(std::size_t n) : health_(n) {
  DR_EXPECTS(n >= 1);
  boxes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
}

std::optional<TransportError> InProcessTransport::send(ProcId from, ProcId to,
                                                       ByteView bytes) {
  DR_EXPECTS(from < n() && to < n());
  Mailbox& box = *boxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(
        RawChunk{from, Bytes(bytes.begin(), bytes.end()), std::nullopt});
  }
  box.cv.notify_one();
  return std::nullopt;
}

bool InProcessTransport::recv(ProcId self, std::vector<RawChunk>& out,
                              std::chrono::milliseconds timeout) {
  DR_EXPECTS(self < n());
  Mailbox& box = *boxes_[self];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait_for(lock, timeout,
                  [&] { return !box.queue.empty() || box.down; });
  if (box.queue.empty()) return false;
  while (!box.queue.empty()) {
    if (box.queue.front().event.has_value()) ++health_[self].disconnects;
    out.push_back(std::move(box.queue.front()));
    box.queue.pop_front();
  }
  return true;
}

void InProcessTransport::drop_endpoint(ProcId p) {
  DR_EXPECTS(p < n());
  // A restarting process loses its pending inbound bytes, exactly like the
  // TCP backend losing kernel socket buffers: clear p's mailbox, then queue
  // one kDisconnect per severed link into p's own box (so p resets its
  // assemblers) and into each peer's box (at the peers' current stream
  // positions — everything before the event came over the old connection).
  {
    Mailbox& own = *boxes_[p];
    std::lock_guard<std::mutex> lock(own.mu);
    own.queue.clear();
    for (ProcId q = 0; q < n(); ++q) {
      if (q == p) continue;
      own.queue.push_back(RawChunk{
          q, {}, TransportError{TransportErrorKind::kDisconnect, q, 0}});
    }
  }
  boxes_[p]->cv.notify_one();
  for (ProcId q = 0; q < n(); ++q) {
    if (q == p) continue;
    Mailbox& box = *boxes_[q];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      box.queue.push_back(RawChunk{
          p, {}, TransportError{TransportErrorKind::kDisconnect, p, 0}});
    }
    box.cv.notify_one();
  }
}

LinkHealth InProcessTransport::health(ProcId p) const {
  DR_EXPECTS(p < n());
  return health_[p];
}

void InProcessTransport::shutdown() {
  for (auto& box : boxes_) {
    {
      std::lock_guard<std::mutex> lock(box->mu);
      box->down = true;
    }
    box->cv.notify_all();
  }
}

}  // namespace dr::net
