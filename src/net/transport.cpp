#include "net/transport.h"

namespace dr::net {

const char* to_string(TransportErrorKind kind) {
  switch (kind) {
    case TransportErrorKind::kDisconnect: return "disconnect";
    case TransportErrorKind::kTimeout: return "timeout";
    case TransportErrorKind::kRefused: return "refused";
    case TransportErrorKind::kFrameCorrupt: return "frame-corrupt";
  }
  return "?";
}

void LinkHealth::merge(const LinkHealth& other) {
  disconnects += other.disconnects;
  reconnect_attempts += other.reconnect_attempts;
  reconnects += other.reconnects;
  send_retries += other.send_retries;
  send_timeouts += other.send_timeouts;
}

}  // namespace dr::net
