// Low-level socket helpers shared by the blocking transports (net/tcp.cpp)
// and the nonblocking svc reactor (src/svc): descriptor modes, deadline-
// bounded exact reads/writes, listener setup and address parsing. These are
// the split point between the two I/O styles — both paths use the same
// primitives, so frame semantics (what a partial write means, when a read
// counts as a disconnect) cannot drift between them.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/transport.h"

namespace dr::net {

using SockClock = std::chrono::steady_clock;

/// Sets O_NONBLOCK. Asserts on fcntl failure (resource bug, not runtime).
void set_nonblocking(int fd);

/// Sets TCP_NODELAY (frames are latency-sensitive and already batched).
void set_nodelay(int fd);

/// Milliseconds until `deadline`, clamped at zero.
int remaining_ms(SockClock::time_point deadline);

/// Writes exactly `size` bytes or gives up at `deadline`. Distinguishes a
/// stalled peer (kTimeout: the socket buffer never drained) from a dead one
/// (kDisconnect: EPIPE/ECONNRESET and friends); counts backpressure waits
/// into `health`. Works on blocking and nonblocking descriptors.
std::optional<TransportError> write_with_deadline(
    int fd, ProcId peer, const std::uint8_t* data, std::size_t size,
    SockClock::time_point deadline, LinkHealth& health);

/// Reads exactly `size` bytes or gives up at `deadline`. Returns false on
/// a clean peer close (read() == 0), any hard error, or the deadline —
/// never asserts: EAGAIN/EWOULDBLOCK on a nonblocking descriptor and clean
/// closes are normal events on a faulted link.
bool read_exact(int fd, std::uint8_t* data, std::size_t size,
                SockClock::time_point deadline);

/// "host:port". Returns false on a malformed string or unparsable port.
bool split_hostport(std::string_view addr, std::string& host,
                    std::uint16_t& port);

/// Binds and listens on `host:port` (port 0 picks an ephemeral port, echoed
/// back through `bound_port`). Returns the nonblocking listener descriptor,
/// or -1 with errno describing the failure. IPv4 only — the deployment
/// shape this repo models is a small fixed mesh, not a resolver.
int tcp_listen(const std::string& host, std::uint16_t port,
               std::uint16_t& bound_port, int backlog = 64);

/// One blocking connect attempt to `host:port`. Returns the connected
/// descriptor (still blocking) or -1 with `err` set to errno.
int tcp_connect_once(const std::string& host, std::uint16_t port, int& err);

/// Dials `host:port` until it succeeds or `deadline` passes, sleeping a
/// capped exponential backoff between attempts. Returns the descriptor or
/// -1 (the peer never came up within the budget).
int tcp_connect_retry(const std::string& host, std::uint16_t port,
                      SockClock::time_point deadline);

}  // namespace dr::net
