#include "net/runner.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "crypto/verify_cache.h"
#include "sim/delivery.h"
#include "util/contracts.h"

namespace dr::net {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

NetRunner::NetRunner(const NetConfig& config, Transport& transport)
    : config_(config),
      transport_(transport),
      scheme_(sim::make_signature_scheme(config.scheme, config.n, config.seed,
                                         config.merkle_height)),
      verifier_(scheme_.get()),
      faulty_(config.n, false),
      processes_(config.n) {
  DR_EXPECTS(config.n >= 1);
  DR_EXPECTS(config.transmitter < config.n);
  DR_EXPECTS(config.scheme == sim::SchemeKind::kHmac);
  DR_EXPECTS(transport.n() == config.n);
}

void NetRunner::mark_faulty(ProcId p) {
  DR_EXPECTS(p < config_.n);
  DR_EXPECTS(!pool_.has_value());
  faulty_[p] = true;
}

std::size_t NetRunner::faulty_count() const {
  return static_cast<std::size_t>(
      std::count(faulty_.begin(), faulty_.end(), true));
}

void NetRunner::install(ProcId p, std::unique_ptr<sim::Process> process) {
  DR_EXPECTS(p < config_.n);
  DR_EXPECTS(process != nullptr);
  processes_[p] = std::move(process);
}

bool NetRunner::apply_churn(ProcId p, PhaseNum phase,
                            const std::atomic<bool>* abort) {
  for (const sim::ChurnRule& rule : config_.churn) {
    if (rule.id != p) continue;
    switch (rule.kind) {
      case sim::ChurnKind::kKill:
        // The endpoint completes phases <= rule.phase, then dies for good:
        // links severed, thread gone. Peers see the disconnect, wait out
        // the reconnect window, and demote it to omission-faulty.
        if (phase > rule.phase) {
          transport_.drop_endpoint(p);
          return false;
        }
        break;
      case sim::ChurnKind::kRestart:
        // A process restart: every link dies at once and any in-flight
        // inbound bytes are lost with them. The endpoint itself keeps its
        // protocol state (the interesting part is the *network* churn);
        // sends redial lazily and peers clear the down mark on the first
        // fresh frame.
        if (phase == rule.phase) transport_.drop_endpoint(p);
        break;
      case sim::ChurnKind::kHang: {
        if (phase != rule.phase) break;
        // Stall without touching the transport: links stay up, so peers
        // cannot use the reconnect window — this is exactly the wedge the
        // run watchdog exists for. Sleep in small slices so an abort cuts
        // the hang short.
        const Clock::time_point start = Clock::now();
        while (rule.millis == 0 ||
               Clock::now() - start < std::chrono::milliseconds(rule.millis)) {
          if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
            return false;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        break;
      }
      case sim::ChurnKind::kSlow:
        if (phase >= rule.phase) {
          std::this_thread::sleep_for(std::chrono::milliseconds(rule.millis));
        }
        break;
    }
  }
  return true;
}

void run_endpoint_phases(const EndpointRun& run, sim::Metrics& metrics,
                         SyncStats& sync) {
  DR_EXPECTS(run.process != nullptr && run.signer != nullptr &&
             run.verifier != nullptr && run.transport != nullptr);
  const ProcId p = run.p;
  PhaseSynchronizer synchronizer(p, run.n, *run.transport, run.phase_timeout,
                                 run.reconnect_window, run.abort);
  std::vector<Envelope> inbox;
  // Endpoint-local verification memo; lives on this thread only, so the
  // cache needs no locking and its hit/miss sequence matches the sim
  // runner's per-process cache exactly (parity gate compares the totals).
  // A caller-supplied cache (the daemon's striped-store session) is used
  // in its place when provided.
  crypto::VerifyCache local_cache;
  crypto::VerifyCache* cache =
      run.chain_cache != nullptr ? run.chain_cache : &local_cache;
  for (PhaseNum phase = 1; phase <= run.phases; ++phase) {
    if (run.on_phase_start && !run.on_phase_start(phase)) break;
    if (run.abort != nullptr &&
        run.abort->load(std::memory_order_relaxed)) {
      break;
    }
    // Recycle the phase scratch here, at the flip: the Context's outgoing
    // queue and the prewarm pass both carve from it during the phase, and
    // neither outlives it (payloads moved into frames own their bytes).
    if (run.scratch != nullptr) run.scratch->reset();
    sim::Context ctx(p, phase, run.n, run.t, &inbox, run.signer,
                     run.verifier, cache, run.scratch);
    run.process->on_phase(ctx);
    for (auto& out : ctx.outgoing()) {
      // Broadcasts fan out here as per-link submissions sharing one payload
      // handle; each link still gets its own fault routing and frame.
      const auto submit_one = [&](ProcId to, sim::Payload payload) {
        sim::route_submission(
            metrics, run.fault_plan, run.fault_mu, p, to, phase,
            std::move(payload), run.correct, out.signatures,
            [&](sim::Payload delivered) {
              synchronizer.send_frame(
                  Frame{FrameKind::kPayload, p, to, phase,
                        std::move(delivered)},
                  run.correct, metrics);
            });
      };
      if (out.broadcast) {
        for (ProcId to = 0; to < run.n; ++to) {
          if (to != p) submit_one(to, out.payload);
        }
      } else {
        submit_one(out.to, std::move(out.payload));
      }
    }
    // The paper never delivers the final phase's sends (the run ends), so
    // skipping the last barrier keeps the accounting aligned with sim.
    if (phase < run.phases) {
      inbox = synchronizer.advance(phase, run.correct, metrics);
    }
  }
  sync = synchronizer.stats();
  sync.link = run.transport->health(p);
  metrics.on_net_health(sync.link.disconnects, sync.link.reconnect_attempts,
                        sync.link.send_retries, sync.stragglers);
  metrics.on_chain_cache(cache->hits(), cache->misses());
}

void NetRunner::endpoint_main(ProcId p, PhaseNum phases, std::mutex* fault_mu,
                              sim::Metrics& metrics, SyncStats& sync,
                              const std::atomic<bool>* abort) {
  EndpointRun run;
  run.p = p;
  run.n = config_.n;
  run.t = config_.t;
  run.phases = phases;
  run.correct = !faulty_[p];
  run.process = processes_[p].get();
  run.signer = &pool_->signer_for(p);
  run.verifier = &verifier_;
  run.transport = &transport_;
  run.phase_timeout = config_.phase_timeout;
  run.reconnect_window = config_.reconnect_window;
  run.fault_plan = config_.fault_plan;
  run.fault_mu = fault_mu;
  run.abort = abort;
  run.on_phase_start = [this, p, abort](PhaseNum phase) {
    return apply_churn(p, phase, abort);
  };
  run_endpoint_phases(run, metrics, sync);
}

NetRunResult NetRunner::run(PhaseNum phases) {
  DR_EXPECTS(!ran_);
  ran_ = true;
  for (ProcId p = 0; p < config_.n; ++p) {
    DR_EXPECTS(processes_[p] != nullptr);
  }
  for (const sim::ChurnRule& rule : config_.churn) {
    DR_EXPECTS(rule.id < config_.n);
    // An unbounded hang can only be cut short by the watchdog; without a
    // run deadline it would wedge the join below forever.
    DR_EXPECTS(rule.kind != sim::ChurnKind::kHang || rule.millis > 0 ||
               config_.run_deadline.count() > 0);
  }
  if (!pool_.has_value()) pool_.emplace(scheme_.get(), faulty_);
  if (config_.fault_plan != nullptr) config_.fault_plan->reset();
  std::mutex fault_mu;
  std::mutex* fault_mu_ptr =
      config_.fault_plan != nullptr ? &fault_mu : nullptr;

  std::vector<sim::Metrics> metrics(config_.n, sim::Metrics(config_.n));
  for (sim::Metrics& m : metrics) m.reserve_phases(phases);
  std::vector<SyncStats> sync(config_.n);
  // Watchdog plumbing: endpoint threads check `abort` at phase boundaries
  // (and inside barrier waits and hangs); the main thread waits on the
  // condvar for all of them, or for the run deadline, whichever first.
  std::atomic<bool> abort{false};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t finished = 0;                  // guarded by done_mu
  std::vector<char> done_flag(config_.n, 0); // guarded by done_mu

  std::vector<std::thread> endpoints;
  endpoints.reserve(config_.n);
  for (ProcId p = 0; p < config_.n; ++p) {
    endpoints.emplace_back([this, p, phases, fault_mu_ptr, &metrics, &sync,
                            &abort, &done_mu, &done_cv, &finished,
                            &done_flag] {
      endpoint_main(p, phases, fault_mu_ptr, metrics[p], sync[p], &abort);
      {
        std::lock_guard<std::mutex> lock(done_mu);
        done_flag[p] = 1;
        ++finished;
      }
      done_cv.notify_all();
    });
  }

  NetRunResult result;
  if (config_.run_deadline.count() > 0) {
    std::unique_lock<std::mutex> lock(done_mu);
    if (!done_cv.wait_for(lock, config_.run_deadline,
                          [&] { return finished == config_.n; })) {
      result.watchdog_fired = true;
      for (ProcId p = 0; p < config_.n; ++p) {
        if (!done_flag[p]) result.unfinished.push_back(p);
      }
      lock.unlock();
      abort.store(true, std::memory_order_relaxed);
    }
  }
  for (std::thread& endpoint : endpoints) endpoint.join();
  transport_.shutdown();

  result.run.faulty = faulty_;
  result.run.phases_run = phases;
  sim::Metrics merged(config_.n);
  for (const sim::Metrics& m : metrics) merged.merge(m);
  result.run.metrics = std::move(merged);
  for (const SyncStats& s : sync) result.sync.merge(s);
  result.run.decisions.reserve(config_.n);
  result.run.evidence.reserve(config_.n);
  for (ProcId p = 0; p < config_.n; ++p) {
    result.run.decisions.push_back(processes_[p]->decision());
    result.run.evidence.push_back(
        processes_[p]->evidence().value_or(Bytes{}));
  }
  return result;
}

}  // namespace dr::net
