#include "net/runner.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <utility>

#include "crypto/verify_cache.h"
#include "sim/delivery.h"
#include "util/contracts.h"

namespace dr::net {

NetRunner::NetRunner(const NetConfig& config, Transport& transport)
    : config_(config),
      transport_(transport),
      scheme_(sim::make_signature_scheme(config.scheme, config.n, config.seed,
                                         config.merkle_height)),
      verifier_(scheme_.get()),
      faulty_(config.n, false),
      processes_(config.n) {
  DR_EXPECTS(config.n >= 1);
  DR_EXPECTS(config.transmitter < config.n);
  DR_EXPECTS(config.scheme == sim::SchemeKind::kHmac);
  DR_EXPECTS(transport.n() == config.n);
}

void NetRunner::mark_faulty(ProcId p) {
  DR_EXPECTS(p < config_.n);
  DR_EXPECTS(!pool_.has_value());
  faulty_[p] = true;
}

std::size_t NetRunner::faulty_count() const {
  return static_cast<std::size_t>(
      std::count(faulty_.begin(), faulty_.end(), true));
}

void NetRunner::install(ProcId p, std::unique_ptr<sim::Process> process) {
  DR_EXPECTS(p < config_.n);
  DR_EXPECTS(process != nullptr);
  processes_[p] = std::move(process);
}

void NetRunner::endpoint_main(ProcId p, PhaseNum phases, std::mutex* fault_mu,
                              sim::Metrics& metrics, SyncStats& sync) {
  const bool correct = !faulty_[p];
  const crypto::Signer& signer = pool_->signer_for(p);
  PhaseSynchronizer synchronizer(p, config_.n, transport_,
                                 config_.phase_timeout);
  std::vector<Envelope> inbox;
  // Endpoint-local verification memo; lives on this thread only, so the
  // cache needs no locking and its hit/miss sequence matches the sim
  // runner's per-process cache exactly (parity gate compares the totals).
  crypto::VerifyCache cache;
  for (PhaseNum phase = 1; phase <= phases; ++phase) {
    sim::Context ctx(p, phase, config_.n, config_.t, &inbox, &signer,
                     &verifier_, &cache);
    processes_[p]->on_phase(ctx);
    for (auto& out : ctx.outgoing()) {
      // Broadcasts fan out here as per-link submissions sharing one payload
      // handle; each link still gets its own fault routing and frame.
      const auto submit_one = [&](ProcId to, sim::Payload payload) {
        sim::route_submission(
            metrics, config_.fault_plan, fault_mu, p, to, phase,
            std::move(payload), correct, out.signatures,
            [&](sim::Payload delivered) {
              const Bytes frame = encode_frame(Frame{
                  FrameKind::kPayload, p, to, phase, std::move(delivered)});
              metrics.on_frame(correct, frame.size());
              transport_.send(p, to, frame);
            });
      };
      if (out.broadcast) {
        for (ProcId to = 0; to < config_.n; ++to) {
          if (to != p) submit_one(to, out.payload);
        }
      } else {
        submit_one(out.to, std::move(out.payload));
      }
    }
    // The paper never delivers the final phase's sends (the run ends), so
    // skipping the last barrier keeps the accounting aligned with sim.
    if (phase < phases) {
      inbox = synchronizer.advance(phase, correct, metrics);
    }
  }
  sync = synchronizer.stats();
  metrics.on_chain_cache(cache.hits(), cache.misses());
}

NetRunResult NetRunner::run(PhaseNum phases) {
  DR_EXPECTS(!ran_);
  ran_ = true;
  for (ProcId p = 0; p < config_.n; ++p) {
    DR_EXPECTS(processes_[p] != nullptr);
  }
  if (!pool_.has_value()) pool_.emplace(scheme_.get(), faulty_);
  if (config_.fault_plan != nullptr) config_.fault_plan->reset();
  std::mutex fault_mu;
  std::mutex* fault_mu_ptr =
      config_.fault_plan != nullptr ? &fault_mu : nullptr;

  std::vector<sim::Metrics> metrics(config_.n, sim::Metrics(config_.n));
  std::vector<SyncStats> sync(config_.n);
  std::vector<std::thread> endpoints;
  endpoints.reserve(config_.n);
  for (ProcId p = 0; p < config_.n; ++p) {
    endpoints.emplace_back([this, p, phases, fault_mu_ptr, &metrics, &sync] {
      endpoint_main(p, phases, fault_mu_ptr, metrics[p], sync[p]);
    });
  }
  for (std::thread& endpoint : endpoints) endpoint.join();
  transport_.shutdown();

  NetRunResult result;
  result.run.faulty = faulty_;
  result.run.phases_run = phases;
  sim::Metrics merged(config_.n);
  for (const sim::Metrics& m : metrics) merged.merge(m);
  result.run.metrics = std::move(merged);
  for (const SyncStats& s : sync) result.sync.merge(s);
  result.run.decisions.reserve(config_.n);
  for (ProcId p = 0; p < config_.n; ++p) {
    result.run.decisions.push_back(processes_[p]->decision());
  }
  return result;
}

}  // namespace dr::net
