// The message-passing counterpart of sim::Runner: each installed process
// runs on its own endpoint thread against a Transport, with the
// PhaseSynchronizer recovering the paper's lock-step phases. Decisions and
// Metrics are bit-identical to sim::Runner on the same configuration —
// tests/net_parity_test.cpp asserts this for every registry protocol.
//
// Restrictions relative to sim::Runner (all checked):
//   * scheme must be kHmac — the only signing scheme whose sign() path is
//     thread-safe (Merkle/WOTS signers mutate leaf state);
//   * no rushing — rushing is an intra-phase scheduling power that only the
//     omniscient simulator can grant;
//   * no history recording — endpoint threads would need a global ordered
//     log; use sim::Runner when auditing with ba::validate_correctness.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/synchronizer.h"
#include "net/transport.h"
#include "sim/faults.h"
#include "sim/process.h"
#include "sim/runner.h"

namespace dr::net {

using sim::Value;

struct NetConfig {
  std::size_t n = 0;
  std::size_t t = 0;
  ProcId transmitter = 0;
  Value value = 0;  // the transmitter's phase-0 input
  std::uint64_t seed = 1;
  sim::SchemeKind scheme = sim::SchemeKind::kHmac;  // kHmac only (see above)
  std::size_t merkle_height = 6;
  /// How long each endpoint waits at a phase barrier before declaring the
  /// missing peers omission-faulty. Generous by default: on a loopback
  /// transport a barrier resolves in microseconds, and a timeout that fires
  /// under scheduler noise would silently convert a correct run into one
  /// with extra (omission) faults.
  std::chrono::milliseconds phase_timeout{5000};
  /// How long a barrier keeps waiting for a peer whose link is down before
  /// giving up on it: a crashed peer costs its window, a restarting one
  /// gets that long to redial and rejoin the barrier.
  std::chrono::milliseconds reconnect_window{1000};
  /// Run-level watchdog: when nonzero, a run that has not finished within
  /// this budget is aborted — every endpoint's barrier returns promptly,
  /// threads are joined, and the result carries watchdog_fired plus the
  /// endpoints that never finished — a structured failure, never a hang.
  /// Zero disables the watchdog (the per-phase timeouts still bound runs).
  std::chrono::milliseconds run_deadline{0};
  /// Transport fault plan (not owned; must outlive the run). Applied at
  /// the shared submission seam (sim/delivery.h), payload-level, exactly as
  /// the in-memory Network applies it — which is what keeps sim-vs-net
  /// parity intact under fault injection. Guarded by a run-level mutex.
  sim::FaultPlan* fault_plan = nullptr;
  /// Process-level churn: kill / restart / hang / slow rules applied by
  /// each endpoint thread at the top of its phase loop, severing real
  /// transport links (sim::ChurnRule for the exact semantics). A hang rule
  /// with millis == 0 requires run_deadline > 0 — checked at run().
  std::vector<sim::ChurnRule> churn;
};

struct NetRunResult {
  /// Same shape sim::Runner returns (history always empty here), so every
  /// downstream check — check_byzantine_agreement, budget assertions,
  /// chaos invariants — runs unchanged against a net execution.
  sim::RunResult run;
  /// Merged per-endpoint synchronizer + frame-layer counters.
  SyncStats sync;
  /// The run-level watchdog fired: `unfinished` lists the endpoints whose
  /// threads had not completed when the deadline passed (they were aborted
  /// and joined; their decisions are whatever state they reached). A fired
  /// watchdog is a run-level failure — decisions and metrics of a
  /// watchdog-aborted run carry no agreement guarantee.
  bool watchdog_fired = false;
  std::vector<ProcId> unfinished;
};

/// Everything one endpoint needs to run its process through the paper's
/// lock-step phases over a Transport. Extracted from NetRunner so the svc
/// daemon's per-instance workers (src/svc) execute the exact same loop —
/// same synchronizer, same submission seam, same harvest — which is what
/// makes daemon-vs-sim parity the same theorem as net-vs-sim parity.
struct EndpointRun {
  ProcId p = 0;
  std::size_t n = 0;
  std::size_t t = 0;
  PhaseNum phases = 0;
  bool correct = true;  // scripted-correct (drives the paper accounting)
  sim::Process* process = nullptr;
  const crypto::Signer* signer = nullptr;
  const crypto::Verifier* verifier = nullptr;
  Transport* transport = nullptr;
  std::chrono::milliseconds phase_timeout{5000};
  std::chrono::milliseconds reconnect_window{1000};
  /// Not owned; see NetConfig::fault_plan. `fault_mu` guards it.
  sim::FaultPlan* fault_plan = nullptr;
  std::mutex* fault_mu = nullptr;
  /// Watchdog flag; a set flag makes barrier waits return promptly.
  const std::atomic<bool>* abort = nullptr;
  /// Called at the top of each phase before the process steps (the net
  /// runner hooks churn injection here). Returning false stops the loop
  /// (the endpoint is gone). May be empty.
  std::function<bool(PhaseNum)> on_phase_start;
  /// Chain-verification memo for this endpoint's process. Null (the
  /// default) gives the run a private VerifyCache, as the in-memory sim
  /// does. The svc daemon passes a StripedVerifyCache::Session here so all
  /// instances on one endpoint share a single striped store; realm scoping
  /// keeps the session's hit/miss sequence identical to the private cache's
  /// (crypto/verify_cache.h), so the parity gate is unaffected.
  crypto::VerifyCache* chain_cache = nullptr;
  /// Phase scratch for the Context's outgoing queue and the prewarm pass
  /// (not owned; may be null = plain heap). The loop resets it at the top
  /// of every phase, so nothing allocated from it may survive a phase flip;
  /// the svc daemon passes its pool worker's reusable arena here so one
  /// footprint serves every instance the worker ever runs.
  Arena* scratch = nullptr;
};

/// Runs phases 1..run.phases for one endpoint: step the process, route
/// every submission through the shared sim::route_submission seam into
/// framed transport sends, then hold the DONE barrier. Harvests the
/// synchronizer counters, the transport's LinkHealth and the verify-cache
/// totals into `sync`/`metrics` exactly as NetRunner endpoints do.
void run_endpoint_phases(const EndpointRun& run, sim::Metrics& metrics,
                         SyncStats& sync);

class NetRunner {
 public:
  /// `transport` must connect exactly config.n endpoints and outlive run().
  NetRunner(const NetConfig& config, Transport& transport);

  const NetConfig& config() const { return config_; }
  const crypto::Verifier& verifier() const { return verifier_; }

  /// Marks `p` faulty (coalition signer, excluded from correct-processor
  /// accounting). Must precede run().
  void mark_faulty(ProcId p);
  bool is_faulty(ProcId p) const { return faulty_[p]; }
  std::size_t faulty_count() const;

  /// Installs the process implementation for `p`.
  void install(ProcId p, std::unique_ptr<sim::Process> process);

  /// Runs phases 1..`phases`, one thread per endpoint, and returns
  /// decisions + accounting. Call at most once.
  NetRunResult run(PhaseNum phases);

 private:
  /// The body of endpoint `p`'s thread. Writes only to slot `p` of the
  /// per-endpoint output arrays; the only cross-thread state it touches is
  /// the Transport (thread-safe per its contract) and the FaultPlan (under
  /// fault_mu).
  void endpoint_main(ProcId p, PhaseNum phases, std::mutex* fault_mu,
                     sim::Metrics& metrics, SyncStats& sync,
                     const std::atomic<bool>* abort);
  /// Applies every churn rule owned by `p` at the top of `phase`. Returns
  /// false when a kill rule says the endpoint is gone (the thread must stop
  /// stepping its process).
  bool apply_churn(ProcId p, PhaseNum phase, const std::atomic<bool>* abort);

  NetConfig config_;
  Transport& transport_;
  std::unique_ptr<crypto::SignatureScheme> scheme_;
  crypto::Verifier verifier_;
  std::vector<bool> faulty_;
  std::vector<std::unique_ptr<sim::Process>> processes_;
  std::optional<sim::SignerPool> pool_;
  bool ran_ = false;
};

}  // namespace dr::net
