#include "net/synchronizer.h"

#include <algorithm>

#include "util/contracts.h"

namespace dr::net {

void SyncStats::merge(const SyncStats& other) {
  frames.merge(other.frames);
  link.merge(other.link);
  stragglers += other.stragglers;
  stale_frames += other.stale_frames;
  disconnects += other.disconnects;
  reconnected_peers += other.reconnected_peers;
  truncated_frames += other.truncated_frames;
  send_errors += other.send_errors;
  poisoned_links += other.poisoned_links;
  omission_faulty.insert(omission_faulty.end(),
                         other.omission_faulty.begin(),
                         other.omission_faulty.end());
}

PhaseSynchronizer::PhaseSynchronizer(ProcId self, std::size_t n,
                                     Transport& transport,
                                     std::chrono::milliseconds phase_timeout,
                                     std::chrono::milliseconds
                                         reconnect_window,
                                     const std::atomic<bool>* abort)
    : self_(self), n_(n), transport_(transport), timeout_(phase_timeout),
      reconnect_window_(reconnect_window), abort_(abort),
      done_phase_(n, 0), dead_(n, false), down_(n, false), down_since_(n) {
  DR_EXPECTS(self < n);
  assemblers_.reserve(n);
  for (ProcId q = 0; q < n; ++q) {
    assemblers_.emplace_back(/*link_peer=*/q, /*self=*/self);
  }
}

bool PhaseSynchronizer::barrier_met(PhaseNum phase) const {
  for (ProcId q = 0; q < n_; ++q) {
    if (q == self_) continue;
    if (!dead_[q] && done_phase_[q] < phase) return false;
  }
  return true;
}

void PhaseSynchronizer::note_link_down(ProcId q) {
  if (q == self_ || dead_[q]) return;
  ++stats_.disconnects;
  // A partial frame at the cut is truncation: the sender's resend (if any)
  // comes over a fresh connection as a whole frame, so the fragment must
  // not survive to be spliced with it.
  if (assemblers_[q].buffered() > 0) ++stats_.truncated_frames;
  assemblers_[q] = FrameAssembler(/*link_peer=*/q, /*self=*/self_);
  if (!down_[q]) {
    down_[q] = true;
    down_since_[q] = Clock::now();
  }
}

void PhaseSynchronizer::send_frame(const Frame& frame, bool self_correct,
                                   sim::Metrics& metrics) {
  DR_EXPECTS(frame.from == self_ && frame.to < n_);
  if (frame.to != self_ && dead_[frame.to]) return;
  // The parts form references the payload buffer instead of copying it; a
  // transport with a scatter/gather path (the svc reactor) writes it to the
  // kernel straight from the shared buffer, and the default send_parts
  // flattens bit-identically for the blocking backends.
  const WireParts parts = encode_frame_parts(frame);
  metrics.on_frame(self_correct, parts.size());
  if (const auto error = transport_.send_parts(self_, frame.to, parts)) {
    ++stats_.send_errors;
    note_link_down(frame.to);
  }
}

void PhaseSynchronizer::pump(std::chrono::milliseconds wait) {
  std::vector<RawChunk> chunks;
  transport_.recv(self_, chunks, wait);
  std::vector<Frame> decoded;
  for (RawChunk& chunk : chunks) {
    DR_ASSERT(chunk.from < n_);
    if (chunk.event.has_value()) note_link_down(chunk.from);
    if (chunk.bytes.empty()) continue;
    if (down_[chunk.from] && !dead_[chunk.from]) {
      down_[chunk.from] = false;  // the peer is demonstrably back
      ++stats_.reconnected_peers;
    }
    const bool was_poisoned = assemblers_[chunk.from].poisoned();
    assemblers_[chunk.from].feed(chunk.bytes, decoded, stats_.frames);
    if (!was_poisoned && assemblers_[chunk.from].poisoned()) {
      ++stats_.poisoned_links;
    }
  }
  for (Frame& frame : decoded) {
    if (frame.kind == FrameKind::kDone) {
      done_phase_[frame.from] =
          std::max(done_phase_[frame.from], frame.sent_phase);
      continue;
    }
    if (frame.sent_phase <= released_) {
      // This phase's inbox was already handed out (its sender was a
      // straggler, or a Byzantine endpoint forged an old phase label).
      ++stats_.stale_frames;
      continue;
    }
    auto& senders = buffered_[frame.sent_phase];
    if (senders.empty()) senders.resize(n_);
    senders[frame.from].push_back(Envelope{frame.from, frame.to,
                                           frame.sent_phase,
                                           std::move(frame.payload)});
  }
}

std::vector<Envelope> PhaseSynchronizer::advance(PhaseNum phase,
                                                 bool self_correct,
                                                 sim::Metrics& metrics) {
  DR_EXPECTS(phase > released_);
  for (ProcId q = 0; q < n_; ++q) {
    if (q == self_) continue;
    send_frame(Frame{FrameKind::kDone, self_, q, phase, {}}, self_correct,
               metrics);
  }

  const Clock::time_point deadline = Clock::now() + timeout_;
  pump(std::chrono::milliseconds(0));  // drain whatever is already in
  while (!barrier_met(phase) && !abort_requested()) {
    const Clock::time_point now = Clock::now();
    Clock::time_point effective = deadline;
    // When every peer the barrier still waits for is link-down, the wait
    // shrinks to the end of their reconnect windows: a crashed peer costs
    // its window, not the full phase timeout, and the total degradation
    // stays proportional to the number of actual failures.
    Clock::time_point window = Clock::time_point::min();
    bool all_missing_down = true;
    for (ProcId q = 0; q < n_; ++q) {
      if (q == self_ || dead_[q] || done_phase_[q] >= phase) continue;
      if (!down_[q]) {
        all_missing_down = false;
        break;
      }
      window = std::max(window, down_since_[q] + reconnect_window_);
    }
    if (all_missing_down && window != Clock::time_point::min()) {
      effective = std::min(effective, window);
    }
    if (now >= effective) break;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(effective -
                                                              now);
    pump(std::min(remaining, std::chrono::milliseconds(50)));
  }

  // A watchdog abort is a run-level failure, not evidence about peers:
  // leave the omission accounting untouched on that path.
  if (!abort_requested()) {
    for (ProcId q = 0; q < n_; ++q) {
      if (q == self_ || dead_[q] || done_phase_[q] >= phase) continue;
      dead_[q] = true;
      ++stats_.stragglers;
      stats_.omission_faulty.push_back(q);
    }
  }

  // Release: everything sent in `phase` becomes the next phase's inbox,
  // ordered by sender id then send order — the in-memory Network's order.
  released_ = phase;
  std::vector<Envelope> inbox;
  const auto it = buffered_.find(phase);
  if (it != buffered_.end()) {
    for (std::vector<Envelope>& from_one : it->second) {
      inbox.insert(inbox.end(),
                   std::make_move_iterator(from_one.begin()),
                   std::make_move_iterator(from_one.end()));
    }
  }
  buffered_.erase(buffered_.begin(), buffered_.upper_bound(phase));
  return inbox;
}

}  // namespace dr::net
