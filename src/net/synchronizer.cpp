#include "net/synchronizer.h"

#include <algorithm>

#include "util/contracts.h"

namespace dr::net {

void SyncStats::merge(const SyncStats& other) {
  frames.merge(other.frames);
  stragglers += other.stragglers;
  stale_frames += other.stale_frames;
  omission_faulty.insert(omission_faulty.end(),
                         other.omission_faulty.begin(),
                         other.omission_faulty.end());
}

PhaseSynchronizer::PhaseSynchronizer(ProcId self, std::size_t n,
                                     Transport& transport,
                                     std::chrono::milliseconds phase_timeout)
    : self_(self), n_(n), transport_(transport), timeout_(phase_timeout),
      done_phase_(n, 0), dead_(n, false) {
  DR_EXPECTS(self < n);
  assemblers_.reserve(n);
  for (ProcId q = 0; q < n; ++q) {
    assemblers_.emplace_back(/*link_peer=*/q, /*self=*/self);
  }
}

bool PhaseSynchronizer::barrier_met(PhaseNum phase) const {
  for (ProcId q = 0; q < n_; ++q) {
    if (q == self_) continue;
    if (!dead_[q] && done_phase_[q] < phase) return false;
  }
  return true;
}

void PhaseSynchronizer::pump(std::chrono::milliseconds wait) {
  std::vector<RawChunk> chunks;
  transport_.recv(self_, chunks, wait);
  std::vector<Frame> decoded;
  for (RawChunk& chunk : chunks) {
    DR_ASSERT(chunk.from < n_);
    assemblers_[chunk.from].feed(chunk.bytes, decoded, stats_.frames);
  }
  for (Frame& frame : decoded) {
    if (frame.kind == FrameKind::kDone) {
      done_phase_[frame.from] =
          std::max(done_phase_[frame.from], frame.sent_phase);
      continue;
    }
    if (frame.sent_phase <= released_) {
      // This phase's inbox was already handed out (its sender was a
      // straggler, or a Byzantine endpoint forged an old phase label).
      ++stats_.stale_frames;
      continue;
    }
    auto& senders = buffered_[frame.sent_phase];
    if (senders.empty()) senders.resize(n_);
    senders[frame.from].push_back(Envelope{frame.from, frame.to,
                                           frame.sent_phase,
                                           std::move(frame.payload)});
  }
}

std::vector<Envelope> PhaseSynchronizer::advance(PhaseNum phase,
                                                 bool self_correct,
                                                 sim::Metrics& metrics) {
  DR_EXPECTS(phase > released_);
  for (ProcId q = 0; q < n_; ++q) {
    if (q == self_) continue;
    const Bytes frame = encode_frame(
        Frame{FrameKind::kDone, self_, q, phase, {}});
    metrics.on_frame(self_correct, frame.size());
    transport_.send(self_, q, frame);
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline = Clock::now() + timeout_;
  pump(std::chrono::milliseconds(0));  // drain whatever is already in
  while (!barrier_met(phase)) {
    const Clock::time_point now = Clock::now();
    if (now >= deadline) break;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pump(std::min(remaining, std::chrono::milliseconds(50)));
  }

  for (ProcId q = 0; q < n_; ++q) {
    if (q == self_ || dead_[q] || done_phase_[q] >= phase) continue;
    dead_[q] = true;
    ++stats_.stragglers;
    stats_.omission_faulty.push_back(q);
  }

  // Release: everything sent in `phase` becomes the next phase's inbox,
  // ordered by sender id then send order — the in-memory Network's order.
  released_ = phase;
  std::vector<Envelope> inbox;
  const auto it = buffered_.find(phase);
  if (it != buffered_.end()) {
    for (std::vector<Envelope>& from_one : it->second) {
      inbox.insert(inbox.end(),
                   std::make_move_iterator(from_one.begin()),
                   std::make_move_iterator(from_one.end()));
    }
  }
  buffered_.erase(buffered_.begin(), buffered_.upper_bound(phase));
  return inbox;
}

}  // namespace dr::net
