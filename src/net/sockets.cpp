#include "net/sockets.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <thread>

#include "util/contracts.h"

namespace dr::net {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DR_ASSERT(flags >= 0);
  DR_ASSERT(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  const int one = 1;
  DR_ASSERT(::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) ==
            0);
}

int remaining_ms(SockClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SockClock::now());
  return static_cast<int>(std::max<std::int64_t>(0, left.count()));
}

std::optional<TransportError> write_with_deadline(
    int fd, ProcId peer, const std::uint8_t* data, std::size_t size,
    SockClock::time_point deadline, LinkHealth& health) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t k = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait = std::min(remaining_ms(deadline), 50);
      if (wait == 0) {
        ++health.send_timeouts;
        return TransportError{TransportErrorKind::kTimeout, peer, EAGAIN};
      }
      ++health.send_retries;
      struct pollfd pfd {fd, POLLOUT, 0};
      ::poll(&pfd, 1, wait);
      continue;
    }
    return TransportError{TransportErrorKind::kDisconnect, peer,
                          k < 0 ? errno : EPIPE};
  }
  return std::nullopt;
}

bool read_exact(int fd, std::uint8_t* data, std::size_t size,
                SockClock::time_point deadline) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t k = ::read(fd, data + off, size - off);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k == 0) return false;  // peer closed mid-read
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int wait = std::min(remaining_ms(deadline), 50);
      if (wait == 0) return false;
      struct pollfd pfd {fd, POLLIN, 0};
      ::poll(&pfd, 1, wait);
      continue;
    }
    return false;
  }
  return true;
}

bool split_hostport(std::string_view addr, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == addr.size()) {
    return false;
  }
  const std::string_view port_sv = addr.substr(colon + 1);
  std::uint32_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(port_sv.data(), port_sv.data() + port_sv.size(),
                      parsed);
  if (ec != std::errc{} || ptr != port_sv.data() + port_sv.size() ||
      parsed > 0xFFFF) {
    return false;
  }
  host = std::string(addr.substr(0, colon));
  port = static_cast<std::uint16_t>(parsed);
  return true;
}

namespace {

bool fill_addr(const std::string& host, std::uint16_t port,
               sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "localhost") {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

}  // namespace

int tcp_listen(const std::string& host, std::uint16_t port,
               std::uint16_t& bound_port, int backlog) {
  sockaddr_in addr{};
  if (!fill_addr(host, port, addr)) {
    errno = EINVAL;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  bound_port = ntohs(addr.sin_port);
  set_nonblocking(fd);
  return fd;
}

int tcp_connect_once(const std::string& host, std::uint16_t port, int& err) {
  sockaddr_in addr{};
  if (!fill_addr(host, port, addr)) {
    err = EINVAL;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    err = errno;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    err = errno;
    ::close(fd);
    return -1;
  }
  err = 0;
  return fd;
}

int tcp_connect_retry(const std::string& host, std::uint16_t port,
                      SockClock::time_point deadline) {
  std::chrono::milliseconds backoff{2};
  while (true) {
    int err = 0;
    const int fd = tcp_connect_once(host, port, err);
    if (fd >= 0) return fd;
    if (SockClock::now() + backoff >= deadline) return -1;
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
  }
}

}  // namespace dr::net
