#include "bounds/theorem2.h"

#include <algorithm>

#include "adversary/strategies.h"
#include "ba/signed_value.h"
#include "bounds/formulas.h"
#include "util/contracts.h"

namespace dr::bounds {

Theorem2Probe run_theorem2_probe(const ba::Protocol& protocol,
                                 const ba::BAConfig& config,
                                 std::uint64_t seed) {
  DR_EXPECTS(protocol.supports(config));
  const std::size_t t = config.t;
  const std::size_t b_size = 1 + t / 2;  // floor(1 + t/2) <= t for t >= 1
  DR_EXPECTS(b_size <= t);
  DR_EXPECTS(config.n > b_size);

  // B: the highest-numbered processors, never the transmitter.
  std::set<ba::ProcId> b;
  for (ba::ProcId p = static_cast<ba::ProcId>(config.n - 1);
       b.size() < b_size; --p) {
    if (p != config.transmitter) b.insert(p);
  }

  const std::size_t ignore = (t + 1) / 2;  // ceil(t/2)
  std::vector<ba::ScenarioFault> faults;
  for (ba::ProcId member : b) {
    faults.push_back(ba::ScenarioFault{
        member, [&protocol, &b, ignore](ba::ProcId id,
                                        const ba::BAConfig& c) {
          return std::make_unique<adversary::IgnoreFirstK>(
              protocol.make(id, c), ignore, b);
        }});
  }

  const auto result = ba::run_scenario(protocol, config, seed, faults);
  const auto check =
      sim::check_byzantine_agreement(result, config.transmitter,
                                     config.value);

  Theorem2Probe probe;
  probe.agreement = check.agreement;
  probe.validity = check.validity;
  probe.per_member_bound = theorem2_per_faulty_lower_bound(t);
  probe.messages_sent_by_correct = result.metrics.messages_by_correct();
  probe.min_received_by_b = static_cast<std::size_t>(-1);
  for (ba::ProcId member : b) {
    probe.min_received_by_b = std::min(
        probe.min_received_by_b,
        result.metrics.received_from_correct(member));
    probe.b_members.push_back(member);
  }
  return probe;
}

namespace {

/// One-shot broadcast: phase 1 the transmitter sends its value to everyone;
/// receivers decide what they received (default on nothing). Failure-free
/// this is a perfectly fine agreement "algorithm" — and it sends only n-1
/// messages, far below Theorem 2's bound, which is exactly why the history
/// swap breaks it.
class OneShotBroadcast final : public sim::Process {
 public:
  OneShotBroadcast(ba::ProcId self, const ba::BAConfig& config)
      : self_(self), config_(config) {}

  static sim::PhaseNum steps(const ba::BAConfig&) { return 2; }
  static bool supports(const ba::BAConfig& config) {
    return config.n >= 2 && config.transmitter == 0;
  }

  void on_phase(sim::Context& ctx) override {
    if (self_ == 0) {
      if (ctx.phase() == 1) {
        const ba::SignedValue sv =
            ba::make_signed(config_.value, ctx.signer(), 0);
        for (ba::ProcId q = 1; q < config_.n; ++q) {
          ctx.send(q, encode(sv), 1);
        }
      }
      return;
    }
    if (decided_.has_value()) return;
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.from != 0) continue;
      const auto sv = ba::decode_signed_value(env.payload);
      if (!sv || sv->chain.size() != 1 || sv->chain[0].signer != 0) continue;
      if (!verify_chain(*sv, ctx.verifier(), ctx.chain_cache())) continue;
      decided_ = sv->value;
      break;
    }
  }

  std::optional<ba::Value> decision() const override {
    if (self_ == 0) return config_.value;
    return decided_.value_or(ba::kDefaultValue);
  }

 private:
  ba::ProcId self_;
  ba::BAConfig config_;
  std::optional<ba::Value> decided_;
};

/// A transmitter that behaves correctly except it never sends to `victim`
/// — the A(p) coalition of the H'' history (here A(p) = {transmitter}).
class WithholdingTransmitter final : public sim::Process {
 public:
  WithholdingTransmitter(ba::ProcId victim, ba::Value value, std::size_t n)
      : victim_(victim), value_(value), n_(n) {}

  void on_phase(sim::Context& ctx) override {
    if (ctx.phase() != 1) return;
    for (ba::ProcId q = 1; q < n_; ++q) {
      if (q == victim_) continue;
      const ba::SignedValue sv = ba::make_signed(value_, ctx.signer(), 0);
      ctx.send(q, encode(sv), 1);
    }
  }
  std::optional<ba::Value> decision() const override { return std::nullopt; }

 private:
  ba::ProcId victim_;
  ba::Value value_;
  std::size_t n_;
};

}  // namespace

ba::Protocol make_one_shot_protocol() {
  ba::Protocol p;
  p.name = "one-shot(broken)";
  p.authenticated = true;
  p.supports = [](const ba::BAConfig& c) {
    return OneShotBroadcast::supports(c);
  };
  p.steps = [](const ba::BAConfig& c) { return OneShotBroadcast::steps(c); };
  p.make = [](ba::ProcId id, const ba::BAConfig& c) {
    return std::make_unique<OneShotBroadcast>(id, c);
  };
  return p;
}

Theorem2Attack run_theorem2_attack(std::size_t n, std::size_t t,
                                   std::uint64_t seed) {
  DR_EXPECTS(t >= 1 && n >= 3);
  const ba::ProcId victim = static_cast<ba::ProcId>(n - 1);
  std::vector<ba::ScenarioFault> faults;
  faults.push_back(ba::ScenarioFault{
      0, [victim](ba::ProcId, const ba::BAConfig& c) {
        return std::make_unique<WithholdingTransmitter>(victim, c.value,
                                                        c.n);
      }});
  const auto result = ba::run_scenario(make_one_shot_protocol(),
                                       ba::BAConfig{n, t, 0, 1}, seed,
                                       faults);
  Theorem2Attack attack;
  attack.starved_decision = result.decisions[victim];
  for (ba::ProcId q = 1; q < n - 1; ++q) {
    attack.others_decision = result.decisions[q];
    break;
  }
  attack.agreement_violated =
      attack.starved_decision.has_value() &&
      attack.others_decision.has_value() &&
      *attack.starved_decision != *attack.others_decision;
  return attack;
}

}  // namespace dr::bounds
