#include "bounds/formulas.h"

#include <algorithm>

namespace dr::bounds {

double theorem1_signature_lower_bound(std::size_t n, std::size_t t) {
  return static_cast<double>(n) * static_cast<double>(t + 1) / 4.0;
}

double theorem2_message_lower_bound(std::size_t n, std::size_t t) {
  const double first = static_cast<double>(n - 1) / 2.0;
  const double half_t = 1.0 + static_cast<double>(t) / 2.0;
  return std::max(first, half_t * half_t);
}

std::size_t theorem2_per_faulty_lower_bound(std::size_t t) {
  return 1 + (t + 1) / 2;  // ceil(1 + t/2)
}

std::size_t alg1_message_upper_bound(std::size_t t) {
  return 2 * t * t + 2 * t;
}

std::size_t alg1_phase_bound(std::size_t t) { return t + 2; }

std::size_t alg2_message_upper_bound(std::size_t t) {
  return 5 * t * t + 5 * t;
}

std::size_t alg2_phase_bound(std::size_t t) { return 3 * t + 3; }

double alg3_message_upper_bound(std::size_t n, std::size_t t, std::size_t s) {
  return 2.0 * static_cast<double>(n) +
         4.0 * static_cast<double>(t) * static_cast<double>(n) /
             static_cast<double>(s) +
         3.0 * static_cast<double>(t) * static_cast<double>(t) *
             static_cast<double>(s);
}

std::size_t alg3_phase_bound(std::size_t t, std::size_t s) {
  return t + 2 * s + 3;
}

std::size_t ceil_div(std::size_t a, std::size_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

std::size_t alg3_message_upper_bound_exact(std::size_t n, std::size_t t,
                                           std::size_t s) {
  return 2 * n + ceil_div(4 * t * n, s) + 3 * t * t * s;
}

std::size_t theorem1_signature_lower_bound_exact(std::size_t n,
                                                 std::size_t t) {
  return ceil_div(n * (t + 1), 4);
}

std::size_t alg4_message_upper_bound(std::size_t m) {
  return 3 * (m - 1) * m * m;
}

std::size_t naive_exchange_messages(std::size_t n) { return n * (n - 1); }

std::size_t relay_exchange_messages(std::size_t n, std::size_t t) {
  return (n - 1) * (t + 1) + (n - t - 1) * (t + 1);
}

std::size_t alg5_phase_bound(std::size_t t, std::size_t s) {
  return 3 * t + 4 * s + 2;
}

std::size_t dolev_strong_relay_message_bound(std::size_t n, std::size_t t) {
  return (n - 1) + 2 * n * (t + 1) + 2 * (t + 1) * (n - 1);
}

std::size_t dolev_strong_broadcast_message_bound(std::size_t n) {
  return (n - 1) + 2 * (n - 1) * (n - 1);
}

}  // namespace dr::bounds
