// Executable version of Theorem 2's proof apparatus.
//
// The proof puts a set B of floor(1 + t/2) faulty processors in play; each
// behaves like a correct processor except that it ignores the first
// ceil(t/2) messages from outside B and never talks to B. If some faulty
// b in B could get away with receiving at most ceil(t/2) messages, histories
// could be swapped (H' vs H'') so that a correct processor receives nothing
// at all and cannot decide the transmitter's value.
//
// For a *correct* algorithm the consequence is measurable: every member of
// B must receive at least ceil(1 + t/2) messages from correct processors.
// run_theorem2_probe runs exactly this adversary against a protocol and
// reports the minimum any B member received, together with the failure-free
// total-message measurement the theorem's first max{} term bounds.
#pragma once

#include <vector>

#include "ba/registry.h"

namespace dr::bounds {

struct Theorem2Probe {
  bool agreement = false;  // the run must still satisfy both BA conditions
  bool validity = false;
  /// Minimum over b in B of messages b received from correct processors.
  std::size_t min_received_by_b = 0;
  /// ceil(1 + t/2), the per-member bound the proof establishes.
  std::size_t per_member_bound = 0;
  /// Messages sent by correct processors in this (t-faulty) run.
  std::size_t messages_sent_by_correct = 0;
  std::vector<ba::ProcId> b_members;
};

/// Runs `protocol` with transmitter value 1 and the ignore-first-k coalition
/// B (the floor(1+t/2) highest non-transmitter ids). `protocol` must
/// support the given config.
Theorem2Probe run_theorem2_probe(const ba::Protocol& protocol,
                                 const ba::BAConfig& config,
                                 std::uint64_t seed);

struct Theorem2Attack {
  bool agreement_violated = false;
  std::optional<ba::Value> starved_decision;  // the message-starved victim
  std::optional<ba::Value> others_decision;
};

/// The proof's H' -> H'' swap, executable. The thrifty (broken) protocol
/// under attack is a one-shot broadcast: the transmitter sends once and
/// receivers decide whatever (if anything) they got — so a processor that
/// receives no messages at all cannot decide the transmitter's value. In
/// H'' the faulty set A(p) (here: just the transmitter) simply withholds
/// p's messages: p, perfectly correct, sees the empty subhistory, decides
/// the default, and disagrees with everybody else. A correct algorithm
/// escapes only by making sure every processor in the proof's set Q is
/// *sent* enough messages — which is Theorem 2's count.
Theorem2Attack run_theorem2_attack(std::size_t n, std::size_t t,
                                   std::uint64_t seed);

/// The thrifty protocol itself (reaches BA failure-free; fails under one
/// omissive fault).
ba::Protocol make_one_shot_protocol();

}  // namespace dr::bounds
