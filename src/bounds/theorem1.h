// Executable version of Theorem 1's proof.
//
// The theorem: a correct authenticated BA algorithm cannot let any processor
// p exchange signatures with fewer than t+1 other processors across the two
// failure-free histories H (value 0) and G (value 1); otherwise the set
// A(p) of p's signature partners, made faulty, can show p the H-world and
// everybody else the G-world, and the two sides decide differently.
//
// Two artefacts:
//  1. signature_partners / min_partner_set_size — measure A(p) for real
//     algorithms on recorded histories and confirm |A(p)| >= t+1 for all p.
//  2. run_theorem1_attack — a deliberately thrifty (broken) protocol in
//     which a designated observer processor talks only to t "reporters",
//     plus the two-faced replay coalition from the proof; the attack makes
//     the observer decide 0 while everyone else decides 1.
#pragma once

#include <set>

#include "ba/registry.h"
#include "hist/history.h"

namespace dr::bounds {

using ba::BAConfig;
using ba::ProcId;
using ba::Value;

/// The set A(p) for a recorded history: every q != p such that q's
/// signature reached p or p's signature reached q. Message payloads are
/// decoded as signature chains / attested blobs; undecodable payloads fall
/// back to the technical assumption that a message carries at least its
/// sender's signature.
std::set<ProcId> signature_partners(const hist::History& history, ProcId p);

/// min over p of |A(p)| where A(p) is accumulated over the two failure-free
/// histories (value 0 and value 1) of `protocol`. Theorem 1 says this is
/// > t for any correct algorithm.
std::size_t min_partner_set_size(const ba::Protocol& protocol,
                                 const BAConfig& config, std::uint64_t seed);

struct Theorem1Attack {
  bool agreement_violated = false;
  std::optional<Value> observer_decision;
  std::optional<Value> others_decision;
  std::size_t partner_set_size = 0;  // |A(p)| of the observer, <= t
};

/// The thrifty protocol under attack: processors 0..n-2 run Dolev-Strong
/// among themselves; the observer n-1 listens to t reporters (ids 1..t) and
/// decides their majority report. Returns the attack outcome; a correct
/// algorithm could not be attacked this way, this one always is.
Theorem1Attack run_theorem1_attack(std::size_t n, std::size_t t,
                                   std::uint64_t seed);

/// The thrifty protocol itself, exposed so tests can also confirm that it
/// *does* reach agreement in failure-free runs (it fails only against the
/// coalition, which is the whole point of the bound).
ba::Protocol make_sparse_observer_protocol();

}  // namespace dr::bounds
