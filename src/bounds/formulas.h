// Every quantitative bound stated in the paper, as checkable closed forms.
// The benchmarks print measured counts next to these.
#pragma once

#include <cstddef>

namespace dr::bounds {

/// Theorem 1: any authenticated BA algorithm has a failure-free history with
/// at least n(t+1)/4 signatures sent by correct processors. (Corollary 1:
/// same for messages without authentication.)
double theorem1_signature_lower_bound(std::size_t n, std::size_t t);

/// Theorem 2: some history forces at least max{(n-1)/2, (1+t/2)^2} messages
/// from correct processors.
double theorem2_message_lower_bound(std::size_t n, std::size_t t);

/// Theorem 2's per-processor form: every member of the faulty set B must be
/// sent at least ceil(1 + t/2) messages by the correct processors.
std::size_t theorem2_per_faulty_lower_bound(std::size_t t);

/// Theorem 3: Algorithm 1 (n = 2t+1) sends at most 2t^2 + 2t messages...
std::size_t alg1_message_upper_bound(std::size_t t);
/// ...within t+2 phases.
std::size_t alg1_phase_bound(std::size_t t);

/// Theorem 4: Algorithm 2 sends at most 5t^2 + 5t messages within 3t+3
/// phases.
std::size_t alg2_message_upper_bound(std::size_t t);
std::size_t alg2_phase_bound(std::size_t t);

/// Lemma 1: Algorithm 3 sends at most 2n + 4tn/s + 3t^2 s messages within
/// t + 2s + 3 phases.
double alg3_message_upper_bound(std::size_t n, std::size_t t, std::size_t s);
std::size_t alg3_phase_bound(std::size_t t, std::size_t s);

/// ceil(a / b). The 4tn/s term of Lemma 1 is fractional whenever s does not
/// divide 4tn; an integer threshold must round it *up*, or the oracle
/// silently tightens the paper's bound (plain `4*t*n/s` truncates).
std::size_t ceil_div(std::size_t a, std::size_t b);

/// Lemma 1 as a valid integer threshold: 2n + ceil(4tn/s) + 3t^2 s. Always
/// >= the real-valued form above (by < 1), so a measured count within the
/// paper's bound never trips an off-by-one at non-divisible (t, n, s).
std::size_t alg3_message_upper_bound_exact(std::size_t n, std::size_t t,
                                           std::size_t s);

/// Theorem 1's n(t+1)/4 as an integer threshold a count can be compared
/// against without floating point: a measured signature count meets the
/// bound iff it is >= ceil(n(t+1)/4).
std::size_t theorem1_signature_lower_bound_exact(std::size_t n,
                                                 std::size_t t);

/// Theorem 6 / Lemma 2: Algorithm 4 (N = m^2) sends at most 3(m-1)m^2
/// messages; at least N - 2t processors are non-isolated.
std::size_t alg4_message_upper_bound(std::size_t m);
/// The obvious one-phase baseline: N(N-1).
std::size_t naive_exchange_messages(std::size_t n);
/// The two-phase relay baseline: (N-1)(t+1) + (N-t-1)(t+1).
std::size_t relay_exchange_messages(std::size_t n, std::size_t t);

/// Lemma 5: Algorithm 5 sends O(t^2 + nt/s) messages in at most 3t + 4s + 2
/// phases (paper's phase accounting; our simulator serialises a few
/// overlapped sub-phases, see DESIGN.md).
std::size_t alg5_phase_bound(std::size_t t, std::size_t s);

/// The paper's reference point for [9] (Dolev-Strong): Theta(nt) messages.
/// For our relay variant the concrete worst case is
/// (n-1) + 2n(t+1) + 2(t+1)(n-1).
std::size_t dolev_strong_relay_message_bound(std::size_t n, std::size_t t);
/// The broadcast variant's worst case: (n-1) + 2(n-1)(n-1).
std::size_t dolev_strong_broadcast_message_bound(std::size_t n);

}  // namespace dr::bounds
