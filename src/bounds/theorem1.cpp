#include "bounds/theorem1.h"

#include <algorithm>
#include <map>

#include "adversary/strategies.h"
#include "ba/dolev_strong.h"
#include "ba/exchange.h"
#include "ba/signed_value.h"
#include "util/contracts.h"

namespace dr::bounds {

namespace {

/// Signers visible in a payload: a chain's signers, an attested blob's
/// signer, or (fallback) just the transport-level sender.
std::vector<ProcId> visible_signers(ByteView payload, ProcId sender) {
  if (const auto sv = ba::decode_signed_value(payload); sv.has_value()) {
    return ba::chain_signers(*sv);
  }
  Reader r(payload);
  if (const auto a = ba::decode_attested(r); a.has_value() && r.done()) {
    return {a->signer};
  }
  return {sender};
}

}  // namespace

std::set<ProcId> signature_partners(const hist::History& history, ProcId p) {
  std::set<ProcId> partners;
  for (hist::PhaseNum k = 1; k <= history.phases(); ++k) {
    for (const hist::Edge& e : history.phase(k).edges()) {
      const std::vector<ProcId> signers = visible_signers(e.label, e.from);
      if (e.to == p) {
        // p receives these signatures.
        for (ProcId s : signers) {
          if (s != p) partners.insert(s);
        }
      } else if (std::find(signers.begin(), signers.end(), p) !=
                 signers.end()) {
        // p's signature reaches e.to.
        partners.insert(e.to);
      }
    }
  }
  partners.erase(p);
  return partners;
}

std::size_t min_partner_set_size(const ba::Protocol& protocol,
                                 const BAConfig& config, std::uint64_t seed) {
  BAConfig zero = config;
  zero.value = 0;
  BAConfig one = config;
  one.value = 1;
  const auto h = ba::run_scenario(protocol, zero, seed, {}, true);
  const auto g = ba::run_scenario(protocol, one, seed, {}, true);

  std::size_t min_size = config.n;
  for (ProcId p = 0; p < config.n; ++p) {
    std::set<ProcId> a = signature_partners(h.history, p);
    const std::set<ProcId> a_g = signature_partners(g.history, p);
    a.insert(a_g.begin(), a_g.end());
    min_size = std::min(min_size, a.size());
  }
  return min_size;
}

// ---------------------------------------------------------------------------
// The thrifty protocol: Dolev-Strong among 0..n-2, observer n-1 fed by t
// reporters.

namespace {

class SparseObserver final : public sim::Process {
 public:
  SparseObserver(ProcId self, const BAConfig& config)
      : self_(self), config_(config) {
    DR_EXPECTS(config.n >= 2 * config.t + 3);
    DR_EXPECTS(config.transmitter == 0);
    if (self_ + 1 < config.n) {
      inner_ = std::make_unique<ba::DolevStrongBroadcast>(self_, core());
    }
  }

  static sim::PhaseNum steps(const BAConfig& config) {
    return static_cast<sim::PhaseNum>(config.t + 4);
  }
  static bool supports(const BAConfig& config) {
    return config.n >= 2 * config.t + 3 && config.transmitter == 0 &&
           config.t >= 1;
  }

  void on_phase(sim::Context& ctx) override {
    const std::size_t t = config_.t;
    const ProcId observer = static_cast<ProcId>(config_.n - 1);
    const sim::PhaseNum report_step = static_cast<sim::PhaseNum>(t + 3);

    if (inner_) {
      if (ctx.phase() <= t + 2) inner_->on_phase(ctx);
      // Reporters (ids 1..t) send their freshly-signed decision to the
      // observer. Crucially they strip the chain: the observer only ever
      // sees reporter signatures, so A(observer) = {reporters}, size t.
      if (ctx.phase() == report_step && self_ >= 1 && self_ <= t) {
        const Value decided = inner_->decision().value_or(0);
        const ba::Attested a =
            ba::attest(encode_u64(decided), ctx.signer(), self_);
        Writer w;
        ba::encode(w, a);
        ctx.send(observer, std::move(w).take(), 1);
      }
      return;
    }

    // The observer: majority of valid reporter attestations.
    if (ctx.phase() == report_step + 1) {
      std::map<Value, std::size_t> votes;
      for (const sim::Envelope& env : ctx.inbox()) {
        if (env.from < 1 || env.from > t) continue;
        Reader r(env.payload);
        const auto a = ba::decode_attested(r);
        if (!a || !r.done() || a->signer != env.from) continue;
        if (!ba::verify_attested(*a, ctx.verifier())) continue;
        const auto v = decode_u64(a->body);
        if (v.has_value()) ++votes[*v];
      }
      Value best = 0;
      std::size_t best_count = 0;
      for (const auto& [value, count] : votes) {
        if (count > best_count) {
          best = value;
          best_count = count;
        }
      }
      decision_ = best;
    }
  }

  std::optional<Value> decision() const override {
    if (inner_) return inner_->decision();
    return decision_;
  }

 private:
  BAConfig core() const {
    return BAConfig{config_.n - 1, config_.t, 0, config_.value};
  }

  ProcId self_;
  BAConfig config_;
  std::unique_ptr<ba::DolevStrongBroadcast> inner_;  // null for the observer
  std::optional<Value> decision_;
};

}  // namespace

ba::Protocol make_sparse_observer_protocol() {
  ba::Protocol p;
  p.name = "sparse-observer(broken)";
  p.authenticated = true;
  p.supports = [](const BAConfig& c) { return SparseObserver::supports(c); };
  p.steps = [](const BAConfig& c) { return SparseObserver::steps(c); };
  p.make = [](ProcId id, const BAConfig& c) {
    return std::make_unique<SparseObserver>(id, c);
  };
  return p;
}

Theorem1Attack run_theorem1_attack(std::size_t n, std::size_t t,
                                   std::uint64_t seed) {
  const ba::Protocol protocol = make_sparse_observer_protocol();
  const ProcId observer = static_cast<ProcId>(n - 1);

  // Reference histories H (value 0) and G (value 1), both failure-free.
  BAConfig zero{n, t, 0, 0};
  BAConfig one{n, t, 0, 1};
  const auto h = ba::run_scenario(protocol, zero, seed, {}, true);
  const auto g = ba::run_scenario(protocol, one, seed, {}, true);

  Theorem1Attack attack;
  {
    std::set<ProcId> a = signature_partners(h.history, observer);
    const auto a_g = signature_partners(g.history, observer);
    a.insert(a_g.begin(), a_g.end());
    attack.partner_set_size = a.size();
  }

  // H': the reporters A = {1..t} are faulty; toward the observer they
  // replay H, toward everyone else they replay G. The correct world runs
  // with value 1 (so that every correct processor other than the observer
  // sees exactly its G subhistory).
  std::vector<ba::ScenarioFault> faults;
  for (ProcId a = 1; a <= t; ++a) {
    faults.push_back(ba::ScenarioFault{
        a, [&, a](ProcId, const BAConfig&) {
          return std::make_unique<adversary::TwoFacedReplay>(
              adversary::trace_of(h.history, a), std::set<ProcId>{observer},
              adversary::trace_of(g.history, a));
        }});
  }
  const auto h_prime = ba::run_scenario(protocol, one, seed, faults, false);

  attack.observer_decision = h_prime.decisions[observer];
  // Every correct processor other than the observer.
  for (ProcId q = 0; q < n - 1; ++q) {
    if (h_prime.faulty[q]) continue;
    attack.others_decision = h_prime.decisions[q];
    break;
  }
  attack.agreement_violated =
      attack.observer_decision.has_value() &&
      attack.others_decision.has_value() &&
      *attack.observer_decision != *attack.others_decision;
  return attack;
}

}  // namespace dr::bounds
