// Information-exchange accounting, matching the paper's cost measures:
// the number of messages sent by correct processors and, for authenticated
// algorithms, the number of signatures those messages carry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/envelope.h"

namespace dr {
class Writer;
class Reader;
}  // namespace dr

namespace dr::sim {

class Metrics {
 public:
  Metrics() : Metrics(0) {}
  explicit Metrics(std::size_t n);

  void on_send(ProcId from, ProcId to, PhaseNum phase, bool sender_correct,
               std::size_t signatures, std::size_t payload_bytes);

  /// Wire-level accounting, reported by the real transports (src/net): one
  /// call per frame actually put on the wire, with the frame's full size
  /// (payload + frame header + checksum). Control frames (the phase
  /// synchronizer's completion markers) are counted too — the whole point
  /// is to make the byte overhead of framing and synchronization visible
  /// next to the paper's message/signature counts. Always zero for the
  /// in-memory simulator, which has no wire.
  void on_frame(bool sender_correct, std::size_t frame_bytes);

  /// Connection-lifecycle accounting, reported by the net runner from the
  /// transport's LinkHealth counters plus the synchronizer's omission
  /// bookkeeping after each endpoint thread finishes. Like on_frame, these
  /// are wire-runtime facts with no sim counterpart — always zero under the
  /// in-memory simulator, and asserted zero on clean net runs by the parity
  /// gate (a disconnect on a healthy loopback mesh is a bug, not noise).
  void on_net_health(std::size_t disconnects, std::size_t reconnect_attempts,
                     std::size_t send_retries,
                     std::size_t endpoints_degraded);
  std::size_t net_disconnects() const { return net_disconnects_; }
  std::size_t net_reconnect_attempts() const {
    return net_reconnect_attempts_;
  }
  std::size_t net_send_retries() const { return net_send_retries_; }
  /// Peers demoted to omission-faulty, summed over observers: a peer every
  /// survivor demoted counts once per survivor.
  std::size_t net_endpoints_degraded() const {
    return net_endpoints_degraded_;
  }

  /// Chain-verification cache accounting: totals across the per-process
  /// caches (crypto/verify_cache.h). Deterministic — the runners hand each
  /// process one cache and the verify-call sequence is a function of its
  /// inbox sequence — so these are compared by the sim-vs-net parity gate
  /// and the sequential-vs-parallel determinism test like any other field.
  void on_chain_cache(std::size_t hits, std::size_t misses);
  std::size_t chain_cache_hits() const { return chain_cache_hits_; }
  std::size_t chain_cache_misses() const { return chain_cache_misses_; }

  /// Shared striped verify-store accounting (crypto::StripedVerifyCache):
  /// per-stripe hit/miss totals, element-wise. Aggregate-level only — the
  /// daemon folds endpoint-level snapshots into its totals and the benches
  /// fold pool-level counters in, while per-instance Metrics keep these
  /// empty so an instance's metrics stay equal to a solo sim run's (the
  /// parity and concurrent-isolation gates compare them directly).
  void on_verify_stripes(const std::vector<std::uint64_t>& hits,
                         const std::vector<std::uint64_t>& misses);
  const std::vector<std::uint64_t>& verify_stripe_hits() const {
    return verify_stripe_hits_;
  }
  const std::vector<std::uint64_t>& verify_stripe_misses() const {
    return verify_stripe_misses_;
  }

  /// Pre-reserves the per-phase counter vector so steady-state sends never
  /// grow it (the lazy resize in on_send is one heap allocation per new
  /// phase otherwise — visible in the allocation plane's steady-state
  /// zero). Purely a capacity hint: the vector's *size* still tracks the
  /// last phase a correct processor actually sent in, so comparisons and
  /// the wire form are unchanged.
  void reserve_phases(PhaseNum phases) { per_phase_.reserve(phases); }

  /// Element-wise accumulation of another run fragment's counters (sums;
  /// maxima for the max/last fields). The net runner gives each endpoint
  /// thread its own Metrics and merges after the join, which keeps the hot
  /// path lock-free and the totals exactly equal to the serial sim's.
  void merge(const Metrics& other);

  friend bool operator==(const Metrics&, const Metrics&) = default;

  /// Messages sent by correct processors — the paper's primary measure.
  std::size_t messages_by_correct() const { return messages_by_correct_; }
  /// Signatures appended by correct processors across all their messages.
  std::size_t signatures_by_correct() const { return signatures_by_correct_; }
  /// All messages, including those sent by faulty processors.
  std::size_t messages_total() const { return messages_total_; }

  /// Payload bytes sent by correct processors, and the largest single
  /// payload among them. The paper counts messages and signatures, not
  /// bytes, but remarks that Algorithm 5 "requires sending long messages" —
  /// these two expose that trade.
  std::size_t bytes_by_correct() const { return bytes_by_correct_; }
  std::size_t max_payload_by_correct() const {
    return max_payload_by_correct_;
  }

  /// Frames put on the wire by anyone, and wire bytes (payload + frame
  /// header) sent by correct processors. Zero under the in-memory backend.
  std::size_t frames_sent() const { return frames_sent_; }
  std::size_t wire_bytes_by_correct() const {
    return wire_bytes_by_correct_;
  }

  /// Highest phase in which any message was sent (correct or faulty).
  PhaseNum last_active_phase() const { return last_active_phase_; }

  /// Messages sent by correct processors in each phase (index 0 = phase 1).
  const std::vector<std::size_t>& per_phase() const { return per_phase_; }

  std::size_t sent_by(ProcId p) const { return sent_by_[p]; }
  /// Messages processor p received from correct senders (Theorem 2 counts
  /// these for the faulty set B).
  std::size_t received_from_correct(ProcId p) const {
    return received_from_correct_[p];
  }
  /// Signatures processor p exchanged with correct processors: signatures it
  /// appended on messages it sent plus signatures on messages delivered to
  /// it from correct senders. Theorem 1 lower-bounds this per processor.
  std::size_t signatures_exchanged(ProcId p) const {
    return signatures_exchanged_[p];
  }

  std::size_t n() const { return sent_by_.size(); }

  /// Wire form for crossing a process boundary (the svc daemon's endpoint
  /// processes report per-instance Metrics to the coordinator, which merges
  /// them exactly as the in-process runners do). Field-complete: decode ∘
  /// encode is the identity, asserted by the svc wire tests.
  void encode(Writer& w) const;
  static std::optional<Metrics> decode(Reader& r);

 private:
  std::size_t messages_by_correct_ = 0;
  std::size_t signatures_by_correct_ = 0;
  std::size_t messages_total_ = 0;
  std::size_t bytes_by_correct_ = 0;
  std::size_t max_payload_by_correct_ = 0;
  std::size_t frames_sent_ = 0;
  std::size_t wire_bytes_by_correct_ = 0;
  std::size_t net_disconnects_ = 0;
  std::size_t net_reconnect_attempts_ = 0;
  std::size_t net_send_retries_ = 0;
  std::size_t net_endpoints_degraded_ = 0;
  std::size_t chain_cache_hits_ = 0;
  std::size_t chain_cache_misses_ = 0;
  std::vector<std::uint64_t> verify_stripe_hits_;
  std::vector<std::uint64_t> verify_stripe_misses_;
  PhaseNum last_active_phase_ = 0;
  std::vector<std::size_t> per_phase_;
  std::vector<std::size_t> sent_by_;
  std::vector<std::size_t> received_from_correct_;
  std::vector<std::size_t> signatures_exchanged_;
};

}  // namespace dr::sim
