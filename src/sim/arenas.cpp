#include "sim/arenas.h"

namespace dr::sim {

void RunArenas::begin_run(std::size_t lanes) {
  if (lanes == 0) lanes = 1;
  // Drop leftover envelopes first: their payload handles would otherwise
  // pin the payload arenas and force a skipped reset. clear() keeps the
  // vectors' capacity — that is the whole point of the storage.
  for (std::vector<Envelope>& inbox : network_.inboxes) inbox.clear();
  for (std::vector<Envelope>& shard : network_.outbox) shard.clear();
  while (lanes_.size() < lanes) lanes_.emplace_back();
  for (WorkerArenas& lane : lanes_) {
    lane.payload.reset();  // tolerant: skips if handles are still live
    lane.scratch.reset();
    // Eager first blocks: a pool-worker lane may see its first allocation
    // at any phase (work stealing), and a lazily created block there would
    // show up as a steady-state heap allocation.
    lane.payload.prewarm();
    lane.scratch.prewarm();
  }
}

std::size_t RunArenas::payload_high_water() const {
  std::size_t total = 0;
  for (const WorkerArenas& lane : lanes_) total += lane.payload.high_water();
  return total;
}

std::size_t RunArenas::scratch_high_water() const {
  std::size_t total = 0;
  for (const WorkerArenas& lane : lanes_) total += lane.scratch.high_water();
  return total;
}

std::size_t RunArenas::skipped_resets() const {
  std::size_t total = 0;
  for (const WorkerArenas& lane : lanes_) {
    total += lane.payload.skipped_resets();
  }
  return total;
}

}  // namespace dr::sim
