// Reusable allocation state for the simulator's message plane.
//
// A RunArenas bundles everything the runner needs to execute runs without
// steady-state heap traffic, and is designed to be owned by the caller and
// reused across many runs (a benchmark loop, an InstancePool worker, a
// conformance sweep):
//
//  * per-lane WorkerArenas — one PayloadArena (shared message buffers) and
//    one scratch Arena (Context outgoing queues, verification prepass
//    arrays) per worker lane. Lane 0 is the serial/faulty lane; parallel
//    runs use lanes 1..threads for the pool workers so no two threads ever
//    touch one arena;
//  * recycled NetworkStorage — the per-receiver inbox vectors and
//    per-sender outbox shards keep their capacity from run to run instead
//    of reallocating their way back up every time.
//
// begin_run() recycles all of it. The payload arenas reset tolerantly: if a
// Payload handle from a previous run is still alive (a caller kept one, or
// history recording is on), that arena skips its reset and keeps growing
// rather than invalidating live memory — visible via skipped_resets().
//
// Thread discipline: begin_run() and lane() are called by the run
// orchestration thread; each lane's arenas are then used exclusively by the
// thread stepping that lane. A RunArenas must outlive every Payload
// allocated from its payload arenas (PayloadArena enforces this).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "sim/envelope.h"
#include "sim/payload.h"
#include "util/arena.h"

namespace dr::sim {

/// One worker lane's allocation state.
struct WorkerArenas {
  PayloadArena payload;  // shared message buffers (run-scoped)
  Arena scratch;         // phase-scoped scratch (outgoing queues, prepass)
};

/// Recycled envelope storage borrowed by Network: inbox and outbox vectors
/// keep their capacity across runs. Opaque to everything but Network and
/// RunArenas.
class NetworkStorage {
 private:
  friend class Network;
  friend class RunArenas;

  std::vector<std::vector<Envelope>> inboxes;
  std::vector<std::vector<Envelope>> outbox;
};

class RunArenas {
 public:
  RunArenas() = default;
  RunArenas(const RunArenas&) = delete;
  RunArenas& operator=(const RunArenas&) = delete;

  /// Prepares for a run using `lanes` worker lanes (>= 1): grows the lane
  /// list if needed, recycles every scratch arena, resets every payload
  /// arena that has no live handles, and drops any envelopes left in the
  /// network storage (their handles pin payload arenas otherwise).
  void begin_run(std::size_t lanes);

  /// Lane `i`'s arenas; stable addresses for the lifetime of the RunArenas.
  WorkerArenas& lane(std::size_t i) { return lanes_.at(i); }
  std::size_t lanes() const { return lanes_.size(); }

  NetworkStorage* network_storage() { return &network_; }

  /// Aggregate high-water marks across lanes (bytes), and how many payload
  /// arenas ever declined a reset because handles were still live.
  std::size_t payload_high_water() const;
  std::size_t scratch_high_water() const;
  std::size_t skipped_resets() const;

 private:
  std::deque<WorkerArenas> lanes_;  // deque: lane addresses never move
  NetworkStorage network_;
};

}  // namespace dr::sim
