#include "sim/pool.h"

#include "util/contracts.h"

namespace dr::sim {

PhasePool::PhasePool(std::size_t workers) {
  DR_EXPECTS(workers >= 1);
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

PhasePool::~PhasePool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void PhasePool::run(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  active_ = threads_.size();
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return active_ == 0; });
  fn_ = nullptr;
}

void PhasePool::worker_main(std::size_t worker) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* fn = fn_;
    const std::size_t count = count_;
    lock.unlock();
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*fn)(worker, i);
    }
    lock.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

}  // namespace dr::sim
