#include "sim/network.h"

#include <algorithm>

#include "sim/delivery.h"
#include "util/contracts.h"

namespace dr::sim {

Network::Network(std::size_t n, bool record_history)
    : record_history_(record_history), inboxes_(n), in_flight_(n) {}

void Network::submit(ProcId from, ProcId to, PhaseNum phase, Bytes payload,
                     bool sender_correct, std::size_t signatures,
                     Metrics& metrics) {
  DR_EXPECTS(from < n() && to < n());
  route_submission(metrics, faults_, /*fault_mu=*/nullptr,
                   record_history_ ? &history_ : nullptr, from, to, phase,
                   std::move(payload), sender_correct, signatures,
                   [&](Bytes delivered) {
                     in_flight_[to].push_back(
                         Envelope{from, to, phase, std::move(delivered)});
                   });
}

void Network::deliver_next_phase() {
  for (std::size_t p = 0; p < inboxes_.size(); ++p) {
    inboxes_[p] = std::move(in_flight_[p]);
    in_flight_[p].clear();
    // Deterministic delivery order: by sender, then submission order.
    std::stable_sort(inboxes_[p].begin(), inboxes_[p].end(),
                     [](const Envelope& a, const Envelope& b) {
                       return a.from < b.from;
                     });
  }
}

}  // namespace dr::sim
