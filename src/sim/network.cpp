#include "sim/network.h"

#include <utility>

#include "sim/delivery.h"
#include "util/contracts.h"

namespace dr::sim {

Network::Network(std::size_t n, bool record_history)
    : record_history_(record_history), inboxes_(n), outbox_(n) {}

void Network::submit(ProcId from, ProcId to, PhaseNum phase, Payload payload,
                     bool sender_correct, std::size_t signatures,
                     Metrics& metrics) {
  DR_EXPECTS(from < n() && to < n());
  route_submission(metrics, faults_, faults_ != nullptr ? &fault_mu_ : nullptr,
                   from, to, phase, std::move(payload), sender_correct,
                   signatures, [&](Payload delivered) {
                     outbox_[from].push_back(
                         Envelope{from, to, phase, std::move(delivered)});
                   });
}

void Network::submit_fanout(ProcId from, PhaseNum phase,
                            const Payload& payload, bool sender_correct,
                            std::size_t signatures, Metrics& metrics) {
  for (ProcId to = 0; to < n(); ++to) {
    if (to == from) continue;
    submit(from, to, phase, payload, sender_correct, signatures, metrics);
  }
}

void Network::deliver_next_phase() {
  for (std::vector<Envelope>& inbox : inboxes_) inbox.clear();
  // Sender-major merge: shard s is in submission order, so visiting shards
  // in sender order yields, at every receiver, "by sender, then submission
  // order" — the exact delivery order the per-phase stable_sort used to
  // produce, with no comparisons and no extra allocation.
  for (std::vector<Envelope>& shard : outbox_) {
    for (Envelope& e : shard) {
      if (record_history_) {
        history_.record(e.sent_phase, hist::Edge{e.from, e.to, e.payload});
      }
      inboxes_[e.to].push_back(std::move(e));
    }
    shard.clear();
  }
}

void Network::record_pending_history() {
  if (!record_history_) return;
  for (const std::vector<Envelope>& shard : outbox_) {
    for (const Envelope& e : shard) {
      history_.record(e.sent_phase, hist::Edge{e.from, e.to, e.payload});
    }
  }
}

}  // namespace dr::sim
