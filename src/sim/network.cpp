#include "sim/network.h"

#include <utility>

#include "sim/delivery.h"
#include "util/contracts.h"

namespace dr::sim {

Network::Network(std::size_t n, bool record_history, NetworkStorage* storage)
    : record_history_(record_history),
      store_(storage != nullptr ? storage : &own_) {
  store_->inboxes.resize(n);
  store_->outbox.resize(n);
  for (std::vector<Envelope>& inbox : store_->inboxes) inbox.clear();
  for (std::vector<Envelope>& shard : store_->outbox) shard.clear();
}

Network::~Network() {
  if (store_ == &own_) return;
  // Hand borrowed storage back without live payload handles (they would
  // pin the payload arenas) but with vector capacity intact.
  for (std::vector<Envelope>& inbox : store_->inboxes) inbox.clear();
  for (std::vector<Envelope>& shard : store_->outbox) shard.clear();
}

void Network::submit(ProcId from, ProcId to, PhaseNum phase, Payload payload,
                     bool sender_correct, std::size_t signatures,
                     Metrics& metrics) {
  DR_EXPECTS(from < n() && to < n());
  route_submission(metrics, faults_, faults_ != nullptr ? &fault_mu_ : nullptr,
                   from, to, phase, std::move(payload), sender_correct,
                   signatures, [&](Payload delivered) {
                     store_->outbox[from].push_back(
                         Envelope{from, to, phase, std::move(delivered)});
                   });
}

void Network::submit_fanout(ProcId from, PhaseNum phase,
                            const Payload& payload, bool sender_correct,
                            std::size_t signatures, Metrics& metrics) {
  for (ProcId to = 0; to < n(); ++to) {
    if (to == from) continue;
    submit(from, to, phase, payload, sender_correct, signatures, metrics);
  }
}

void Network::deliver_next_phase() {
  for (std::vector<Envelope>& inbox : store_->inboxes) inbox.clear();
  // Sender-major merge: shard s is in submission order, so visiting shards
  // in sender order yields, at every receiver, "by sender, then submission
  // order" — the exact delivery order the per-phase stable_sort used to
  // produce, with no comparisons and no extra allocation.
  for (std::vector<Envelope>& shard : store_->outbox) {
    for (Envelope& e : shard) {
      if (record_history_) {
        history_.record(e.sent_phase, hist::Edge{e.from, e.to, e.payload});
      }
      store_->inboxes[e.to].push_back(std::move(e));
    }
    shard.clear();
  }
}

void Network::record_pending_history() {
  if (!record_history_) return;
  for (const std::vector<Envelope>& shard : store_->outbox) {
    for (const Envelope& e : shard) {
      history_.record(e.sent_phase, hist::Edge{e.from, e.to, e.payload});
    }
  }
}

}  // namespace dr::sim
