#include "sim/delivery.h"

#include <utility>
#include <vector>

namespace dr::sim {

void route_submission(Metrics& metrics, FaultPlan* faults,
                      std::mutex* fault_mu, hist::History* history,
                      ProcId from, ProcId to, PhaseNum phase, Bytes payload,
                      bool sender_correct, std::size_t signatures,
                      const std::function<void(Bytes)>& deliver) {
  metrics.on_send(from, to, phase, sender_correct, signatures,
                  payload.size());
  if (faults == nullptr) {
    if (history != nullptr) {
      history->record(phase, hist::Edge{from, to, payload});
    }
    deliver(std::move(payload));
    return;
  }
  std::vector<Bytes> surviving;
  {
    std::unique_lock<std::mutex> lock;
    if (fault_mu != nullptr) lock = std::unique_lock<std::mutex>(*fault_mu);
    surviving = faults->apply(from, to, phase, std::move(payload));
  }
  for (Bytes& delivered : surviving) {
    if (history != nullptr) {
      history->record(phase, hist::Edge{from, to, delivered});
    }
    deliver(std::move(delivered));
  }
}

}  // namespace dr::sim
