#include "sim/delivery.h"

#include <utility>
#include <vector>

namespace dr::sim {

void route_submission(Metrics& metrics, FaultPlan* faults,
                      std::mutex* fault_mu, ProcId from, ProcId to,
                      PhaseNum phase, Payload payload, bool sender_correct,
                      std::size_t signatures,
                      const std::function<void(Payload)>& deliver) {
  metrics.on_send(from, to, phase, sender_correct, signatures,
                  payload.size());
  if (faults == nullptr) {
    deliver(std::move(payload));
    return;
  }
  std::vector<Payload> surviving;
  {
    std::unique_lock<std::mutex> lock;
    if (fault_mu != nullptr) lock = std::unique_lock<std::mutex>(*fault_mu);
    surviving = faults->apply(from, to, phase, std::move(payload));
  }
  for (Payload& delivered : surviving) {
    deliver(std::move(delivered));
  }
}

}  // namespace dr::sim
