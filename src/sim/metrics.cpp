#include "sim/metrics.h"

#include "codec/codec.h"
#include "util/contracts.h"

namespace dr::sim {

namespace {
void encode_counts(Writer& w, const std::vector<std::size_t>& v) {
  w.seq(v.size());
  for (const std::size_t x : v) w.u64(x);
}

void encode_counts64(Writer& w, const std::vector<std::uint64_t>& v) {
  w.seq(v.size());
  for (const std::uint64_t x : v) w.u64(x);
}

std::vector<std::uint64_t> decode_counts64(Reader& r) {
  const std::size_t len = r.seq();
  std::vector<std::uint64_t> out;
  if (!r.ok()) return out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(r.u64());
  return out;
}

std::vector<std::size_t> decode_counts(Reader& r) {
  const std::size_t len = r.seq();  // seq() bounds len by remaining bytes
  std::vector<std::size_t> out;
  if (!r.ok()) return out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<std::size_t>(r.u64()));
  }
  return out;
}
}  // namespace

Metrics::Metrics(std::size_t n)
    : sent_by_(n, 0), received_from_correct_(n, 0),
      signatures_exchanged_(n, 0) {}

void Metrics::on_send(ProcId from, ProcId to, PhaseNum phase,
                      bool sender_correct, std::size_t signatures,
                      std::size_t payload_bytes) {
  DR_EXPECTS(from < sent_by_.size() && to < sent_by_.size());
  ++messages_total_;
  if (phase > last_active_phase_) last_active_phase_ = phase;
  ++sent_by_[from];
  if (!sender_correct) return;
  ++messages_by_correct_;
  bytes_by_correct_ += payload_bytes;
  if (payload_bytes > max_payload_by_correct_) {
    max_payload_by_correct_ = payload_bytes;
  }
  if (per_phase_.size() < phase) per_phase_.resize(phase, 0);
  ++per_phase_[phase - 1];
  signatures_by_correct_ += signatures;
  ++received_from_correct_[to];
  signatures_exchanged_[from] += signatures;
  signatures_exchanged_[to] += signatures;
}

void Metrics::on_frame(bool sender_correct, std::size_t frame_bytes) {
  ++frames_sent_;
  if (sender_correct) wire_bytes_by_correct_ += frame_bytes;
}

void Metrics::on_net_health(std::size_t disconnects,
                            std::size_t reconnect_attempts,
                            std::size_t send_retries,
                            std::size_t endpoints_degraded) {
  net_disconnects_ += disconnects;
  net_reconnect_attempts_ += reconnect_attempts;
  net_send_retries_ += send_retries;
  net_endpoints_degraded_ += endpoints_degraded;
}

void Metrics::on_chain_cache(std::size_t hits, std::size_t misses) {
  chain_cache_hits_ += hits;
  chain_cache_misses_ += misses;
}

void Metrics::on_verify_stripes(const std::vector<std::uint64_t>& hits,
                                const std::vector<std::uint64_t>& misses) {
  if (verify_stripe_hits_.size() < hits.size()) {
    verify_stripe_hits_.resize(hits.size(), 0);
  }
  if (verify_stripe_misses_.size() < misses.size()) {
    verify_stripe_misses_.resize(misses.size(), 0);
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    verify_stripe_hits_[i] += hits[i];
  }
  for (std::size_t i = 0; i < misses.size(); ++i) {
    verify_stripe_misses_[i] += misses[i];
  }
}

void Metrics::merge(const Metrics& other) {
  DR_EXPECTS(other.n() == n());
  messages_by_correct_ += other.messages_by_correct_;
  signatures_by_correct_ += other.signatures_by_correct_;
  messages_total_ += other.messages_total_;
  bytes_by_correct_ += other.bytes_by_correct_;
  frames_sent_ += other.frames_sent_;
  wire_bytes_by_correct_ += other.wire_bytes_by_correct_;
  net_disconnects_ += other.net_disconnects_;
  net_reconnect_attempts_ += other.net_reconnect_attempts_;
  net_send_retries_ += other.net_send_retries_;
  net_endpoints_degraded_ += other.net_endpoints_degraded_;
  chain_cache_hits_ += other.chain_cache_hits_;
  chain_cache_misses_ += other.chain_cache_misses_;
  on_verify_stripes(other.verify_stripe_hits_, other.verify_stripe_misses_);
  if (other.max_payload_by_correct_ > max_payload_by_correct_) {
    max_payload_by_correct_ = other.max_payload_by_correct_;
  }
  if (other.last_active_phase_ > last_active_phase_) {
    last_active_phase_ = other.last_active_phase_;
  }
  if (per_phase_.size() < other.per_phase_.size()) {
    per_phase_.resize(other.per_phase_.size(), 0);
  }
  for (std::size_t k = 0; k < other.per_phase_.size(); ++k) {
    per_phase_[k] += other.per_phase_[k];
  }
  for (std::size_t p = 0; p < sent_by_.size(); ++p) {
    sent_by_[p] += other.sent_by_[p];
    received_from_correct_[p] += other.received_from_correct_[p];
    signatures_exchanged_[p] += other.signatures_exchanged_[p];
  }
}

void Metrics::encode(Writer& w) const {
  w.u64(messages_by_correct_);
  w.u64(signatures_by_correct_);
  w.u64(messages_total_);
  w.u64(bytes_by_correct_);
  w.u64(max_payload_by_correct_);
  w.u64(frames_sent_);
  w.u64(wire_bytes_by_correct_);
  w.u64(net_disconnects_);
  w.u64(net_reconnect_attempts_);
  w.u64(net_send_retries_);
  w.u64(net_endpoints_degraded_);
  w.u64(chain_cache_hits_);
  w.u64(chain_cache_misses_);
  w.u32(last_active_phase_);
  encode_counts(w, per_phase_);
  encode_counts(w, sent_by_);
  encode_counts(w, received_from_correct_);
  encode_counts(w, signatures_exchanged_);
  encode_counts64(w, verify_stripe_hits_);
  encode_counts64(w, verify_stripe_misses_);
}

std::optional<Metrics> Metrics::decode(Reader& r) {
  Metrics m;
  m.messages_by_correct_ = static_cast<std::size_t>(r.u64());
  m.signatures_by_correct_ = static_cast<std::size_t>(r.u64());
  m.messages_total_ = static_cast<std::size_t>(r.u64());
  m.bytes_by_correct_ = static_cast<std::size_t>(r.u64());
  m.max_payload_by_correct_ = static_cast<std::size_t>(r.u64());
  m.frames_sent_ = static_cast<std::size_t>(r.u64());
  m.wire_bytes_by_correct_ = static_cast<std::size_t>(r.u64());
  m.net_disconnects_ = static_cast<std::size_t>(r.u64());
  m.net_reconnect_attempts_ = static_cast<std::size_t>(r.u64());
  m.net_send_retries_ = static_cast<std::size_t>(r.u64());
  m.net_endpoints_degraded_ = static_cast<std::size_t>(r.u64());
  m.chain_cache_hits_ = static_cast<std::size_t>(r.u64());
  m.chain_cache_misses_ = static_cast<std::size_t>(r.u64());
  m.last_active_phase_ = r.u32();
  m.per_phase_ = decode_counts(r);
  m.sent_by_ = decode_counts(r);
  m.received_from_correct_ = decode_counts(r);
  m.signatures_exchanged_ = decode_counts(r);
  m.verify_stripe_hits_ = decode_counts64(r);
  m.verify_stripe_misses_ = decode_counts64(r);
  // The three per-processor arrays are constructed in lock-step everywhere
  // else (one slot per processor); enforce that shape on untrusted input.
  if (!r.ok() || m.sent_by_.size() != m.received_from_correct_.size() ||
      m.sent_by_.size() != m.signatures_exchanged_.size()) {
    return std::nullopt;
  }
  return m;
}

}  // namespace dr::sim
