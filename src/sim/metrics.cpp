#include "sim/metrics.h"

#include "util/contracts.h"

namespace dr::sim {

Metrics::Metrics(std::size_t n)
    : sent_by_(n, 0), received_from_correct_(n, 0),
      signatures_exchanged_(n, 0) {}

void Metrics::on_send(ProcId from, ProcId to, PhaseNum phase,
                      bool sender_correct, std::size_t signatures,
                      std::size_t payload_bytes) {
  DR_EXPECTS(from < sent_by_.size() && to < sent_by_.size());
  ++messages_total_;
  if (phase > last_active_phase_) last_active_phase_ = phase;
  ++sent_by_[from];
  if (!sender_correct) return;
  ++messages_by_correct_;
  bytes_by_correct_ += payload_bytes;
  if (payload_bytes > max_payload_by_correct_) {
    max_payload_by_correct_ = payload_bytes;
  }
  if (per_phase_.size() < phase) per_phase_.resize(phase, 0);
  ++per_phase_[phase - 1];
  signatures_by_correct_ += signatures;
  ++received_from_correct_[to];
  signatures_exchanged_[from] += signatures;
  signatures_exchanged_[to] += signatures;
}

}  // namespace dr::sim
