// Immutable, ref-counted payload handle — the unit the delivery plane moves.
//
// A broadcast used to copy its bytes once per recipient; a Payload is a
// shared handle over one immutable byte buffer, so fan-out to n-1 receivers,
// history recording, rushing observation and adversary buffering are all
// pointer copies. The buffer is never mutated after construction: the only
// writer is FaultPlan::apply, which performs an explicit copy-on-write via
// to_bytes() when (and only when) a corrupt rule actually fires.
//
// Header-only on purpose: hist (a layer below sim) stores Payloads as edge
// labels and must not link against the sim library.
//
// Comparisons are by content, not by handle, so histories, replay traces
// and tests behave exactly as they did with plain Bytes. `allocations()`
// counts every distinct buffer ever wrapped (relaxed atomic; reset from
// tests) — the zero-copy test asserts a size-n broadcast costs O(1) of
// these.
#pragma once

#include <atomic>
#include <compare>
#include <cstddef>
#include <memory>
#include <ostream>
#include <utility>

#include "util/bytes.h"

namespace dr::sim {

class Payload {
 public:
  Payload() = default;

  /// Wraps `bytes` in a fresh shared buffer (the one allocation a logical
  /// message ever costs). Implicit so existing `ctx.send(to, encode(...))`
  /// call sites keep working unchanged. Empty payloads share no buffer.
  Payload(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<const Bytes>(std::move(bytes))) {
    if (data_ != nullptr) {
      allocations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const Bytes& bytes() const {
    return data_ != nullptr ? *data_ : empty_bytes();
  }
  /// Implicit view of the underlying buffer, so decoders, hashers and
  /// printers written against Bytes/ByteView accept a Payload directly.
  operator const Bytes&() const { return bytes(); }  // NOLINT
  operator ByteView() const { return bytes(); }      // NOLINT
  ByteView view() const { return bytes(); }

  std::size_t size() const { return data_ != nullptr ? data_->size() : 0; }
  bool empty() const { return size() == 0; }

  /// Explicit deep copy — the copy-on-write entry point for mutation.
  Bytes to_bytes() const { return bytes(); }

  /// Handle identity (not content): true when both share one buffer. The
  /// zero-copy tests use this to prove a fan-out didn't duplicate bytes.
  bool shares_buffer_with(const Payload& other) const {
    return data_ == other.data_;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.data_ == b.data_ || a.bytes() == b.bytes();
  }
  friend std::strong_ordering operator<=>(const Payload& a,
                                          const Payload& b) {
    return a.bytes() <=> b.bytes();
  }

  friend std::ostream& operator<<(std::ostream& os, const Payload& p) {
    return os << "payload<" << to_hex(p.bytes()) << ">";
  }

  /// Distinct buffers allocated since the last reset (process-wide).
  static std::size_t allocations() {
    return allocations_.load(std::memory_order_relaxed);
  }
  static void reset_allocation_count() {
    allocations_.store(0, std::memory_order_relaxed);
  }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  inline static std::atomic<std::size_t> allocations_{0};

  std::shared_ptr<const Bytes> data_;
};

}  // namespace dr::sim
