// Immutable, ref-counted payload handle — the unit the delivery plane moves.
//
// A broadcast used to copy its bytes once per recipient; a Payload is a
// shared handle over one immutable byte buffer, so fan-out to n-1 receivers,
// history recording, rushing observation and adversary buffering are all
// handle copies. The buffer is never mutated after construction: the only
// writer is FaultPlan::apply, which performs an explicit copy-on-write via
// to_bytes() when (and only when) a corrupt rule actually fires.
//
// Storage classes (chosen automatically per message):
//
//  * empty    — no storage at all;
//  * inline   — payloads up to kInlineCapacity bytes live directly in the
//               handle. The common short-chain case (a value plus a few
//               signatures) never touches an allocator: copying the handle
//               copies the bytes, which at this size is cheaper than an
//               atomic refcount round trip;
//  * shared   — larger payloads get one flat ref-counted buffer (header and
//               bytes in a single allocation). The buffer comes from the
//               heap, or from the thread's bound PayloadArena when a
//               PayloadArenaScope is active — the runner binds one per
//               worker lane so steady-state runs allocate nothing.
//
// Header-only on purpose: hist (a layer below sim) stores Payloads as edge
// labels and must not link against the sim library.
//
// Comparisons are by content, not by handle, so histories, replay traces
// and tests behave exactly as they did with plain Bytes. `allocations()`
// counts every distinct *shared* buffer ever created (relaxed atomic; reset
// from tests) — the zero-copy test asserts a size-n broadcast costs O(1) of
// these; inline payloads never count because they never allocate.
#pragma once

#include <algorithm>
#include <atomic>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <ostream>
#include <utility>

#include "util/arena.h"
#include "util/bytes.h"
#include "util/contracts.h"

namespace dr::sim {

/// Run-scoped source of shared payload buffers. Wraps an Arena with a live
/// handle count so reuse is safe: reset() recycles the blocks only when no
/// handle still points into them, and otherwise declines (counted in
/// skipped_resets) rather than invalidating live memory. The arena must
/// outlive every Payload allocated from it — the destructor enforces this.
///
/// Thread discipline matches Arena: allocation happens only on the thread
/// the arena is bound to (via PayloadArenaScope), but handles may be copied
/// and destroyed on any thread; the live count is atomic for that reason.
class PayloadArena {
 public:
  explicit PayloadArena(std::size_t block_size = Arena::kDefaultBlockSize)
      : arena_(block_size) {}

  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  ~PayloadArena() { DR_EXPECTS(live() == 0); }

  /// Recycles the arena blocks if no live handle remains; returns whether
  /// it did. A skipped reset is safe (the arena just keeps its current
  /// cursor) and visible through skipped_resets().
  bool reset() {
    if (live_.load(std::memory_order_acquire) != 0) {
      ++skipped_resets_;
      return false;
    }
    arena_.reset();
    return true;
  }

  /// Ensures a block exists so the first buffer carved after this cannot
  /// hit the heap (see Arena::prewarm).
  void prewarm() { arena_.prewarm(); }

  /// Payload handles currently backed by this arena.
  std::size_t live() const { return live_.load(std::memory_order_acquire); }
  std::size_t bytes_reserved() const { return arena_.bytes_reserved(); }
  std::size_t high_water() const { return arena_.high_water(); }
  std::size_t cycles() const { return arena_.cycles(); }
  std::size_t skipped_resets() const { return skipped_resets_; }

 private:
  friend class Payload;

  void* allocate(std::size_t size, std::size_t align) {
    live_.fetch_add(1, std::memory_order_relaxed);
    return arena_.allocate(size, align);
  }
  void release_one() { live_.fetch_sub(1, std::memory_order_acq_rel); }

  Arena arena_;
  std::atomic<std::size_t> live_{0};
  std::size_t skipped_resets_ = 0;
};

class Payload {
 public:
  /// Largest payload stored inline in the handle itself. Sized so the
  /// handle fills one cache line (64 bytes with the discriminator), which
  /// covers a signed value with a short signature chain — the dominant
  /// message shape in the authenticated protocols.
  static constexpr std::size_t kInlineCapacity = 56;

  Payload() = default;

  /// Wraps `bytes` (the one buffer creation a logical message ever costs)
  /// and recycles the argument's capacity into the thread's scratch pool.
  /// Implicit so existing `ctx.send(to, encode(...))` call sites keep
  /// working unchanged. Empty payloads own no storage.
  Payload(Bytes bytes) {  // NOLINT(google-explicit-constructor)
    assign(ByteView{bytes});
    recycle_scratch(std::move(bytes));
  }

  Payload(const Payload& other) : size_(other.size_) {
    if (size_ == kSharedTag) {
      shared_ = other.shared_;
      shared_->refs.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::memcpy(inline_, other.inline_, size_);
    }
  }

  Payload(Payload&& other) noexcept : size_(other.size_) {
    if (size_ == kSharedTag) {
      shared_ = other.shared_;
      other.size_ = 0;
    } else {
      std::memcpy(inline_, other.inline_, size_);
    }
  }

  Payload& operator=(const Payload& other) {
    if (this != &other) {
      Payload copy(other);
      *this = std::move(copy);
    }
    return *this;
  }

  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      size_ = other.size_;
      if (size_ == kSharedTag) {
        shared_ = other.shared_;
        other.size_ = 0;
      } else {
        std::memcpy(inline_, other.inline_, size_);
      }
    }
    return *this;
  }

  ~Payload() { release(); }

  /// Implicit view of the underlying bytes, so decoders, hashers and
  /// printers written against ByteView accept a Payload directly. Valid
  /// while this handle (or, for shared storage, any handle) lives.
  operator ByteView() const { return view(); }  // NOLINT
  ByteView view() const {
    if (size_ == kSharedTag) return {shared_->data(), shared_->size};
    return {inline_, size_};
  }

  std::size_t size() const {
    return size_ == kSharedTag ? shared_->size : size_;
  }
  bool empty() const { return size() == 0; }

  /// Explicit deep copy — the copy-on-write entry point for mutation.
  /// Reuses recycled vector capacity when the thread has some.
  Bytes to_bytes() const {
    Bytes out = acquire_scratch();
    const ByteView v = view();
    out.assign(v.begin(), v.end());
    return out;
  }

  /// Buffer identity (not content): true when both handles point at one
  /// shared buffer. The zero-copy tests use this to prove a fan-out didn't
  /// duplicate bytes. Inline payloads have no buffer to share, so this is
  /// false for them even when the contents match — use == for content.
  bool shares_buffer_with(const Payload& other) const {
    return size_ == kSharedTag && other.size_ == kSharedTag &&
           shared_ == other.shared_;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    if (a.shares_buffer_with(b)) return true;
    const ByteView av = a.view();
    const ByteView bv = b.view();
    return av.size() == bv.size() &&
           (av.empty() ||
            std::memcmp(av.data(), bv.data(), av.size()) == 0);
  }
  friend std::strong_ordering operator<=>(const Payload& a,
                                          const Payload& b) {
    const ByteView av = a.view();
    const ByteView bv = b.view();
    return std::lexicographical_compare_three_way(av.begin(), av.end(),
                                                  bv.begin(), bv.end());
  }

  friend std::ostream& operator<<(std::ostream& os, const Payload& p) {
    return os << "payload<" << to_hex(p.view()) << ">";
  }

  /// Distinct shared buffers created since the last reset (process-wide).
  static std::size_t allocations() {
    return allocations_.load(std::memory_order_relaxed);
  }
  static void reset_allocation_count() {
    allocations_.store(0, std::memory_order_relaxed);
  }

  /// The PayloadArena new shared buffers on this thread are carved from
  /// (null = heap). Bound via PayloadArenaScope.
  static PayloadArena* bound_arena() { return t_arena_; }

 private:
  friend class PayloadArenaScope;

  /// Header of a shared buffer; the payload bytes follow contiguously in
  /// the same allocation (one malloc or one arena bump per buffer).
  struct Buf {
    std::atomic<std::uint32_t> refs;
    PayloadArena* owner;  // null = heap-backed
    std::size_t size;

    std::uint8_t* data() {
      return reinterpret_cast<std::uint8_t*>(this) + sizeof(Buf);
    }
    const std::uint8_t* data() const {
      return reinterpret_cast<const std::uint8_t*>(this) + sizeof(Buf);
    }

    static Buf* make(ByteView src, PayloadArena* arena) {
      void* raw = arena != nullptr
                      ? arena->allocate(sizeof(Buf) + src.size(),
                                        alignof(Buf))
                      : ::operator new(sizeof(Buf) + src.size());
      Buf* buf = new (raw) Buf{std::uint32_t{1}, arena, src.size()};
      std::memcpy(buf->data(), src.data(), src.size());
      return buf;
    }
  };

  static constexpr std::uint32_t kSharedTag = 0xffffffff;

  void assign(ByteView src) {
    if (src.size() <= kInlineCapacity) {
      if (!src.empty()) std::memcpy(inline_, src.data(), src.size());
      size_ = static_cast<std::uint32_t>(src.size());
      return;
    }
    shared_ = Buf::make(src, t_arena_);
    size_ = kSharedTag;
    allocations_.fetch_add(1, std::memory_order_relaxed);
  }

  void release() {
    if (size_ != kSharedTag) return;
    if (shared_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      PayloadArena* owner = shared_->owner;
      if (owner == nullptr) {
        ::operator delete(shared_);
      } else {
        owner->release_one();  // bytes reclaimed at the arena's next reset
      }
    }
    size_ = 0;
  }

  inline static std::atomic<std::size_t> allocations_{0};
  inline static thread_local PayloadArena* t_arena_ = nullptr;

  union {
    Buf* shared_;
    std::uint8_t inline_[kInlineCapacity];
  };
  std::uint32_t size_ = 0;  // kSharedTag => shared_, else inline length
};

static_assert(sizeof(Payload) == 64, "Payload should fill one cache line");

/// Binds `arena` as the calling thread's source of shared payload buffers
/// for the scope's lifetime (restores the previous binding on exit, so
/// scopes nest). Pass null to force heap buffers within a bound region.
class PayloadArenaScope {
 public:
  explicit PayloadArenaScope(PayloadArena* arena)
      : prev_(Payload::t_arena_) {
    Payload::t_arena_ = arena;
  }
  PayloadArenaScope(const PayloadArenaScope&) = delete;
  PayloadArenaScope& operator=(const PayloadArenaScope&) = delete;
  ~PayloadArenaScope() { Payload::t_arena_ = prev_; }

 private:
  PayloadArena* prev_;
};

}  // namespace dr::sim
