// The process interface every protocol participant (correct or Byzantine)
// implements, and the per-phase context through which it interacts with the
// synchronous network.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "crypto/signature.h"
#include "sim/envelope.h"
#include "util/arena.h"

namespace dr::crypto {
class VerifyCache;
}  // namespace dr::crypto

namespace dr::sim {

/// Per-phase view handed to a process. Messages sent during phase k are
/// delivered at the beginning of phase k+1 — exactly the paper's model in
/// which a processor entering phase k has only its individual subhistory of
/// the first k-1 phases to work with.
class Context {
 public:
  Context(ProcId self, PhaseNum phase, std::size_t n, std::size_t t,
          const std::vector<Envelope>* inbox, const crypto::Signer* signer,
          const crypto::Verifier* verifier,
          crypto::VerifyCache* chain_cache = nullptr,
          Arena* scratch = nullptr);

  ProcId self() const { return self_; }
  PhaseNum phase() const { return phase_; }
  std::size_t n() const { return n_; }
  std::size_t t() const { return t_; }

  /// Messages delivered this phase (sent in the previous phase).
  const std::vector<Envelope>& inbox() const { return *inbox_; }

  /// Queues `payload` for delivery to `to` at the next phase.
  /// `signatures` is the number of signatures the payload carries; it feeds
  /// the signature accounting of Theorem 1 and must be accurate for correct
  /// processes (it is irrelevant for faulty senders — the paper only counts
  /// information sent by correct processors).
  void send(ProcId to, Payload payload, std::size_t signatures = 0);

  /// Queues `payload` for delivery to every processor except this one — a
  /// full broadcast expressed as ONE outgoing entry holding one shared
  /// buffer. The runner expands it through Network::submit_fanout, so the
  /// per-link fault routing and per-message accounting are identical to
  /// n-1 individual send() calls to 0..n-1 (self skipped) in order.
  void send_all(Payload payload, std::size_t signatures = 0);

  /// Signing capability of this process (a coalition Signer for faulty
  /// processes) and the public verifier.
  const crypto::Signer& signer() const { return *signer_; }
  const crypto::Verifier& verifier() const { return *verifier_; }

  /// This process's signature-verification memo, persisted across phases
  /// by the runner (may be null, e.g. in replay harnesses). Pass it to
  /// verify_chain/is_valid_message so chains whose prefixes verified in an
  /// earlier phase skip redundant signature checks; soundness argument in
  /// crypto/verify_cache.h.
  crypto::VerifyCache* chain_cache() const { return chain_cache_; }

  /// Phase-scoped scratch arena for this lane (null when the runner didn't
  /// provide one). Reset at every phase boundary; use it for per-phase
  /// working sets only — anything that must survive the phase belongs on
  /// the heap. ba::prewarm_inbox builds its verification batch here.
  Arena* scratch_arena() const { return scratch_; }

  /// One-shot latch for ba::prewarm_inbox: true exactly once per Context
  /// (i.e. once per phase). Nested protocols share one Context — Algorithm 5
  /// drives an inner Algorithm 2 with the same ctx — so the outermost
  /// prewarm call wins and the inbox is batch-verified exactly once.
  bool claim_prewarm() { return !std::exchange(prewarmed_, true); }

  struct Outgoing {
    ProcId to = 0;  // meaningless when `broadcast` is set
    Payload payload;
    std::size_t signatures = 0;
    bool broadcast = false;  // fan out to every q != self (send_all)
  };
  /// The outgoing queue grows in the scratch arena when one is bound (its
  /// memory returns at the phase flip), and on the heap otherwise.
  using OutgoingVec = std::vector<Outgoing, ArenaAllocator<Outgoing>>;
  /// Drained by the runner after on_phase returns.
  OutgoingVec& outgoing() { return outgoing_; }

 private:
  ProcId self_;
  PhaseNum phase_;
  std::size_t n_;
  std::size_t t_;
  const std::vector<Envelope>* inbox_;
  const crypto::Signer* signer_;
  const crypto::Verifier* verifier_;
  crypto::VerifyCache* chain_cache_;
  Arena* scratch_;
  bool prewarmed_ = false;
  OutgoingVec outgoing_;
};

/// A participant. One instance per processor per run. The runner calls
/// on_phase once per phase, in increasing phase order, then reads the
/// decision. Implementations must be deterministic functions of the inbox
/// sequence (plus construction parameters); Byzantine implementations may
/// additionally read/write their coalition's shared state.
class Process {
 public:
  virtual ~Process() = default;

  virtual void on_phase(Context& ctx) = 0;

  /// The decided value, if any. The runner queries this after the final
  /// phase. The paper's decision function F_p; nullopt models a non-singleton
  /// decision set (no decision).
  virtual std::optional<Value> decision() const = 0;

  /// Opaque decision-time evidence — a chain the process already holds that
  /// certifies its decision to a third party (sim cannot depend on ba, so
  /// this is the ba::encode_evidence wire image). Queried by the runner
  /// right after decision(); the default is "none". Implementations must
  /// retain chains built during the run rather than sign anything new
  /// (stateful signers — see ba/evidence.h).
  virtual std::optional<Bytes> evidence() const { return std::nullopt; }
};

inline Context::Context(ProcId self, PhaseNum phase, std::size_t n,
                        std::size_t t, const std::vector<Envelope>* inbox,
                        const crypto::Signer* signer,
                        const crypto::Verifier* verifier,
                        crypto::VerifyCache* chain_cache, Arena* scratch)
    : self_(self), phase_(phase), n_(n), t_(t), inbox_(inbox),
      signer_(signer), verifier_(verifier), chain_cache_(chain_cache),
      scratch_(scratch),
      outgoing_(ArenaAllocator<Outgoing>(scratch)) {}

inline void Context::send(ProcId to, Payload payload,
                          std::size_t signatures) {
  outgoing_.push_back(Outgoing{to, std::move(payload), signatures});
}

inline void Context::send_all(Payload payload, std::size_t signatures) {
  outgoing_.push_back(
      Outgoing{0, std::move(payload), signatures, /*broadcast=*/true});
}

}  // namespace dr::sim
