// Orchestrates one synchronous execution: constructs the key registry,
// hands out signing capabilities (pooled for the faulty coalition), steps the
// processes phase by phase, and collects metrics, decisions and (optionally)
// the full history.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "crypto/key_registry.h"
#include "crypto/merkle.h"
#include "crypto/scheme.h"
#include "crypto/wots.h"
#include "crypto/signature.h"
#include "hist/history.h"
#include "sim/arenas.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/process.h"

namespace dr::sim {

/// Which signature scheme backs the run. kHmac is the fast PKI model;
/// kMerkle is the genuine hash-based public-key scheme (small n only, and
/// each processor can produce at most 2^merkle_height signatures).
enum class SchemeKind { kHmac, kMerkle, kWots };

struct RunConfig {
  std::size_t n = 0;
  std::size_t t = 0;
  ProcId transmitter = 0;
  Value value = 0;            // the transmitter's phase-0 input
  std::uint64_t seed = 1;     // master seed (keys, randomized adversaries)
  bool record_history = false;
  SchemeKind scheme = SchemeKind::kHmac;
  std::size_t merkle_height = 6;
  /// Rushing adversary: within each phase, faulty processors observe the
  /// messages correct processors send *in that phase* (to them) before
  /// choosing their own. The paper's lower-bound constructions don't need
  /// this extra power, but the algorithms must tolerate it — in a
  /// synchronous round nothing guarantees the adversary speaks first.
  bool rushing = false;
  /// Worker threads for stepping processes within a phase. Results are
  /// bit-identical to the serial run for every scheme: correct processors
  /// are independent inside a phase (each signs with its own key state) and
  /// commit sends into per-sender network shards merged in sender order;
  /// faulty processors — which share the coalition Signer and blackboard —
  /// are stepped serially afterwards. Rushing mode, whose two passes are
  /// cheap anyway, falls back to serial.
  std::size_t threads = 1;
  /// Transport fault plan (not owned; must outlive the run). When set,
  /// every submitted message passes through it and the plan accumulates
  /// the processors it perturbed — the caller is responsible for charging
  /// those against t. Faults apply at submission time; the rushing
  /// observation channel (faulty processors peeking at this phase's
  /// correct traffic) is not filtered.
  FaultPlan* fault_plan = nullptr;
  /// Reusable allocation state (not owned; must outlive the run AND every
  /// Payload the run hands out). When set, payload buffers come from
  /// per-lane arenas, Context outgoing queues from per-lane scratch arenas
  /// (reset at each phase flip), and the network's envelope vectors from
  /// recycled storage — a warmed-up RunArenas makes the steady-state
  /// message plane allocation-free. Results are bit-identical with or
  /// without arenas: only the allocation source changes, never content.
  /// Payload arenas are not used when record_history is set (history edges
  /// hold payload handles that outlive the run); scratch arenas and
  /// network storage still are. One run at a time per RunArenas.
  RunArenas* arenas = nullptr;
};

/// Heap-allocation accounting for one run (util/alloc_stats.h deltas over
/// the phase loop). Process-wide counters: exact for single-threaded runs;
/// pooled runs' workers belong to the run, so the numbers stay meaningful
/// unless the embedding process allocates concurrently. Deliberately kept
/// out of Metrics so backend parity comparisons stay allocation-blind.
struct AllocReport {
  std::uint64_t total_blocks = 0;   // operator-new calls, phases 1..end
  std::uint64_t total_bytes = 0;
  std::uint64_t steady_blocks = 0;  // phases 2..end (after warm-up)
  std::uint64_t steady_bytes = 0;
  std::uint64_t payload_buffers = 0;  // fresh shared payload buffers
  std::size_t arena_payload_high_water = 0;  // bytes, summed over lanes
  std::size_t arena_scratch_high_water = 0;  // bytes, summed over lanes
};

struct RunResult {
  std::vector<std::optional<Value>> decisions;  // indexed by processor
  /// Decision-time evidence per processor (Process::evidence, a
  /// ba::encode_evidence blob); empty bytes = the process emitted none.
  /// Input to proof::from_evidence.
  std::vector<Bytes> evidence;
  std::vector<bool> faulty;
  Metrics metrics;
  hist::History history;  // empty unless record_history was set
  PhaseNum phases_run = 0;
  AllocReport allocs;
};

/// Agreement verdict per the paper's two conditions.
struct AgreementCheck {
  bool agreement = false;  // (i) all correct processors decided identically
  bool validity = false;   // (ii) if the transmitter is correct, on its value
  std::optional<Value> agreed_value;
};

AgreementCheck check_byzantine_agreement(const RunResult& result,
                                         ProcId transmitter, Value sent);

/// Creates the signature scheme backing a run (shared by sim::Runner and
/// net::NetRunner so both back ends derive identical keys from a seed).
std::unique_ptr<crypto::SignatureScheme> make_signature_scheme(
    SchemeKind kind, std::size_t n, std::uint64_t seed,
    std::size_t merkle_height);

/// The signing capabilities of one run: every correct processor holds its
/// own key; all faulty processors share one coalition Signer (the paper
/// allows faulty processors to collude and pool signatures). Extracted
/// from Runner so the threaded net runner hands out the same capabilities.
class SignerPool {
 public:
  SignerPool(crypto::SignatureScheme* scheme, const std::vector<bool>& faulty);

  /// Signer for processor `p`: its own key, or the coalition signer if
  /// faulty. Valid for the lifetime of the pool.
  const crypto::Signer& signer_for(ProcId p) const;

 private:
  std::vector<std::unique_ptr<crypto::Signer>> own_;
  std::unique_ptr<crypto::Signer> coalition_;
  std::vector<bool> faulty_;
};

class Runner {
 public:
  explicit Runner(const RunConfig& config);

  const RunConfig& config() const { return config_; }
  const crypto::SignatureScheme& scheme() const { return *scheme_; }
  const crypto::Verifier& verifier() const { return verifier_; }

  /// Marks `p` faulty. All faulty processors share one coalition Signer
  /// (the paper allows faulty processors to collude and pool signatures).
  /// Must be called before install()/run().
  void mark_faulty(ProcId p);
  bool is_faulty(ProcId p) const { return faulty_[p]; }
  const std::vector<bool>& faulty() const { return faulty_; }
  std::size_t faulty_count() const;

  /// Signer for processor `p`: its own key, or the coalition signer if
  /// faulty. Valid for the lifetime of the Runner.
  const crypto::Signer& signer_for(ProcId p);

  /// Installs the process implementation for `p`.
  void install(ProcId p, std::unique_ptr<Process> process);

  /// Runs phases 1..`phases` and returns decisions + accounting.
  RunResult run(PhaseNum phases);

 private:
  void build_signers();

  RunConfig config_;
  std::unique_ptr<crypto::SignatureScheme> scheme_;
  crypto::Verifier verifier_;
  std::vector<bool> faulty_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::optional<SignerPool> pool_;
};

}  // namespace dr::sim
