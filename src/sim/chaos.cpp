#include "sim/chaos.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "adversary/strategies.h"
#include "bounds/formulas.h"
#include "hist/export.h"
#include "net/harness.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace dr::chaos {

const char* to_string(ScriptedKind kind) {
  switch (kind) {
    case ScriptedKind::kSilent: return "silent";
    case ScriptedKind::kCrash: return "crash";
    case ScriptedKind::kChaos: return "chaos";
    case ScriptedKind::kDelayedEcho: return "delayed-echo";
    case ScriptedKind::kEquivocate: return "equivocate";
  }
  return "?";
}

bool scripted_kind_from_string(std::string_view name, ScriptedKind& out) {
  if (name == "silent") out = ScriptedKind::kSilent;
  else if (name == "crash") out = ScriptedKind::kCrash;
  else if (name == "chaos") out = ScriptedKind::kChaos;
  else if (name == "delayed-echo") out = ScriptedKind::kDelayedEcho;
  else if (name == "equivocate") out = ScriptedKind::kEquivocate;
  else return false;
  return true;
}

namespace {

/// "alg3[s=4]" -> {"alg3", 4}; names without a parameter get s = 0.
struct ParsedName {
  std::string base;
  std::size_t s = 0;
};

ParsedName parse_name(std::string_view name) {
  ParsedName parsed;
  const std::size_t bracket = name.find('[');
  if (bracket == std::string_view::npos) {
    parsed.base = std::string(name);
    return parsed;
  }
  parsed.base = std::string(name.substr(0, bracket));
  const std::string_view rest = name.substr(bracket);
  if (rest.size() >= 5 && rest.substr(0, 3) == "[s=" && rest.back() == ']') {
    parsed.s = static_cast<std::size_t>(
        std::strtoul(std::string(rest.substr(3, rest.size() - 4)).c_str(),
                     nullptr, 10));
  }
  return parsed;
}

}  // namespace

std::optional<Protocol> resolve_protocol(std::string_view name) {
  if (const Protocol* fixed = ba::find_protocol(name)) return *fixed;
  const ParsedName parsed = parse_name(name);
  if (parsed.s == 0) return std::nullopt;
  if (parsed.base == "alg3") return ba::make_alg3_protocol(parsed.s);
  if (parsed.base == "alg3-mv") return ba::make_alg3_mv_protocol(parsed.s);
  if (parsed.base == "alg5") return ba::make_alg5_protocol(parsed.s);
  if (parsed.base == "alg5-mv") return ba::make_alg5_mv_protocol(parsed.s);
  if (parsed.base == "alg5-ungated") {
    return ba::make_alg5_ungated_protocol(parsed.s);
  }
  return std::nullopt;
}

ba::ScenarioFault to_scenario_fault(const Protocol& protocol,
                                    const ScriptedFault& fault) {
  switch (fault.kind) {
    case ScriptedKind::kSilent:
      return ba::ScenarioFault{fault.id, [](ProcId, const BAConfig&) {
                                 return std::make_unique<
                                     adversary::SilentProcess>();
                               }};
    case ScriptedKind::kCrash:
      // Copy the factory, not the Protocol reference: the returned fault
      // must outlive temporaries like resolve_protocol() results.
      return ba::ScenarioFault{
          fault.id, [make = protocol.make, phase = fault.crash_phase](
                        ProcId p, const BAConfig& c) {
            return std::make_unique<adversary::CrashProcess>(make(p, c),
                                                             phase);
          }};
    case ScriptedKind::kDelayedEcho:
      return ba::ScenarioFault{
          fault.id, [delay = fault.delay](ProcId, const BAConfig&) {
            return std::make_unique<adversary::DelayedEcho>(delay);
          }};
    case ScriptedKind::kEquivocate: {
      return ba::ScenarioFault{
          fault.id, [mask = fault.ones_mask](ProcId, const BAConfig& c) {
            std::set<ProcId> ones;
            for (ProcId p = 0; p < c.n && p < 64; ++p) {
              if ((mask >> p) & 1) ones.insert(p);
            }
            return std::make_unique<adversary::EquivocatingTransmitter>(
                std::move(ones), c.n);
          }};
    }
    case ScriptedKind::kChaos:
      break;
  }
  return ba::ScenarioFault{
      fault.id, [seed = fault.seed, prob = fault.send_prob](
                    ProcId, const BAConfig&) {
        return std::make_unique<adversary::RandomByzantine>(seed, prob);
      }};
}

const char* to_string(Backend backend) {
  return backend == Backend::kSim ? "sim" : "net";
}

bool backend_from_string(std::string_view name, Backend& out) {
  if (name == "sim") out = Backend::kSim;
  else if (name == "net") out = Backend::kNet;
  else return false;
  return true;
}

Outcome execute(const Scenario& scenario, std::optional<Backend> backend) {
  const Backend resolved = backend.value_or(scenario.backend);
  const std::optional<Protocol> protocol = resolve_protocol(scenario.protocol);
  DR_EXPECTS(protocol.has_value());
  DR_EXPECTS(protocol->supports(scenario.config));
  DR_EXPECTS(scenario.scripted.size() <= scenario.config.t);
  // Churn severs real sockets — only the net runtime has any.
  DR_EXPECTS(scenario.churn.empty() || resolved == Backend::kNet);

  sim::FaultPlan plan(scenario.rules, scenario.plan_seed);
  std::vector<ba::ScenarioFault> faults;
  faults.reserve(scenario.scripted.size());
  for (const ScriptedFault& fault : scenario.scripted) {
    faults.push_back(to_scenario_fault(*protocol, fault));
  }

  Outcome outcome;
  if (resolved == Backend::kNet) {
    net::NetScenarioOptions options;
    options.seed = scenario.seed;
    options.fault_plan = &plan;
    options.churn = scenario.churn;
    if (!scenario.churn.empty()) {
      // A killed or restarted endpoint should cost its reconnect window,
      // not the multi-second phase timeout; and any hang must become a
      // structured watchdog failure rather than a wedged soak.
      options.reconnect_window = std::chrono::milliseconds(250);
      options.run_deadline = std::chrono::seconds(30);
    }
    net::NetRunResult net_result =
        net::run_scenario(*protocol, scenario.config,
                          net::Backend::kInProcess, options, faults);
    outcome.watchdog_fired = net_result.watchdog_fired;
    outcome.result = std::move(net_result.run);
  } else {
    ba::ScenarioOptions options;
    options.seed = scenario.seed;
    options.record_history = true;
    options.fault_plan = &plan;
    outcome.result =
        ba::run_scenario(*protocol, scenario.config, options, faults);
  }
  outcome.scripted_faulty = outcome.result.faulty;
  outcome.effective_faulty = outcome.scripted_faulty;
  for (ProcId p : plan.perturbed()) {
    outcome.effective_faulty[p] = true;
    outcome.perturbed.push_back(p);
  }
  // Churned processors are Byzantine-in-effect whether or not the run
  // visibly degraded: a kill is a crash, a restart loses in-flight input,
  // a hang/slow can push peers past barriers. All are charged against t.
  for (const sim::ChurnRule& rule : scenario.churn) {
    outcome.effective_faulty[rule.id] = true;
  }
  outcome.effective_faulty_count = static_cast<std::size_t>(
      std::count(outcome.effective_faulty.begin(),
                 outcome.effective_faulty.end(), true));
  return outcome;
}

Budgets budgets_for(std::string_view protocol_name, const BAConfig& config) {
  Budgets budgets;
  if (const std::optional<Protocol> protocol =
          resolve_protocol(protocol_name)) {
    // Every protocol here runs its communication phases followed by one
    // processing-only step, so steps - 1 is the paper's phase budget
    // (t+1 for Dolev-Strong, t+2 for Algorithm 1, 3t+3 for Algorithm 2,
    // t+2s+3 for Algorithm 3, ...).
    budgets.phases = protocol->steps(config) - 1;
  }
  const ParsedName parsed = parse_name(protocol_name);
  if (parsed.base == "alg1") {
    budgets.messages =
        static_cast<double>(bounds::alg1_message_upper_bound(config.t));
  } else if (parsed.base == "alg1-mv") {
    // The multi-valued variant relays the first two distinct committed
    // values, doubling Theorem 3's cascade budget.
    budgets.messages =
        2.0 * static_cast<double>(bounds::alg1_message_upper_bound(config.t));
  } else if (parsed.base == "alg2") {
    budgets.messages =
        static_cast<double>(bounds::alg2_message_upper_bound(config.t));
  } else if (parsed.base == "alg3") {
    // The exact integer form: ceil(4tn/s) instead of a truncating or
    // floating-point threshold (see bounds/formulas.h).
    budgets.messages = static_cast<double>(
        bounds::alg3_message_upper_bound_exact(config.n, config.t, parsed.s));
  } else if (parsed.base == "dolev-strong") {
    budgets.messages = static_cast<double>(
        bounds::dolev_strong_broadcast_message_bound(config.n));
  } else if (parsed.base == "dolev-strong-relay") {
    budgets.messages = static_cast<double>(
        bounds::dolev_strong_relay_message_bound(config.n, config.t));
  }
  return budgets;
}

InvariantReport check_invariants(const Scenario& scenario,
                                 const Outcome& outcome,
                                 const std::vector<bool>& faulty,
                                 const Budgets& budgets) {
  DR_EXPECTS(faulty.size() == scenario.config.n);
  InvariantReport report;
  auto fail = [&report](std::string what) {
    report.ok = false;
    report.violations.push_back(std::move(what));
  };

  // (0) liveness: a fired run watchdog means the execution wedged and was
  // aborted — decisions past this point carry no guarantee, so it is a
  // violation in its own right (and usually explains any that follow).
  if (outcome.watchdog_fired) {
    fail("watchdog: run did not complete within the deadline");
  }

  // (i) agreement and (ii) validity among the complement of `faulty`,
  // through the existing paper-level check.
  sim::RunResult probe;
  probe.decisions = outcome.result.decisions;
  probe.faulty = faulty;
  const sim::AgreementCheck check = sim::check_byzantine_agreement(
      probe, scenario.config.transmitter, scenario.config.value);
  if (!check.agreement) {
    fail("agreement: correct processors disagree or failed to decide");
  }
  if (!check.validity) {
    fail("validity: correct transmitter but agreement not on its value");
  }

  // (iii) message budget, summed over the complement's sends. sent_by()
  // counts submissions before the transport mangles them, so it is each
  // processor's true send count even under an active fault plan.
  if (budgets.messages.has_value()) {
    std::size_t sent = 0;
    for (ProcId p = 0; p < scenario.config.n; ++p) {
      if (!faulty[p]) sent += outcome.result.metrics.sent_by(p);
    }
    if (static_cast<double>(sent) > *budgets.messages) {
      std::ostringstream what;
      what << "message budget: correct processors sent " << sent
           << " > bound " << *budgets.messages;
      fail(what.str());
    }
  }

  // (iv) phase budget: the last phase in which a processor from the
  // complement sent anything, read off the recorded history.
  if (budgets.phases.has_value()) {
    const hist::History& history = outcome.result.history;
    PhaseNum last = 0;
    for (PhaseNum k = 1; k <= history.phases(); ++k) {
      for (const hist::Edge& edge : history.phase(k).edges()) {
        if (!faulty[edge.from]) {
          last = k;
          break;
        }
      }
    }
    if (last > *budgets.phases) {
      std::ostringstream what;
      what << "phase budget: correct traffic in phase " << last
           << " > bound " << *budgets.phases;
      fail(what.str());
    }
  }
  return report;
}

namespace {

void append_proc(std::ostringstream& out, const char* key, ProcId value) {
  out << "\"" << key << "\":";
  if (value == sim::kAnyProc) out << "\"*\"";
  else out << value;
}

void append_phase(std::ostringstream& out, const char* key, PhaseNum value) {
  out << "\"" << key << "\":";
  if (value == sim::kAnyPhase) out << "\"*\"";
  else out << value;
}

}  // namespace

std::string to_json(const Scenario& scenario,
                    const std::vector<std::string>& violations) {
  std::ostringstream out;
  out << "{\"protocol\":\"" << hist::json_escape(scenario.protocol) << "\","
      << "\"n\":" << scenario.config.n << ",\"t\":" << scenario.config.t
      << ",\"transmitter\":" << scenario.config.transmitter
      << ",\"value\":" << scenario.config.value
      << ",\"seed\":" << scenario.seed
      << ",\"plan_seed\":" << scenario.plan_seed
      << ",\"backend\":\"" << to_string(scenario.backend) << "\""
      << ",\"scripted\":[";
  for (std::size_t i = 0; i < scenario.scripted.size(); ++i) {
    const ScriptedFault& fault = scenario.scripted[i];
    if (i > 0) out << ",";
    out << "{\"kind\":\"" << to_string(fault.kind)
        << "\",\"id\":" << fault.id;
    if (fault.kind == ScriptedKind::kCrash) {
      out << ",\"phase\":" << fault.crash_phase;
    } else if (fault.kind == ScriptedKind::kChaos) {
      out << ",\"seed\":" << fault.seed << ",\"prob\":" << fault.send_prob;
    } else if (fault.kind == ScriptedKind::kDelayedEcho) {
      out << ",\"delay\":" << fault.delay;
    } else if (fault.kind == ScriptedKind::kEquivocate) {
      out << ",\"ones\":" << fault.ones_mask;
    }
    out << "}";
  }
  out << "],\"rules\":[";
  for (std::size_t i = 0; i < scenario.rules.size(); ++i) {
    const sim::FaultRule& rule = scenario.rules[i];
    if (i > 0) out << ",";
    out << "{\"kind\":\"" << sim::to_string(rule.kind) << "\",";
    append_proc(out, "from", rule.from);
    out << ",";
    append_proc(out, "to", rule.to);
    out << ",";
    append_phase(out, "phase", rule.phase);
    out << "}";
  }
  out << "],\"churn\":[";
  for (std::size_t i = 0; i < scenario.churn.size(); ++i) {
    const sim::ChurnRule& rule = scenario.churn[i];
    if (i > 0) out << ",";
    out << "{\"kind\":\"" << sim::to_string(rule.kind)
        << "\",\"id\":" << rule.id << ",\"phase\":" << rule.phase
        << ",\"ms\":" << rule.millis << "}";
  }
  out << "],\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << hist::json_escape(violations[i]) << "\"";
  }
  out << "]}";
  return out.str();
}

// --- A minimal JSON reader for the reproducer format. -----------------
//
// Supports objects, arrays, strings (\" \\ \/ \n \r \t \uXXXX), numbers
// and the three literals. Integers are kept exactly (64-bit) so seeds
// round-trip; everything the writer above emits parses back losslessly.
namespace {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::uint64_t integer = 0;
  bool is_integer = false;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> value = parse_value();
    skip_ws();
    if (!value.has_value() || pos_ != text_.size()) {
      if (error != nullptr) *error = error_.empty() ? "trailing data" : error_;
      return std::nullopt;
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f' || c == 'n') return parse_literal();
    return parse_number();
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::kObject;
    if (consume('}')) return value;
    while (true) {
      std::optional<JsonValue> key = parse_string();
      if (!key.has_value()) return fail("expected object key");
      if (!consume(':')) return fail("expected ':'");
      std::optional<JsonValue> member = parse_value();
      if (!member.has_value()) return std::nullopt;
      value.object.emplace_back(std::move(key->str), std::move(*member));
      if (consume(',')) continue;
      if (consume('}')) return value;
      return fail("expected ',' or '}'");
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::kArray;
    if (consume(']')) return value;
    while (true) {
      std::optional<JsonValue> element = parse_value();
      if (!element.has_value()) return std::nullopt;
      value.array.push_back(std::move(*element));
      if (consume(',')) continue;
      if (consume(']')) return value;
      return fail("expected ',' or ']'");
    }
  }

  std::optional<JsonValue> parse_string() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    JsonValue value;
    value.kind = JsonValue::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.str.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value.str.push_back('"'); break;
        case '\\': value.str.push_back('\\'); break;
        case '/': value.str.push_back('/'); break;
        case 'n': value.str.push_back('\n'); break;
        case 'r': value.str.push_back('\r'); break;
        case 't': value.str.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // The writer only escapes control characters; anything else is
          // replaced rather than decoded to UTF-8.
          value.str.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  std::optional<JsonValue> parse_literal() {
    JsonValue value;
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      value.kind = JsonValue::kBool;
      value.boolean = true;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      value.kind = JsonValue::kBool;
      return value;
    }
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return value;
    }
    return fail("bad literal");
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    JsonValue value;
    value.kind = JsonValue::kNumber;
    value.number = std::strtod(token.c_str(), nullptr);
    if (integral && token[0] != '-') {
      value.integer = std::strtoull(token.c_str(), nullptr, 10);
      value.is_integer = true;
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Reads a numeric field, or the "*" wildcard mapped to `any`.
bool read_id(const JsonValue& parent, std::string_view key,
             std::uint64_t any, std::uint64_t& out) {
  const JsonValue* value = parent.find(key);
  if (value == nullptr) return false;
  if (value->kind == JsonValue::kString && value->str == "*") {
    out = any;
    return true;
  }
  if (value->kind != JsonValue::kNumber || !value->is_integer) return false;
  out = value->integer;
  return true;
}

bool read_u64(const JsonValue& parent, std::string_view key,
              std::uint64_t& out) {
  const JsonValue* value = parent.find(key);
  if (value == nullptr || value->kind != JsonValue::kNumber ||
      !value->is_integer) {
    return false;
  }
  out = value->integer;
  return true;
}

}  // namespace

std::optional<Scenario> scenario_from_json(
    std::string_view json, std::vector<std::string>* violations,
    std::string* error) {
  auto reject = [error](const char* what) -> std::optional<Scenario> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };

  JsonReader reader(json);
  const std::optional<JsonValue> root = reader.parse(error);
  if (!root.has_value()) return std::nullopt;
  if (root->kind != JsonValue::kObject) return reject("not a JSON object");

  Scenario scenario;
  const JsonValue* protocol = root->find("protocol");
  if (protocol == nullptr || protocol->kind != JsonValue::kString) {
    return reject("missing protocol");
  }
  scenario.protocol = protocol->str;

  std::uint64_t n = 0, t = 0, transmitter = 0, value = 0;
  if (!read_u64(*root, "n", n) || !read_u64(*root, "t", t) ||
      !read_u64(*root, "transmitter", transmitter) ||
      !read_u64(*root, "value", value)) {
    return reject("missing n/t/transmitter/value");
  }
  scenario.config = BAConfig{static_cast<std::size_t>(n),
                             static_cast<std::size_t>(t),
                             static_cast<ProcId>(transmitter), value};
  if (!read_u64(*root, "seed", scenario.seed) ||
      !read_u64(*root, "plan_seed", scenario.plan_seed)) {
    return reject("missing seed/plan_seed");
  }

  // Optional, defaulting to kSim: reproducers written before the field
  // existed ran on the simulator.
  if (const JsonValue* backend = root->find("backend")) {
    if (backend->kind != JsonValue::kString ||
        !backend_from_string(backend->str, scenario.backend)) {
      return reject("bad backend");
    }
  }

  if (const JsonValue* scripted = root->find("scripted")) {
    if (scripted->kind != JsonValue::kArray) return reject("bad scripted");
    for (const JsonValue& entry : scripted->array) {
      const JsonValue* kind = entry.find("kind");
      ScriptedFault fault;
      if (kind == nullptr || kind->kind != JsonValue::kString ||
          !scripted_kind_from_string(kind->str, fault.kind)) {
        return reject("bad scripted kind");
      }
      std::uint64_t id = 0;
      if (!read_u64(entry, "id", id) || id >= scenario.config.n) {
        return reject("bad scripted id");
      }
      fault.id = static_cast<ProcId>(id);
      if (fault.kind == ScriptedKind::kCrash) {
        std::uint64_t phase = 0;
        if (!read_u64(entry, "phase", phase)) return reject("bad crash phase");
        fault.crash_phase = static_cast<PhaseNum>(phase);
      } else if (fault.kind == ScriptedKind::kDelayedEcho) {
        std::uint64_t delay = 0;
        if (!read_u64(entry, "delay", delay) || delay == 0) {
          return reject("bad echo delay");
        }
        fault.delay = static_cast<PhaseNum>(delay);
      } else if (fault.kind == ScriptedKind::kEquivocate) {
        if (!read_u64(entry, "ones", fault.ones_mask)) {
          return reject("bad equivocation mask");
        }
      } else if (fault.kind == ScriptedKind::kChaos) {
        const JsonValue* prob = entry.find("prob");
        if (!read_u64(entry, "seed", fault.seed) || prob == nullptr ||
            prob->kind != JsonValue::kNumber) {
          return reject("bad chaos parameters");
        }
        fault.send_prob = prob->number;
      }
      scenario.scripted.push_back(fault);
    }
  }
  if (scenario.scripted.size() > scenario.config.t) {
    return reject("more scripted faults than t");
  }

  if (const JsonValue* rules = root->find("rules")) {
    if (rules->kind != JsonValue::kArray) return reject("bad rules");
    for (const JsonValue& entry : rules->array) {
      const JsonValue* kind = entry.find("kind");
      sim::FaultRule rule;
      if (kind == nullptr || kind->kind != JsonValue::kString ||
          !sim::fault_kind_from_string(kind->str, rule.kind)) {
        return reject("bad rule kind");
      }
      std::uint64_t from = 0, to = 0, phase = 0;
      if (!read_id(entry, "from", sim::kAnyProc, from) ||
          !read_id(entry, "to", sim::kAnyProc, to) ||
          !read_id(entry, "phase", sim::kAnyPhase, phase)) {
        return reject("bad rule fields");
      }
      rule.from = static_cast<ProcId>(from);
      rule.to = static_cast<ProcId>(to);
      rule.phase = static_cast<PhaseNum>(phase);
      scenario.rules.push_back(rule);
    }
  }

  // Optional, defaulting to empty (pre-churn reproducers).
  if (const JsonValue* churn = root->find("churn")) {
    if (churn->kind != JsonValue::kArray) return reject("bad churn");
    for (const JsonValue& entry : churn->array) {
      const JsonValue* kind = entry.find("kind");
      sim::ChurnRule rule;
      if (kind == nullptr || kind->kind != JsonValue::kString ||
          !sim::churn_kind_from_string(kind->str, rule.kind)) {
        return reject("bad churn kind");
      }
      std::uint64_t id = 0, phase = 0;
      if (!read_u64(entry, "id", id) || id >= scenario.config.n) {
        return reject("bad churn id");
      }
      if (!read_u64(entry, "phase", phase)) return reject("bad churn phase");
      if (!read_u64(entry, "ms", rule.millis)) return reject("bad churn ms");
      rule.id = static_cast<ProcId>(id);
      rule.phase = static_cast<PhaseNum>(phase);
      scenario.churn.push_back(rule);
    }
    if (!scenario.churn.empty() && scenario.backend != Backend::kNet) {
      return reject("churn requires the net backend");
    }
  }

  if (violations != nullptr) {
    violations->clear();
    if (const JsonValue* recorded = root->find("violations")) {
      if (recorded->kind != JsonValue::kArray) return reject("bad violations");
      for (const JsonValue& entry : recorded->array) {
        if (entry.kind != JsonValue::kString) return reject("bad violation");
        violations->push_back(entry.str);
      }
    }
  }

  const std::optional<Protocol> resolved =
      resolve_protocol(scenario.protocol);
  if (!resolved.has_value()) return reject("unknown protocol");
  if (!resolved->supports(scenario.config)) {
    return reject("protocol does not support (n, t, value)");
  }
  return scenario;
}

Scenario minimize(const Scenario& scenario,
                  const std::function<bool(const Scenario&)>& still_fails) {
  Scenario best = scenario;
  best.rules = ddmin(best.rules, [&](const std::vector<sim::FaultRule>& rules) {
    Scenario candidate = best;
    candidate.rules = rules;
    return still_fails(candidate);
  });
  // Churn rules shrink the same way: a finding that reproduces without a
  // kill shouldn't ship one in its reproducer.
  best.churn = ddmin(best.churn, [&](const std::vector<sim::ChurnRule>& churn) {
    Scenario candidate = best;
    candidate.churn = churn;
    return still_fails(candidate);
  });
  return best;
}

namespace {

/// Small (n, t) instances per protocol family, sized so a soak run takes
/// well under a millisecond and a fault budget of t >= 1 is available.
BAConfig default_config(std::string_view protocol_name) {
  const ParsedName parsed = parse_name(protocol_name);
  if (parsed.base == "dolev-strong") return BAConfig{6, 2, 0, 1};
  if (parsed.base == "dolev-strong-relay") return BAConfig{7, 2, 0, 1};
  if (parsed.base == "eig") return BAConfig{7, 2, 0, 1};
  if (parsed.base == "phase-king") return BAConfig{9, 2, 0, 1};
  if (parsed.base == "alg1" || parsed.base == "alg1-mv" ||
      parsed.base == "alg2" || parsed.base == "alg2-mv") {
    return BAConfig{7, 3, 0, 1};
  }
  if (parsed.base == "alg3" || parsed.base == "alg3-mv") {
    return BAConfig{10, 2, 0, 1};
  }
  if (parsed.base == "alg5" || parsed.base == "alg5-mv" ||
      parsed.base == "alg5-ungated") {
    return BAConfig{30, 1, 0, 1};
  }
  return BAConfig{7, 2, 0, 1};
}

std::vector<std::string> default_pool() {
  return {"dolev-strong", "dolev-strong-relay", "eig",      "phase-king",
          "alg1",         "alg2",               "alg3[s=3]", "alg5[s=3]"};
}

}  // namespace

sim::FaultRule random_fault_rule(Xoshiro256& rng, std::size_t n,
                                 PhaseNum steps,
                                 double wildcard_probability) {
  sim::FaultRule rule;
  rule.kind = static_cast<sim::FaultKind>(rng.below(5));
  rule.from = rng.chance(wildcard_probability)
                  ? sim::kAnyProc
                  : static_cast<ProcId>(rng.below(n));
  rule.to = rng.chance(wildcard_probability)
                ? sim::kAnyProc
                : static_cast<ProcId>(rng.below(n));
  rule.phase = rng.chance(wildcard_probability)
                   ? sim::kAnyPhase
                   : static_cast<PhaseNum>(rng.range(1, steps));
  return rule;
}

namespace {

Scenario random_scenario(Xoshiro256& rng, const SoakOptions& options,
                         const std::vector<std::string>& pool) {
  Scenario scenario;
  scenario.protocol = pool[rng.below(pool.size())];
  scenario.config = default_config(scenario.protocol);
  scenario.backend = options.backend;
  const std::optional<Protocol> protocol =
      resolve_protocol(scenario.protocol);
  DR_EXPECTS(protocol.has_value() && protocol->supports(scenario.config));
  scenario.config.value = rng.below(2);
  scenario.seed = rng.below(std::uint64_t{1} << 32) + 1;
  scenario.plan_seed = rng.below(std::uint64_t{1} << 32) + 1;
  const PhaseNum steps = protocol->steps(scenario.config);

  if (scenario.config.t >= 1 &&
      rng.chance(options.scripted_probability)) {
    const std::size_t count = 1 + rng.below(scenario.config.t);
    std::set<ProcId> used;
    for (std::size_t i = 0; i < count; ++i) {
      const ProcId id = static_cast<ProcId>(rng.below(scenario.config.n));
      if (!used.insert(id).second) continue;
      ScriptedFault fault;
      fault.id = id;
      fault.kind = static_cast<ScriptedKind>(rng.below(3));
      if (fault.kind == ScriptedKind::kCrash) {
        fault.crash_phase = static_cast<PhaseNum>(rng.range(1, steps));
      } else if (fault.kind == ScriptedKind::kChaos) {
        fault.seed = rng.below(std::uint64_t{1} << 32) + 1;
        fault.send_prob = 0.25;
      }
      scenario.scripted.push_back(fault);
    }
  }

  const std::size_t rule_count = rng.below(options.max_rules + 1);
  for (std::size_t i = 0; i < rule_count; ++i) {
    scenario.rules.push_back(
        random_fault_rule(rng, scenario.config.n, steps,
                    /*wildcard_probability=*/0.1));
  }

  // Endpoint churn: net backend only, one rule, never an unbounded hang
  // (soak runs must terminate on their own). The churned id is charged
  // against t, so only draw one when the budget has room left.
  if (options.backend == Backend::kNet && scenario.config.t >= 1 &&
      rng.chance(options.churn_probability)) {
    sim::ChurnRule rule;
    const std::uint64_t pick = rng.below(3);
    rule.kind = pick == 0   ? sim::ChurnKind::kKill
                : pick == 1 ? sim::ChurnKind::kRestart
                            : sim::ChurnKind::kSlow;
    rule.id = static_cast<ProcId>(rng.below(scenario.config.n));
    rule.phase = static_cast<PhaseNum>(
        rule.kind == sim::ChurnKind::kKill ? rng.below(steps)
                                           : rng.range(1, steps));
    if (rule.kind == sim::ChurnKind::kSlow) rule.millis = rng.range(1, 3);
    scenario.churn.push_back(rule);
  }
  return scenario;
}

}  // namespace

SoakStats soak(const SoakOptions& options) {
  const std::vector<std::string> pool =
      options.protocols.empty() ? default_pool() : options.protocols;
  SoakStats stats;
  for (std::size_t i = 0; i < options.runs; ++i) {
    Xoshiro256 rng(SplitMix64(options.seed + i).next());
    const Scenario scenario = random_scenario(rng, options, pool);
    const Outcome outcome = execute(scenario, options.backend);
    ++stats.runs;
    stats.rules_fired += outcome.perturbed.size();

    if (outcome.effective_faulty_count > scenario.config.t) {
      ++stats.over_budget;  // outside the model: nothing to assert
      continue;
    }
    ++stats.checked;
    const Budgets budgets = budgets_for(scenario.protocol, scenario.config);
    const InvariantReport report =
        check_invariants(scenario, outcome, outcome.effective_faulty, budgets);
    if (report.ok) continue;

    // A genuine within-budget violation: shrink the plan while it keeps
    // both properties (within budget, still failing), then record it.
    auto still_fails = [backend = options.backend](const Scenario& candidate) {
      const Outcome probe = execute(candidate, backend);
      if (probe.effective_faulty_count > candidate.config.t) return false;
      return !check_invariants(
                  candidate, probe, probe.effective_faulty,
                  budgets_for(candidate.protocol, candidate.config))
                  .ok;
    };
    const Scenario minimal = minimize(scenario, still_fails);
    const Outcome confirm = execute(minimal, options.backend);
    const InvariantReport confirmed = check_invariants(
        minimal, confirm, confirm.effective_faulty,
        budgets_for(minimal.protocol, minimal.config));
    stats.findings.push_back(Finding{
        minimal, confirmed.violations, to_json(minimal, confirmed.violations)});
  }
  return stats;
}

std::optional<Finding> hunt_over_budget(std::string_view protocol_name,
                                        const BAConfig& config,
                                        std::uint64_t seed,
                                        std::size_t attempts) {
  const std::optional<Protocol> protocol = resolve_protocol(protocol_name);
  if (!protocol.has_value() || !protocol->supports(config)) {
    return std::nullopt;
  }
  const Budgets budgets = budgets_for(protocol_name, config);
  const PhaseNum steps = protocol->steps(config);

  // "Broken" means: the plan charges more than t processors (outside the
  // model, as intended) AND, charging only scripted faults (none here),
  // an invariant fails — i.e. the transport faults visibly broke the
  // protocol for processors the model would call correct.
  auto broken = [&budgets](const Scenario& candidate) {
    const Outcome probe = execute(candidate);
    if (probe.effective_faulty_count <= candidate.config.t) return false;
    return !check_invariants(candidate, probe, probe.scripted_faulty,
                             budgets)
                .ok;
  };

  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    Xoshiro256 rng(SplitMix64(seed + attempt).next());
    Scenario scenario;
    scenario.protocol = std::string(protocol_name);
    scenario.config = config;
    scenario.seed = rng.below(std::uint64_t{1} << 32) + 1;
    scenario.plan_seed = rng.below(std::uint64_t{1} << 32) + 1;
    const std::size_t rule_count = 8 + rng.below(17);
    for (std::size_t i = 0; i < rule_count; ++i) {
      // Wilder than the soak: more wildcards, so whole processors get
      // isolated and the faulty set overshoots t quickly.
      scenario.rules.push_back(
          random_fault_rule(rng, config.n, steps, /*wildcard_probability=*/0.3));
    }
    if (!broken(scenario)) continue;

    const Scenario minimal = minimize(scenario, broken);
    const Outcome confirm = execute(minimal);
    const InvariantReport report = check_invariants(
        minimal, confirm, confirm.scripted_faulty, budgets);
    return Finding{minimal, report.violations,
                   to_json(minimal, report.violations)};
  }
  return std::nullopt;
}

}  // namespace dr::chaos
