// Synchronous, fully connected, reliable network with optional full history
// recording. Messages sent in phase k are delivered at phase k+1; within a
// phase, delivery order at each receiver is by sender id (deterministic).
//
// Submissions are sharded per *sender*: processor p's sends go into
// outbox_[p] and nowhere else, so the parallel runner's workers commit
// their own sends lock-free (worker stepping processor p is the only
// writer of outbox_[p]). The phase flip then merges the shards in sender
// order — each shard is already in submission order, so appending shard 0,
// then 1, ... to the receivers' inboxes reproduces exactly the old
// "stable_sort by sender" delivery order without sorting anything.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "hist/history.h"
#include "sim/arenas.h"
#include "sim/envelope.h"
#include "sim/faults.h"
#include "sim/metrics.h"

namespace dr::sim {

class Network {
 public:
  /// With `storage` (not owned; may be null), the inbox/outbox vectors are
  /// borrowed from it instead of freshly allocated, so their capacity —
  /// warmed up by earlier runs — is reused. The destructor hands them back
  /// emptied of envelopes but with capacity intact.
  Network(std::size_t n, bool record_history,
          NetworkStorage* storage = nullptr);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs a transport fault plan. Every subsequent submit() is routed
  /// through it; the plan accumulates the perturbed-processor set. The
  /// plan must outlive the network. nullptr restores reliable delivery.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  const FaultPlan* fault_plan() const { return faults_; }

  /// Accepts a message sent by `from` during `phase`. Metrics count the
  /// send as submitted (the sender did send it); the inboxes — and, at the
  /// next flip, the recorded history — see what the possibly-faulty
  /// transport delivered. Thread-safe across *distinct* senders: each
  /// sender's shard has exactly one writer (the plan, when installed, is
  /// guarded by an internal mutex).
  void submit(ProcId from, ProcId to, PhaseNum phase, Payload payload,
              bool sender_correct, std::size_t signatures, Metrics& metrics);

  /// Fan-out: submits the same payload handle to every processor except
  /// `from`. One buffer, n-1 handle copies; per-link faults and per-message
  /// accounting still apply individually.
  void submit_fanout(ProcId from, PhaseNum phase, const Payload& payload,
                     bool sender_correct, std::size_t signatures,
                     Metrics& metrics);

  /// Makes everything submitted since the last flip available for delivery
  /// and clears the old inboxes. Records history (when enabled) for the
  /// delivered batch. Call once per phase boundary, never concurrently
  /// with submit().
  void deliver_next_phase();

  /// Records history for submissions still sitting in the sender shards
  /// (the final phase's sends, which are never delivered — the run ends).
  /// No-op unless history recording is on. Call after the last phase.
  void record_pending_history();

  /// Inbox for processor `p` in the current phase.
  const std::vector<Envelope>& inbox(ProcId p) const {
    return store_->inboxes[p];
  }

  const hist::History& history() const { return history_; }
  hist::History& mutable_history() { return history_; }
  bool recording() const { return record_history_; }

  std::size_t n() const { return store_->inboxes.size(); }

 private:
  bool record_history_;
  NetworkStorage own_;      // used when no external storage was borrowed
  NetworkStorage* store_;   // inboxes (delivered this phase) + per-SENDER
                            // in-flight outbox shards
  hist::History history_;
  FaultPlan* faults_ = nullptr;  // not owned; nullptr = reliable transport
  std::mutex fault_mu_;  // serializes plan accounting under parallel submit
};

}  // namespace dr::sim
