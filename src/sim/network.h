// Synchronous, fully connected, reliable network with optional full history
// recording. Messages sent in phase k are delivered at phase k+1; within a
// phase, delivery order at each receiver is by sender id (deterministic).
#pragma once

#include <cstddef>
#include <vector>

#include "hist/history.h"
#include "sim/envelope.h"
#include "sim/faults.h"
#include "sim/metrics.h"

namespace dr::sim {

class Network {
 public:
  Network(std::size_t n, bool record_history);

  /// Installs a transport fault plan. Every subsequent submit() is routed
  /// through it; the plan accumulates the perturbed-processor set. The
  /// plan must outlive the network. nullptr restores reliable delivery.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  const FaultPlan* fault_plan() const { return faults_; }

  /// Accepts a message sent by `from` during `phase`. Metrics count the
  /// send as submitted (the sender did send it); the recorded history and
  /// the inboxes see what the — possibly faulty — transport delivered.
  void submit(ProcId from, ProcId to, PhaseNum phase, Bytes payload,
              bool sender_correct, std::size_t signatures, Metrics& metrics);

  /// Makes everything submitted since the last flip available for delivery
  /// and clears the old inboxes. Call once per phase boundary.
  void deliver_next_phase();

  /// Inbox for processor `p` in the current phase.
  const std::vector<Envelope>& inbox(ProcId p) const { return inboxes_[p]; }

  const hist::History& history() const { return history_; }
  hist::History& mutable_history() { return history_; }
  bool recording() const { return record_history_; }

  std::size_t n() const { return inboxes_.size(); }

 private:
  bool record_history_;
  std::vector<std::vector<Envelope>> inboxes_;   // delivered this phase
  std::vector<std::vector<Envelope>> in_flight_; // sent this phase
  hist::History history_;
  FaultPlan* faults_ = nullptr;  // not owned; nullptr = reliable transport
};

}  // namespace dr::sim
