// A small persistent worker pool for the simulator's parallel phase
// stepping. Threads are spawned once and reused for every phase of a run,
// replacing the spawn-join-per-phase pattern whose thread-creation cost
// dominated short phases.
//
// Determinism contract: run(count, fn) invokes fn(worker, i) exactly once
// for each i in [0, count), distributed over the workers by an atomic
// ticket — the *assignment* of indices to threads is racy, but callers only
// require that fn writes state owned by index i (per-sender network shards,
// per-process cache slots) or state owned by the invoking worker whose
// later merge is order-insensitive (the runner's per-worker Metrics shards,
// whose counters are sums and maxima), so results are independent of the
// schedule.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dr::sim {

class PhasePool {
 public:
  /// Spawns `workers` (>= 1) threads.
  explicit PhasePool(std::size_t workers);
  PhasePool(const PhasePool&) = delete;
  PhasePool& operator=(const PhasePool&) = delete;
  ~PhasePool();

  /// Runs fn(worker, i) for every i in [0, count) across the workers and
  /// blocks until all invocations returned; `worker` is the stable index
  /// (< workers()) of the thread executing that invocation. The calling
  /// thread only coordinates.
  void run(std::size_t count,
           const std::function<void(std::size_t, std::size_t)>& fn);

  std::size_t workers() const { return threads_.size(); }

 private:
  void worker_main(std::size_t worker);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Valid per batch.
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;       // workers still inside the current batch
  std::uint64_t generation_ = 0; // bumped per batch to wake the workers
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dr::sim
