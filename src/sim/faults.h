// Transport-level fault injection.
//
// Every fault the simulator could previously express lived in a *process*
// (a scripted Byzantine sim::Process). A FaultPlan instead perturbs the
// network itself: declarative per-link drop/duplicate/corrupt rules keyed
// by (from, to, phase), plus crash-at-phase and receive-omission schedules.
// The whole plan is deterministic — corruption bytes are derived from the
// plan seed and the message coordinates, never from global state — so a
// (scenario, plan) pair replays bit-identically.
//
// Accounting: in the paper's model there are no link faults, only faulty
// processors. A transport fault on a correct processor's links therefore
// makes that processor Byzantine-in-effect, and must be charged against
// the fault budget t. The plan records exactly which processors it
// actually perturbed (rules that never fire charge nobody): send-side
// faults (drop, duplicate, corrupt, crash) charge the sender,
// receive-omission charges the receiver.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "sim/envelope.h"

namespace dr::sim {

/// Wildcards for FaultRule fields: match every processor / phase.
inline constexpr ProcId kAnyProc = static_cast<ProcId>(-1);
inline constexpr PhaseNum kAnyPhase = static_cast<PhaseNum>(-1);

enum class FaultKind : std::uint8_t {
  kDrop,         // the message on (from, to) sent at `phase` is lost
  kDuplicate,    // delivered twice (charges the sender)
  kCorrupt,      // payload deterministically mutated (charges the sender)
  kCrash,        // every send from `from` at phases >= `phase` is lost
  kOmitReceive,  // every delivery to `to` sent at `phase` is lost
};

/// "drop", "duplicate", "corrupt", "crash", "omit-receive".
const char* to_string(FaultKind kind);
bool fault_kind_from_string(std::string_view name, FaultKind& out);

/// One declarative perturbation. `from`/`to`/`phase` are filters on the
/// submitted message's coordinates; kAnyProc/kAnyPhase match everything.
/// `phase` is always the *send* phase (Envelope::sent_phase); a message
/// sent at phase k is delivered at k+1. For kCrash the phase filter is a
/// lower bound (crash at `phase` kills that phase's sends onward); for all
/// other kinds it is an exact match.
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  ProcId from = kAnyProc;
  ProcId to = kAnyProc;
  PhaseNum phase = kAnyPhase;

  friend bool operator==(const FaultRule&, const FaultRule&) = default;
};

/// "drop(from=1, to=2, phase=3)" — for logs and violation reports.
std::string to_string(const FaultRule& rule);

/// Process-level churn faults, applied by the net runner at the transport
/// layer (real socket death, not payload perturbation). The sim backend
/// has no processes to kill — churn is net-only — but the rule type lives
/// here next to FaultRule so chaos scenarios serialize both uniformly.
///
/// Accounting mirrors FaultRule: a churned processor is Byzantine-in-
/// effect (it crashes, restarts losing in-flight input, or stalls), so the
/// chaos harness charges every churned id against the fault budget t.
enum class ChurnKind : std::uint8_t {
  kKill,     // completes phases <= `phase`, severs every link, never returns
  kRestart,  // severs every link at the top of phase `phase` (losing pending
             // input, like a process restart), then redials lazily
  kHang,     // stalls at the top of phase `phase` for `millis` ms (0 = until
             // the run watchdog aborts — requires a run deadline)
  kSlow,     // sleeps `millis` ms before every phase >= `phase`
};

/// "kill", "restart", "hang", "slow".
const char* to_string(ChurnKind kind);
bool churn_kind_from_string(std::string_view name, ChurnKind& out);

struct ChurnRule {
  ChurnKind kind = ChurnKind::kKill;
  ProcId id = 0;
  PhaseNum phase = 0;
  std::uint64_t millis = 0;  // kHang / kSlow duration

  friend bool operator==(const ChurnRule&, const ChurnRule&) = default;
};

/// "kill(id=3, phase=1)" / "slow(id=2, phase=1, ms=3)".
std::string to_string(const ChurnRule& rule);

/// The processor a firing `rule` makes Byzantine-in-effect for a message
/// with the given coordinates: the receiver for kOmitReceive, the sender
/// otherwise.
ProcId charged_processor(const FaultRule& rule, ProcId from, ProcId to);

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultRule> rules, std::uint64_t seed = 1);

  const std::vector<FaultRule>& rules() const { return rules_; }
  std::uint64_t seed() const { return seed_; }
  bool empty() const { return rules_.empty(); }

  /// Transport hook, called once per submitted message. Returns the
  /// payloads the network must actually enqueue: empty when a drop-class
  /// rule (drop/crash/omit-receive) fires, one (possibly corrupted) entry
  /// normally, an extra identical entry per firing duplicate rule. Every
  /// rule that changes the outcome charges its processor to `perturbed()`;
  /// rules shadowed by a drop (e.g. a corrupt rule on a dropped message)
  /// charge nobody, which keeps the perturbed set — and hence the fault
  /// budget accounting — minimal.
  ///
  /// Payloads are shared immutable handles; the incoming handle is passed
  /// through untouched (duplicates are handle copies) unless a corrupt rule
  /// fires, in which case the bytes are copied exactly once, mutated, and
  /// rewrapped — copy-on-write, paid only by actually-corrupted links.
  std::vector<Payload> apply(ProcId from, ProcId to, PhaseNum phase,
                             Payload payload);

  /// Processors perturbed by rules that actually fired since the last
  /// reset(). The effective faulty set of a run is this set unioned with
  /// the scripted-faulty set; the harness must keep it within t.
  const std::set<ProcId>& perturbed() const { return perturbed_; }

  /// Clears the perturbed accounting (not the rules) for a fresh run.
  void reset() { perturbed_.clear(); }

 private:
  bool matches_link(const FaultRule& rule, ProcId from, ProcId to,
                    PhaseNum phase) const;

  std::vector<FaultRule> rules_;
  std::uint64_t seed_ = 1;
  std::set<ProcId> perturbed_;
};

}  // namespace dr::sim
