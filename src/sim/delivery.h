// The send-side seam shared by the synchronous in-memory Network and the
// real transports in src/net.
//
// Everything that must happen to a submitted message *before* any backend
// moves it lives here, in one place, so the backends cannot drift apart:
//
//   1. Metrics count the submission (the sender did the work, whatever the
//      transport does to it afterwards);
//   2. the optional FaultPlan perturbs it — zero, one or several payloads
//      come out, and the plan's perturbed-processor accounting accrues;
//   3. the backend-specific `deliver` sink is invoked once per surviving
//      payload (Network shards an Envelope per sender; a net endpoint
//      frames the payload and hands it to its Transport).
//
// Payloads are shared immutable handles end to end: a fan-out submits the
// same buffer n-1 times, and only a firing corrupt rule copies bytes
// (copy-on-write inside FaultPlan::apply). History recording moved out of
// this seam into Network's phase flip — the per-sender shards hold exactly
// the surviving payloads, so the recorded history is unchanged, and the
// hot path stays lock-free under parallel submission.
//
// This shared path is what makes sim-vs-net parity a theorem instead of a
// hope: identical inboxes produce identical submissions, which this seam
// maps to identical accounting and identical surviving payloads.
#pragma once

#include <mutex>
#include <utility>
#include <vector>

#include "sim/envelope.h"
#include "sim/faults.h"
#include "sim/metrics.h"

namespace dr::sim {

/// Routes one submission through accounting + faults into `deliver`.
/// `faults` may be null. `fault_mu`, when non-null, guards the FaultPlan
/// (whose perturbed-set accounting is not thread-safe) — both runners pass
/// one mutex per run when a plan is installed; the no-fault hot path never
/// takes a lock.
///
/// `deliver` is a template parameter, not a std::function: this seam runs
/// once per (sender, receiver) pair per phase, and wrapping the backend's
/// capturing lambda in a std::function would heap-allocate on every call —
/// the allocation plane's steady-state zero depends on this staying
/// allocation-free.
template <typename Deliver>
void route_submission(Metrics& metrics, FaultPlan* faults,
                      std::mutex* fault_mu, ProcId from, ProcId to,
                      PhaseNum phase, Payload payload, bool sender_correct,
                      std::size_t signatures, Deliver&& deliver) {
  metrics.on_send(from, to, phase, sender_correct, signatures,
                  payload.size());
  if (faults == nullptr) {
    deliver(std::move(payload));
    return;
  }
  std::vector<Payload> surviving;
  {
    std::unique_lock<std::mutex> lock;
    if (fault_mu != nullptr) lock = std::unique_lock<std::mutex>(*fault_mu);
    surviving = faults->apply(from, to, phase, std::move(payload));
  }
  for (Payload& delivered : surviving) {
    deliver(std::move(delivered));
  }
}

}  // namespace dr::sim
