// The send-side seam shared by the synchronous in-memory Network and the
// real transports in src/net.
//
// Everything that must happen to a submitted message *before* any backend
// moves it lives here, in one place, so the backends cannot drift apart:
//
//   1. Metrics count the submission (the sender did the work, whatever the
//      transport does to it afterwards);
//   2. the optional FaultPlan perturbs it — zero, one or several payloads
//      come out, and the plan's perturbed-processor accounting accrues;
//   3. the optional History records what was actually put in flight;
//   4. the backend-specific `deliver` sink is invoked once per surviving
//      payload (Network enqueues an Envelope; a net endpoint frames the
//      payload and hands it to its Transport).
//
// This shared path is what makes sim-vs-net parity a theorem instead of a
// hope: identical inboxes produce identical submissions, which this seam
// maps to identical accounting and identical surviving payloads.
#pragma once

#include <functional>
#include <mutex>

#include "hist/history.h"
#include "sim/envelope.h"
#include "sim/faults.h"
#include "sim/metrics.h"

namespace dr::sim {

/// Routes one submission through accounting + faults + history into
/// `deliver`. `faults` and `history` may be null. `fault_mu`, when
/// non-null, guards the FaultPlan (whose perturbed-set accounting is not
/// thread-safe) — the net runner passes one mutex per run, the serial
/// Network passes nullptr.
void route_submission(Metrics& metrics, FaultPlan* faults,
                      std::mutex* fault_mu, hist::History* history,
                      ProcId from, ProcId to, PhaseNum phase, Bytes payload,
                      bool sender_correct, std::size_t signatures,
                      const std::function<void(Bytes)>& deliver);

}  // namespace dr::sim
