#include "sim/faults.h"

#include <optional>
#include <utility>

#include "util/rng.h"

namespace dr::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kOmitReceive: return "omit-receive";
  }
  return "?";
}

bool fault_kind_from_string(std::string_view name, FaultKind& out) {
  if (name == "drop") out = FaultKind::kDrop;
  else if (name == "duplicate") out = FaultKind::kDuplicate;
  else if (name == "corrupt") out = FaultKind::kCorrupt;
  else if (name == "crash") out = FaultKind::kCrash;
  else if (name == "omit-receive") out = FaultKind::kOmitReceive;
  else return false;
  return true;
}

namespace {

std::string field(const char* name, std::uint64_t value, std::uint64_t any) {
  if (value == any) return std::string(name) + "=*";
  return std::string(name) + "=" + std::to_string(value);
}

}  // namespace

std::string to_string(const FaultRule& rule) {
  return std::string(to_string(rule.kind)) + "(" +
         field("from", rule.from, kAnyProc) + ", " +
         field("to", rule.to, kAnyProc) + ", " +
         field("phase", rule.phase, kAnyPhase) + ")";
}

const char* to_string(ChurnKind kind) {
  switch (kind) {
    case ChurnKind::kKill: return "kill";
    case ChurnKind::kRestart: return "restart";
    case ChurnKind::kHang: return "hang";
    case ChurnKind::kSlow: return "slow";
  }
  return "?";
}

bool churn_kind_from_string(std::string_view name, ChurnKind& out) {
  if (name == "kill") out = ChurnKind::kKill;
  else if (name == "restart") out = ChurnKind::kRestart;
  else if (name == "hang") out = ChurnKind::kHang;
  else if (name == "slow") out = ChurnKind::kSlow;
  else return false;
  return true;
}

std::string to_string(const ChurnRule& rule) {
  std::string text = std::string(to_string(rule.kind)) +
                     "(id=" + std::to_string(rule.id) +
                     ", phase=" + std::to_string(rule.phase);
  if (rule.kind == ChurnKind::kHang || rule.kind == ChurnKind::kSlow) {
    text += ", ms=" + std::to_string(rule.millis);
  }
  return text + ")";
}

ProcId charged_processor(const FaultRule& rule, ProcId from, ProcId to) {
  return rule.kind == FaultKind::kOmitReceive ? to : from;
}

FaultPlan::FaultPlan(std::vector<FaultRule> rules, std::uint64_t seed)
    : rules_(std::move(rules)), seed_(seed) {}

bool FaultPlan::matches_link(const FaultRule& rule, ProcId from, ProcId to,
                             PhaseNum phase) const {
  if (rule.from != kAnyProc && rule.from != from) return false;
  if (rule.to != kAnyProc && rule.to != to) return false;
  if (rule.kind == FaultKind::kCrash) {
    return rule.phase == kAnyPhase || phase >= rule.phase;
  }
  return rule.phase == kAnyPhase || rule.phase == phase;
}

std::vector<Payload> FaultPlan::apply(ProcId from, ProcId to, PhaseNum phase,
                                      Payload payload) {
  // Pass 1: drop-class rules win outright. Only they are charged — a
  // corrupt/duplicate rule on a message that never arrives has no
  // observable effect and must not inflate the perturbed set.
  bool dropped = false;
  for (const FaultRule& rule : rules_) {
    if (rule.kind != FaultKind::kDrop && rule.kind != FaultKind::kCrash &&
        rule.kind != FaultKind::kOmitReceive) {
      continue;
    }
    if (!matches_link(rule, from, to, phase)) continue;
    dropped = true;
    perturbed_.insert(charged_processor(rule, from, to));
  }
  if (dropped) return {};

  // Pass 2: corruption. The mutated byte depends only on the plan seed,
  // the message coordinates and how many corruptions already hit this
  // message — never on the rule's position in the list — so removing an
  // unrelated rule during minimization cannot change what a surviving
  // corrupt rule does. The shared buffer is copied at most once, when the
  // first corrupt rule fires (copy-on-write); clean links pass the handle
  // through untouched.
  SplitMix64 stream(seed_ ^ (static_cast<std::uint64_t>(from) << 40) ^
                    (static_cast<std::uint64_t>(to) << 20) ^ phase);
  std::optional<Bytes> mutated;
  for (const FaultRule& rule : rules_) {
    if (rule.kind != FaultKind::kCorrupt) continue;
    if (!matches_link(rule, from, to, phase)) continue;
    if (!mutated.has_value()) mutated = payload.to_bytes();
    const std::uint64_t r = stream.next();
    if (mutated->empty()) {
      mutated->push_back(static_cast<std::uint8_t>(r | 1));
    } else {
      // XOR with an odd byte: guaranteed to change the payload.
      (*mutated)[r % mutated->size()] ^=
          static_cast<std::uint8_t>((r >> 8) | 1);
    }
    perturbed_.insert(charged_processor(rule, from, to));
  }
  if (mutated.has_value()) payload = Payload(std::move(*mutated));

  std::vector<Payload> delivered;
  for (const FaultRule& rule : rules_) {
    if (rule.kind != FaultKind::kDuplicate) continue;
    if (!matches_link(rule, from, to, phase)) continue;
    delivered.push_back(payload);  // handle copy per firing rule
    perturbed_.insert(charged_processor(rule, from, to));
  }
  delivered.push_back(std::move(payload));
  return delivered;
}

}  // namespace dr::sim
