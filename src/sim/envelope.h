// The wire unit of the simulator.
#pragma once

#include <cstdint>

#include "sim/payload.h"
#include "util/bytes.h"

namespace dr::sim {

using ProcId = std::uint32_t;
using PhaseNum = std::uint32_t;
using Value = std::uint64_t;

/// A message in flight. `from` is set by the network, never by the sender:
/// this implements the paper's assumption that "for each labeled edge,
/// processor p knows the source of that edge" — no processor can claim to be
/// somebody else at the transport level. The payload is a shared immutable
/// handle: a broadcast's n-1 envelopes all point at one buffer.
struct Envelope {
  ProcId from = 0;
  ProcId to = 0;
  PhaseNum sent_phase = 0;
  Payload payload;
};

}  // namespace dr::sim
