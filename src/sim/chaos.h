// Chaos soak harness: random transport fault plans x seeds x protocols,
// an invariant watchdog, and failure minimization.
//
// The paper's guarantees are quantified over *every* adversarial schedule
// with at most t faulty processors. Scripted adversaries
// (adversary/strategies.h) sample that space by hand; the chaos harness
// samples it mechanically: each run draws a protocol, a scripted-fault
// mix and a transport FaultPlan from a seeded generator, executes it, and
// asserts the paper-level invariants — agreement and validity among the
// processors that are correct *in effect* (neither scripted-faulty nor
// perturbed by the transport), the Theorem 3 / Theorem 4 / Lemma 1
// message budgets, and the phase budgets.
//
// Runs whose effective faulty set exceeds t are outside the model's
// preconditions: nothing is asserted (the sweep counts them), but they
// are exactly the raw material for the failure minimizer — given a plan
// whose injected faults break agreement, `minimize` delta-debugs the rule
// list down to a minimal reproducer, serialized as JSON and replayable
// deterministically (and auditable with ba::validate_correctness, since
// unperturbed correct processors' recorded edges match the correctness
// rule even under transport faults).
//
// Everything here is deterministic: a (Scenario) value identifies a run
// bit-exactly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ba/registry.h"
#include "sim/faults.h"
#include "util/rng.h"

namespace dr::chaos {

using ba::BAConfig;
using ba::Protocol;
using sim::PhaseNum;
using sim::ProcId;
using sim::Value;

/// Scripted Byzantine behaviours the generator can draw and the JSON
/// codec can round-trip (a serializable subset of adversary/strategies.h).
enum class ScriptedKind : std::uint8_t {
  kSilent,
  kCrash,
  kChaos,
  kDelayedEcho,  // rebroadcasts everything `delay` phases late
  kEquivocate,   // transmitter signs 1 for the `ones_mask` set, 0 otherwise
};

const char* to_string(ScriptedKind kind);
bool scripted_kind_from_string(std::string_view name, ScriptedKind& out);

struct ScriptedFault {
  ScriptedKind kind = ScriptedKind::kSilent;
  ProcId id = 0;
  PhaseNum crash_phase = 1;   // kCrash: runs the protocol, then goes silent
  std::uint64_t seed = 1;     // kChaos: RandomByzantine seed
  double send_prob = 0.3;     // kChaos: per-receiver send probability
  PhaseNum delay = 1;         // kDelayedEcho: echo lag in phases
  std::uint64_t ones_mask = 0;  // kEquivocate: receivers told "1" (bit p)

  friend bool operator==(const ScriptedFault&,
                         const ScriptedFault&) = default;
};

/// Materializes a serializable fault as a runnable ScenarioFault — the one
/// seam through which the chaos soak, the conformance generators and the
/// hand-written test helpers (tests/test_util.h) all build Byzantine
/// processes. Copies what it needs from `protocol`, so the returned fault
/// does not dangle when the Protocol goes out of scope.
ba::ScenarioFault to_scenario_fault(const Protocol& protocol,
                                    const ScriptedFault& fault);

/// Which runtime executes a scenario. kSim is the in-memory synchronous
/// simulator; kNet runs the same processes on endpoint threads over the
/// in-process transport (src/net), with the FaultPlan applied at the shared
/// submission seam — decisions and metrics are identical (the parity
/// theorem), so every invariant below applies unchanged, except the phase
/// budget, which needs the recorded history only the simulator produces.
enum class Backend : std::uint8_t { kSim, kNet };

const char* to_string(Backend backend);
bool backend_from_string(std::string_view name, Backend& out);

/// A fully described chaos run. `protocol` is a registry name, including
/// the parameterised forms "alg3[s=K]" / "alg5[s=K]" (resolve_protocol).
struct Scenario {
  std::string protocol;
  BAConfig config;
  std::uint64_t seed = 1;       // master seed (keys)
  std::uint64_t plan_seed = 1;  // corruption-byte derivation
  /// The runtime this scenario reproduces on. Part of the scenario — a
  /// churn finding replayed on the sim backend would be a different run —
  /// and serialized with it; old reproducers without the field parse as
  /// kSim, which is what they meant.
  Backend backend = Backend::kSim;
  std::vector<ScriptedFault> scripted;
  std::vector<sim::FaultRule> rules;
  /// Process-level churn (net backend only): real socket kills, restarts,
  /// hangs and slowdowns applied by the endpoint threads. Every churned id
  /// is charged against the fault budget t, like a fired transport rule.
  std::vector<sim::ChurnRule> churn;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Registry lookup extended to the parameterised protocol families.
std::optional<Protocol> resolve_protocol(std::string_view name);

/// One deterministic execution of `scenario` (history recorded on kSim).
/// `effective_faulty` = scripted-faulty set union the processors the
/// transport plan actually perturbed — the set that must stay within t
/// for the paper's guarantees to apply.
struct Outcome {
  sim::RunResult result;
  std::vector<bool> scripted_faulty;
  std::vector<bool> effective_faulty;
  std::size_t effective_faulty_count = 0;
  /// Processors the transport plan actually perturbed (FaultPlan's
  /// post-run accounting), in ascending order.
  std::vector<ProcId> perturbed;
  /// The net runner's run-level watchdog aborted the run before every
  /// endpoint finished (always false on kSim). check_invariants treats a
  /// fired watchdog as a violation in its own right.
  bool watchdog_fired = false;
};

/// Runs `scenario` on `backend` when given, else on scenario.backend.
/// Churn rules require the net backend (checked).
Outcome execute(const Scenario& scenario,
                std::optional<Backend> backend = std::nullopt);

/// Cost ceilings the watchdog enforces. Message budgets exist where the
/// paper states a closed form (Theorem 3 for alg1, Theorem 4 for alg2,
/// Lemma 1 for alg3, the Dolev-Strong worst cases); the phase budget
/// defaults to the protocol's communication-phase count.
struct Budgets {
  std::optional<double> messages;  // max messages by effective-correct
  std::optional<PhaseNum> phases;  // max phase with effective-correct sends
};

Budgets budgets_for(std::string_view protocol_name, const BAConfig& config);

struct InvariantReport {
  bool ok = true;
  std::vector<std::string> violations;  // human-readable, deterministic
};

/// The invariant watchdog, layered on check_byzantine_agreement: treats
/// `faulty` as the faulty set and asserts (i) agreement among the
/// complement, (ii) validity when the transmitter is in the complement,
/// (iii) the message budget summed over the complement's sends, and
/// (iv) the phase budget over the complement's traffic. Callers pass the
/// effective faulty mask for model-conforming runs, or the scripted-only
/// mask to ask "did the transport faults break the protocol?".
InvariantReport check_invariants(const Scenario& scenario,
                                 const Outcome& outcome,
                                 const std::vector<bool>& faulty,
                                 const Budgets& budgets);

/// JSON reproducer: every field of `scenario` plus the violation list.
std::string to_json(const Scenario& scenario,
                    const std::vector<std::string>& violations);

/// Inverse of to_json. On failure returns nullopt and sets `error`.
/// `violations`, when non-null, receives the recorded violation list.
std::optional<Scenario> scenario_from_json(
    std::string_view json, std::vector<std::string>* violations = nullptr,
    std::string* error = nullptr);

/// Greedy delta-debugging over an arbitrary item list: returns a 1-minimal
/// subset (no single item can be removed) that still satisfies
/// `still_fails`. Tries chunk removals first so large random lists collapse
/// quickly. `still_fails(items)` must be deterministic and true for the
/// input list. Shared by the rule minimizer below and the conformance
/// engine's scripted-fault shrinker (src/check).
template <typename T, typename Pred>
std::vector<T> ddmin(std::vector<T> items, Pred&& still_fails) {
  std::size_t chunk = std::max<std::size_t>(1, items.size() / 2);
  while (true) {
    bool progress = false;
    std::size_t start = 0;
    while (start < items.size()) {
      const std::size_t end = std::min(items.size(), start + chunk);
      std::vector<T> candidate = items;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(start),
                      candidate.begin() + static_cast<std::ptrdiff_t>(end));
      if (still_fails(candidate)) {
        items = std::move(candidate);
        progress = true;  // retry the same position against the remainder
      } else {
        start = end;
      }
    }
    if (chunk > 1) {
      chunk /= 2;
    } else if (!progress) {
      return items;  // 1-minimal: no single item can be removed
    }
  }
}

/// ddmin over Scenario::rules: returns a scenario with a 1-minimal rule
/// subset that still satisfies `still_fails(scenario)`.
Scenario minimize(const Scenario& scenario,
                  const std::function<bool(const Scenario&)>& still_fails);

/// A finding: the minimized scenario, its violations, and the reproducer.
struct Finding {
  Scenario scenario;
  std::vector<std::string> violations;
  std::string reproducer_json;
};

/// One random transport-fault rule over an (n, steps) grid, shared by the
/// soak generator and the conformance engine's case generator. Each field
/// is a wildcard with `wildcard_probability`, else uniform over its range.
sim::FaultRule random_fault_rule(Xoshiro256& rng, std::size_t n,
                                 PhaseNum steps,
                                 double wildcard_probability);

struct SoakOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 1000;
  /// Protocol pool; each entry is paired with a small (n, t) chosen by
  /// the generator. Defaults to the full registry-backed set.
  std::vector<std::string> protocols;
  std::size_t max_rules = 6;       // rules per random plan (uniform 0..max)
  double scripted_probability = 0.5;  // chance a run also draws scripted faults
  /// Runtime the soak (and its minimizer) executes on. kNet soaks the real
  /// message-passing stack — threads, frames, synchronizer — under the
  /// same random fault plans.
  Backend backend = Backend::kSim;
  /// Chance a run also draws one endpoint-churn rule (kill / restart /
  /// slow — never an unbounded hang). Net backend only; ignored on kSim.
  double churn_probability = 0.0;
};

struct SoakStats {
  std::size_t runs = 0;
  std::size_t checked = 0;       // effective faulty set within t: asserted
  std::size_t over_budget = 0;   // outside the model: skipped, not a failure
  std::size_t rules_fired = 0;   // total perturbed processors across runs
  std::vector<Finding> findings; // minimized invariant violations (bugs)
};

/// The chaos soak: `runs` seeded random scenarios. Any invariant
/// violation within the fault budget is minimized and reported.
SoakStats soak(const SoakOptions& options);

/// The deliberate over-budget exercise: generates random plans against
/// `protocol_name` until the injected faults (charged beyond t) break an
/// invariant under scripted-only accounting, then minimizes and returns
/// the finding. Used by examples/chaos and the chaos tests to prove the
/// whole loop — inject, detect, shrink, serialize, replay — closes.
std::optional<Finding> hunt_over_budget(std::string_view protocol_name,
                                        const BAConfig& config,
                                        std::uint64_t seed,
                                        std::size_t attempts = 64);

}  // namespace dr::chaos
