#include "sim/runner.h"

#include <algorithm>
#include <optional>

#include "codec/codec.h"
#include "crypto/verify_cache.h"
#include "sim/pool.h"
#include "util/alloc_stats.h"
#include "util/contracts.h"

namespace dr::sim {

AgreementCheck check_byzantine_agreement(const RunResult& result,
                                         ProcId transmitter, Value sent) {
  AgreementCheck check;
  check.agreement = true;
  bool first = true;
  for (std::size_t p = 0; p < result.decisions.size(); ++p) {
    if (result.faulty[p]) continue;
    const auto& d = result.decisions[p];
    if (!d.has_value()) {
      check.agreement = false;
      continue;
    }
    if (first) {
      check.agreed_value = d;
      first = false;
    } else if (check.agreed_value != d) {
      check.agreement = false;
    }
  }
  if (first) check.agreement = false;  // nobody decided

  const bool transmitter_correct = !result.faulty[transmitter];
  if (!transmitter_correct) {
    check.validity = true;  // condition (ii) is vacuous
  } else {
    check.validity =
        check.agreement && check.agreed_value.has_value() &&
        *check.agreed_value == sent;
  }
  return check;
}

std::unique_ptr<crypto::SignatureScheme> make_signature_scheme(
    SchemeKind kind, std::size_t n, std::uint64_t seed,
    std::size_t merkle_height) {
  switch (kind) {
    case SchemeKind::kMerkle:
      return std::make_unique<crypto::MerkleScheme>(n, seed, merkle_height);
    case SchemeKind::kWots:
      return std::make_unique<crypto::WotsScheme>(n, seed, merkle_height);
    case SchemeKind::kHmac:
      break;
  }
  return std::make_unique<crypto::KeyRegistry>(n, seed);
}

SignerPool::SignerPool(crypto::SignatureScheme* scheme,
                       const std::vector<bool>& faulty)
    : own_(faulty.size()), faulty_(faulty) {
  std::vector<crypto::ProcId> coalition;
  for (ProcId p = 0; p < faulty.size(); ++p) {
    if (faulty[p]) {
      coalition.push_back(p);
    } else {
      own_[p] = std::make_unique<crypto::Signer>(scheme, std::vector{p});
    }
  }
  coalition_ =
      std::make_unique<crypto::Signer>(scheme, std::move(coalition));
}

const crypto::Signer& SignerPool::signer_for(ProcId p) const {
  DR_EXPECTS(p < own_.size());
  if (faulty_[p]) return *coalition_;
  return *own_[p];
}

Runner::Runner(const RunConfig& config)
    : config_(config),
      scheme_(make_signature_scheme(config.scheme, config.n, config.seed,
                                    config.merkle_height)),
      verifier_(scheme_.get()),
      faulty_(config.n, false),
      processes_(config.n) {
  DR_EXPECTS(config.n >= 1);
  DR_EXPECTS(config.transmitter < config.n);
}

void Runner::mark_faulty(ProcId p) {
  DR_EXPECTS(p < config_.n);
  DR_EXPECTS(!pool_.has_value());
  faulty_[p] = true;
}

std::size_t Runner::faulty_count() const {
  return static_cast<std::size_t>(
      std::count(faulty_.begin(), faulty_.end(), true));
}

void Runner::build_signers() {
  if (!pool_.has_value()) pool_.emplace(scheme_.get(), faulty_);
}

const crypto::Signer& Runner::signer_for(ProcId p) {
  DR_EXPECTS(p < config_.n);
  build_signers();
  return pool_->signer_for(p);
}

void Runner::install(ProcId p, std::unique_ptr<Process> process) {
  DR_EXPECTS(p < config_.n);
  DR_EXPECTS(process != nullptr);
  processes_[p] = std::move(process);
}

RunResult Runner::run(PhaseNum phases) {
  for (ProcId p = 0; p < config_.n; ++p) {
    DR_EXPECTS(processes_[p] != nullptr);
  }
  build_signers();

  const bool parallel = config_.threads > 1 && !config_.rushing;
  const std::size_t pool_workers =
      parallel ? std::min<std::size_t>(config_.threads, config_.n) : 0;

  // Lane 0 serves the orchestration thread (serial phases, faulty
  // processors, rushing); lanes 1..pool_workers serve the pool workers.
  // Payload arenas are skipped under history recording: history edges hold
  // payload handles that outlive the run, which would pin the arenas and
  // defeat every subsequent reset.
  RunArenas* arenas = config_.arenas;
  if (arenas != nullptr) arenas->begin_run(1 + pool_workers);
  const bool payload_arenas = arenas != nullptr && !config_.record_history;
  const auto lane_scratch = [&](std::size_t lane) -> Arena* {
    return arenas != nullptr ? &arenas->lane(lane).scratch : nullptr;
  };

  Network network(config_.n, config_.record_history,
                  arenas != nullptr ? arenas->network_storage() : nullptr);
  if (config_.fault_plan != nullptr) {
    config_.fault_plan->reset();
    network.set_fault_plan(config_.fault_plan);
  }
  Metrics metrics(config_.n);
  metrics.reserve_phases(phases);
  if (config_.record_history) {
    network.mutable_history().set_initial(config_.transmitter,
                                          encode_u64(config_.value));
  }

  // One verification memo per process, persisted across phases so chains
  // relayed in later phases hit on their already-verified prefixes. Owned
  // here (not by the Context, which is rebuilt every phase); per-process
  // ownership also makes the parallel path lock-free.
  std::vector<crypto::VerifyCache> caches(config_.n);

  // Drains one process's outgoing queue into the network. Broadcasts are a
  // single entry holding one shared buffer; submit_fanout expands them with
  // identical per-link routing and accounting.
  const auto commit = [&network](ProcId p, PhaseNum phase,
                                 Context::Outgoing& out, bool sender_correct,
                                 Metrics& m) {
    if (out.broadcast) {
      network.submit_fanout(p, phase, out.payload, sender_correct,
                            out.signatures, m);
    } else {
      network.submit(p, out.to, phase, std::move(out.payload),
                     sender_correct, out.signatures, m);
    }
  };

  // The worker pool persists across phases; spawning threads per phase
  // costs more than short phases do. Workers commit their own sends into
  // the network's per-sender shards (lock-free — one writer per shard) and
  // count into per-worker Metrics shards. Every Metrics counter is a sum
  // or a maximum, so merging the shards afterwards is bit-identical to
  // serial counting no matter which worker stepped which processor.
  //
  // Correct processors are stepped by the pool; faulty ones are stepped
  // serially in id order afterwards, because they share mutable state the
  // correct ones never touch: the coalition Signer (stateful for the
  // hash-based schemes — each signature consumes a key leaf) and the
  // coalition blackboard. Correct processors sign with their own
  // per-processor key state, so every scheme is safe to step in parallel.
  std::optional<PhasePool> pool;
  std::vector<Metrics> worker_metrics;
  std::vector<ProcId> pooled_ids;  // correct: stepped by the workers
  std::vector<ProcId> serial_ids;  // faulty: stepped in id order
  if (parallel) {
    pool.emplace(pool_workers);
    worker_metrics.assign(pool->workers(), Metrics(config_.n));
    for (Metrics& shard : worker_metrics) shard.reserve_phases(phases);
    for (ProcId p = 0; p < config_.n; ++p) {
      (faulty_[p] ? serial_ids : pooled_ids).push_back(p);
    }
  }
  // One callable for the whole run: PhasePool::run takes a std::function
  // by reference, and this lambda's captures exceed the small-object
  // buffer, so rebuilding it per phase would heap-allocate in the steady
  // state. `pooled_phase` carries the loop variable in.
  PhaseNum pooled_phase = 0;
  std::function<void(std::size_t, std::size_t)> pooled_step;
  if (parallel) {
    pooled_step = [this, &pooled_phase, &commit, &pooled_ids,
                   &worker_metrics, &network, &caches, arenas,
                   payload_arenas,
                   &lane_scratch](std::size_t worker, std::size_t i) {
      const ProcId p = pooled_ids[i];
      PayloadArenaScope scope(
          payload_arenas ? &arenas->lane(worker + 1).payload : nullptr);
      Context ctx(p, pooled_phase, config_.n, config_.t, &network.inbox(p),
                  &signer_for(p), &verifier_, &caches[p],
                  lane_scratch(worker + 1));
      processes_[p]->on_phase(ctx);
      for (auto& out : ctx.outgoing()) {
        commit(p, pooled_phase, out, /*sender_correct=*/true,
               worker_metrics[worker]);
      }
    };
  }

  // Every payload buffer the orchestration thread creates (serial phases,
  // faulty processors, fault-plan copy-on-write at commit) carves from
  // lane 0. Workers bind their own lane inside the pool callback.
  PayloadArenaScope payload_scope(
      payload_arenas ? &arenas->lane(0).payload : nullptr);

  // Heap-allocation accounting for the whole phase loop; the snapshot
  // after the warm-up boundary makes `steady` cover phases 2..end
  // (including their deliveries, excluding the delivery of phase 1's
  // traffic, which grows cold vectors).
  util::AllocProbe probe;
  const std::size_t payload_buffers_start = Payload::allocations();
  util::AllocCounters warmup{};
  bool warmup_snapped = false;

  for (PhaseNum phase = 1; phase <= phases; ++phase) {
    if (arenas != nullptr) {
      // Phase flip: all Contexts are gone, so every lane's phase-scoped
      // scratch recycles. Payload arenas persist for the whole run.
      for (std::size_t lane = 0; lane <= pool_workers; ++lane) {
        arenas->lane(lane).scratch.reset();
      }
    }
    network.deliver_next_phase();
    if (phase == 2 && !warmup_snapped) {
      warmup = probe.delta();
      warmup_snapped = true;
    }
    if (!config_.rushing) {
      if (!parallel) {
        for (ProcId p = 0; p < config_.n; ++p) {
          Context ctx(p, phase, config_.n, config_.t, &network.inbox(p),
                      &signer_for(p), &verifier_, &caches[p],
                      lane_scratch(0));
          processes_[p]->on_phase(ctx);
          for (auto& out : ctx.outgoing()) {
            commit(p, phase, out, !faulty_[p], metrics);
          }
        }
        continue;
      }
      pooled_phase = phase;
      pool->run(pooled_ids.size(), pooled_step);
      for (const ProcId p : serial_ids) {
        Context ctx(p, phase, config_.n, config_.t, &network.inbox(p),
                    &signer_for(p), &verifier_, &caches[p], lane_scratch(0));
        processes_[p]->on_phase(ctx);
        for (auto& out : ctx.outgoing()) {
          commit(p, phase, out, /*sender_correct=*/false, metrics);
        }
      }
      continue;
    }

    // Rushing: correct processors move first; faulty ones additionally see
    // this phase's correct traffic addressed to them before sending. The
    // observation channel and the augmented inboxes are handle copies of
    // the shared payload buffers — no bytes move.
    std::vector<Context::OutgoingVec> pending(config_.n);
    std::vector<std::vector<Envelope>> rushed(config_.n);
    for (ProcId p = 0; p < config_.n; ++p) {
      if (faulty_[p]) continue;
      Context ctx(p, phase, config_.n, config_.t, &network.inbox(p),
                  &signer_for(p), &verifier_, &caches[p], lane_scratch(0));
      processes_[p]->on_phase(ctx);
      for (const auto& out : ctx.outgoing()) {
        if (out.broadcast) {
          for (ProcId q = 0; q < config_.n; ++q) {
            if (q != p && faulty_[q]) {
              rushed[q].push_back(Envelope{p, q, phase, out.payload});
            }
          }
        } else if (faulty_[out.to]) {
          rushed[out.to].push_back(Envelope{p, out.to, phase, out.payload});
        }
      }
      pending[p] = std::move(ctx.outgoing());
    }
    for (ProcId p = 0; p < config_.n; ++p) {
      if (!faulty_[p]) continue;
      std::vector<Envelope> augmented = network.inbox(p);
      augmented.insert(augmented.end(),
                       std::make_move_iterator(rushed[p].begin()),
                       std::make_move_iterator(rushed[p].end()));
      Context ctx(p, phase, config_.n, config_.t, &augmented,
                  &signer_for(p), &verifier_, &caches[p], lane_scratch(0));
      processes_[p]->on_phase(ctx);
      for (auto& out : ctx.outgoing()) {
        commit(p, phase, out, /*sender_correct=*/false, metrics);
      }
    }
    for (ProcId p = 0; p < config_.n; ++p) {
      for (auto& out : pending[p]) {
        commit(p, phase, out, /*sender_correct=*/true, metrics);
      }
    }
  }
  // The final phase's sends are never delivered (the run ends before the
  // next flip), but the paper's history includes them; record them off the
  // still-pending sender shards.
  network.record_pending_history();

  const util::AllocCounters total = probe.delta();
  AllocReport allocs;
  allocs.total_blocks = total.blocks;
  allocs.total_bytes = total.bytes;
  if (warmup_snapped) {
    allocs.steady_blocks = total.blocks - warmup.blocks;
    allocs.steady_bytes = total.bytes - warmup.bytes;
  }
  allocs.payload_buffers = Payload::allocations() - payload_buffers_start;
  if (arenas != nullptr) {
    allocs.arena_payload_high_water = arenas->payload_high_water();
    allocs.arena_scratch_high_water = arenas->scratch_high_water();
  }

  for (const Metrics& shard : worker_metrics) metrics.merge(shard);
  for (ProcId p = 0; p < config_.n; ++p) {
    metrics.on_chain_cache(caches[p].hits(), caches[p].misses());
  }

  RunResult result{.decisions = {},
                   .evidence = {},
                   .faulty = faulty_,
                   .metrics = std::move(metrics),
                   .history = network.history(),
                   .phases_run = phases,
                   .allocs = allocs};
  result.decisions.reserve(config_.n);
  result.evidence.reserve(config_.n);
  for (ProcId p = 0; p < config_.n; ++p) {
    result.decisions.push_back(processes_[p]->decision());
    result.evidence.push_back(processes_[p]->evidence().value_or(Bytes{}));
  }
  return result;
}

}  // namespace dr::sim
