// Rendering recorded histories for humans: Graphviz DOT (one cluster per
// phase, edges annotated with decoded chain summaries) and a compact text
// timeline. Debugging aid for protocol work and the lower-bound
// experiments — a spliced history is much easier to reason about when you
// can see it.
#pragma once

#include <functional>
#include <string>

#include "hist/history.h"

namespace dr::hist {

/// Summarises an edge label for display. The default prints "<k bytes>";
/// ba::chain_label_printer() decodes signature chains ("v=1 sig[0,2]").
using LabelPrinter = std::function<std::string(ByteView)>;

LabelPrinter default_label_printer();

/// Graphviz DOT: one subgraph per phase, nodes "p<id>@<phase>", edges
/// between consecutive phase columns.
std::string to_dot(const History& history,
                   const LabelPrinter& printer = default_label_printer());

/// Plain-text timeline: one line per edge, grouped by phase.
std::string to_text(const History& history,
                    const LabelPrinter& printer = default_label_printer());

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by every JSON emitter in the
/// repo (chaos reproducers, history dumps).
std::string json_escape(std::string_view s);

/// Machine-readable history:
/// {"transmitter":T,"initial":"<hex>","phases":[[{"from":F,"to":T,
/// "label":"<hex>"},...],...]} — phase k is phases[k-1]; labels are
/// lower-case hex so arbitrary payload bytes survive the round trip.
std::string to_json(const History& history);

}  // namespace dr::hist
