#include "hist/history.h"

#include <algorithm>
#include <tuple>

#include "util/contracts.h"

namespace dr::hist {

namespace {

bool edge_less(const Edge& a, const Edge& b) {
  return std::tie(a.from, a.to, a.label) < std::tie(b.from, b.to, b.label);
}

const PhaseGraph& empty_graph() {
  static const PhaseGraph kEmpty;
  return kEmpty;
}

}  // namespace

void PhaseGraph::add(Edge edge) {
  if (!edges_.empty() && edge_less(edge, edges_.back())) sorted_ = false;
  edges_.push_back(std::move(edge));
}

void PhaseGraph::normalize() const {
  if (sorted_) return;
  std::sort(edges_.begin(), edges_.end(), edge_less);
  sorted_ = true;
}

bool operator==(const PhaseGraph& a, const PhaseGraph& b) {
  a.normalize();
  b.normalize();
  return a.edges_ == b.edges_;
}

std::vector<Edge> PhaseGraph::in_edges(ProcId p) const {
  normalize();
  std::vector<Edge> out;
  for (const Edge& e : edges_) {
    if (e.to == p) out.push_back(e);
  }
  std::sort(out.begin(), out.end(), edge_less);
  return out;
}

std::vector<Edge> PhaseGraph::out_edges(ProcId p) const {
  std::vector<Edge> out;
  for (const Edge& e : edges_) {
    if (e.from == p) out.push_back(e);
  }
  std::sort(out.begin(), out.end(), edge_less);
  return out;
}

void History::set_initial(ProcId transmitter, Bytes value_label) {
  transmitter_ = transmitter;
  initial_value_ = std::move(value_label);
}

void History::record(PhaseNum k, Edge edge) {
  DR_EXPECTS(k >= 1);
  if (k > phase_graphs_.size()) phase_graphs_.resize(k);
  phase_graphs_[k - 1].add(std::move(edge));
}

const PhaseGraph& History::phase(PhaseNum k) const {
  DR_EXPECTS(k >= 1);
  if (k > phase_graphs_.size()) return empty_graph();
  return phase_graphs_[k - 1];
}

History History::individual(ProcId p) const {
  History out;
  if (p == transmitter_ && initial_value_.has_value()) {
    out.set_initial(transmitter_, *initial_value_);
  }
  out.phase_graphs_.resize(phase_graphs_.size());
  for (std::size_t k = 0; k < phase_graphs_.size(); ++k) {
    for (Edge e : phase_graphs_[k].in_edges(p)) {
      out.phase_graphs_[k].add(std::move(e));
    }
  }
  return out;
}

History History::prefix(PhaseNum k) const {
  History out;
  out.transmitter_ = transmitter_;
  out.initial_value_ = initial_value_;
  const std::size_t keep = std::min<std::size_t>(k, phase_graphs_.size());
  out.phase_graphs_.assign(phase_graphs_.begin(),
                           phase_graphs_.begin() +
                               static_cast<std::ptrdiff_t>(keep));
  return out;
}

std::size_t History::count_edges(
    const std::function<bool(const Edge&)>& pred) const {
  std::size_t total = 0;
  for (const PhaseGraph& g : phase_graphs_) {
    for (const Edge& e : g.edges()) {
      if (pred(e)) ++total;
    }
  }
  return total;
}

}  // namespace dr::hist
