// Executable version of the paper's Section-2 formal model.
//
// A *phase* is a directed graph over the processors; a label on edge (p, q)
// is the information sent from p to q during that phase. A *history* is a
// finite sequence of phases, preceded by the special phase 0 that carries
// only the transmitter's input value. The *individual subhistory* pH of a
// history H for processor p consists of only those edges with target p —
// it is everything p ever observes, and the object the paper's
// indistinguishability arguments compare.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/payload.h"  // header-only; hist does not link against sim
#include "util/bytes.h"

namespace dr::hist {

using ProcId = std::uint32_t;
using PhaseNum = std::uint32_t;

struct Edge {
  ProcId from = 0;
  ProcId to = 0;
  sim::Payload label;  // shared handle — recording a broadcast copies no bytes

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// One phase: the labelled digraph of messages sent during it. Edges are
/// kept sorted by (from, to, label) so graph equality is set equality.
class PhaseGraph {
 public:
  void add(Edge edge);
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edges with target `p`, in canonical order.
  std::vector<Edge> in_edges(ProcId p) const;
  /// Edges with source `p`, in canonical order.
  std::vector<Edge> out_edges(ProcId p) const;

  /// Set equality: insertion order does not matter.
  friend bool operator==(const PhaseGraph& a, const PhaseGraph& b);

 private:
  mutable bool sorted_ = true;
  mutable std::vector<Edge> edges_;
  void normalize() const;
};

class History {
 public:
  History() = default;

  /// Sets the phase-0 in-edge at the transmitter (its private value).
  void set_initial(ProcId transmitter, Bytes value_label);
  ProcId transmitter() const { return transmitter_; }
  const std::optional<Bytes>& initial_value() const { return initial_value_; }

  /// Records an edge in phase `k` (k >= 1). Phases may be recorded out of
  /// order; missing phases are empty graphs.
  void record(PhaseNum k, Edge edge);

  /// Number of phases (excluding phase 0).
  PhaseNum phases() const {
    return static_cast<PhaseNum>(phase_graphs_.size());
  }
  const PhaseGraph& phase(PhaseNum k) const;

  /// The individual subhistory pH: same length, only edges with target p.
  /// Phase 0 survives only when p is the transmitter.
  History individual(ProcId p) const;

  /// The subhistory consisting of the first `k` phases.
  History prefix(PhaseNum k) const;

  /// Total number of edges whose source satisfies `pred` (used to count
  /// messages sent by correct processors).
  std::size_t count_edges(
      const std::function<bool(const Edge&)>& pred) const;

  friend bool operator==(const History&, const History&) = default;

 private:
  ProcId transmitter_ = 0;
  std::optional<Bytes> initial_value_;
  std::vector<PhaseGraph> phase_graphs_;  // phase_graphs_[k-1] is phase k
};

}  // namespace dr::hist
