#include "hist/export.h"

#include <set>
#include <sstream>

namespace dr::hist {

LabelPrinter default_label_printer() {
  return [](const Bytes& label) {
    std::ostringstream out;
    out << "<" << label.size() << " bytes>";
    return out.str();
  };
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const History& history, const LabelPrinter& printer) {
  std::ostringstream out;
  out << "digraph history {\n  rankdir=LR;\n  node [shape=box];\n";
  for (PhaseNum k = 1; k <= history.phases(); ++k) {
    out << "  subgraph cluster_phase" << k << " {\n"
        << "    label=\"phase " << k << "\";\n";
    // Declare the sender column of this phase.
    std::set<ProcId> senders;
    for (const Edge& e : history.phase(k).edges()) senders.insert(e.from);
    for (ProcId p : senders) {
      out << "    \"p" << p << "@" << k << "\" [label=\"p" << p << "\"];\n";
    }
    out << "  }\n";
  }
  for (PhaseNum k = 1; k <= history.phases(); ++k) {
    for (const Edge& e : history.phase(k).edges()) {
      out << "  \"p" << e.from << "@" << k << "\" -> \"p" << e.to << "@"
          << (k + 1) << "\" [label=\"" << escape(printer(e.label))
          << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_text(const History& history, const LabelPrinter& printer) {
  std::ostringstream out;
  if (history.initial_value().has_value()) {
    out << "phase 0: -> p" << history.transmitter() << " (input)\n";
  }
  for (PhaseNum k = 1; k <= history.phases(); ++k) {
    const auto& edges = history.phase(k).edges();
    if (edges.empty()) continue;
    out << "phase " << k << ":\n";
    for (const Edge& e : edges) {
      out << "  p" << e.from << " -> p" << e.to << "  "
          << printer(e.label) << "\n";
    }
  }
  return out.str();
}

}  // namespace dr::hist
