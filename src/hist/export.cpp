#include "hist/export.h"

#include <cstdio>
#include <set>
#include <sstream>

namespace dr::hist {

LabelPrinter default_label_printer() {
  return [](ByteView label) {
    std::ostringstream out;
    out << "<" << label.size() << " bytes>";
    return out.str();
  };
}

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const History& history, const LabelPrinter& printer) {
  std::ostringstream out;
  out << "digraph history {\n  rankdir=LR;\n  node [shape=box];\n";
  for (PhaseNum k = 1; k <= history.phases(); ++k) {
    out << "  subgraph cluster_phase" << k << " {\n"
        << "    label=\"phase " << k << "\";\n";
    // Declare the sender column of this phase.
    std::set<ProcId> senders;
    for (const Edge& e : history.phase(k).edges()) senders.insert(e.from);
    for (ProcId p : senders) {
      out << "    \"p" << p << "@" << k << "\" [label=\"p" << p << "\"];\n";
    }
    out << "  }\n";
  }
  for (PhaseNum k = 1; k <= history.phases(); ++k) {
    for (const Edge& e : history.phase(k).edges()) {
      out << "  \"p" << e.from << "@" << k << "\" -> \"p" << e.to << "@"
          << (k + 1) << "\" [label=\"" << escape(printer(e.label))
          << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string to_json(const History& history) {
  std::ostringstream out;
  out << "{\"transmitter\":" << history.transmitter();
  if (history.initial_value().has_value()) {
    out << ",\"initial\":\"" << to_hex(*history.initial_value()) << "\"";
  }
  out << ",\"phases\":[";
  for (PhaseNum k = 1; k <= history.phases(); ++k) {
    if (k > 1) out << ",";
    out << "[";
    bool first = true;
    for (const Edge& e : history.phase(k).edges()) {
      if (!first) out << ",";
      first = false;
      out << "{\"from\":" << e.from << ",\"to\":" << e.to << ",\"label\":\""
          << to_hex(e.label) << "\"}";
    }
    out << "]";
  }
  out << "]}";
  return out.str();
}

std::string to_text(const History& history, const LabelPrinter& printer) {
  std::ostringstream out;
  if (history.initial_value().has_value()) {
    out << "phase 0: -> p" << history.transmitter() << " (input)\n";
  }
  for (PhaseNum k = 1; k <= history.phases(); ++k) {
    const auto& edges = history.phase(k).edges();
    if (edges.empty()) continue;
    out << "phase " << k << ":\n";
    for (const Edge& e : edges) {
      out << "  p" << e.from << " -> p" << e.to << "  "
          << printer(e.label) << "\n";
    }
  }
  return out.str();
}

}  // namespace dr::hist
