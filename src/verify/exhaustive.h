// Exhaustive small-model checking of Byzantine Agreement protocols.
//
// Sampled adversaries (fuzzers, scripted attacks) can miss corner cases;
// for tiny configurations we can do better and enumerate EVERY strategy of
// a single Byzantine processor, up to the following sound abstraction:
//
//   Unforgeability closes the adversary's useful message space. Whatever a
//   faulty processor sends is either (a) nothing, (b) a fresh chain it can
//   sign itself (value 0 or 1 under its own signature), (c) a replay of a
//   payload it has observed, or (d) an observed chain extended by its own
//   signature. Arbitrary other byte strings are rejected uniformly by every
//   decoder (they carry no verifiable signature), so they are behaviourally
//   equivalent to (a) — the protocols never branch on undecodable content.
//
// Under that abstraction the faulty processor's strategy is a finite tree:
// at each phase, for each receiver, pick one option from the pool derived
// from its observations so far. exhaust() walks the whole tree (mixed-radix
// backtracking over a script of choices, re-simulating per leaf) and checks
// the Byzantine Agreement conditions in every single execution.
//
// This is how the repository "proves" (model-checks) e.g. Algorithm 1 at
// n = 3, t = 1 against every adversary, not just the ones we thought of.
#pragma once

#include <cstdint>
#include <vector>

#include "ba/registry.h"

namespace dr::verify {

struct ExhaustiveResult {
  std::size_t executions = 0;
  std::size_t violations = 0;      // runs violating agreement or validity
  bool truncated = false;          // hit max_runs before finishing
  /// The choice script of the first violating execution (for replay).
  std::vector<std::uint32_t> first_violation;
};

struct ExhaustiveOptions {
  /// Stop after this many executions (safety valve; `truncated` reports it).
  std::size_t max_runs = 5'000'000;
  /// Cap on distinct observed payloads fed into the option pool.
  std::size_t max_pool = 12;
  /// Faulty senders stop making choices after this phase (sends in the last
  /// simulator step are never delivered anyway). 0 = steps(config) - 1.
  sim::PhaseNum last_send_phase = 0;
  /// Enumerate under rushing semantics (the adversary observes the current
  /// phase's correct traffic before choosing — larger option pools).
  bool rushing = false;
};

/// Exhaustively checks `protocol` at `config` with exactly one faulty
/// processor `faulty_id`. Validity is asserted when faulty_id is not the
/// transmitter; agreement always.
ExhaustiveResult exhaust(const ba::Protocol& protocol,
                         const ba::BAConfig& config, ba::ProcId faulty_id,
                         const ExhaustiveOptions& options = {});

/// One deterministic re-execution of a recorded choice script (typically
/// `first_violation`). Decision points beyond the script's end take choice
/// 0 — which also makes the `[0]` empty-script marker replay exactly the
/// all-zero execution it was recorded from. The witness claim Theorems 1/2
/// rest on is checked here: the replayed run really does break agreement
/// (or validity), not merely get counted.
struct ReplayOutcome {
  bool agreement = false;
  bool validity = false;   // meaningful when faulty_id != transmitter
  bool violation = false;  // the asserted BA conditions fail in this run
  sim::RunResult run;
};

ReplayOutcome replay_script(const ba::Protocol& protocol,
                            const ba::BAConfig& config, ba::ProcId faulty_id,
                            const std::vector<std::uint32_t>& script,
                            const ExhaustiveOptions& options = {});

}  // namespace dr::verify
