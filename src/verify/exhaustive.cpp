#include "verify/exhaustive.h"

#include <algorithm>

#include "ba/signed_value.h"
#include "util/contracts.h"

namespace dr::verify {

namespace {

using ba::BAConfig;
using ba::ProcId;
using ba::SignedValue;
using sim::PhaseNum;

/// Shared between the enumerator and the adversary instance of one run:
/// the script of choices, consumed left to right, and the arity observed at
/// each decision point (needed to increment the script afterwards).
struct ScriptState {
  std::vector<std::uint32_t> script;
  std::vector<std::uint32_t> arity;
  std::size_t cursor = 0;

  /// Returns the chosen index at the current decision point with
  /// `options` alternatives, extending the script with 0 when exploring a
  /// fresh branch.
  std::uint32_t decide(std::uint32_t options) {
    DR_EXPECTS(options >= 1);
    if (cursor == script.size()) script.push_back(0);
    if (cursor == arity.size()) {
      arity.push_back(options);
    } else {
      arity[cursor] = options;
    }
    const std::uint32_t choice = script[cursor];
    ++cursor;
    DR_ASSERT(choice < options);
    return choice;
  }

  /// Mixed-radix increment over the consumed prefix. Returns false when the
  /// whole space is exhausted.
  bool advance() {
    script.resize(cursor);
    arity.resize(cursor);
    while (!script.empty()) {
      if (script.back() + 1 < arity.back()) {
        ++script.back();
        return true;
      }
      script.pop_back();
      arity.pop_back();
    }
    return false;
  }

  void rewind() { cursor = 0; }
};

/// The enumerated Byzantine processor. Option pool per decision point:
///   0: send nothing
///   1: fresh self-signed value 0
///   2: fresh self-signed value 1
///   3 + 2k:     replay observed payload k
///   3 + 2k + 1: observed payload k, chain-extended by our signature
class ScriptedAdversary final : public sim::Process {
 public:
  ScriptedAdversary(ScriptState* state, const ExhaustiveOptions& options,
                    PhaseNum last_send_phase)
      : state_(state), options_(options),
        last_send_phase_(last_send_phase) {}

  void on_phase(sim::Context& ctx) override {
    for (const sim::Envelope& env : ctx.inbox()) {
      if (observed_.size() >= options_.max_pool) break;
      if (std::find(observed_.begin(), observed_.end(), env.payload) ==
          observed_.end()) {
        observed_.push_back(env.payload);
      }
    }
    if (ctx.phase() > last_send_phase_) return;

    const auto option_count =
        static_cast<std::uint32_t>(3 + 2 * observed_.size());
    for (ProcId q = 0; q < ctx.n(); ++q) {
      if (q == ctx.self()) continue;
      const std::uint32_t choice = state_->decide(option_count);
      if (choice == 0) continue;
      if (choice == 1 || choice == 2) {
        const SignedValue sv =
            ba::make_signed(choice == 1 ? 0 : 1, ctx.signer(), ctx.self());
        ctx.send(q, encode(sv), 0);
        continue;
      }
      const std::size_t k = (choice - 3) / 2;
      const bool extend_it = (choice - 3) % 2 == 1;
      if (!extend_it) {
        ctx.send(q, observed_[k], 0);
        continue;
      }
      const auto sv = ba::decode_signed_value(observed_[k]);
      if (!sv.has_value()) {
        // Not a chain: extension degenerates to a replay.
        ctx.send(q, observed_[k], 0);
        continue;
      }
      const SignedValue ext = ba::extend(*sv, ctx.signer(), ctx.self());
      ctx.send(q, encode(ext), 0);
    }
  }

  std::optional<ba::Value> decision() const override { return std::nullopt; }

 private:
  ScriptState* state_;
  const ExhaustiveOptions& options_;
  PhaseNum last_send_phase_;
  std::vector<sim::Payload> observed_;  // handles; dedup compares content
};

}  // namespace

ExhaustiveResult exhaust(const ba::Protocol& protocol,
                         const ba::BAConfig& config, ba::ProcId faulty_id,
                         const ExhaustiveOptions& options) {
  DR_EXPECTS(protocol.supports(config));
  DR_EXPECTS(config.t >= 1);
  DR_EXPECTS(faulty_id < config.n);

  const PhaseNum steps = protocol.steps(config);
  const PhaseNum last_send = options.last_send_phase != 0
                                 ? options.last_send_phase
                                 : (steps > 1 ? steps - 1 : steps);

  ExhaustiveResult result;
  ScriptState state;
  while (true) {
    state.rewind();
    sim::Runner runner(sim::RunConfig{.n = config.n,
                                      .t = config.t,
                                      .transmitter = config.transmitter,
                                      .value = config.value,
                                      .seed = 1,
                                      .rushing = options.rushing});
    runner.mark_faulty(faulty_id);
    for (ProcId p = 0; p < config.n; ++p) {
      if (p == faulty_id) {
        runner.install(p, std::make_unique<ScriptedAdversary>(
                              &state, options, last_send));
      } else {
        runner.install(p, protocol.make(p, config));
      }
    }
    const auto run = runner.run(steps);
    ++result.executions;

    const auto check = sim::check_byzantine_agreement(
        run, config.transmitter, config.value);
    const bool ok = check.agreement &&
                    (faulty_id == config.transmitter || check.validity);
    if (!ok) {
      ++result.violations;
      if (result.first_violation.empty()) {
        result.first_violation = state.script;
        if (result.first_violation.empty()) {
          result.first_violation.push_back(0);  // mark "empty script" runs
        }
      }
    }

    if (result.executions >= options.max_runs) {
      result.truncated = true;
      return result;
    }
    if (!state.advance()) return result;
  }
}

ReplayOutcome replay_script(const ba::Protocol& protocol,
                            const ba::BAConfig& config, ba::ProcId faulty_id,
                            const std::vector<std::uint32_t>& script,
                            const ExhaustiveOptions& options) {
  DR_EXPECTS(protocol.supports(config));
  DR_EXPECTS(config.t >= 1);
  DR_EXPECTS(faulty_id < config.n);

  const PhaseNum steps = protocol.steps(config);
  const PhaseNum last_send = options.last_send_phase != 0
                                 ? options.last_send_phase
                                 : (steps > 1 ? steps - 1 : steps);

  // Same trajectory as the enumeration run that recorded `script`: the
  // correct processors are deterministic, so every decision point recurs
  // with the same arity and the recorded choices stay in range; decide()
  // extends an exhausted script with choice 0.
  ScriptState state;
  state.script = script;
  sim::Runner runner(sim::RunConfig{.n = config.n,
                                    .t = config.t,
                                    .transmitter = config.transmitter,
                                    .value = config.value,
                                    .seed = 1,
                                    .rushing = options.rushing});
  runner.mark_faulty(faulty_id);
  for (ProcId p = 0; p < config.n; ++p) {
    if (p == faulty_id) {
      runner.install(p, std::make_unique<ScriptedAdversary>(&state, options,
                                                            last_send));
    } else {
      runner.install(p, protocol.make(p, config));
    }
  }

  ReplayOutcome outcome;
  outcome.run = runner.run(steps);
  const auto check = sim::check_byzantine_agreement(
      outcome.run, config.transmitter, config.value);
  outcome.agreement = check.agreement;
  outcome.validity = check.validity;
  outcome.violation =
      !(check.agreement &&
        (faulty_id == config.transmitter || check.validity));
  return outcome;
}

}  // namespace dr::verify
