// Unauthenticated baseline: Exponential Information Gathering, the classic
// oral-messages algorithm of Pease, Shostak & Lamport (the paper's reference
// [15]) in its EIG-tree formulation. Requires n > 3t.
//
// The paper uses unauthenticated algorithms as comparison points for
// Corollary 1 (at least n(t+1)/4 messages without authentication). EIG's
// failure-free message count comfortably exhibits the Omega(nt) behaviour;
// its worst case is exponential, which is why it is only run at small n, t.
//
// Round structure: in round 1 the transmitter broadcasts its value; in round
// k each processor relays every path of length k-1 it stored that does not
// contain itself, with its own id appended. After round t+1 each processor
// resolves the EIG tree bottom-up by strict majority (default value on
// ties/missing) and decides the resolved root.
#pragma once

#include <map>
#include <vector>

#include "ba/config.h"
#include "sim/process.h"

namespace dr::ba {

class Eig final : public sim::Process {
 public:
  Eig(ProcId self, const BAConfig& config);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;

  static PhaseNum steps(const BAConfig& config) {
    return static_cast<PhaseNum>(config.t + 2);
  }
  static bool supports(const BAConfig& config) {
    return config.n > 3 * config.t;
  }

  using Path = std::vector<ProcId>;

  /// The stored EIG tree (path -> reported value); exposed for tests.
  const std::map<Path, Value>& tree() const { return tree_; }

 private:
  /// Validates a relayed (path, value) pair against the sender and phase.
  bool valid_pair(const Path& path, ProcId from, PhaseNum sent_phase) const;

  Value resolve(const Path& path) const;

  ProcId self_;
  BAConfig config_;
  std::map<Path, Value> tree_;
};

}  // namespace dr::ba
