// Executable version of Section 2's correctness predicate.
//
// "A processor p is said to be *correct at phase k* of history H if each
// edge from p in phase k has a label as specified by the correctness rule
// for p applied to the individual subhistory of H for p consisting of the
// previous k-1 phases."
//
// Protocols in this library are deterministic functions of their inbox
// sequence, so the correctness rule R_p is simply "what a fresh instance of
// the protocol would send". validate_correctness replays each allegedly
// correct processor against its individual subhistory and reports every
// phase where the recorded out-edges differ — which is exactly how the
// paper's indistinguishability arguments are allowed to treat recorded
// histories.
#pragma once

#include <string>
#include <vector>

#include "ba/registry.h"
#include "hist/history.h"

namespace dr::ba {

struct ReplayViolation {
  ProcId processor = 0;
  PhaseNum phase = 0;
  std::string what;
};

struct ReplayReport {
  bool conforming = true;
  std::vector<ReplayViolation> violations;
};

/// Replays every processor not marked faulty through `protocol` against its
/// individual subhistory of `history` and checks that its sends match the
/// recorded edges. `seed` must be the seed the history was recorded with
/// (signatures are deterministic per seed). Checks min(history length,
/// protocol.steps(config)) phases.
ReplayReport validate_correctness(const hist::History& history,
                                  const Protocol& protocol,
                                  const BAConfig& config,
                                  const std::vector<bool>& faulty,
                                  std::uint64_t seed);

}  // namespace dr::ba
