#include "ba/valid_message.h"

#include <algorithm>

namespace dr::ba {

bool is_valid_message(const SignedValue& sv, const crypto::Verifier& verifier,
                      std::size_t active_count, std::size_t t) {
  if (!verify_chain(sv, verifier)) return false;
  std::vector<ProcId> active_signers;
  for (const auto& sig : sv.chain) {
    if (sig.signer < active_count) active_signers.push_back(sig.signer);
  }
  std::sort(active_signers.begin(), active_signers.end());
  active_signers.erase(
      std::unique(active_signers.begin(), active_signers.end()),
      active_signers.end());
  return active_signers.size() >= t + 1;
}

bool is_possession_proof(const SignedValue& sv,
                         const crypto::Verifier& verifier, ProcId holder,
                         std::size_t t) {
  if (!verify_chain(sv, verifier)) return false;
  std::vector<ProcId> others;
  for (const auto& sig : sv.chain) {
    if (sig.signer != holder) others.push_back(sig.signer);
  }
  std::sort(others.begin(), others.end());
  others.erase(std::unique(others.begin(), others.end()), others.end());
  return others.size() >= t;
}

}  // namespace dr::ba
