#include "ba/valid_message.h"

#include <algorithm>

namespace dr::ba {

namespace {

/// Number of distinct ids in `ids` (consumes its argument).
std::size_t distinct_count(std::vector<ProcId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

}  // namespace

bool is_valid_message(const SignedValue& sv, const crypto::Verifier& verifier,
                      std::size_t active_count, std::size_t t,
                      crypto::VerifyCache* cache) {
  if (!verify_chain(sv, verifier, cache)) return false;
  std::vector<ProcId> active_signers;
  for (const auto& sig : sv.chain) {
    if (sig.signer < active_count) active_signers.push_back(sig.signer);
  }
  return distinct_count(std::move(active_signers)) >= t + 1;
}

bool is_possession_proof(const SignedValue& sv,
                         const crypto::Verifier& verifier, ProcId holder,
                         std::size_t t, crypto::VerifyCache* cache) {
  if (!verify_chain(sv, verifier, cache)) return false;
  std::vector<ProcId> others;
  for (const auto& sig : sv.chain) {
    if (sig.signer != holder) others.push_back(sig.signer);
  }
  return distinct_count(std::move(others)) >= t;
}

}  // namespace dr::ba
