#include "ba/valid_message.h"

#include <algorithm>
#include <cstdint>

#include "crypto/verify_cache.h"
#include "util/arena.h"

namespace dr::ba {

namespace {

/// Number of distinct ids in `ids` (consumes its argument).
std::size_t distinct_count(std::vector<ProcId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

// ---------------------------------------------------------------------------
// prewarm_inbox: in-place chain parsing + batched verification planning.

/// One signature of a chain, viewed in place inside the payload buffer.
struct ParsedSig {
  ProcId signer = 0;
  ByteView sig;
};

template <typename T>
using ArenaVec = std::vector<T, ArenaAllocator<T>>;

/// Minimal in-place mirror of codec::Reader for walking candidate
/// SignedValue wire images without copying signature bytes out. The varint
/// rules (termination, 64-bit overflow rejection) match Reader::varint
/// exactly so this accepts precisely the inputs decode_signed_value accepts.
struct Cursor {
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;
  bool ok = true;

  explicit Cursor(ByteView data)
      : p(data.data()), end(data.data() + data.size()) {}

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (!ok || p == end || shift >= 64) {
        ok = false;
        return 0;
      }
      const std::uint8_t b = *p++;
      if (shift == 63 && (b & 0x7e) != 0) {
        ok = false;
        return 0;
      }
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  ByteView take(std::uint64_t n) {
    if (!ok || n > remaining()) {
      ok = false;
      return {};
    }
    const ByteView out{p, static_cast<std::size_t>(n)};
    p += n;
    return out;
  }

  std::uint64_t remaining() const {
    return static_cast<std::uint64_t>(end - p);
  }
  bool done() const { return ok && p == end; }
};

/// Parses `image` as a complete SignedValue wire image (value, signature
/// count, signatures), appending in-place signature views to `sigs`. Accepts
/// exactly what decode_signed_value accepts — same varint, sequence-guard,
/// and signature-size rules — and rejects anything else, so the prepass and
/// the protocol's own decode agree on which messages carry chains.
bool parse_chain_image(ByteView image, Value* value, ArenaVec<ParsedSig>* sigs) {
  Cursor c(image);
  const Value v = c.varint();
  const std::uint64_t count = c.varint();
  if (!c.ok || count > c.remaining()) return false;  // Reader::seq guard
  const std::size_t base = sigs->size();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t signer = c.varint();
    if (!c.ok || signer > 0xffffffffULL) break;  // Reader::u32 range check
    const ByteView sig = c.take(c.varint());
    if (!c.ok || sig.empty() || sig.size() > crypto::kMaxSignatureSize) {
      c.ok = false;
      break;
    }
    sigs->push_back(ParsedSig{static_cast<ProcId>(signer), sig});
  }
  if (!c.done()) {
    sigs->resize(base);
    return false;
  }
  *value = v;
  return true;
}

/// The planning half of verify_chain's cached walk: probes (without
/// counting) each link of one parsed chain and appends a VerifyRequest for
/// every link the cache cannot answer. The hash stream lags at `streamed`
/// absorbed signatures, exactly like verify_chain, so probe hits cost zero
/// hashing and each signature is absorbed at most once. Extended digests
/// are content addresses — they do not depend on whether the link's
/// signature turns out valid — so the whole chain can be planned up front.
void plan_chain(crypto::VerifyCache& cache, Value value,
                const ParsedSig* sigs, std::size_t count,
                ArenaVec<crypto::VerifyRequest>* requests) {
  if (count == 0) return;
  crypto::Sha256 h;
  detail::absorb_chain_head(h, value);
  crypto::Digest covered = h.peek();
  std::size_t streamed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ParsedSig& s = sigs[i];
    if (const auto extended = cache.probe(s.signer, covered, s.sig)) {
      covered = *extended;
      continue;
    }
    while (streamed < i) {
      detail::absorb_signature_raw(h, sigs[streamed].signer,
                                   sigs[streamed].sig);
      ++streamed;
    }
    detail::absorb_signature_raw(h, s.signer, s.sig);
    streamed = i + 1;
    const crypto::Digest extended = h.peek();
    requests->push_back(
        crypto::VerifyRequest{s.signer, s.sig, covered, extended});
    covered = extended;
  }
}

}  // namespace

bool is_valid_message(const SignedValue& sv, const crypto::Verifier& verifier,
                      std::size_t active_count, std::size_t t,
                      crypto::VerifyCache* cache) {
  if (!verify_chain(sv, verifier, cache)) return false;
  std::vector<ProcId> active_signers;
  for (const auto& sig : sv.chain) {
    if (sig.signer < active_count) active_signers.push_back(sig.signer);
  }
  return distinct_count(std::move(active_signers)) >= t + 1;
}

bool is_possession_proof(const SignedValue& sv,
                         const crypto::Verifier& verifier, ProcId holder,
                         std::size_t t, crypto::VerifyCache* cache) {
  if (!verify_chain(sv, verifier, cache)) return false;
  std::vector<ProcId> others;
  for (const auto& sig : sv.chain) {
    if (sig.signer != holder) others.push_back(sig.signer);
  }
  return distinct_count(std::move(others)) >= t;
}

void prewarm_inbox(sim::Context& ctx) {
  crypto::VerifyCache* cache = ctx.chain_cache();
  if (cache == nullptr || !ctx.claim_prewarm()) return;
  const crypto::SignatureScheme* scheme = ctx.verifier().scheme();
  if (scheme == nullptr) return;

  // Phase scratch: the request array and per-message signature views bump-
  // allocate out of one arena that is recycled every phase, so a steady-
  // state inbox batch performs no heap allocation here at all. The
  // runner's lane scratch is used when bound (recycled at the phase flip
  // by the runner — not here, since the Context's outgoing queue shares
  // it); harnesses without one get a thread-local arena reset per call.
  Arena* arena = ctx.scratch_arena();
  if (arena == nullptr) {
    thread_local Arena fallback;
    fallback.reset();
    arena = &fallback;
  }
  ArenaVec<crypto::VerifyRequest> requests{
      ArenaAllocator<crypto::VerifyRequest>(arena)};
  ArenaVec<ParsedSig> sigs{ArenaAllocator<ParsedSig>(arena)};

  for (const sim::Envelope& env : ctx.inbox()) {
    const ByteView payload = env.payload.view();
    Value value = 0;
    sigs.clear();
    if (parse_chain_image(payload, &value, &sigs)) {
      plan_chain(*cache, value, sigs.data(), sigs.size(), &requests);
      continue;
    }
    // Framed shape: a length-prefixed chain image at the head of the
    // payload with a protocol-specific trailer after it (Algorithm 5's
    // encode_alg5). The trailer's own contents are left to the protocol.
    Cursor c(payload);
    const ByteView image = c.take(c.varint());
    if (!c.ok) continue;
    sigs.clear();
    if (parse_chain_image(image, &value, &sigs)) {
      plan_chain(*cache, value, sigs.data(), sigs.size(), &requests);
    }
  }

  if (!requests.empty()) {
    crypto::verify_batch(*scheme, cache, requests.data(), requests.size());
  }
}

}  // namespace dr::ba
