#include "ba/exchange.h"

#include "util/contracts.h"

namespace dr::ba {

namespace {

Bytes attest_domain(ProcId signer, ByteView body) {
  Writer w;
  w.str("dr82.attest");
  w.u32(signer);
  w.bytes(body);
  return std::move(w).take();
}

}  // namespace

Attested attest(ByteView body, const crypto::Signer& signer, ProcId as) {
  Attested a;
  a.signer = as;
  a.body.assign(body.begin(), body.end());
  a.sig = signer.sign(as, attest_domain(as, body));
  return a;
}

bool verify_attested(const Attested& a, const crypto::Verifier& verifier) {
  return verifier.verify(a.signer, attest_domain(a.signer, a.body), a.sig);
}

void encode(Writer& w, const Attested& a) {
  w.u32(a.signer);
  w.bytes(a.body);
  crypto::encode(w, a.sig);
}

std::optional<Attested> decode_attested(Reader& r) {
  Attested a;
  a.signer = r.u32();
  a.body = r.bytes();
  const auto sig = crypto::decode_signature(r);
  if (!r.ok() || !sig) return std::nullopt;
  a.sig = *sig;
  return a;
}

// ---------------------------------------------------------------------------
// GridExchangeCore

GridExchangeCore::GridExchangeCore(ProcId self, std::size_t m,
                                   sim::PhaseNum start)
    : self_(self), m_(m), start_(start) {
  DR_EXPECTS(m >= 1);
  DR_EXPECTS(self < m * m);
}

void GridExchangeCore::remember(const Attested& a,
                                const crypto::Verifier& verifier) {
  if (a.signer >= m_ * m_) return;
  if (known_.contains(a.signer)) return;  // first report wins
  if (!verify_attested(a, verifier)) return;
  known_.emplace(a.signer, a);
}

Bytes GridExchangeCore::bundle(const std::vector<Attested>& items) {
  Writer w;
  w.seq(items.size());
  for (const Attested& a : items) encode(w, a);
  return std::move(w).take();
}

std::optional<std::vector<Attested>> GridExchangeCore::unbundle(
    ByteView data) {
  Reader r(data);
  const std::size_t count = r.seq();
  std::vector<Attested> items;
  items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto a = decode_attested(r);
    if (!a) return std::nullopt;
    items.push_back(std::move(*a));
  }
  if (!r.done()) return std::nullopt;
  return items;
}

void GridExchangeCore::on_phase(sim::Context& ctx) {
  const sim::PhaseNum phase = ctx.phase();
  if (phase < start_ || phase > start_ + 3) return;
  const std::size_t i = row(self_);
  const std::size_t j = col(self_);

  // --- Receive side -------------------------------------------------------
  if (phase == start_ + 1) {
    // Phase-1 messages from row mates: single attested values.
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.sent_phase != start_ || row(env.from) != i) continue;
      const auto items = unbundle(env.payload);
      if (!items || items->size() != 1) continue;
      const Attested& a = items->front();
      // The paper's correct format: a value signed by p(i,k) itself.
      if (a.signer != env.from) continue;
      remember(a, ctx.verifier());
      row_collected_.push_back(a);
    }
  } else if (phase == start_ + 2) {
    // Phase-2 messages from column mates: row bundles signed by row(from).
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.sent_phase != start_ + 1 || col(env.from) != j) continue;
      const auto items = unbundle(env.payload);
      if (!items || items->size() > m_) continue;
      bool format_ok = true;
      for (const Attested& a : *items) {
        if (row(a.signer) != row(env.from)) format_ok = false;
      }
      if (!format_ok) continue;  // M2(i,j,l) := empty string
      for (const Attested& a : *items) {
        remember(a, ctx.verifier());
        col_collected_.push_back(a);
      }
    }
  } else if (phase == start_ + 3) {
    // Phase-3 messages from row mates: anything validly attested counts.
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.sent_phase != start_ + 2 || row(env.from) != i) continue;
      const auto items = unbundle(env.payload);
      if (!items) continue;
      for (const Attested& a : *items) remember(a, ctx.verifier());
    }
  }

  // --- Send side ----------------------------------------------------------
  if (phase == start_) {
    const Attested own = attest(body_, ctx.signer(), self_);
    remember(own, ctx.verifier());
    row_collected_.push_back(own);
    const sim::Payload payload{bundle({own})};
    for (std::size_t k = 0; k < m_; ++k) {
      if (id(i, k) != self_) ctx.send(id(i, k), payload, 1);
    }
  } else if (phase == start_ + 1) {
    const sim::Payload payload{bundle(row_collected_)};
    col_collected_.insert(col_collected_.end(), row_collected_.begin(),
                          row_collected_.end());
    for (std::size_t l = 0; l < m_; ++l) {
      if (id(l, j) != self_) {
        ctx.send(id(l, j), payload, row_collected_.size());
      }
    }
  } else if (phase == start_ + 2) {
    const sim::Payload payload{bundle(col_collected_)};
    for (std::size_t k = 0; k < m_; ++k) {
      if (id(i, k) != self_) {
        ctx.send(id(i, k), payload, col_collected_.size());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Wrappers

GridExchangeProcess::GridExchangeProcess(ProcId self, std::size_t m,
                                         Bytes body)
    : core_(self, m, 1) {
  core_.set_body(std::move(body));
}

void GridExchangeProcess::on_phase(sim::Context& ctx) { core_.on_phase(ctx); }

NaiveExchangeProcess::NaiveExchangeProcess(ProcId self, std::size_t n,
                                           Bytes body)
    : self_(self), n_(n), body_(std::move(body)) {}

void NaiveExchangeProcess::on_phase(sim::Context& ctx) {
  if (ctx.phase() == 1) {
    const Attested own = attest(body_, ctx.signer(), self_);
    known_.emplace(self_, own);
    Writer w;
    encode(w, own);
    ctx.send_all(std::move(w).take(), 1);
  } else if (ctx.phase() == 2) {
    for (const sim::Envelope& env : ctx.inbox()) {
      Reader r(env.payload);
      const auto a = decode_attested(r);
      if (!a || !r.done() || a->signer != env.from) continue;
      if (!verify_attested(*a, ctx.verifier())) continue;
      known_.emplace(a->signer, *a);
    }
  }
}

RelayExchangeProcess::RelayExchangeProcess(ProcId self, std::size_t n,
                                           std::size_t t, Bytes body)
    : self_(self), n_(n), t_(t), body_(std::move(body)) {}

void RelayExchangeProcess::on_phase(sim::Context& ctx) {
  const bool relay = self_ <= t_;
  if (ctx.phase() == 1) {
    const Attested own = attest(body_, ctx.signer(), self_);
    known_.emplace(self_, own);
    if (relay) collected_.push_back(own);
    Writer w;
    w.seq(1);
    encode(w, own);
    const sim::Payload payload{std::move(w).take()};
    for (ProcId q = 0; q <= t_; ++q) {
      if (q != self_) ctx.send(q, payload, 1);
    }
  } else if (ctx.phase() == 2) {
    if (!relay) return;
    for (const sim::Envelope& env : ctx.inbox()) {
      Reader r(env.payload);
      const std::size_t count = r.seq();
      if (count != 1) continue;
      const auto a = decode_attested(r);
      if (!a || !r.done() || a->signer != env.from) continue;
      if (!verify_attested(*a, ctx.verifier())) continue;
      known_.emplace(a->signer, *a);
      collected_.push_back(*a);
    }
    Writer w;
    w.seq(collected_.size());
    for (const Attested& a : collected_) encode(w, a);
    const sim::Payload payload{std::move(w).take()};
    for (ProcId q = static_cast<ProcId>(t_ + 1); q < n_; ++q) {
      if (q != self_) ctx.send(q, payload, collected_.size());
    }
  } else if (ctx.phase() == 3) {
    if (relay) return;
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.from > t_) continue;
      Reader r(env.payload);
      const std::size_t count = r.seq();
      for (std::size_t k = 0; k < count && r.ok(); ++k) {
        const auto a = decode_attested(r);
        if (!a) break;
        if (verify_attested(*a, ctx.verifier())) known_.emplace(a->signer, *a);
      }
    }
  }
}

bool non_isolated(ProcId p, std::size_t m, const std::vector<bool>& faulty) {
  if (faulty[p]) return false;
  const std::size_t row = p / m;
  std::size_t bad = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (faulty[row * m + k]) ++bad;
  }
  return 2 * bad < m;
}

}  // namespace dr::ba
