#include "ba/registry.h"

#include "ba/algorithm1.h"
#include "ba/algorithm2.h"
#include "ba/algorithm3.h"
#include "ba/algorithm5.h"
#include "ba/dolev_strong.h"
#include "ba/eig.h"
#include "ba/phase_king.h"
#include "util/contracts.h"

namespace dr::ba {

namespace {

template <typename P>
Protocol fixed_protocol(std::string name, bool authenticated) {
  Protocol p;
  p.name = std::move(name);
  p.authenticated = authenticated;
  if constexpr (requires(const BAConfig& c) { P::supports(c); }) {
    p.supports = [](const BAConfig& c) { return P::supports(c); };
  } else {
    p.supports = [](const BAConfig& c) { return c.n >= 2 && c.t < c.n; };
  }
  p.steps = [](const BAConfig& c) { return P::steps(c); };
  p.make = [](ProcId id, const BAConfig& c) {
    return std::make_unique<P>(id, c);
  };
  return p;
}

}  // namespace

const std::vector<Protocol>& protocols() {
  static const std::vector<Protocol> kAll = [] {
    std::vector<Protocol> all;
    all.push_back(fixed_protocol<DolevStrongBroadcast>("dolev-strong", true));
    all.push_back(
        fixed_protocol<DolevStrongRelay>("dolev-strong-relay", true));
    all.push_back(fixed_protocol<Eig>("eig", false));
    all.push_back(fixed_protocol<PhaseKing>("phase-king", false));
    all.push_back(fixed_protocol<Algorithm1>("alg1", true));
    all.push_back(fixed_protocol<Algorithm1MV>("alg1-mv", true));
    all.push_back(fixed_protocol<Algorithm2>("alg2", true));
    {
      Protocol p;
      p.name = "alg2-mv";
      p.authenticated = true;
      p.supports = [](const BAConfig& c) { return Algorithm2::supports_mv(c); };
      p.steps = [](const BAConfig& c) { return Algorithm2::steps(c); };
      p.make = [](ProcId id, const BAConfig& c) {
        return std::make_unique<Algorithm2>(id, c, /*multi_valued=*/true);
      };
      all.push_back(std::move(p));
    }
    return all;
  }();
  return kAll;
}

const Protocol* find_protocol(std::string_view name) {
  for (const Protocol& p : protocols()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Protocol make_alg3_protocol(std::size_t s) {
  Protocol p;
  p.name = "alg3[s=" + std::to_string(s) + "]";
  p.authenticated = true;
  p.supports = [s](const BAConfig& c) { return Algorithm3::supports(c, s); };
  p.steps = [s](const BAConfig& c) { return Algorithm3::steps(c, s); };
  p.make = [s](ProcId id, const BAConfig& c) {
    return std::make_unique<Algorithm3>(id, c, s);
  };
  return p;
}

Protocol make_alg3_mv_protocol(std::size_t s) {
  Protocol p;
  p.name = "alg3-mv[s=" + std::to_string(s) + "]";
  p.authenticated = true;
  p.supports = [s](const BAConfig& c) {
    return Algorithm3::supports(c, s, /*multi_valued=*/true);
  };
  p.steps = [s](const BAConfig& c) { return Algorithm3::steps(c, s); };
  p.make = [s](ProcId id, const BAConfig& c) {
    return std::make_unique<Algorithm3>(id, c, s, /*multi_valued=*/true);
  };
  return p;
}

Protocol make_alg5_mv_protocol(std::size_t s) {
  Protocol p;
  p.name = "alg5-mv[s=" + std::to_string(s) + "]";
  p.authenticated = true;
  p.supports = [s](const BAConfig& c) {
    return algorithm5_supports(c, s, /*multi_valued=*/true);
  };
  p.steps = [s](const BAConfig& c) { return algorithm5_steps(c, s); };
  p.make = [s](ProcId id, const BAConfig& c) {
    return make_algorithm5(id, c, s, Alg5Options{.multi_valued = true});
  };
  return p;
}

Protocol make_alg5_protocol(std::size_t s) {
  Protocol p;
  p.name = "alg5[s=" + std::to_string(s) + "]";
  p.authenticated = true;
  p.supports = [s](const BAConfig& c) { return algorithm5_supports(c, s); };
  p.steps = [s](const BAConfig& c) { return algorithm5_steps(c, s); };
  p.make = [s](ProcId id, const BAConfig& c) {
    return make_algorithm5(id, c, s);
  };
  return p;
}

Protocol make_alg5_ungated_protocol(std::size_t s) {
  Protocol p;
  p.name = "alg5-ungated[s=" + std::to_string(s) + "]";
  p.authenticated = true;
  p.supports = [s](const BAConfig& c) { return algorithm5_supports(c, s); };
  p.steps = [s](const BAConfig& c) { return algorithm5_steps(c, s); };
  p.make = [s](ProcId id, const BAConfig& c) {
    return make_algorithm5(id, c, s,
                           Alg5Options{.require_proof_of_work = false});
  };
  return p;
}

sim::RunResult run_scenario(const Protocol& protocol, const BAConfig& config,
                            std::uint64_t seed,
                            const std::vector<ScenarioFault>& faults,
                            bool record_history) {
  ScenarioOptions options;
  options.seed = seed;
  options.record_history = record_history;
  return run_scenario(protocol, config, options, faults);
}

sim::RunResult run_scenario(const Protocol& protocol, const BAConfig& config,
                            const ScenarioOptions& options,
                            const std::vector<ScenarioFault>& faults) {
  DR_EXPECTS(protocol.supports(config));
  DR_EXPECTS(faults.size() <= config.t);

  sim::RunConfig run_config{.n = config.n,
                            .t = config.t,
                            .transmitter = config.transmitter,
                            .value = config.value,
                            .seed = options.seed,
                            .record_history = options.record_history,
                            .scheme = options.scheme,
                            .merkle_height = options.merkle_height,
                            .rushing = options.rushing,
                            .threads = options.threads,
                            .fault_plan = options.fault_plan,
                            .arenas = options.arenas};
  sim::Runner runner(run_config);
  for (const ScenarioFault& fault : faults) {
    runner.mark_faulty(fault.id);
  }
  for (ProcId p = 0; p < config.n; ++p) {
    if (!runner.is_faulty(p)) {
      runner.install(p, protocol.make(p, config));
    }
  }
  for (const ScenarioFault& fault : faults) {
    runner.install(fault.id, fault.make(fault.id, config));
  }
  return runner.run(protocol.steps(config));
}

}  // namespace dr::ba
