// Message-validity predicates shared by Algorithms 2, 3 and 5.
#pragma once

#include "ba/signed_value.h"

namespace dr::ba {

/// Section 6: "a message is *valid* if it consists of an element in W (a
/// value) followed by at least t+1 signatures of active processors and
/// possibly some of passive ones" — i.e. at least one correct active
/// processor vouches for the value. Active processors are ids
/// 0..active_count-1 by convention.
///
/// We additionally require the chain to verify cryptographically and the
/// active signers to be distinct (t+1 copies of one signature prove
/// nothing); both are implicit in the paper's signature model.
/// `cache`, when non-null, memoises successful signature checks (see
/// verify_chain).
bool is_valid_message(const SignedValue& sv, const crypto::Verifier& verifier,
                      std::size_t active_count, std::size_t t,
                      crypto::VerifyCache* cache = nullptr);

/// Theorem 4's possession proof: the common value with at least t signatures
/// of processors other than `holder` appended (all distinct, all
/// verifiable).
bool is_possession_proof(const SignedValue& sv,
                         const crypto::Verifier& verifier, ProcId holder,
                         std::size_t t, crypto::VerifyCache* cache = nullptr);

}  // namespace dr::ba
