// Message-validity predicates shared by Algorithms 2, 3 and 5, and the
// batched signature-verification prepass every protocol runs over its inbox.
#pragma once

#include "ba/signed_value.h"
#include "sim/process.h"

namespace dr::ba {

/// Section 6: "a message is *valid* if it consists of an element in W (a
/// value) followed by at least t+1 signatures of active processors and
/// possibly some of passive ones" — i.e. at least one correct active
/// processor vouches for the value. Active processors are ids
/// 0..active_count-1 by convention.
///
/// We additionally require the chain to verify cryptographically and the
/// active signers to be distinct (t+1 copies of one signature prove
/// nothing); both are implicit in the paper's signature model.
/// `cache`, when non-null, memoises successful signature checks (see
/// verify_chain).
bool is_valid_message(const SignedValue& sv, const crypto::Verifier& verifier,
                      std::size_t active_count, std::size_t t,
                      crypto::VerifyCache* cache = nullptr);

/// Theorem 4's possession proof: the common value with at least t signatures
/// of processors other than `holder` appended (all distinct, all
/// verifiable).
bool is_possession_proof(const SignedValue& sv,
                         const crypto::Verifier& verifier, ProcId holder,
                         std::size_t t, crypto::VerifyCache* cache = nullptr);

/// Batch signature-verification prepass over a whole phase inbox. Call at
/// the top of on_phase, before decoding individual messages: it walks every
/// payload that carries a signature chain (either a bare SignedValue wire
/// image or one framed behind a length prefix, Algorithm 5's shape),
/// collects the chain links the verification cache cannot already answer,
/// and verifies them all through one crypto::verify_batch call — multi-
/// buffer SHA-256 lanes instead of one scheme call per signature. The
/// protocol's subsequent verify_chain/is_valid_message calls then run
/// against a warm cache and accept exactly the same messages they would
/// have without the prepass (the cache is sound; see crypto/verify_cache.h).
///
/// No-op when the context has no chain cache or when another protocol layer
/// sharing this Context already prewarmed this phase (ctx.claim_prewarm()).
/// Malformed payloads are skipped, matching what the protocol's own decode
/// would do. Scratch lives in a phase-reset arena, so the per-inbox
/// allocator traffic is O(1) once warm.
void prewarm_inbox(sim::Context& ctx);

}  // namespace dr::ba
