// Algorithm 5 (Section 6, Lemma 5 / Theorem 7): Byzantine Agreement with
// O(t^2 + nt/s) messages in ~3t+4s phases; s = t gives the O(n + t^2) bound
// that matches the Theorem 2 lower bound for every ratio of n to t.
//
// Structure (alpha = smallest square > 6t, actives = ids 0..alpha-1):
//   phases 1..3t+3    the first 2t+1 actives run Algorithm 2; every correct
//                     one ends with a transferable *valid message* (the
//                     value + >= t+1 active signatures);
//   phase 3t+4        the first t+1 actives forward a valid message to the
//                     remaining alpha-2t-1 actives;
//   blocks x = top..1 every active sends a valid message plus a *proof of
//                     work* to the roots of the depth-x subtrees it believes
//                     need service (original tree roots need no proof). An
//                     activated root chains the message through its subtree
//                     collecting countersignatures (as in Algorithm 3) and
//                     reports to every active. The actives then exchange
//                     their updated missing lists with Algorithm 4 and use
//                     the resulting pi counts both to shrink the confirmed-
//                     missing sets B(p, x-1) and as proofs of work for the
//                     next block;
//   block 0           actives send the valid message directly to every
//                     confirmed-missing processor.
//
// Every processor decides on the value of the first valid message it
// receives (actives: their Algorithm 2 decision / adopted valid message).
//
// When n < alpha the paper extends Algorithm 1 by one phase instead; we
// implement that as Algorithm2Ext and make_algorithm5() selects it.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "ba/algorithm2.h"
#include "ba/config.h"
#include "ba/exchange.h"
#include "ba/proof_of_work.h"
#include "ba/tree.h"
#include "sim/process.h"

namespace dr::ba {

/// Phase calendar shared by every participant. All steps are absolute
/// simulator phases.
struct Alg5Schedule {
  std::size_t t = 0;
  std::size_t top = 0;  // deepest tree in the forest (0 = no passives)

  /// Step at which block `top` sends its activations.
  PhaseNum first_block_step() const {
    return static_cast<PhaseNum>(3 * t + 5);
  }
  /// Activation step of block x (x in [0..top]); block 0 is the direct-send
  /// step.
  PhaseNum block_start(std::size_t x) const;
  /// Step at which the active processors evaluate block x's reports and
  /// start the Algorithm-4 exchange: block_start(x) + 2*l(x).
  PhaseNum exchange_start(std::size_t x) const;
  /// Total simulator steps (last step is processing-only).
  PhaseNum steps() const { return block_start(0) + 1; }
};

/// The uniform wire format of Algorithm 5: a signed value plus a (possibly
/// empty) proof of work.
Bytes encode_alg5(const SignedValue& sv, const std::vector<Attested>& proof);
std::optional<std::pair<SignedValue, std::vector<Attested>>> decode_alg5(
    ByteView data);

/// Ablation knobs (see bench_ablation): the proof-of-work gate is what
/// bounds activations (Lemma 4); switching it off keeps the algorithm
/// correct but lets a single faulty active processor trigger arbitrarily
/// many subtree chains.
struct Alg5Options {
  bool require_proof_of_work = true;
  /// Run the inner Algorithm 2 over the multi-valued Algorithm 1 so the
  /// transmitter may send any 64-bit value.
  bool multi_valued = false;
};

class Algorithm5Active final : public sim::Process {
 public:
  Algorithm5Active(ProcId self, const BAConfig& config, const Forest& forest,
                   const Alg5Options& options = {});

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;
  /// The valid message backing the decision (kind kValidMessage), falling
  /// back to the inner Algorithm 2's possession proof when the forwarding
  /// phase has not produced one.
  std::optional<Bytes> evidence() const override;

 private:
  void adopt_valid_messages(sim::Context& ctx);
  void mark_informed(sim::Context& ctx);
  void send_activations(sim::Context& ctx, std::size_t x);
  void start_exchange(sim::Context& ctx, std::size_t x);
  void finish_exchange(sim::Context& ctx);
  void send_directs(sim::Context& ctx);

  ProcId self_;
  BAConfig config_;
  Forest forest_;
  Alg5Schedule schedule_;
  std::size_t grid_m_;

  std::unique_ptr<Algorithm2> inner_;  // only for ids 0..2t
  std::optional<SignedValue> valid_;
  std::set<ProcId> informed_;
  std::set<ProcId> contacted_;
  /// Confirmed-missing set B(p, x); starts as "all passives" implicitly.
  std::optional<std::set<ProcId>> current_b_;
  std::vector<ProcId> pending_f_;
  std::uint32_t next_index_ = 0;  // block level the running exchange is for
  std::optional<GridExchangeCore> core_;
  std::optional<MissingEvidence> evidence_;  // index = next block level
};

class Algorithm5Passive final : public sim::Process {
 public:
  Algorithm5Passive(ProcId self, const BAConfig& config, const Forest& forest,
                    const Alg5Options& options = {});

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;
  /// The first valid message received (kind kValidMessage), when decided.
  std::optional<Bytes> evidence() const override;

  bool activated() const { return activated_; }

 private:
  void scan_for_decision(sim::Context& ctx);
  void root_role(sim::Context& ctx);
  void member_role(sim::Context& ctx);

  ProcId self_;
  BAConfig config_;
  Forest forest_;
  Alg5Schedule schedule_;
  const PassiveTree* tree_;  // points into forest_
  std::size_t node_;         // heap index in *tree_
  std::size_t own_depth_;    // depth of the subtree this node roots

  Alg5Options options_;
  std::optional<SignedValue> decided_;
  bool activated_ = false;
  std::optional<SignedValue> m_;  // the growing chained message (root role)
};

/// The paper's small-n extension: Algorithm 2 among the first 2t+1, then
/// the first t+1 forward a valid message to everybody else
/// ((t+1)(n-2t-1) extra messages, one extra phase).
class Algorithm2Ext final : public sim::Process {
 public:
  Algorithm2Ext(ProcId self, const BAConfig& config,
                bool multi_valued = false);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;
  /// Participants: the inner Algorithm 2's possession proof. Everyone
  /// else: the adopted valid message (kind kValidMessage).
  std::optional<Bytes> evidence() const override;

  static PhaseNum steps(const BAConfig& config) {
    return static_cast<PhaseNum>(3 * config.t + 5);
  }

 private:
  ProcId self_;
  BAConfig config_;
  std::unique_ptr<Algorithm2> inner_;  // ids 0..2t
  std::optional<SignedValue> adopted_;
};

/// Builds `sv` into a valid message for an Algorithm-2 participant: its
/// possession proof, extended with its own signature when absent.
std::optional<SignedValue> valid_from_proof(const Algorithm2& alg2,
                                            ProcId self,
                                            const crypto::Signer& signer);

/// Factory for the whole family: Algorithm 5 when n >= alpha, otherwise the
/// Algorithm2Ext fallback (n >= 2t+1 still required).
std::unique_ptr<sim::Process> make_algorithm5(ProcId self,
                                              const BAConfig& config,
                                              std::size_t s,
                                              const Alg5Options& options = {});
PhaseNum algorithm5_steps(const BAConfig& config, std::size_t s);
bool algorithm5_supports(const BAConfig& config, std::size_t s,
                         bool multi_valued = false);

}  // namespace dr::ba
