#include "ba/proof_of_work.h"

#include <algorithm>

namespace dr::ba {

Bytes encode_missing(const MissingString& s) {
  Writer w;
  w.str("miss");
  w.u32(s.index);
  w.seq(s.missing.size());
  for (ProcId p : s.missing) w.u32(p);
  return std::move(w).take();
}

std::optional<MissingString> decode_missing(ByteView data) {
  Reader r(data);
  if (r.str() != "miss") return std::nullopt;
  MissingString s;
  s.index = r.u32();
  const std::size_t count = r.seq();
  s.missing.resize(count);
  for (auto& p : s.missing) p = r.u32();
  if (!r.done()) return std::nullopt;
  return s;
}

MissingEvidence::MissingEvidence(std::uint32_t index, std::size_t alpha)
    : index_(index), alpha_(alpha) {}

void MissingEvidence::add(const Attested& a,
                          const crypto::Verifier& verifier) {
  if (a.signer >= alpha_) return;
  if (strings_.contains(a.signer)) return;
  const auto decoded = decode_missing(a.body);
  if (!decoded || decoded->index != index_) return;
  if (!verify_attested(a, verifier)) return;
  strings_.emplace(a.signer, std::make_pair(a, *decoded));
}

std::size_t MissingEvidence::pi(ProcId q) const {
  std::size_t count = 0;
  for (const auto& [signer, entry] : strings_) {
    const auto& missing = entry.second.missing;
    if (std::find(missing.begin(), missing.end(), q) != missing.end()) {
      ++count;
    }
  }
  return count;
}

std::vector<Attested> MissingEvidence::strings_listing(
    std::span<const ProcId> witnesses) const {
  std::vector<Attested> out;
  for (const auto& [signer, entry] : strings_) {
    const auto& missing = entry.second.missing;
    for (ProcId w : witnesses) {
      if (std::find(missing.begin(), missing.end(), w) != missing.end()) {
        out.push_back(entry.first);
        break;
      }
    }
  }
  return out;
}

namespace {

/// Finds a processor in the subtree of `node` with pi >= threshold.
std::optional<ProcId> find_witness(const MissingEvidence& evidence,
                                   const PassiveTree& tree, std::size_t node,
                                   std::size_t threshold) {
  for (std::size_t k : tree.subtree_nodes(node)) {
    const ProcId q = tree.id_of(k);
    if (evidence.pi(q) >= threshold) return q;
  }
  return std::nullopt;
}

}  // namespace

bool has_proof_of_work(const MissingEvidence& evidence,
                       const PassiveTree& tree, std::size_t node,
                       std::size_t x, std::size_t alpha, std::size_t t) {
  if (tree.subtree_depth(node) != x) return false;
  if (node == 1) return true;  // original tree root: empty proof
  const std::size_t threshold = alpha - 2 * t;
  if (evidence.pi(tree.id_of(node)) >= threshold) return true;
  if (x < 2) return false;
  return find_witness(evidence, tree, 2 * node, threshold).has_value() &&
         find_witness(evidence, tree, 2 * node + 1, threshold).has_value();
}

std::optional<std::vector<Attested>> build_proof_of_work(
    const MissingEvidence& evidence, const PassiveTree& tree,
    std::size_t node, std::size_t x, std::size_t alpha, std::size_t t) {
  if (tree.subtree_depth(node) != x) return std::nullopt;
  if (node == 1) return std::vector<Attested>{};
  const std::size_t threshold = alpha - 2 * t;
  const ProcId root_id = tree.id_of(node);
  if (evidence.pi(root_id) >= threshold) {
    const ProcId witnesses[] = {root_id};
    return evidence.strings_listing(witnesses);
  }
  if (x < 2) return std::nullopt;
  const auto left = find_witness(evidence, tree, 2 * node, threshold);
  const auto right = find_witness(evidence, tree, 2 * node + 1, threshold);
  if (!left || !right) return std::nullopt;
  const ProcId witnesses[] = {*left, *right};
  return evidence.strings_listing(witnesses);
}

}  // namespace dr::ba
