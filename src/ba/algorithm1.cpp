#include "ba/algorithm1.h"

#include <set>

#include "ba/valid_message.h"

#include "util/contracts.h"

namespace dr::ba {

Side side_of(ProcId p, std::size_t t) {
  if (p == 0) return Side::kTransmitter;
  return p <= t ? Side::kA : Side::kB;
}

bool is_correct_one_message(const SignedValue& sv, PhaseNum sent_phase,
                            ProcId receiver, std::size_t t,
                            const crypto::Verifier& verifier,
                            crypto::VerifyCache* cache) {
  return sv.value == 1 &&
         is_correct_value_message(sv, sent_phase, receiver, t, verifier,
                                  cache);
}

bool is_correct_value_message(const SignedValue& sv, PhaseNum sent_phase,
                              ProcId receiver, std::size_t t,
                              const crypto::Verifier& verifier,
                              crypto::VerifyCache* cache) {
  if (sv.value == kDefaultValue) return false;
  if (sv.chain.size() != sent_phase) return false;
  if (sv.chain.empty() || sv.chain.front().signer != 0) return false;

  // The signers plus the receiver must form a simple path in G starting at
  // the transmitter: after the transmitter, sides must alternate.
  std::set<ProcId> seen;
  const std::size_t n = 2 * t + 1;
  Side prev = Side::kTransmitter;
  for (std::size_t i = 0; i < sv.chain.size(); ++i) {
    const ProcId signer = sv.chain[i].signer;
    if (signer >= n || !seen.insert(signer).second) return false;
    const Side side = side_of(signer, t);
    if (i == 0) {
      if (side != Side::kTransmitter) return false;
    } else {
      if (side == Side::kTransmitter) return false;
      if (prev != Side::kTransmitter && side == prev) return false;
    }
    prev = side;
  }
  // Receiver extends the path: distinct from all signers and on the opposite
  // side of the last signer (any side if the transmitter is the only signer).
  if (seen.contains(receiver)) return false;
  const Side mine = side_of(receiver, t);
  if (mine == Side::kTransmitter) return false;
  if (prev != Side::kTransmitter && mine == prev) return false;

  return verify_chain(sv, verifier, cache);
}

Algorithm1::Algorithm1(ProcId self, const BAConfig& config)
    : self_(self), config_(config) {
  DR_EXPECTS(supports(config));
}

void Algorithm1::on_phase(sim::Context& ctx) {
  const std::size_t t = config_.t;
  const PhaseNum phase = ctx.phase();

  if (self_ == 0) {
    // Phase 1: the transmitter signs and sends its value to every processor.
    if (phase == 1) {
      const SignedValue sv = make_signed(config_.value, ctx.signer(), 0);
      // Not send_all: when embedded by Algorithm 3 the instance spans only
      // the first config_.n processors of a larger run. One shared handle.
      const sim::Payload payload{encode(sv)};
      for (ProcId q = 1; q < config_.n; ++q) {
        ctx.send(q, payload, sv.chain.size());
      }
    }
    return;
  }

  if (committed_one_) return;  // only the *first* correct 1-message matters

  prewarm_inbox(ctx);
  for (const sim::Envelope& env : ctx.inbox()) {
    // Only messages sent by phase t+2 count for the decision.
    if (env.sent_phase > t + 2) continue;
    const auto sv = decode_signed_value(env.payload);
    if (!sv ||
        !is_correct_one_message(*sv, env.sent_phase, self_, t, ctx.verifier(),
                                ctx.chain_cache())) {
      continue;
    }
    committed_one_ = true;
    // Sign and forward to the whole opposite side, if a relay phase remains.
    if (phase <= t + 2) {
      const SignedValue ext = extend(*sv, ctx.signer(), self_);
      const bool in_a = side_of(self_, t) == Side::kA;
      const ProcId lo = in_a ? static_cast<ProcId>(t + 1) : 1;
      const ProcId hi =
          in_a ? static_cast<ProcId>(2 * t) : static_cast<ProcId>(t);
      const sim::Payload payload{encode(ext)};
      for (ProcId q = lo; q <= hi; ++q) {
        ctx.send(q, payload, ext.chain.size());
      }
    }
    break;
  }
}

std::optional<Value> Algorithm1::decision() const {
  if (self_ == 0) return config_.value;
  return committed_one_ ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Algorithm1MV

Algorithm1MV::Algorithm1MV(ProcId self, const BAConfig& config)
    : self_(self), config_(config) {
  DR_EXPECTS(supports(config));
}

void Algorithm1MV::on_phase(sim::Context& ctx) {
  const std::size_t t = config_.t;
  const PhaseNum phase = ctx.phase();

  if (self_ == 0) {
    if (phase == 1) {
      const SignedValue sv = make_signed(config_.value, ctx.signer(), 0);
      // Not send_all: embedded instances span only config_.n processors.
      const sim::Payload payload{encode(sv)};
      for (ProcId q = 1; q < config_.n; ++q) {
        ctx.send(q, payload, sv.chain.size());
      }
    }
    return;
  }

  prewarm_inbox(ctx);
  for (const sim::Envelope& env : ctx.inbox()) {
    if (env.sent_phase > t + 2) continue;
    const auto sv = decode_signed_value(env.payload);
    if (!sv ||
        !is_correct_value_message(*sv, env.sent_phase, self_, t,
                                  ctx.verifier(), ctx.chain_cache())) {
      continue;
    }
    if (committed_.contains(sv->value)) continue;
    committed_.insert(sv->value);
    // Relay the first message of each of the first two distinct values.
    if (relayed_ < 2 && phase <= t + 2) {
      ++relayed_;
      const SignedValue ext = extend(*sv, ctx.signer(), self_);
      const bool in_a = side_of(self_, t) == Side::kA;
      const ProcId lo = in_a ? static_cast<ProcId>(t + 1) : 1;
      const ProcId hi =
          in_a ? static_cast<ProcId>(2 * t) : static_cast<ProcId>(t);
      const sim::Payload payload{encode(ext)};
      for (ProcId q = lo; q <= hi; ++q) {
        ctx.send(q, payload, ext.chain.size());
      }
    }
  }
}

std::optional<Value> Algorithm1MV::decision() const {
  if (self_ == 0) return config_.value;
  if (committed_.size() == 1) return *committed_.begin();
  return kDefaultValue;
}

}  // namespace dr::ba
