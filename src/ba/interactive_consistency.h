// Interactive consistency (Pease-Shostak-Lamport, the paper's reference
// [15]): every processor holds a private value and all correct processors
// must agree on the full n-vector, with correct processors' entries equal
// to their actual values.
//
// Implemented the canonical way: n parallel Byzantine Agreement instances —
// instance i has transmitter i — multiplexed over the same synchronous
// network by tagging every payload with its instance id. Any registered BA
// protocol that supports arbitrary transmitters (dolev-strong,
// dolev-strong-relay, eig) can serve as the base; total cost is n times the
// base protocol's, which is where the paper's per-broadcast message bounds
// start to matter.
#pragma once

#include <memory>
#include <vector>

#include "ba/registry.h"
#include "sim/process.h"

namespace dr::ba {

class InteractiveConsistency final : public sim::Process {
 public:
  /// `own_value` is this processor's private input (it is the transmitter
  /// of instance `self`).
  InteractiveConsistency(ProcId self, const Protocol& base,
                         std::size_t n, std::size_t t, Value own_value);

  void on_phase(sim::Context& ctx) override;
  /// Not meaningful for a vector decision; always nullopt. Use vector().
  std::optional<Value> decision() const override { return std::nullopt; }

  /// The decided vector: entry i is instance i's decision.
  std::vector<std::optional<Value>> vector() const;

  static PhaseNum steps(const Protocol& base, std::size_t n, std::size_t t) {
    return base.steps(BAConfig{n, t, 0, 0});
  }
  static bool supports(const Protocol& base, std::size_t n, std::size_t t);

 private:
  ProcId self_;
  std::size_t n_;
  std::vector<std::unique_ptr<sim::Process>> instances_;  // size n
};

/// Convenience harness mirroring run_scenario: runs interactive consistency
/// over `base` with `values[i]` as processor i's input; faulty ids get the
/// adversarial processes from `faults` instead.
struct ICResult {
  /// vectors[p][i] = processor p's decision for instance i (only correct
  /// processors' rows are meaningful).
  std::vector<std::vector<std::optional<Value>>> vectors;
  sim::RunResult run;
};

ICResult run_interactive_consistency(const Protocol& base,
                                     const std::vector<Value>& values,
                                     std::size_t t, std::uint64_t seed,
                                     const std::vector<ScenarioFault>&
                                         faults = {});

}  // namespace dr::ba
