#include "ba/replay.h"

#include <algorithm>
#include <tuple>

#include "crypto/key_registry.h"
#include "util/contracts.h"

namespace dr::ba {

namespace {

/// Canonical multiset of (to, payload) for comparison. Payloads sort and
/// compare by content, so handle identity never affects the verdict.
std::vector<std::pair<ProcId, sim::Payload>> canonical_sends(
    std::vector<std::pair<ProcId, sim::Payload>> sends) {
  std::sort(sends.begin(), sends.end());
  return sends;
}

}  // namespace

ReplayReport validate_correctness(const hist::History& history,
                                  const Protocol& protocol,
                                  const BAConfig& config,
                                  const std::vector<bool>& faulty,
                                  std::uint64_t seed) {
  DR_EXPECTS(faulty.size() == config.n);
  ReplayReport report;

  // The history must have been recorded with the HMAC scheme and this seed
  // for re-signing to reproduce identical bytes.
  crypto::KeyRegistry scheme(config.n, seed);
  crypto::Verifier verifier(&scheme);

  const PhaseNum phases =
      std::min<PhaseNum>(history.phases(), protocol.steps(config));

  for (ProcId p = 0; p < config.n; ++p) {
    if (faulty[p]) continue;
    auto process = protocol.make(p, config);
    crypto::Signer signer(&scheme, {p});

    for (PhaseNum k = 1; k <= phases; ++k) {
      // Inbox at phase k: edges of phase k-1 with target p.
      std::vector<sim::Envelope> inbox;
      if (k >= 2) {
        for (const hist::Edge& e : history.phase(k - 1).in_edges(p)) {
          inbox.push_back(sim::Envelope{e.from, e.to, k - 1, e.label});
        }
        std::stable_sort(inbox.begin(), inbox.end(),
                         [](const sim::Envelope& a, const sim::Envelope& b) {
                           return a.from < b.from;
                         });
      }
      sim::Context ctx(p, k, config.n, config.t, &inbox, &signer, &verifier);
      process->on_phase(ctx);

      std::vector<std::pair<ProcId, sim::Payload>> expected;
      for (const hist::Edge& e : history.phase(k).out_edges(p)) {
        expected.emplace_back(e.to, e.label);
      }
      std::vector<std::pair<ProcId, sim::Payload>> actual;
      for (const auto& out : ctx.outgoing()) {
        if (out.broadcast) {
          for (ProcId q = 0; q < config.n; ++q) {
            if (q != p) actual.emplace_back(q, out.payload);
          }
        } else {
          actual.emplace_back(out.to, out.payload);
        }
      }
      if (canonical_sends(std::move(expected)) !=
          canonical_sends(std::move(actual))) {
        report.conforming = false;
        report.violations.push_back(ReplayViolation{
            p, k, "sends at phase " + std::to_string(k) +
                      " do not match the correctness rule"});
        break;  // this processor has diverged; later phases are meaningless
      }
    }
  }
  return report;
}

}  // namespace dr::ba
