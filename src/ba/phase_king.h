// Phase-king Byzantine Agreement (Berman-Garay-Perry) — a second
// *unauthenticated* baseline next to EIG.
//
// Why it is here: Corollary 1's Ω(nt) message bound concerns algorithms
// without authentication. The classic oral-messages EIG baseline is
// exponential in t, so it can only be run at toy sizes; phase-king is
// polynomial — Θ(n²·t) messages, 2(t+1)+1 rounds, n > 4t — which lets the
// benchmarks exhibit the unauthenticated message behaviour at realistic
// sizes. (The paper's own reference [10] achieves O(nt + t³); it is a
// separate paper's contribution, see DESIGN.md.)
//
// Structure (broadcast variant): round 0, the transmitter broadcasts its
// value and everybody adopts it (default on silence). Then t+1 phases of
// two rounds each, phase k chaired by king p_k:
//   round A: everybody broadcasts its current value; everyone tallies a
//            (majority, multiplicity) pair;
//   round B: the king broadcasts its majority; a processor keeps its own
//            majority if its multiplicity exceeded n/2 + t, otherwise it
//            adopts the king's value.
// This is the simple n > 4t variant of phase-king (the 3-round n > 3t
// refinement buys resilience, not a different message-count shape, which
// is all Corollary 1 needs). Some phase has a correct king; if any correct
// processor keeps value m there, every correct processor saw m as a strict
// majority, so the correct king broadcast m too — after that phase all
// correct processors agree, and unanimity persists (counts >= n-t >
// n/2 + t). Works for arbitrary values, not just binary.
#pragma once

#include "ba/config.h"
#include "sim/process.h"

namespace dr::ba {

class PhaseKing final : public sim::Process {
 public:
  PhaseKing(ProcId self, const BAConfig& config);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;

  /// 1 transmitter round + 2 rounds per phase * (t+1) phases, plus a final
  /// processing-only step.
  static PhaseNum steps(const BAConfig& config) {
    return static_cast<PhaseNum>(2 * config.t + 4);
  }
  static bool supports(const BAConfig& config) {
    return config.n > 4 * config.t && config.transmitter < config.n &&
           config.n >= config.t + 2;
  }

 private:
  /// The king chairing phase k (ids 1..t+1, never the transmitter).
  ProcId king_of(std::size_t k) const;

  void broadcast_value(sim::Context& ctx, Value v);

  ProcId self_;
  BAConfig config_;
  Value value_ = kDefaultValue;
  // Scratch between rounds of one phase:
  Value majority_ = kDefaultValue;
  std::size_t majority_votes_ = 0;  // matching round-B votes
};

}  // namespace dr::ba
