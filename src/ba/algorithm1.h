// Algorithm 1 (Section 5, Theorem 3): Byzantine Agreement for n = 2t+1 in
// t+2 phases with at most 2t^2 + 2t messages.
//
// The transmitter is processor 0; the remaining 2t processors are split into
// A = {1..t} and B = {t+1..2t}. Relay graph G: the complete bipartite graph
// on (A, B) plus edges from the transmitter to everybody. A *correct
// 1-message* received at phase k consists of value 1 with a chain of k
// signatures whose signers, together with the receiver, form a simple path
// of length k from the transmitter through alternating sides of G.
//
// Protocol: the transmitter signs and sends its value (phase 1); whenever a
// processor in A (resp. B) gets a correct 1-message for the first time, it
// signs and forwards it to all of B (resp. A). Decide 1 iff a correct
// 1-message arrived by phase t+2.
#pragma once

#include <set>

#include "ba/config.h"
#include "ba/signed_value.h"
#include "sim/process.h"

namespace dr::ba {

/// Which side of the bipartite graph id `p` is on (n = 2t+1, transmitter 0).
enum class Side { kTransmitter, kA, kB };
Side side_of(ProcId p, std::size_t t);

/// The generalised "correct v-message" predicate for any non-default value
/// (the paper's multi-value remark: "If the transmitter can send more than
/// two values, one has to modify the algorithms slightly"). `sent_phase` is
/// the phase the message was sent in (stamped by the network); the
/// signature path must have exactly that length and must extend to
/// `receiver` as a simple path in G. `cache` optionally memoizes verified
/// chain prefixes (see crypto/verify_cache.h).
bool is_correct_value_message(const SignedValue& sv, PhaseNum sent_phase,
                              ProcId receiver, std::size_t t,
                              const crypto::Verifier& verifier,
                              crypto::VerifyCache* cache = nullptr);

/// The paper's original binary predicate: a correct v-message with v = 1.
bool is_correct_one_message(const SignedValue& sv, PhaseNum sent_phase,
                            ProcId receiver, std::size_t t,
                            const crypto::Verifier& verifier,
                            crypto::VerifyCache* cache = nullptr);

class Algorithm1 final : public sim::Process {
 public:
  Algorithm1(ProcId self, const BAConfig& config);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;

  /// t+2 communication phases plus one processing-only step.
  static PhaseNum steps(const BAConfig& config) {
    return static_cast<PhaseNum>(config.t + 3);
  }
  static bool supports(const BAConfig& config) {
    return config.n == 2 * config.t + 1 && config.transmitter == 0 &&
           config.t >= 1 && (config.value == 0 || config.value == 1);
  }

  bool committed_one() const { return committed_one_; }

 private:
  ProcId self_;
  BAConfig config_;
  bool committed_one_ = false;
};

/// Multi-valued Algorithm 1: the transmitter may send any 64-bit value.
/// Every non-default value propagates through its own relay cascade; a
/// processor relays the first message of each of the first two distinct
/// values it commits to (two conflicting values already force the common
/// default everywhere). Decide: the unique committed value, or the default
/// 0 if none or several. At most 2 * (2t^2 + 2t) messages.
class Algorithm1MV final : public sim::Process {
 public:
  Algorithm1MV(ProcId self, const BAConfig& config);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;

  static PhaseNum steps(const BAConfig& config) {
    return static_cast<PhaseNum>(config.t + 3);
  }
  static bool supports(const BAConfig& config) {
    return config.n == 2 * config.t + 1 && config.transmitter == 0 &&
           config.t >= 1;
  }

 private:
  ProcId self_;
  BAConfig config_;
  std::set<Value> committed_;
  std::size_t relayed_ = 0;  // distinct values relayed (max 2)
};

}  // namespace dr::ba
