// Passive-processor forest for Algorithm 5 (Section 6).
//
// Active processors are ids 0..alpha-1, where alpha is the smallest perfect
// square greater than 6t. Passive processors are organised into complete
// binary trees of depth lambda (size s = 2^lambda - 1); a remainder that
// does not fill a whole tree is decomposed greedily into smaller complete
// trees (the paper assumes s divides the passive count; the decomposition
// preserves completeness, which the subtree arithmetic below relies on).
//
// Within a tree, nodes are numbered in heap order (node k's children are 2k
// and 2k+1, 1-based), mapped to consecutive processor ids. The only
// subtrees the algorithm ever considers are "subtrees whose leaves are
// leaves of the original tree": the subtree of node k in a depth-D tree has
// depth x(k) = D - level(k) + 1 and consists of k's descendants.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ba/config.h"

namespace dr::ba {

/// Smallest perfect square strictly greater than 6t (the paper's alpha).
std::size_t alpha_for(std::size_t t);

/// Number of nodes in a complete binary tree of depth x: l(x) = 2^x - 1.
constexpr std::size_t tree_size(std::size_t depth) {
  return (std::size_t{1} << depth) - 1;
}

struct PassiveTree {
  ProcId first_id = 0;   // nodes occupy ids first_id .. first_id+size-1
  std::size_t depth = 0; // >= 1

  std::size_t size() const { return tree_size(depth); }
  bool contains(ProcId p) const {
    return p >= first_id && p < first_id + size();
  }
  /// Heap index (1-based) of processor p in this tree.
  std::size_t node_of(ProcId p) const { return p - first_id + 1; }
  ProcId id_of(std::size_t node) const {
    return static_cast<ProcId>(first_id + node - 1);
  }
  /// Level of heap node k (root = level 1).
  static std::size_t level(std::size_t node);
  /// Depth of the subtree rooted at heap node k.
  std::size_t subtree_depth(std::size_t node) const {
    return depth - level(node) + 1;
  }
  /// Heap indices of the subtree of `node`, in BFS order (c(1) = node).
  std::vector<std::size_t> subtree_nodes(std::size_t node) const;
  /// The ancestor of `node` at tree level `lvl` (lvl <= level(node)).
  static std::size_t ancestor_at_level(std::size_t node, std::size_t lvl);
  /// Roots of all depth-x subtrees of this tree (heap indices).
  std::vector<std::size_t> subtree_roots_at_depth(std::size_t x) const;
};

struct Forest {
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t alpha = 0;
  std::size_t lambda = 0;  // depth of the full-size trees
  std::vector<PassiveTree> trees;

  /// Builds the forest for n processors, t faults and target tree size
  /// `s_target` (lambda = floor(log2(s_target + 1)), clamped to >= 1).
  /// Precondition: n >= alpha_for(t).
  static Forest build(std::size_t n, std::size_t t, std::size_t s_target);

  std::size_t passive_count() const { return n - alpha; }
  bool is_active(ProcId p) const { return p < alpha; }
  bool is_passive(ProcId p) const { return p >= alpha && p < n; }
  /// Tree containing passive id p (nullptr if p is active/out of range).
  const PassiveTree* tree_of(ProcId p) const;
  /// Highest tree depth present (= lambda when any full tree exists).
  std::size_t max_depth() const;
};

}  // namespace dr::ba
