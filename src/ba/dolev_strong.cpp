#include "ba/dolev_strong.h"

#include <algorithm>

#include "ba/evidence.h"
#include "ba/valid_message.h"

namespace dr::ba {

namespace {

/// Shared decision-time evidence rule for both variants: when exactly one
/// value was extracted and a relay chain for it was retained, that chain
/// (last signer = this processor) certifies the decision as a Dolev-Strong
/// extraction. A value first extracted at the final processing step has no
/// retained chain — the relay step never ran — so there is no evidence.
std::optional<Bytes> extraction_evidence(
    const std::set<Value>& extracted,
    const std::map<Value, SignedValue>& retained) {
  if (extracted.size() != 1) return std::nullopt;
  const auto it = retained.find(*extracted.begin());
  if (it == retained.end()) return std::nullopt;
  return encode_evidence(Evidence{EvidenceKind::kExtraction, it->second});
}

/// Common acceptance core for Dolev-Strong chains: cryptographically valid,
/// distinct signers, initiated by the transmitter, not yet signed by the
/// receiver, and exactly as many signatures as the phase in which the
/// message was sent (a correct sender at phase j always sends chains of
/// length j; the network stamps sent_phase, so a faulty sender cannot lie
/// about it).
bool chain_ok(const SignedValue& sv, const sim::Envelope& env,
              const sim::Context& ctx, ProcId transmitter) {
  if (sv.chain.empty()) return false;
  if (sv.chain.size() != env.sent_phase) return false;
  if (sv.chain.front().signer != transmitter) return false;
  if (contains_signer(sv, ctx.self())) return false;
  if (!distinct_signers(sv)) return false;
  return verify_chain(sv, ctx.verifier(), ctx.chain_cache());
}

}  // namespace

// ---------------------------------------------------------------------------
// DolevStrongBroadcast

DolevStrongBroadcast::DolevStrongBroadcast(ProcId self, const BAConfig& config)
    : self_(self), config_(config) {}

void DolevStrongBroadcast::on_phase(sim::Context& ctx) {
  if (self_ == config_.transmitter) {
    if (ctx.phase() == 1) {
      const SignedValue sv =
          make_signed(config_.value, ctx.signer(), self_);
      extracted_.insert(config_.value);
      retained_.emplace(config_.value, sv);
      // Not send_all: embedded instances (e.g. the sparse-observer
      // construction) span only the first config_.n processors of a larger
      // run. One shared handle, no per-target copies.
      const sim::Payload payload{encode(sv)};
      for (ProcId q = 0; q < config_.n; ++q) {
        if (q != self_) ctx.send(q, payload, sv.chain.size());
      }
    }
    return;  // the transmitter never extracts other values
  }

  prewarm_inbox(ctx);
  for (const sim::Envelope& env : ctx.inbox()) {
    const auto sv = decode_signed_value(env.payload);
    if (!sv || !chain_ok(*sv, env, ctx, config_.transmitter)) continue;
    if (extracted_.contains(sv->value)) continue;
    extracted_.insert(sv->value);
    // Relay each of the first two extracted values once; chains that would
    // arrive after the last processing step are pointless to send.
    if (relayed_ < 2 && ctx.phase() + 1 <= steps(config_)) {
      ++relayed_;
      const SignedValue ext = extend(*sv, ctx.signer(), self_);
      const sim::Payload payload{encode(ext)};
      for (ProcId q = 0; q < config_.n; ++q) {
        if (q != self_) ctx.send(q, payload, ext.chain.size());
      }
      retained_.emplace(ext.value, ext);
    }
  }
}

std::optional<Value> DolevStrongBroadcast::decision() const {
  if (extracted_.size() == 1) return *extracted_.begin();
  return kDefaultValue;
}

std::optional<Bytes> DolevStrongBroadcast::evidence() const {
  return extraction_evidence(extracted_, retained_);
}

// ---------------------------------------------------------------------------
// DolevStrongRelay

DolevStrongRelay::DolevStrongRelay(ProcId self, const BAConfig& config,
                                   std::size_t relay_count)
    : self_(self), config_(config),
      relay_count_(relay_count == 0 ? config.t + 1 : relay_count) {}

bool DolevStrongRelay::is_relay(ProcId p) const {
  // Relays are the `relay_count_` lowest ids other than the transmitter.
  if (p == config_.transmitter) return false;
  const std::size_t shift = config_.transmitter < relay_count_ ? 1 : 0;
  return p < relay_count_ + shift;
}

void DolevStrongRelay::extract(const SignedValue& sv, sim::Context& ctx) {
  if (extracted_.contains(sv.value)) return;
  extracted_.insert(sv.value);
  const bool can_send = ctx.phase() + 1 <= steps(config_);
  if (!can_send) return;
  const SignedValue ext = extend(sv, ctx.signer(), self_);
  retained_.emplace(ext.value, ext);
  if (is_relay(self_)) {
    if (broadcast_ < 2) {
      ++broadcast_;
      const sim::Payload payload{encode(ext)};
      for (ProcId q = 0; q < config_.n; ++q) {
        if (q != self_) ctx.send(q, payload, ext.chain.size());
      }
    }
  } else if (reported_ < 2) {
    ++reported_;
    // Partial fan-out (relays only): per-target sends sharing one handle.
    const sim::Payload payload{encode(ext)};
    for (ProcId q = 0; q < config_.n; ++q) {
      if (q != self_ && is_relay(q)) {
        ctx.send(q, payload, ext.chain.size());
      }
    }
  }
}

void DolevStrongRelay::on_phase(sim::Context& ctx) {
  if (self_ == config_.transmitter) {
    if (ctx.phase() == 1) {
      const SignedValue sv =
          make_signed(config_.value, ctx.signer(), self_);
      extracted_.insert(config_.value);
      retained_.emplace(config_.value, sv);
      const sim::Payload payload{encode(sv)};
      for (ProcId q = 0; q < config_.n; ++q) {
        if (q != self_) ctx.send(q, payload, sv.chain.size());
      }
    }
    return;
  }

  prewarm_inbox(ctx);
  for (const sim::Envelope& env : ctx.inbox()) {
    const auto sv = decode_signed_value(env.payload);
    if (!sv || !chain_ok(*sv, env, ctx, config_.transmitter)) continue;
    extract(*sv, ctx);
  }
}

std::optional<Value> DolevStrongRelay::decision() const {
  if (extracted_.size() == 1) return *extracted_.begin();
  return kDefaultValue;
}

std::optional<Bytes> DolevStrongRelay::evidence() const {
  return extraction_evidence(extracted_, retained_);
}

}  // namespace dr::ba
