#include "ba/evidence.h"

namespace dr::ba {

bool evidence_kind_ok(std::uint8_t raw) {
  switch (static_cast<EvidenceKind>(raw)) {
    case EvidenceKind::kPossession:
    case EvidenceKind::kExtraction:
    case EvidenceKind::kValidMessage:
      return true;
  }
  return false;
}

Bytes encode_evidence(const Evidence& ev) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(ev.kind));
  const Bytes sv = encode(ev.sv);
  w.bytes(sv);
  return std::move(w).take();
}

std::optional<Evidence> decode_evidence(ByteView data) {
  Reader r(data);
  const std::uint8_t raw = r.u8();
  const ByteView sv_bytes = r.view();  // decoded in place, nothing escapes
  if (!r.done() || !evidence_kind_ok(raw)) return std::nullopt;
  auto sv = decode_signed_value(sv_bytes);
  if (!sv) return std::nullopt;
  return Evidence{static_cast<EvidenceKind>(raw), std::move(*sv)};
}

}  // namespace dr::ba
