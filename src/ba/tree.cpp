#include "ba/tree.h"

#include <algorithm>

#include "util/contracts.h"

namespace dr::ba {

std::size_t alpha_for(std::size_t t) {
  std::size_t root = 1;
  while (root * root <= 6 * t) ++root;
  return root * root;
}

std::size_t PassiveTree::level(std::size_t node) {
  DR_EXPECTS(node >= 1);
  std::size_t lvl = 0;
  while (node > 0) {
    node >>= 1;
    ++lvl;
  }
  return lvl;
}

std::vector<std::size_t> PassiveTree::subtree_nodes(std::size_t node) const {
  const std::size_t x = subtree_depth(node);
  std::vector<std::size_t> out;
  out.reserve(tree_size(x));
  for (std::size_t lev = 0; lev < x; ++lev) {
    const std::size_t begin = node << lev;
    const std::size_t count = std::size_t{1} << lev;
    for (std::size_t k = 0; k < count; ++k) out.push_back(begin + k);
  }
  return out;
}

std::size_t PassiveTree::ancestor_at_level(std::size_t node,
                                           std::size_t lvl) {
  const std::size_t node_lvl = level(node);
  DR_EXPECTS(lvl >= 1 && lvl <= node_lvl);
  return node >> (node_lvl - lvl);
}

std::vector<std::size_t> PassiveTree::subtree_roots_at_depth(
    std::size_t x) const {
  std::vector<std::size_t> out;
  if (x < 1 || x > depth) return out;
  const std::size_t lvl = depth - x + 1;  // roots live at this level
  const std::size_t begin = std::size_t{1} << (lvl - 1);
  const std::size_t count = std::size_t{1} << (lvl - 1);
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) out.push_back(begin + k);
  return out;
}

Forest Forest::build(std::size_t n, std::size_t t, std::size_t s_target) {
  Forest f;
  f.n = n;
  f.t = t;
  f.alpha = alpha_for(t);
  DR_EXPECTS(n >= f.alpha);

  std::size_t lambda = 1;
  while (tree_size(lambda + 1) <= s_target) ++lambda;
  f.lambda = lambda;

  std::size_t remaining = n - f.alpha;
  ProcId next = static_cast<ProcId>(f.alpha);
  while (remaining > 0) {
    std::size_t depth = std::min(lambda, std::size_t{63});
    while (depth > 1 && tree_size(depth) > remaining) --depth;
    const std::size_t size = std::min(tree_size(depth), remaining);
    // tree_size(1) == 1 always fits, so `size` is exactly tree_size(depth).
    DR_ASSERT(size == tree_size(depth));
    f.trees.push_back(PassiveTree{next, depth});
    next += static_cast<ProcId>(size);
    remaining -= size;
  }
  return f;
}

const PassiveTree* Forest::tree_of(ProcId p) const {
  if (!is_passive(p)) return nullptr;
  // Trees are stored in increasing id order; binary search the last tree
  // whose first_id <= p.
  const auto it = std::upper_bound(
      trees.begin(), trees.end(), p,
      [](ProcId id, const PassiveTree& tree) { return id < tree.first_id; });
  if (it == trees.begin()) return nullptr;
  const PassiveTree& tree = *(it - 1);
  return tree.contains(p) ? &tree : nullptr;
}

std::size_t Forest::max_depth() const {
  std::size_t d = 0;
  for (const PassiveTree& tree : trees) d = std::max(d, tree.depth);
  return d;
}

}  // namespace dr::ba
