#include "ba/interactive_consistency.h"

#include "codec/codec.h"
#include "util/contracts.h"

namespace dr::ba {

namespace {

Bytes tag(std::uint32_t instance, ByteView inner) {
  Writer w;
  w.u32(instance);
  w.bytes(inner);
  return std::move(w).take();
}

std::optional<std::pair<std::uint32_t, Bytes>> untag(ByteView payload) {
  Reader r(payload);
  const std::uint32_t instance = r.u32();
  Bytes inner = r.bytes();
  if (!r.done()) return std::nullopt;
  return std::make_pair(instance, std::move(inner));
}

}  // namespace

bool InteractiveConsistency::supports(const Protocol& base, std::size_t n,
                                      std::size_t t) {
  for (ProcId i = 0; i < n; ++i) {
    if (!base.supports(BAConfig{n, t, i, 0})) return false;
  }
  return true;
}

InteractiveConsistency::InteractiveConsistency(ProcId self,
                                               const Protocol& base,
                                               std::size_t n, std::size_t t,
                                               Value own_value)
    : self_(self), n_(n) {
  DR_EXPECTS(supports(base, n, t));
  instances_.reserve(n);
  for (ProcId i = 0; i < n; ++i) {
    // Only instance `self` carries our private value; the config value of
    // other instances is irrelevant to us (we are not their transmitter).
    instances_.push_back(
        base.make(self, BAConfig{n, t, i, i == self ? own_value : 0}));
  }
}

void InteractiveConsistency::on_phase(sim::Context& ctx) {
  // Demultiplex the inbox per instance.
  std::vector<std::vector<sim::Envelope>> inboxes(n_);
  for (const sim::Envelope& env : ctx.inbox()) {
    auto tagged = untag(env.payload);
    if (!tagged || tagged->first >= n_) continue;
    inboxes[tagged->first].push_back(sim::Envelope{
        env.from, env.to, env.sent_phase, std::move(tagged->second)});
  }

  for (std::uint32_t i = 0; i < n_; ++i) {
    sim::Context sub(ctx.self(), ctx.phase(), ctx.n(), ctx.t(), &inboxes[i],
                     &ctx.signer(), &ctx.verifier());
    instances_[i]->on_phase(sub);
    for (auto& out : sub.outgoing()) {
      // Re-tagging rewrites the bytes, so the instance's broadcast becomes
      // one tagged buffer broadcast once — the fan-out stays O(1) buffers.
      if (out.broadcast) {
        ctx.send_all(tag(i, out.payload), out.signatures);
      } else {
        ctx.send(out.to, tag(i, out.payload), out.signatures);
      }
    }
  }
}

std::vector<std::optional<Value>> InteractiveConsistency::vector() const {
  std::vector<std::optional<Value>> out;
  out.reserve(n_);
  for (const auto& instance : instances_) {
    out.push_back(instance->decision());
  }
  return out;
}

ICResult run_interactive_consistency(const Protocol& base,
                                     const std::vector<Value>& values,
                                     std::size_t t, std::uint64_t seed,
                                     const std::vector<ScenarioFault>&
                                         faults) {
  const std::size_t n = values.size();
  DR_EXPECTS(faults.size() <= t);
  sim::Runner runner(sim::RunConfig{.n = n, .t = t, .seed = seed});
  for (const ScenarioFault& fault : faults) runner.mark_faulty(fault.id);

  std::vector<InteractiveConsistency*> procs(n, nullptr);
  for (ProcId p = 0; p < n; ++p) {
    if (runner.is_faulty(p)) continue;
    auto proc = std::make_unique<InteractiveConsistency>(p, base, n, t,
                                                         values[p]);
    procs[p] = proc.get();
    runner.install(p, std::move(proc));
  }
  for (const ScenarioFault& fault : faults) {
    runner.install(fault.id, fault.make(fault.id, BAConfig{n, t, 0, 0}));
  }

  ICResult result{.vectors = {},
                  .run = runner.run(
                      InteractiveConsistency::steps(base, n, t))};
  result.vectors.resize(n);
  for (ProcId p = 0; p < n; ++p) {
    if (procs[p] != nullptr) result.vectors[p] = procs[p]->vector();
  }
  return result;
}

}  // namespace dr::ba
