#include "ba/signed_value.h"

#include <algorithm>
#include <string_view>

namespace dr::ba {

namespace {

/// Domain tag absorbed ahead of the value so chain digests can never
/// collide with any other digest computed in this codebase.
constexpr std::string_view kChainDomain = "dr82.chain.v1";

/// Streams the codec's varint encoding straight into the hash. The absorb
/// helpers run once per signature on the verify hot path, so they must not
/// heap-allocate a Writer per call; the bytes are identical to what
/// Writer/crypto::encode would produce.
void absorb_varint(crypto::Sha256& h, std::uint64_t v) {
  std::uint8_t buf[10];
  std::size_t len = 0;
  while (v >= 0x80) {
    buf[len++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  buf[len++] = static_cast<std::uint8_t>(v);
  h.update(ByteView{buf, len});
}

void absorb_head(crypto::Sha256& h, Value value) {
  detail::absorb_chain_head(h, value);
}

void absorb_signature(crypto::Sha256& h, const crypto::Signature& sig) {
  detail::absorb_signature_raw(h, sig.signer, sig.sig);
}

ByteView digest_view(const crypto::Digest& d) {
  return ByteView{d.data(), d.size()};
}

}  // namespace

Bytes encode(const SignedValue& sv) {
  Writer w;
  w.u64(sv.value);
  w.seq(sv.chain.size());
  for (const auto& sig : sv.chain) crypto::encode(w, sig);
  return std::move(w).take();
}

std::optional<SignedValue> decode_signed_value(ByteView data) {
  Reader r(data);
  SignedValue sv;
  sv.value = r.u64();
  const std::size_t count = r.seq();
  sv.chain.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto sig = crypto::decode_signature(r);
    if (!sig) return std::nullopt;
    sv.chain.push_back(*sig);
  }
  if (!r.done()) return std::nullopt;
  return sv;
}

crypto::Digest chain_prefix_digest(const SignedValue& sv, std::size_t upto) {
  crypto::Sha256 h;
  absorb_head(h, sv.value);
  for (std::size_t i = 0; i < upto; ++i) absorb_signature(h, sv.chain[i]);
  return h.finish();
}

SignedValue make_signed(Value value, const crypto::Signer& signer,
                        ProcId as) {
  return extend(SignedValue{value, {}}, signer, as);
}

SignedValue extend(SignedValue sv, const crypto::Signer& signer, ProcId as) {
  const crypto::Digest covered = chain_prefix_digest(sv, sv.chain.size());
  sv.chain.reserve(sv.chain.size() + 1);
  sv.chain.push_back(signer.sign(as, digest_view(covered)));
  return sv;
}

bool verify_chain(const SignedValue& sv, const crypto::Verifier& verifier,
                  crypto::VerifyCache* cache) {
  if (sv.chain.empty()) return true;
  crypto::Sha256 h;
  absorb_head(h, sv.value);
  if (cache == nullptr) {
    for (const auto& sig : sv.chain) {
      if (!verifier.verify(sig.signer, digest_view(h.peek()), sig)) {
        return false;
      }
      absorb_signature(h, sig);
    }
    return true;
  }
  // Cached walk: `covered` is the digest of the prefix before chain[i];
  // hits advance it straight from the cache without any hashing. `h` lags
  // behind at `streamed` absorbed signatures and only catches up on a
  // miss, so each signature is absorbed at most once and adversarial miss
  // patterns keep the whole call O(L).
  crypto::Digest covered = h.peek();
  std::size_t streamed = 0;
  for (std::size_t i = 0; i < sv.chain.size(); ++i) {
    const crypto::Signature& sig = sv.chain[i];
    if (const auto extended = cache->lookup(sig.signer, covered, sig.sig)) {
      covered = *extended;
      continue;
    }
    if (!verifier.verify(sig.signer, digest_view(covered), sig)) {
      return false;
    }
    while (streamed < i) absorb_signature(h, sv.chain[streamed++]);
    absorb_signature(h, sig);
    streamed = i + 1;
    const crypto::Digest extended = h.peek();
    cache->insert(sig.signer, covered, sig.sig, extended);
    covered = extended;
  }
  return true;
}

std::vector<ProcId> chain_signers(const SignedValue& sv) {
  std::vector<ProcId> out;
  out.reserve(sv.chain.size());
  for (const auto& sig : sv.chain) out.push_back(sig.signer);
  return out;
}

bool distinct_signers(const SignedValue& sv) {
  std::vector<ProcId> ids = chain_signers(sv);
  std::sort(ids.begin(), ids.end());
  return std::adjacent_find(ids.begin(), ids.end()) == ids.end();
}

bool contains_signer(const SignedValue& sv, ProcId p) {
  return std::any_of(sv.chain.begin(), sv.chain.end(),
                     [p](const crypto::Signature& s) { return s.signer == p; });
}

namespace detail {

void absorb_chain_head(crypto::Sha256& h, Value value) {
  absorb_varint(h, kChainDomain.size());
  h.update(as_bytes(kChainDomain));
  absorb_varint(h, value);
}

void absorb_signature_raw(crypto::Sha256& h, ProcId signer, ByteView sig) {
  absorb_varint(h, signer);
  absorb_varint(h, sig.size());
  h.update(sig);
}

}  // namespace detail

hist::LabelPrinter chain_label_printer() {
  return [](ByteView label) {
    const auto sv = decode_signed_value(label);
    if (!sv.has_value()) return hist::default_label_printer()(label);
    std::string out = "v=" + std::to_string(sv->value) + " sig[";
    bool first = true;
    for (const auto& sig : sv->chain) {
      if (!first) out += ",";
      out += std::to_string(sig.signer);
      first = false;
    }
    out += "]";
    return out;
  };
}

}  // namespace dr::ba
