#include "ba/signed_value.h"

#include <algorithm>

namespace dr::ba {

namespace {

/// Bytes covered by the signature at position `upto` (exclusive): the value
/// plus all earlier signatures. Must match encode()'s layout so that
/// receivers can recompute it from a decoded message.
Bytes chain_prefix(const SignedValue& sv, std::size_t upto) {
  Writer w;
  w.u64(sv.value);
  w.seq(upto);
  for (std::size_t i = 0; i < upto; ++i) {
    crypto::encode(w, sv.chain[i]);
  }
  return std::move(w).take();
}

}  // namespace

Bytes encode(const SignedValue& sv) { return chain_prefix(sv, sv.chain.size()); }

std::optional<SignedValue> decode_signed_value(ByteView data) {
  Reader r(data);
  SignedValue sv;
  sv.value = r.u64();
  const std::size_t count = r.seq();
  sv.chain.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto sig = crypto::decode_signature(r);
    if (!sig) return std::nullopt;
    sv.chain.push_back(*sig);
  }
  if (!r.done()) return std::nullopt;
  return sv;
}

SignedValue make_signed(Value value, const crypto::Signer& signer,
                        ProcId as) {
  SignedValue sv{value, {}};
  return extend(sv, signer, as);
}

SignedValue extend(const SignedValue& sv, const crypto::Signer& signer,
                   ProcId as) {
  SignedValue out = sv;
  const Bytes covered = chain_prefix(out, out.chain.size());
  out.chain.push_back(signer.sign(as, covered));
  return out;
}

bool verify_chain(const SignedValue& sv, const crypto::Verifier& verifier) {
  for (std::size_t i = 0; i < sv.chain.size(); ++i) {
    const Bytes covered = chain_prefix(sv, i);
    if (!verifier.verify(sv.chain[i].signer, covered, sv.chain[i])) {
      return false;
    }
  }
  return true;
}

std::vector<ProcId> chain_signers(const SignedValue& sv) {
  std::vector<ProcId> out;
  out.reserve(sv.chain.size());
  for (const auto& sig : sv.chain) out.push_back(sig.signer);
  return out;
}

bool distinct_signers(const SignedValue& sv) {
  std::vector<ProcId> ids = chain_signers(sv);
  std::sort(ids.begin(), ids.end());
  return std::adjacent_find(ids.begin(), ids.end()) == ids.end();
}

bool contains_signer(const SignedValue& sv, ProcId p) {
  return std::any_of(sv.chain.begin(), sv.chain.end(),
                     [p](const crypto::Signature& s) { return s.signer == p; });
}

hist::LabelPrinter chain_label_printer() {
  return [](const Bytes& label) {
    const auto sv = decode_signed_value(label);
    if (!sv.has_value()) return hist::default_label_printer()(label);
    std::string out = "v=" + std::to_string(sv->value) + " sig[";
    bool first = true;
    for (const auto& sig : sv->chain) {
      if (!first) out += ",";
      out += std::to_string(sig.signer);
      first = false;
    }
    out += "]";
    return out;
  };
}

}  // namespace dr::ba
