// Algorithm 2 (Section 5, Theorem 4): Algorithm 1 followed by 2t+1
// proof-building phases. After 3t+3 phases every correct processor holds a
// one-message proof of the common value — the value with at least t
// signatures of *other* processors appended — and no processor (faulty or
// not) can hold such a proof for any other value. At most 5t^2 + 5t
// messages.
//
// Paper labels p(1)..p(2t+1) map to our ids 0..2t (label j = id j-1).
// In phase t+2+j processor p(j) picks m(j), an *increasing* message it has
// received with the maximum number of signatures (an increasing message for
// p(j) carries p(j)'s committed value signed by processors with labels < j
// in increasing label order), signs it, and sends it to everybody if it
// already carried at least t signatures, otherwise only to the next t+1
// processors by label.
#pragma once

#include <memory>

#include "ba/algorithm1.h"
#include "ba/config.h"
#include "ba/signed_value.h"
#include "sim/process.h"

namespace dr::ba {

/// Is `sv` an increasing message for the processor with id `self`
/// committed to `committed`? (Signers strictly below self's label, strictly
/// increasing, value matches, chain verifies.)
bool is_increasing_message(const SignedValue& sv, ProcId self,
                           Value committed, const crypto::Verifier& verifier,
                           crypto::VerifyCache* cache = nullptr);

class Algorithm2 final : public sim::Process {
 public:
  /// `multi_valued` swaps the inner Algorithm 1 for its multi-valued
  /// variant (the paper's remark that the algorithms extend to |V| > 2
  /// with slight modification); the proof-building phases are value-
  /// agnostic and unchanged.
  Algorithm2(ProcId self, const BAConfig& config, bool multi_valued = false);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;
  /// The possession proof as decision-time evidence (kind kPossession),
  /// when acquired.
  std::optional<Bytes> evidence() const override;

  /// Alg 1's t+2 phases, then sends at steps t+2+j (j = 1..2t+1), then one
  /// processing-only step.
  static PhaseNum steps(const BAConfig& config) {
    return static_cast<PhaseNum>(3 * config.t + 4);
  }
  static bool supports(const BAConfig& config) {
    return Algorithm1::supports(config);
  }
  static bool supports_mv(const BAConfig& config) {
    return Algorithm1MV::supports(config);
  }

  /// The possession proof (Theorem 4), once acquired: committed value with
  /// at least t signatures of other processors.
  const std::optional<SignedValue>& proof() const { return proof_; }

 private:
  Value committed() const;
  void consider_proof(const SignedValue& sv, const crypto::Verifier& verifier,
                      crypto::VerifyCache* cache);

  ProcId self_;
  BAConfig config_;
  std::unique_ptr<sim::Process> inner_;  // Algorithm1 or Algorithm1MV
  /// Best increasing message received so far (most signatures).
  std::optional<SignedValue> best_increasing_;
  std::optional<SignedValue> proof_;
};

}  // namespace dr::ba
