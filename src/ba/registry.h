// Name -> protocol registry plus a one-call scenario harness. Examples,
// tests and benchmarks all drive the algorithms through this.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ba/config.h"
#include "sim/runner.h"

namespace dr::ba {

struct Protocol {
  std::string name;
  bool authenticated = true;
  /// Parameter constraints (n/t/transmitter/value restrictions).
  std::function<bool(const BAConfig&)> supports;
  /// Simulator steps required (communication phases + trailing processing).
  std::function<PhaseNum(const BAConfig&)> steps;
  /// Correct-process factory.
  std::function<std::unique_ptr<sim::Process>(ProcId, const BAConfig&)> make;
};

/// All fixed protocols: "dolev-strong", "dolev-strong-relay", "eig",
/// "alg1", "alg2". The parameterised ones are built by the helpers below.
const std::vector<Protocol>& protocols();
const Protocol* find_protocol(std::string_view name);

/// Algorithm 3 with chain length s ("alg3[s=<s>]").
Protocol make_alg3_protocol(std::size_t s);
/// Multi-valued Algorithm 3 ("alg3-mv[s=<s>]").
Protocol make_alg3_mv_protocol(std::size_t s);
/// Algorithm 5 family with tree size target s ("alg5[s=<s>]").
Protocol make_alg5_protocol(std::size_t s);
/// Multi-valued Algorithm 5 ("alg5-mv[s=<s>]").
Protocol make_alg5_mv_protocol(std::size_t s);
/// Ablation variant without the proof-of-work activation gate
/// ("alg5-ungated[s=<s>]"); still correct, but unbounded activations.
Protocol make_alg5_ungated_protocol(std::size_t s);

/// A faulty processor in a scenario: its id and the factory producing its
/// (Byzantine) behaviour. The factory may capture the protocol to wrap the
/// correct implementation (crash faults, ignore faults, ...).
struct ScenarioFault {
  ProcId id = 0;
  std::function<std::unique_ptr<sim::Process>(ProcId, const BAConfig&)> make;
};

/// Extra knobs for run_scenario beyond the common (seed, faults) pair.
struct ScenarioOptions {
  std::uint64_t seed = 1;
  bool record_history = false;
  bool rushing = false;
  sim::SchemeKind scheme = sim::SchemeKind::kHmac;
  std::size_t merkle_height = 6;
  std::size_t threads = 1;
  /// Transport fault plan (not owned; must outlive the call). After the
  /// run, plan->perturbed() reports the processors it made
  /// Byzantine-in-effect; see sim/faults.h for the accounting rule.
  sim::FaultPlan* fault_plan = nullptr;
  /// Reusable allocation state (not owned; see sim::RunConfig::arenas).
  /// Callers that loop over scenarios pass one RunArenas to make the
  /// steady-state message plane allocation-free across runs.
  sim::RunArenas* arenas = nullptr;
};

/// Builds a runner, installs correct processes everywhere except the listed
/// faults, runs protocol.steps(config) phases.
sim::RunResult run_scenario(const Protocol& protocol, const BAConfig& config,
                            std::uint64_t seed,
                            const std::vector<ScenarioFault>& faults = {},
                            bool record_history = false);

/// Same, with the full option set.
sim::RunResult run_scenario(const Protocol& protocol, const BAConfig& config,
                            const ScenarioOptions& options,
                            const std::vector<ScenarioFault>& faults = {});

}  // namespace dr::ba
