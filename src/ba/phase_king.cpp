#include "ba/phase_king.h"

#include <map>
#include <set>

#include "codec/codec.h"
#include "util/contracts.h"

namespace dr::ba {

// Schedule (simulator steps):
//   step 1            transmitter broadcasts its value
//   step 2k           (k = 1..t+1) round A of phase k: process the previous
//                     king's verdict (or the transmitter's value when k=1),
//                     then broadcast the current value
//   step 2k+1         round B of phase k: tally round-A values into
//                     (majority, multiplicity); the phase's king broadcasts
//                     its majority
//   step 2t+4         final processing-only step (last king's verdict)

PhaseKing::PhaseKing(ProcId self, const BAConfig& config)
    : self_(self), config_(config) {
  DR_EXPECTS(supports(config));
}

ProcId PhaseKing::king_of(std::size_t k) const {
  // Kings are the t+1 lowest ids other than the transmitter.
  ProcId id = static_cast<ProcId>(k - 1);
  if (id >= config_.transmitter) id = static_cast<ProcId>(id + 1);
  return id;
}

void PhaseKing::broadcast_value(sim::Context& ctx, Value v) {
  ctx.send_all(encode_u64(v), 0);
}

void PhaseKing::on_phase(sim::Context& ctx) {
  const std::size_t t = config_.t;
  const PhaseNum step = ctx.phase();

  if (step == 1) {
    if (self_ == config_.transmitter) {
      value_ = config_.value;
      broadcast_value(ctx, value_);
    }
    return;
  }

  // First value per sender this step (a faulty sender may spam).
  std::map<ProcId, Value> received;
  for (const sim::Envelope& env : ctx.inbox()) {
    const auto v = decode_u64(env.payload);
    if (v.has_value()) received.try_emplace(env.from, *v);
  }

  if (step % 2 == 0) {
    // Round A of phase k = step/2 - ... process the pending verdict.
    const std::size_t k = step / 2;  // phase index 1..t+1
    if (k == 1) {
      // Adopt the transmitter's value (default on silence/garbage).
      if (self_ != config_.transmitter) {
        const auto it = received.find(config_.transmitter);
        value_ = it != received.end() ? it->second : kDefaultValue;
      }
    } else {
      // The previous phase's king verdict: keep our majority when it had
      // overwhelming support, otherwise follow the king.
      const double threshold =
          static_cast<double>(config_.n) / 2.0 + static_cast<double>(t);
      if (static_cast<double>(majority_votes_) > threshold) {
        value_ = majority_;
      } else {
        const auto it = received.find(king_of(k - 1));
        value_ = it != received.end() ? it->second : majority_;
      }
    }
    if (k <= t + 1) broadcast_value(ctx, value_);
    return;
  }

  // Odd step >= 3: round B of phase k = (step-1)/2. Tally round-A values.
  const std::size_t k = (step - 1) / 2;
  if (k > t + 1) return;
  std::map<Value, std::size_t> counts;
  for (const auto& [from, v] : received) ++counts[v];
  ++counts[value_];  // our own value participates
  majority_ = kDefaultValue;
  majority_votes_ = 0;
  for (const auto& [v, c] : counts) {
    if (c > majority_votes_) {
      majority_ = v;
      majority_votes_ = c;
    }
  }
  if (self_ == king_of(k)) broadcast_value(ctx, majority_);
}

std::optional<Value> PhaseKing::decision() const { return value_; }

}  // namespace dr::ba
