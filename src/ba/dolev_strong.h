// The authenticated baseline the paper compares against (its reference [9],
// Dolev & Strong, "Authenticated algorithms for Byzantine Agreement").
//
// Two variants:
//  * DolevStrongBroadcast — the textbook t+1-phase algorithm: every correct
//    processor relays each newly extracted value (at most two) to everybody,
//    Theta(n^2) messages in the worst case.
//  * DolevStrongRelay — the message-thrifty variant the paper's introduction
//    attributes to [9] ("O(nt + t^2) messages ... by a slight modification
//    and one additional phase"): processors report newly extracted values
//    only to t+1 designated relay processors, which re-broadcast, giving
//    O(nt) messages at the cost of two extra phases.
//
// Both decide: if exactly one value was extracted, that value; otherwise the
// default value 0 (the transmitter is then exposed as faulty).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "ba/config.h"
#include "ba/signed_value.h"
#include "sim/process.h"

namespace dr::ba {

class DolevStrongBroadcast final : public sim::Process {
 public:
  DolevStrongBroadcast(ProcId self, const BAConfig& config);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;
  /// The relay chain retained for the single extracted value (kind
  /// kExtraction; the transmitter's is its own length-1 chain). nullopt
  /// when the decision fell back to the default or the value was extracted
  /// at the final processing step (no relay chain was ever built).
  std::optional<Bytes> evidence() const override;

  /// Simulator steps needed: t+1 communication phases plus one final
  /// processing-only step to consume chains of length t+1.
  static PhaseNum steps(const BAConfig& config) {
    return static_cast<PhaseNum>(config.t + 2);
  }

  const std::set<Value>& extracted() const { return extracted_; }

 private:
  ProcId self_;
  BAConfig config_;
  std::set<Value> extracted_;
  std::size_t relayed_ = 0;  // values this processor has relayed (max 2)
  /// The chain this processor extended per extracted value — built during
  /// the relay step anyway, retained as decision-time evidence.
  std::map<Value, SignedValue> retained_;
};

class DolevStrongRelay final : public sim::Process {
 public:
  /// `relay_count` overrides the number of designated relays (default and
  /// correctness requirement: t+1 — at least one correct relay). Smaller
  /// values exist for the ablation benchmark, which demonstrates how k <= t
  /// relays lose agreement under an equivocating transmitter with k silent
  /// relays.
  DolevStrongRelay(ProcId self, const BAConfig& config,
                   std::size_t relay_count = 0);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;
  /// Same contract as DolevStrongBroadcast::evidence().
  std::optional<Bytes> evidence() const override;

  /// t+3 communication phases plus a final processing-only step.
  static PhaseNum steps(const BAConfig& config) {
    return static_cast<PhaseNum>(config.t + 4);
  }

 private:
  bool is_relay(ProcId p) const;
  void extract(const SignedValue& sv, sim::Context& ctx);

  ProcId self_;
  BAConfig config_;
  std::size_t relay_count_;
  std::set<Value> extracted_;
  std::size_t reported_ = 0;   // values sent to the relay set (max 2)
  std::size_t broadcast_ = 0;  // values broadcast when acting as relay (max 2)
  std::map<Value, SignedValue> retained_;  // see DolevStrongBroadcast
};

}  // namespace dr::ba
