// Decision-time evidence: the signature chain a protocol instance already
// holds when it decides, retained instead of discarded. Evidence is the
// in-run precursor of a transferable proof (src/proof): the runner collects
// each process's blob next to its decision, and proof::from_evidence wraps
// it with the realm parameters a third party needs to verify it offline.
//
// Emitting evidence NEVER signs anything new — Merkle/WOTS signers are
// stateful (each signature consumes a leaf), so an extra sign() call would
// shift every later signature in the run. Protocols therefore retain chains
// they built anyway: Algorithm 2 its Theorem-4 possession proof,
// Dolev-Strong the relay chain it extended for its single extracted value,
// Algorithm 5 the valid message it adopted or forwarded.
#pragma once

#include <optional>

#include "ba/signed_value.h"

namespace dr::ba {

/// What the retained chain certifies — this selects the offline
/// verification rule (see proof::verify). The byte values are pairwise at
/// Hamming distance >= 4, so no single bit flip of a serialized blob turns
/// one valid kind into another (the forgery battery's bit-flip fuzz relies
/// on this: a flipped kind byte must fail decoding, not switch rules).
enum class EvidenceKind : std::uint8_t {
  /// Theorem 4: the committed value with >= t signatures of processors
  /// other than the holder (Algorithm 2).
  kPossession = 0x21,
  /// A Dolev-Strong extraction chain: transmitter-rooted, relayed through
  /// the holder, whose signature ends it (length 1 for the transmitter).
  kExtraction = 0x4b,
  /// Section 6's "valid message": the value with >= t+1 signatures of
  /// distinct active processors (Algorithm 5 / Algorithm2Ext).
  kValidMessage = 0x96,
};

/// True when `raw` is one of the EvidenceKind byte values.
bool evidence_kind_ok(std::uint8_t raw);

struct Evidence {
  EvidenceKind kind = EvidenceKind::kPossession;
  SignedValue sv;

  friend bool operator==(const Evidence&, const Evidence&) = default;
};

/// Wire image: u8 kind | SignedValue encoding. Deterministic (the digest of
/// a transferable proof covers these bytes).
Bytes encode_evidence(const Evidence& ev);
std::optional<Evidence> decode_evidence(ByteView data);

}  // namespace dr::ba
