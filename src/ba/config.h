// Shared configuration for all Byzantine Agreement protocol implementations.
#pragma once

#include <cstddef>

#include "sim/envelope.h"

namespace dr::ba {

using sim::PhaseNum;
using sim::ProcId;
using sim::Value;

/// The paper's standing assumptions: n processors, at most t faulty, one
/// designated transmitter with a private input value. The algorithms in
/// Sections 5-6 fix transmitter = 0 and V = {0, 1}; Dolev-Strong and EIG
/// accept arbitrary 64-bit values.
struct BAConfig {
  std::size_t n = 0;
  std::size_t t = 0;
  ProcId transmitter = 0;
  Value value = 0;  // consumed only by the transmitter's own instance

  friend bool operator==(const BAConfig&, const BAConfig&) = default;
};

/// The value a correct processor falls back to when the transmitter is
/// exposed as faulty (the paper's convention: "otherwise it agrees on 0").
inline constexpr Value kDefaultValue = 0;

}  // namespace dr::ba
