// Algorithm 4 (Section 6, Lemma 2 / Theorem 6): N = m^2 processors mutually
// exchange signed values in 3 phases and at most 3(m-1)m^2 = O(N^1.5)
// messages, such that a core of at least N-2t *non-isolated* correct
// processors all learn each other's values.
//
// Layout: processor p(i,j) has id (i-1)*m + (j-1). Phase 1 broadcasts the
// own value along the row; phase 2 sends the row bundle along the column;
// phase 3 sends the column-of-row bundles along the row again.
//
// The exchanged unit is an arbitrary byte string ("body") with a single
// signature — Algorithm 5 uses this to exchange its missing-processor lists,
// and the standalone benchmark uses 8-byte values.
//
// Also here: the two baselines the paper mentions for the mutual-exchange
// problem — the obvious one-phase N(N-1) algorithm and the two-phase relay
// algorithm with (N-1)(t+1) + (N-t-1)(t+1) messages.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "ba/config.h"
#include "codec/codec.h"
#include "crypto/signature.h"
#include "sim/process.h"

namespace dr::ba {

/// A byte string signed by one processor. The signature covers
/// ("dr82.attest" || signer || body), so it cannot be confused with the
/// SignedValue chains used elsewhere.
struct Attested {
  ProcId signer = 0;
  Bytes body;
  crypto::Signature sig;

  friend bool operator==(const Attested&, const Attested&) = default;
};

Attested attest(ByteView body, const crypto::Signer& signer, ProcId as);
bool verify_attested(const Attested& a, const crypto::Verifier& verifier);
void encode(Writer& w, const Attested& a);
std::optional<Attested> decode_attested(Reader& r);

/// Reusable 3-phase grid-exchange state machine; `start` is the simulator
/// step at which phase 1 of the exchange runs. Drive it by calling on_phase
/// for steps start .. start+3 (the last is processing-only); afterwards
/// known() holds every attested body seen, keyed by signer.
class GridExchangeCore {
 public:
  /// `self` must be < m*m; ids 0..m*m-1 form the grid.
  GridExchangeCore(ProcId self, std::size_t m, sim::PhaseNum start);

  void set_body(Bytes body) { body_ = std::move(body); }

  void on_phase(sim::Context& ctx);

  bool done(sim::PhaseNum phase) const { return phase > start_ + 3; }
  const std::map<ProcId, Attested>& known() const { return known_; }
  sim::PhaseNum start() const { return start_; }

 private:
  std::size_t row(ProcId p) const { return p / m_; }
  std::size_t col(ProcId p) const { return p % m_; }
  ProcId id(std::size_t i, std::size_t j) const {
    return static_cast<ProcId>(i * m_ + j);
  }

  void remember(const Attested& a, const crypto::Verifier& verifier);
  /// Bundles a set of attested strings into one payload.
  static Bytes bundle(const std::vector<Attested>& items);
  /// Strict decode: all entries must parse (a malformed bundle is ignored
  /// entirely, matching the paper's "ignore messages that do not have a
  /// correct format").
  static std::optional<std::vector<Attested>> unbundle(ByteView data);

  ProcId self_;
  std::size_t m_;
  sim::PhaseNum start_;
  Bytes body_;
  std::map<ProcId, Attested> known_;
  // Bundles to forward: M1 (row collections) and M2 (column collections).
  std::vector<Attested> row_collected_;
  std::vector<Attested> col_collected_;
};

/// Standalone Algorithm-4 process for tests/benchmarks.
class GridExchangeProcess final : public sim::Process {
 public:
  GridExchangeProcess(ProcId self, std::size_t m, Bytes body);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

  static PhaseNum steps(std::size_t /*m*/) { return 4; }

  const std::map<ProcId, Attested>& known() const { return core_.known(); }

 private:
  GridExchangeCore core_;
};

/// Baseline: everybody signs and sends to everybody, one phase, N(N-1)
/// messages.
class NaiveExchangeProcess final : public sim::Process {
 public:
  NaiveExchangeProcess(ProcId self, std::size_t n, Bytes body);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

  static PhaseNum steps() { return 2; }

  const std::map<ProcId, Attested>& known() const { return known_; }

 private:
  ProcId self_;
  std::size_t n_;
  Bytes body_;
  std::map<ProcId, Attested> known_;
};

/// Baseline: t+1 relay processors (ids 0..t); phase 1 everybody sends to
/// every relay, phase 2 relays broadcast the combined bundle:
/// (N-1)(t+1) + (N-t-1)(t+1) messages, every correct pair exchanges.
class RelayExchangeProcess final : public sim::Process {
 public:
  RelayExchangeProcess(ProcId self, std::size_t n, std::size_t t, Bytes body);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override { return std::nullopt; }

  static PhaseNum steps() { return 3; }

  const std::map<ProcId, Attested>& known() const { return known_; }

 private:
  ProcId self_;
  std::size_t n_;
  std::size_t t_;
  Bytes body_;
  std::map<ProcId, Attested> known_;
  std::vector<Attested> collected_;
};

/// Lemma 2's non-isolated predicate: a correct processor whose row contains
/// fewer than m/2 faulty processors (strictly less). The lemma guarantees
/// every pair of non-isolated processors exchanged values.
bool non_isolated(ProcId p, std::size_t m, const std::vector<bool>& faulty);

}  // namespace dr::ba
