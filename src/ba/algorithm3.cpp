#include "ba/algorithm3.h"

#include <algorithm>
#include <map>

#include "ba/valid_message.h"

#include "util/contracts.h"

namespace dr::ba {

Algorithm3::Algorithm3(ProcId self, const BAConfig& config, std::size_t s,
                       bool multi_valued)
    : self_(self), config_(config),
      layout_{config.n, config.t, s},
      is_active_(layout_.is_active(self)) {
  DR_EXPECTS(supports(config, s, multi_valued));
  // Only active processors participate in the inner agreement; passives
  // get a (never-invoked) dummy instance to keep the invariants simple.
  const ProcId inner_id = is_active_ ? self : 0;
  const BAConfig inner_config{2 * config.t + 1, config.t, 0, config.value};
  if (multi_valued) {
    inner_ = std::make_unique<Algorithm1MV>(inner_id, inner_config);
  } else {
    inner_ = std::make_unique<Algorithm1>(inner_id, inner_config);
  }
}

bool Algorithm3::well_formed_report(const SignedValue& sv, std::size_t set,
                                    const crypto::Verifier& verifier,
                                    crypto::VerifyCache* cache) const {
  if (sv.chain.empty()) return false;
  if (!layout_.is_active(sv.chain.front().signer)) return false;
  ProcId prev = 0;
  for (std::size_t i = 1; i < sv.chain.size(); ++i) {
    const ProcId signer = sv.chain[i].signer;
    if (signer >= config_.n || layout_.is_active(signer)) return false;
    if (layout_.set_of(signer) != set) return false;
    if (layout_.index_in_set(signer) < 2) return false;  // not the root
    if (i > 1 && signer <= prev) return false;           // increasing, distinct
    prev = signer;
  }
  return verify_chain(sv, verifier, cache);
}

void Algorithm3::active_phase(sim::Context& ctx) {
  const std::size_t t = config_.t;
  const PhaseNum phase = ctx.phase();

  // Algorithm 1 among the first 2t+1 processors (steps 1..t+3).
  if (phase <= t + 3) inner_->on_phase(ctx);

  const Value v = inner_->decision().value_or(kDefaultValue);

  if (phase == t + 3) {
    // Send the agreed value, signed, to every root.
    const SignedValue sv = make_signed(v, ctx.signer(), self_);
    for (std::size_t set = 0; set < layout_.set_count(); ++set) {
      ctx.send(layout_.root_of(set), encode(sv), sv.chain.size());
    }
    return;
  }

  if (phase == t + 2 * layout_.s + 3) {
    // Last phase: repair members whose signature the root failed to show.
    // covered[set] = members of `set` proven informed by some root report.
    std::map<std::size_t, std::set<ProcId>> covered;
    prewarm_inbox(ctx);
    for (const sim::Envelope& env : ctx.inbox()) {
      if (layout_.is_active(env.from)) continue;
      if (layout_.index_in_set(env.from) != 1) continue;  // roots only
      const std::size_t set = layout_.set_of(env.from);
      const auto sv = decode_signed_value(env.payload);
      if (!sv || sv->value != v ||
          !well_formed_report(*sv, set, ctx.verifier(), ctx.chain_cache())) {
        continue;
      }
      for (const auto& sig : sv->chain) {
        if (!layout_.is_active(sig.signer)) covered[set].insert(sig.signer);
      }
    }
    const SignedValue direct = make_signed(v, ctx.signer(), self_);
    const sim::Payload encoded{encode(direct)};
    for (std::size_t set = 0; set < layout_.set_count(); ++set) {
      const auto it = covered.find(set);
      for (std::size_t j = 2; j <= layout_.set_size(set); ++j) {
        const ProcId member = layout_.member(set, j);
        if (it != covered.end() && it->second.contains(member)) continue;
        ctx.send(member, encoded, direct.chain.size());
      }
    }
  }
}

void Algorithm3::root_phase(sim::Context& ctx) {
  const std::size_t t = config_.t;
  const PhaseNum phase = ctx.phase();
  const std::size_t set = layout_.set_of(self_);
  const std::size_t size = layout_.set_size(set);

  // Define m(1) from the active broadcast (sent t+3, delivered t+4).
  if (phase == t + 4) {
    std::map<Value, std::set<ProcId>> support;
    std::map<Value, SignedValue> sample;
    prewarm_inbox(ctx);
    for (const sim::Envelope& env : ctx.inbox()) {
      if (!layout_.is_active(env.from) || env.sent_phase != t + 3) continue;
      const auto sv = decode_signed_value(env.payload);
      if (!sv || sv->chain.size() != 1 || sv->chain.front().signer != env.from)
        continue;
      if (!verify_chain(*sv, ctx.verifier(), ctx.chain_cache())) continue;
      support[sv->value].insert(env.from);
      sample.try_emplace(sv->value, *sv);
    }
    for (const auto& [value, senders] : support) {
      if (senders.size() >= t + 1) {
        m_ = sample.at(value);
        break;  // at most one value can have t+1 correct supporters
      }
    }
  }

  // Process a countersignature returned by c(j-1) (sent at t+2(j-1)+1,
  // delivered at t+2j). Accept only our current m extended by exactly the
  // expected member's signature.
  if (m_.has_value() && phase >= t + 6) {
    prewarm_inbox(ctx);
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.sent_phase + 1 != phase) continue;
      if (env.sent_phase < t + 5 || env.sent_phase % 2 != (t + 5) % 2)
        continue;
      const std::size_t j = (env.sent_phase - t - 1) / 2;  // echo of c(j)
      if (j < 2 || j > size || env.from != layout_.member(set, j)) continue;
      const auto sv = decode_signed_value(env.payload);
      if (!sv || sv->value != m_->value) continue;
      if (sv->chain.size() != m_->chain.size() + 1) continue;
      if (!std::equal(m_->chain.begin(), m_->chain.end(), sv->chain.begin()))
        continue;
      if (sv->chain.back().signer != env.from) continue;
      if (!verify_chain(*sv, ctx.verifier(), ctx.chain_cache())) continue;
      m_ = *sv;
    }
  }

  if (!m_.has_value()) return;

  // Send m(j-1) to c(j) at phase t+2j.
  if (phase >= t + 4 && phase % 2 == (t + 4) % 2) {
    const std::size_t j = (phase - t) / 2;
    if (j >= 2 && j <= size) {
      ctx.send(layout_.member(set, j), encode(*m_), m_->chain.size());
    }
  }

  // Report to every active at phase t+2s+2.
  if (phase == t + 2 * layout_.s + 2) {
    const sim::Payload encoded{encode(*m_)};
    for (ProcId p = 0; p < layout_.active_count(); ++p) {
      ctx.send(p, encoded, m_->chain.size());
    }
  }
}

void Algorithm3::member_phase(sim::Context& ctx) {
  const std::size_t t = config_.t;
  const PhaseNum phase = ctx.phase();
  const std::size_t set = layout_.set_of(self_);
  const std::size_t j = layout_.index_in_set(self_);
  const ProcId root = layout_.root_of(set);

  // Countersign slot: phase t+2j+1, acting on what the root sent at t+2j.
  if (phase == t + 2 * j + 1) {
    std::optional<SignedValue> unique;
    bool ambiguous = false;
    prewarm_inbox(ctx);
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.from != root || env.sent_phase + 1 != phase) continue;
      const auto sv = decode_signed_value(env.payload);
      if (!sv ||
          !well_formed_report(*sv, set, ctx.verifier(), ctx.chain_cache())) {
        continue;
      }
      // Only signatures of earlier members may be present.
      bool ok = true;
      for (std::size_t i = 1; i < sv->chain.size(); ++i) {
        if (sv->chain[i].signer >= self_) ok = false;
      }
      if (!ok) continue;
      if (unique.has_value() && !(unique->value == sv->value)) {
        ambiguous = true;
      }
      if (!unique.has_value()) unique = *sv;
    }
    if (unique.has_value() && !ambiguous) {
      root_shown_value_ = unique->value;
      const SignedValue echo = extend(*unique, ctx.signer(), self_);
      ctx.send(root, encode(echo), echo.chain.size());
    }
  }

  // Final step: count direct repairs from actives (sent at t+2s+3).
  if (phase == t + 2 * layout_.s + 4) {
    std::map<Value, std::set<ProcId>> support;
    prewarm_inbox(ctx);
    for (const sim::Envelope& env : ctx.inbox()) {
      if (!layout_.is_active(env.from)) continue;
      const auto sv = decode_signed_value(env.payload);
      if (!sv || sv->chain.size() != 1 || sv->chain.front().signer != env.from)
        continue;
      if (!verify_chain(*sv, ctx.verifier(), ctx.chain_cache())) continue;
      support[sv->value].insert(env.from);
    }
    for (const auto& [value, senders] : support) {
      if (senders.size() >= t + 1) {
        direct_value_ = value;
        break;
      }
    }
  }
}

void Algorithm3::on_phase(sim::Context& ctx) {
  if (is_active_) {
    active_phase(ctx);
  } else if (layout_.index_in_set(self_) == 1) {
    root_phase(ctx);
  } else {
    member_phase(ctx);
  }
}

std::optional<Value> Algorithm3::decision() const {
  if (is_active_) return inner_->decision();
  if (layout_.index_in_set(self_) == 1) {
    if (m_.has_value()) return m_->value;
    return kDefaultValue;
  }
  if (direct_value_.has_value()) return *direct_value_;
  return root_shown_value_.value_or(kDefaultValue);
}

}  // namespace dr::ba
