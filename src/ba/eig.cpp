#include "ba/eig.h"

#include <algorithm>

#include "codec/codec.h"

namespace dr::ba {

namespace {

/// One relay bundle: a sequence of (path, value) pairs.
Bytes encode_bundle(
    const std::vector<std::pair<std::vector<ProcId>, Value>>& pairs) {
  Writer w;
  w.seq(pairs.size());
  for (const auto& [path, value] : pairs) {
    w.seq(path.size());
    for (ProcId p : path) w.u32(p);
    w.u64(value);
  }
  return std::move(w).take();
}

std::optional<std::vector<std::pair<std::vector<ProcId>, Value>>>
decode_bundle(ByteView data) {
  Reader r(data);
  std::vector<std::pair<std::vector<ProcId>, Value>> pairs;
  const std::size_t count = r.seq();
  for (std::size_t i = 0; i < count && r.ok(); ++i) {
    std::vector<ProcId> path(r.seq());
    for (auto& p : path) p = r.u32();
    const Value v = r.u64();
    pairs.emplace_back(std::move(path), v);
  }
  if (!r.done()) return std::nullopt;
  return pairs;
}

bool distinct_ids(const std::vector<ProcId>& path) {
  std::vector<ProcId> sorted = path;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

}  // namespace

Eig::Eig(ProcId self, const BAConfig& config) : self_(self), config_(config) {}

bool Eig::valid_pair(const Path& path, ProcId from,
                     PhaseNum sent_phase) const {
  if (path.empty() || path.size() != sent_phase) return false;
  if (path.front() != config_.transmitter) return false;
  if (path.back() != from) return false;
  // Note: paths containing the receiver ARE stored — the receiver needs the
  // whole level for its majority resolution, including subtrees under its
  // own label.
  if (!distinct_ids(path)) return false;
  for (ProcId p : path) {
    if (p >= config_.n) return false;
  }
  return true;
}

void Eig::on_phase(sim::Context& ctx) {
  const PhaseNum phase = ctx.phase();

  // Store everything delivered this phase (sent in round phase-1).
  for (const sim::Envelope& env : ctx.inbox()) {
    const auto pairs = decode_bundle(env.payload);
    if (!pairs) continue;
    for (const auto& [path, value] : *pairs) {
      if (!valid_pair(path, env.from, env.sent_phase)) continue;
      tree_.try_emplace(path, value);  // first report wins
    }
  }

  // Send this round's relays.
  if (phase == 1) {
    if (self_ == config_.transmitter) {
      const Path root{self_};
      tree_.try_emplace(root, config_.value);
      ctx.send_all(encode_bundle({{root, config_.value}}), 0);
    }
    return;
  }
  if (phase > config_.t + 1) return;  // rounds are 1..t+1

  std::vector<std::pair<Path, Value>> relays;
  for (const auto& [path, value] : tree_) {
    if (path.size() != phase - 1) continue;
    if (std::find(path.begin(), path.end(), self_) != path.end()) continue;
    Path extended = path;
    extended.push_back(self_);
    relays.emplace_back(std::move(extended), value);
  }
  if (relays.empty()) return;
  // A relay conceptually goes to every processor including the sender;
  // store our own copies directly.
  for (const auto& [path, value] : relays) {
    tree_.try_emplace(path, value);
  }
  ctx.send_all(encode_bundle(relays), 0);
}

Value Eig::resolve(const Path& path) const {
  if (path.size() == config_.t + 1) {
    const auto it = tree_.find(path);
    return it == tree_.end() ? kDefaultValue : it->second;
  }
  // Strict majority over children; default on a tie or no majority.
  std::map<Value, std::size_t> votes;
  std::size_t children = 0;
  for (ProcId q = 0; q < config_.n; ++q) {
    if (std::find(path.begin(), path.end(), q) != path.end()) continue;
    Path child = path;
    child.push_back(q);
    ++children;
    ++votes[resolve(child)];
  }
  for (const auto& [value, count] : votes) {
    if (2 * count > children) return value;
  }
  return kDefaultValue;
}

std::optional<Value> Eig::decision() const {
  if (self_ == config_.transmitter) return config_.value;
  return resolve(Path{config_.transmitter});
}

}  // namespace dr::ba
