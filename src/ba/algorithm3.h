// Algorithm 3 (Section 5, Lemma 1 / Theorem 5): Byzantine Agreement for
// general n in t+2s+3 phases with at most 2n + 4tn/s + 3t^2*s messages.
// Choosing s = 4t gives the O(n + t^3) bound of Theorem 5; sweeping s yields
// the paper's message/phase trade-off (~t/alpha extra phases vs O(alpha*n)
// messages).
//
// Roles: the first 2t+1 processors ("active", including transmitter 0) run
// Algorithm 1 among themselves. The remaining m = n-(2t+1) processors
// ("passive") are split into r = ceil(m/s) sets of size <= s; the first
// member of each set is its *root*.
//
// Dissemination per set C = {c(1)=root, c(2), ..., c(k)}:
//   phase t+3        every active signs and sends the agreed value to every
//                    root; a root adopts the value supported by >= t+1
//                    actives as m(1);
//   phase t+2j       the root sends m(j-1) to c(j)          (j = 2..k)
//   phase t+2j+1     c(j) signs and returns it if well-formed; the root
//                    takes the countersigned copy as m(j), else m(j)=m(j-1);
//   phase t+2s+2     the root sends m(k) to every active;
//   phase t+2s+3     each active sends the agreed value directly to every
//                    c(j) whose signature is missing from the root's report
//                    (at most t faulty roots each cause <= s-1 such repairs).
//
// Decisions: actives by Algorithm 1; a root by m(1); a member by >= t+1
// identical direct active messages in the last phase, falling back to the
// value its root showed it.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "ba/algorithm1.h"
#include "ba/config.h"
#include "ba/signed_value.h"
#include "sim/process.h"

namespace dr::ba {

/// Static role/indexing arithmetic shared by the processes, tests and
/// benchmarks.
struct Alg3Layout {
  std::size_t n = 0;
  std::size_t t = 0;
  std::size_t s = 0;

  std::size_t active_count() const { return 2 * t + 1; }
  std::size_t passive_count() const { return n - active_count(); }
  /// Number of passive sets, r = ceil(m/s).
  std::size_t set_count() const {
    return (passive_count() + s - 1) / s;
  }
  bool is_active(ProcId p) const { return p < active_count(); }
  /// Set index of a passive processor.
  std::size_t set_of(ProcId p) const {
    return (p - active_count()) / s;
  }
  /// Position within its set, 1-based like the paper's c(j).
  std::size_t index_in_set(ProcId p) const {
    return (p - active_count()) % s + 1;
  }
  ProcId root_of(std::size_t set) const {
    return static_cast<ProcId>(active_count() + set * s);
  }
  std::size_t set_size(std::size_t set) const {
    const std::size_t begin = set * s;
    const std::size_t end = std::min(begin + s, passive_count());
    return end - begin;
  }
  /// Id of c(j) (1-based j) in `set`.
  ProcId member(std::size_t set, std::size_t j) const {
    return static_cast<ProcId>(active_count() + set * s + (j - 1));
  }
};

class Algorithm3 final : public sim::Process {
 public:
  Algorithm3(ProcId self, const BAConfig& config, std::size_t s,
             bool multi_valued = false);

  void on_phase(sim::Context& ctx) override;
  std::optional<Value> decision() const override;

  /// t+2s+3 paper phases plus one processing-only step.
  static PhaseNum steps(const BAConfig& config, std::size_t s) {
    return static_cast<PhaseNum>(config.t + 2 * s + 4);
  }
  static bool supports(const BAConfig& config, std::size_t s,
                       bool multi_valued = false) {
    return s >= 1 && config.n >= 2 * config.t + 2 && config.t >= 1 &&
           config.transmitter == 0 &&
           (multi_valued || config.value == 0 || config.value == 1);
  }

 private:
  void active_phase(sim::Context& ctx);
  void root_phase(sim::Context& ctx);
  void member_phase(sim::Context& ctx);

  /// A chain an active accepts as a root's report / a member accepts for
  /// countersigning: one active signature first, then member signatures of
  /// the given set (distinct, in-set), cryptographically valid.
  bool well_formed_report(const SignedValue& sv, std::size_t set,
                          const crypto::Verifier& verifier,
                          crypto::VerifyCache* cache) const;

  ProcId self_;
  BAConfig config_;
  Alg3Layout layout_;
  std::unique_ptr<sim::Process> inner_;  // actives' Algorithm 1 (or MV)

  bool is_active_;
  // --- root state ---
  std::optional<SignedValue> m_;  // m(j) as it grows
  // --- member state ---
  std::optional<Value> root_shown_value_;   // value the root showed us
  std::optional<Value> direct_value_;       // >= t+1 actives in last phase
};

}  // namespace dr::ba
