#include "ba/algorithm2.h"

#include <utility>

#include "ba/evidence.h"
#include "ba/valid_message.h"
#include "util/contracts.h"

namespace dr::ba {

bool is_increasing_message(const SignedValue& sv, ProcId self,
                           Value committed, const crypto::Verifier& verifier,
                           crypto::VerifyCache* cache) {
  if (sv.value != committed) return false;
  std::optional<ProcId> prev;
  for (const auto& sig : sv.chain) {
    if (sig.signer >= self) return false;  // labels below the receiver only
    if (prev.has_value() && sig.signer <= *prev) return false;  // increasing
    prev = sig.signer;
  }
  return verify_chain(sv, verifier, cache);
}

Algorithm2::Algorithm2(ProcId self, const BAConfig& config,
                       bool multi_valued)
    : self_(self), config_(config) {
  if (multi_valued) {
    DR_EXPECTS(supports_mv(config));
    inner_ = std::make_unique<Algorithm1MV>(self, config);
  } else {
    DR_EXPECTS(supports(config));
    inner_ = std::make_unique<Algorithm1>(self, config);
  }
}

Value Algorithm2::committed() const {
  return inner_->decision().value_or(kDefaultValue);
}

void Algorithm2::consider_proof(const SignedValue& sv,
                                const crypto::Verifier& verifier,
                                crypto::VerifyCache* cache) {
  if (proof_.has_value()) return;
  if (sv.value == committed() &&
      is_possession_proof(sv, verifier, self_, config_.t, cache)) {
    proof_ = sv;
  }
}

void Algorithm2::on_phase(sim::Context& ctx) {
  const std::size_t t = config_.t;
  const PhaseNum phase = ctx.phase();

  // Phases 1..t+2 (+1 processing step): Algorithm 1 decides the value.
  if (phase <= t + 3) inner_->on_phase(ctx);
  if (phase <= t + 2) return;

  // Proof-building: collect increasing messages and possession proofs.
  // (Commitments are final from step t+3 on: the last Algorithm-1 message
  // was sent at phase t+2.)
  prewarm_inbox(ctx);
  for (const sim::Envelope& env : ctx.inbox()) {
    if (env.sent_phase <= t + 2) continue;  // an Algorithm-1 leftover
    const auto sv = decode_signed_value(env.payload);
    if (!sv) continue;
    consider_proof(*sv, ctx.verifier(), ctx.chain_cache());
    if (is_increasing_message(*sv, self_, committed(), ctx.verifier(),
                              ctx.chain_cache())) {
      if (!best_increasing_ ||
          sv->chain.size() > best_increasing_->chain.size()) {
        best_increasing_ = *sv;
      }
    }
  }

  // Our send slot: paper phase t+2+j for label j = self+1, i.e. step
  // t+3+self in simulator numbering... paper phases match simulator sends
  // directly: p(j) sends at phase t+2+j.
  const PhaseNum my_slot = static_cast<PhaseNum>(t + 2 + (self_ + 1));
  if (phase != my_slot) return;

  SignedValue m = best_increasing_.value_or(SignedValue{committed(), {}});
  const bool wide = m.chain.size() >= t;  // before appending our signature
  const SignedValue signed_m = extend(std::move(m), ctx.signer(), self_);
  consider_proof(signed_m, ctx.verifier(), ctx.chain_cache());

  if (wide) {
    // Not send_all: when embedded by Algorithm 5 the instance spans only
    // the first config_.n processors of a larger run. One shared handle.
    const sim::Payload payload{encode(signed_m)};
    for (ProcId q = 0; q < config_.n; ++q) {
      if (q != self_) ctx.send(q, payload, signed_m.chain.size());
    }
  } else {
    // Labels j+1 .. j+t+1, clipped to the last label 2t+1: ids self+1 ..
    // self+t+1, clipped to 2t.
    const ProcId last = static_cast<ProcId>(2 * t);
    const sim::Payload payload{encode(signed_m)};
    for (ProcId q = self_ + 1; q <= last && q <= self_ + t + 1; ++q) {
      ctx.send(q, payload, signed_m.chain.size());
    }
  }
}

std::optional<Value> Algorithm2::decision() const {
  return inner_->decision();
}

std::optional<Bytes> Algorithm2::evidence() const {
  if (!proof_.has_value()) return std::nullopt;
  return encode_evidence(Evidence{EvidenceKind::kPossession, *proof_});
}

}  // namespace dr::ba
