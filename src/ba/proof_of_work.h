// "Strings" and proofs of work for Algorithm 5 (Section 6).
//
// After each block x+1, the active processors use Algorithm 4 to exchange
// *strings*: an index (the next block level x) followed by the list of
// passive processors the sender believes have not yet received the value,
// signed by that one active processor.
//
// A message M (a set of strings) is a *proof of work* for a subtree C of
// depth x if either
//   (i)  C is an original tree root (the paper's x = lambda case; for our
//        remainder trees, the tree's own depth) — the empty proof suffices;
//   (ii) pi(M, c, x) >= alpha - 2t for C's root c, or there are processors
//        q in the left and q' in the right depth-(x-1) subtree of C with
//        pi(M, q, x) >= alpha - 2t and pi(M, q', x) >= alpha - 2t,
// where pi(M, q, x) counts the distinct active signers whose index-x string
// lists q. Because at most 2t of the alpha active processors can be faulty
// or isolated, a threshold of alpha - 2t guarantees at least alpha - 3t > 0
// correct signers — a root cannot be tricked into activating for free, which
// is what bounds the message count (Lemma 4).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "ba/exchange.h"
#include "ba/tree.h"

namespace dr::ba {

struct MissingString {
  std::uint32_t index = 0;       // block level the list refers to
  std::vector<ProcId> missing;   // passive processors believed uninformed
};

Bytes encode_missing(const MissingString& s);
std::optional<MissingString> decode_missing(ByteView data);

/// A verified collection of index-`x` strings, keyed by (active) signer.
class MissingEvidence {
 public:
  MissingEvidence(std::uint32_t index, std::size_t alpha);

  /// Verifies and adds one attested string; ignores non-active signers,
  /// wrong indices, duplicate signers and bad signatures.
  void add(const Attested& a, const crypto::Verifier& verifier);

  /// pi(M, q, index): distinct active signers listing q.
  std::size_t pi(ProcId q) const;

  std::uint32_t index() const { return index_; }

  std::size_t string_count() const { return strings_.size(); }

  /// All strings that list any of `witnesses` (deduplicated by signer) —
  /// the minimal proof payload for those witnesses.
  std::vector<Attested> strings_listing(std::span<const ProcId> witnesses)
      const;

 private:
  std::uint32_t index_;
  std::size_t alpha_;
  std::map<ProcId, std::pair<Attested, MissingString>> strings_;
};

/// Does `evidence` (index x strings) prove work for the subtree of heap node
/// `node` in `tree` at block x? Original tree roots need no evidence.
bool has_proof_of_work(const MissingEvidence& evidence,
                       const PassiveTree& tree, std::size_t node,
                       std::size_t x, std::size_t alpha, std::size_t t);

/// The witness-selecting counterpart: the subset of strings a correct active
/// sends to the subtree root as its proof of work. nullopt when no proof
/// exists. Original tree roots get an (existing) empty proof.
std::optional<std::vector<Attested>> build_proof_of_work(
    const MissingEvidence& evidence, const PassiveTree& tree,
    std::size_t node, std::size_t x, std::size_t alpha, std::size_t t);

}  // namespace dr::ba
