#include "ba/algorithm5.h"

#include <algorithm>

#include "ba/evidence.h"
#include "ba/valid_message.h"
#include "util/contracts.h"

namespace dr::ba {

// ---------------------------------------------------------------------------
// Schedule

PhaseNum Alg5Schedule::block_start(std::size_t x) const {
  PhaseNum step = first_block_step();
  for (std::size_t y = top; y > x; --y) {
    step += static_cast<PhaseNum>(2 * tree_size(y) + 3);
  }
  return step;
}

PhaseNum Alg5Schedule::exchange_start(std::size_t x) const {
  return block_start(x) + static_cast<PhaseNum>(2 * tree_size(x));
}

// ---------------------------------------------------------------------------
// Wire format

Bytes encode_alg5(const SignedValue& sv, const std::vector<Attested>& proof) {
  Writer w;
  w.bytes(encode(sv));
  w.seq(proof.size());
  for (const Attested& a : proof) encode(w, a);
  return std::move(w).take();
}

std::optional<std::pair<SignedValue, std::vector<Attested>>> decode_alg5(
    ByteView data) {
  Reader r(data);
  // Zero-copy: the chain image is decoded in place inside `data` (the
  // SignedValue it produces owns its own bytes, so nothing outlives the
  // view).
  const ByteView sv_bytes = r.view();
  if (!r.ok()) return std::nullopt;
  const auto sv = decode_signed_value(sv_bytes);
  if (!sv) return std::nullopt;
  const std::size_t count = r.seq();
  std::vector<Attested> proof;
  proof.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto a = decode_attested(r);
    if (!a) return std::nullopt;
    proof.push_back(std::move(*a));
  }
  if (!r.done()) return std::nullopt;
  return std::make_pair(*sv, std::move(proof));
}

std::optional<SignedValue> valid_from_proof(const Algorithm2& alg2,
                                            ProcId self,
                                            const crypto::Signer& signer) {
  if (!alg2.proof().has_value()) return std::nullopt;
  SignedValue sv = *alg2.proof();
  if (!contains_signer(sv, self)) sv = extend(sv, signer, self);
  return sv;
}

// ---------------------------------------------------------------------------
// Active

Algorithm5Active::Algorithm5Active(ProcId self, const BAConfig& config,
                                   const Forest& forest,
                                   const Alg5Options& options)
    : self_(self), config_(config), forest_(forest),
      schedule_{config.t, forest.max_depth()},
      grid_m_(1) {
  DR_EXPECTS(forest_.is_active(self));
  while (grid_m_ * grid_m_ < forest_.alpha) ++grid_m_;
  DR_ASSERT(grid_m_ * grid_m_ == forest_.alpha);
  if (self_ < 2 * config_.t + 1) {
    inner_ = std::make_unique<Algorithm2>(
        self_, BAConfig{2 * config_.t + 1, config_.t, 0, config_.value},
        options.multi_valued);
  }
}

void Algorithm5Active::adopt_valid_messages(sim::Context& ctx) {
  if (valid_.has_value()) return;
  for (const sim::Envelope& env : ctx.inbox()) {
    const auto msg = decode_alg5(env.payload);
    if (!msg) continue;
    if (is_valid_message(msg->first, ctx.verifier(), forest_.alpha,
                         config_.t, ctx.chain_cache())) {
      valid_ = msg->first;
      return;
    }
  }
}

void Algorithm5Active::mark_informed(sim::Context& ctx) {
  for (const sim::Envelope& env : ctx.inbox()) {
    if (!forest_.is_passive(env.from)) continue;
    const auto msg = decode_alg5(env.payload);
    if (!msg) continue;
    if (!is_valid_message(msg->first, ctx.verifier(), forest_.alpha,
                          config_.t, ctx.chain_cache())) {
      continue;
    }
    // The sender demonstrably holds a valid message, and every passive
    // signer of one countersigned it after seeing it.
    informed_.insert(env.from);
    for (const auto& sig : msg->first.chain) {
      if (forest_.is_passive(sig.signer)) informed_.insert(sig.signer);
    }
  }
}

void Algorithm5Active::send_activations(sim::Context& ctx, std::size_t x) {
  if (!valid_.has_value()) return;
  for (const PassiveTree& tree : forest_.trees) {
    if (tree.depth == x) {
      // An original tree root: unconditional, empty proof of work.
      ctx.send(tree.first_id, encode_alg5(*valid_, {}),
               valid_->chain.size());
      contacted_.insert(tree.first_id);
    } else if (tree.depth > x && evidence_.has_value() &&
               evidence_->index() == x) {
      for (std::size_t node : tree.subtree_roots_at_depth(x)) {
        const auto proof = build_proof_of_work(*evidence_, tree, node, x,
                                               forest_.alpha, config_.t);
        if (!proof) continue;
        const ProcId root = tree.id_of(node);
        ctx.send(root, encode_alg5(*valid_, *proof),
                 valid_->chain.size() + proof->size());
        contacted_.insert(root);
      }
    }
  }
}

void Algorithm5Active::start_exchange(sim::Context& ctx, std::size_t x) {
  pending_f_.clear();
  const auto considered = [&](ProcId q) {
    return !informed_.contains(q) && !contacted_.contains(q);
  };
  if (current_b_.has_value()) {
    for (ProcId q : *current_b_) {
      if (considered(q)) pending_f_.push_back(q);
    }
  } else {
    // B(p, top) is the set of all passive processors.
    for (ProcId q = static_cast<ProcId>(forest_.alpha); q < config_.n; ++q) {
      if (considered(q)) pending_f_.push_back(q);
    }
  }
  next_index_ = static_cast<std::uint32_t>(x - 1);
  core_.emplace(self_, grid_m_, schedule_.exchange_start(x));
  core_->set_body(encode_missing(MissingString{next_index_, pending_f_}));
  core_->on_phase(ctx);
}

void Algorithm5Active::finish_exchange(sim::Context& ctx) {
  evidence_.emplace(next_index_, forest_.alpha);
  for (const auto& [signer, attested] : core_->known()) {
    evidence_->add(attested, ctx.verifier());
  }
  std::set<ProcId> b;
  const std::size_t threshold = forest_.alpha - 2 * config_.t;
  for (ProcId q : pending_f_) {
    if (evidence_->pi(q) >= threshold) b.insert(q);
  }
  current_b_ = std::move(b);
  core_.reset();
}

void Algorithm5Active::send_directs(sim::Context& ctx) {
  if (!valid_.has_value() || !current_b_.has_value()) return;
  const sim::Payload payload{encode_alg5(*valid_, {})};
  for (ProcId q : *current_b_) {
    ctx.send(q, payload, valid_->chain.size());
  }
}

void Algorithm5Active::on_phase(sim::Context& ctx) {
  const PhaseNum phase = ctx.phase();
  const std::size_t t = config_.t;

  prewarm_inbox(ctx);

  if (inner_ && phase <= 3 * t + 4) inner_->on_phase(ctx);
  if (inner_ && phase == 3 * t + 4) {
    valid_ = valid_from_proof(*inner_, self_, ctx.signer());
    if (self_ <= t && valid_.has_value()) {
      const sim::Payload payload{encode_alg5(*valid_, {})};
      for (ProcId q = static_cast<ProcId>(2 * t + 1); q < forest_.alpha;
           ++q) {
        ctx.send(q, payload, valid_->chain.size());
      }
    }
  }

  adopt_valid_messages(ctx);
  mark_informed(ctx);

  if (core_.has_value()) {
    core_->on_phase(ctx);
    if (phase == core_->start() + 3) finish_exchange(ctx);
  }

  if (schedule_.top >= 1 && phase >= schedule_.first_block_step()) {
    for (std::size_t x = schedule_.top; x >= 1; --x) {
      if (phase == schedule_.block_start(x)) send_activations(ctx, x);
      if (phase == schedule_.exchange_start(x)) start_exchange(ctx, x);
    }
    if (phase == schedule_.block_start(0)) send_directs(ctx);
  }
}

std::optional<Value> Algorithm5Active::decision() const {
  if (inner_) return inner_->decision();
  if (valid_.has_value()) return valid_->value;
  return std::nullopt;
}

std::optional<Bytes> Algorithm5Active::evidence() const {
  if (valid_.has_value()) {
    return encode_evidence(Evidence{EvidenceKind::kValidMessage, *valid_});
  }
  if (inner_) return inner_->evidence();
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Passive

Algorithm5Passive::Algorithm5Passive(ProcId self, const BAConfig& config,
                                     const Forest& forest,
                                     const Alg5Options& options)
    : self_(self), config_(config), forest_(forest),
      schedule_{config.t, forest.max_depth()},
      tree_(forest_.tree_of(self)),
      node_(tree_ != nullptr ? tree_->node_of(self) : 0),
      own_depth_(tree_ != nullptr ? tree_->subtree_depth(node_) : 0),
      options_(options) {
  DR_EXPECTS(tree_ != nullptr);
}

void Algorithm5Passive::scan_for_decision(sim::Context& ctx) {
  if (decided_.has_value()) return;
  for (const sim::Envelope& env : ctx.inbox()) {
    const auto msg = decode_alg5(env.payload);
    if (!msg) continue;
    if (is_valid_message(msg->first, ctx.verifier(), forest_.alpha,
                         config_.t, ctx.chain_cache())) {
      decided_ = msg->first;
      return;
    }
  }
}

void Algorithm5Passive::root_role(sim::Context& ctx) {
  const PhaseNum phase = ctx.phase();
  const PhaseNum b = schedule_.block_start(own_depth_);
  const std::size_t l = tree_size(own_depth_);
  const std::vector<std::size_t> members = tree_->subtree_nodes(node_);

  if (phase == b + 1) {
    // Activation: a valid message plus a proof of work for our subtree.
    for (const sim::Envelope& env : ctx.inbox()) {
      if (!forest_.is_active(env.from) || env.sent_phase != b) continue;
      const auto msg = decode_alg5(env.payload);
      if (!msg) continue;
      if (!is_valid_message(msg->first, ctx.verifier(), forest_.alpha,
                            config_.t, ctx.chain_cache())) {
        continue;
      }
      if (node_ != 1 && options_.require_proof_of_work) {
        MissingEvidence evidence(static_cast<std::uint32_t>(own_depth_),
                                 forest_.alpha);
        for (const Attested& a : msg->second) evidence.add(a, ctx.verifier());
        if (!has_proof_of_work(evidence, *tree_, node_, own_depth_,
                               forest_.alpha, config_.t)) {
          continue;
        }
      }
      activated_ = true;
      m_ = msg->first;
      if (!decided_.has_value()) decided_ = msg->first;
      break;
    }
    if (activated_) {
      if (l == 1) {
        // Degenerate subtree: report immediately.
        const sim::Payload payload{encode_alg5(*m_, {})};
        for (ProcId p = 0; p < forest_.alpha; ++p) {
          ctx.send(p, payload, m_->chain.size());
        }
      } else {
        ctx.send(tree_->id_of(members[1]), encode_alg5(*m_, {}),
                 m_->chain.size());
      }
    }
    return;
  }

  if (!activated_ || l < 2) return;
  if (phase <= b + 1 || phase > b + 2 * l - 1) return;
  const std::size_t offset = phase - b;
  if (offset % 2 == 0) return;  // echo slots belong to the members

  // offset = 2j-3 is the send slot for c(j); the echo of c(j-1) arrives now.
  const std::size_t j_send = (offset + 3) / 2;
  const std::size_t j_prev = j_send - 1;
  if (j_prev >= 2) {
    const ProcId expected = tree_->id_of(members[j_prev - 1]);
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.from != expected || env.sent_phase + 1 != phase) continue;
      const auto msg = decode_alg5(env.payload);
      if (!msg) continue;
      const SignedValue& echo = msg->first;
      if (echo.value != m_->value) continue;
      if (echo.chain.size() != m_->chain.size() + 1) continue;
      if (!std::equal(m_->chain.begin(), m_->chain.end(),
                      echo.chain.begin())) {
        continue;
      }
      if (echo.chain.back().signer != expected) continue;
      if (!verify_chain(echo, ctx.verifier(), ctx.chain_cache())) continue;
      m_ = echo;
      break;
    }
  }

  if (j_send <= l) {
    ctx.send(tree_->id_of(members[j_send - 1]), encode_alg5(*m_, {}),
             m_->chain.size());
  }
  if (offset == 2 * l - 1) {
    const sim::Payload payload{encode_alg5(*m_, {})};
    for (ProcId p = 0; p < forest_.alpha; ++p) {
      ctx.send(p, payload, m_->chain.size());
    }
  }
}

void Algorithm5Passive::member_role(sim::Context& ctx) {
  const PhaseNum phase = ctx.phase();
  const std::size_t d = tree_->depth;
  const std::size_t my_level = PassiveTree::level(node_);

  for (std::size_t x = own_depth_ + 1; x <= d; ++x) {
    const std::size_t u =
        PassiveTree::ancestor_at_level(node_, d - x + 1);
    const std::size_t lev = my_level - PassiveTree::level(u);
    const std::size_t j = (std::size_t{1} << lev) + (node_ - (u << lev));
    const PhaseNum slot = schedule_.block_start(x) +
                          static_cast<PhaseNum>(2 * j - 2);
    if (phase != slot) continue;

    const ProcId root = tree_->id_of(u);
    std::vector<SignedValue> valid;
    for (const sim::Envelope& env : ctx.inbox()) {
      if (env.from != root || env.sent_phase + 1 != phase) continue;
      const auto msg = decode_alg5(env.payload);
      if (!msg) continue;
      if (!is_valid_message(msg->first, ctx.verifier(), forest_.alpha,
                            config_.t, ctx.chain_cache())) {
        continue;
      }
      if (std::find(valid.begin(), valid.end(), msg->first) == valid.end()) {
        valid.push_back(msg->first);
      }
    }
    // "If at the previous phase processor c(j) has received exactly one
    // valid message from the root of the depth x subtree it belongs to,
    // then it signs this message and sends it back."
    if (valid.size() == 1) {
      if (!decided_.has_value()) decided_ = valid.front();
      const SignedValue echo = extend(valid.front(), ctx.signer(), self_);
      ctx.send(root, encode_alg5(echo, {}), echo.chain.size());
    }
  }
}

void Algorithm5Passive::on_phase(sim::Context& ctx) {
  prewarm_inbox(ctx);
  scan_for_decision(ctx);
  root_role(ctx);
  member_role(ctx);
}

std::optional<Value> Algorithm5Passive::decision() const {
  if (decided_.has_value()) return decided_->value;
  return std::nullopt;
}

std::optional<Bytes> Algorithm5Passive::evidence() const {
  if (!decided_.has_value()) return std::nullopt;
  return encode_evidence(Evidence{EvidenceKind::kValidMessage, *decided_});
}

// ---------------------------------------------------------------------------
// Algorithm2Ext

Algorithm2Ext::Algorithm2Ext(ProcId self, const BAConfig& config,
                             bool multi_valued)
    : self_(self), config_(config) {
  DR_EXPECTS(config.n >= 2 * config.t + 1);
  if (self_ < 2 * config_.t + 1) {
    inner_ = std::make_unique<Algorithm2>(
        self_, BAConfig{2 * config_.t + 1, config_.t, 0, config_.value},
        multi_valued);
  }
}

void Algorithm2Ext::on_phase(sim::Context& ctx) {
  const std::size_t t = config_.t;
  const PhaseNum phase = ctx.phase();

  prewarm_inbox(ctx);
  if (inner_) {
    if (phase <= 3 * t + 4) inner_->on_phase(ctx);
    if (phase == 3 * t + 4 && self_ <= t) {
      const auto valid = valid_from_proof(*inner_, self_, ctx.signer());
      if (valid.has_value()) {
        const sim::Payload payload{encode_alg5(*valid, {})};
        for (ProcId q = static_cast<ProcId>(2 * t + 1); q < config_.n; ++q) {
          ctx.send(q, payload, valid->chain.size());
        }
      }
    }
    return;
  }
  if (adopted_.has_value()) return;
  for (const sim::Envelope& env : ctx.inbox()) {
    const auto msg = decode_alg5(env.payload);
    if (!msg) continue;
    if (is_valid_message(msg->first, ctx.verifier(), 2 * t + 1, t,
                         ctx.chain_cache())) {
      adopted_ = msg->first;
      return;
    }
  }
}

std::optional<Value> Algorithm2Ext::decision() const {
  if (inner_) return inner_->decision();
  if (adopted_.has_value()) return adopted_->value;
  return std::nullopt;
}

std::optional<Bytes> Algorithm2Ext::evidence() const {
  if (inner_) return inner_->evidence();
  if (!adopted_.has_value()) return std::nullopt;
  return encode_evidence(Evidence{EvidenceKind::kValidMessage, *adopted_});
}

// ---------------------------------------------------------------------------
// Family factory

bool algorithm5_supports(const BAConfig& config, std::size_t s,
                         bool multi_valued) {
  return s >= 1 && config.t >= 1 && config.transmitter == 0 &&
         config.n >= 2 * config.t + 1 &&
         (multi_valued || config.value == 0 || config.value == 1);
}

PhaseNum algorithm5_steps(const BAConfig& config, std::size_t s) {
  if (config.n < alpha_for(config.t)) return Algorithm2Ext::steps(config);
  const Forest forest = Forest::build(config.n, config.t, s);
  return Alg5Schedule{config.t, forest.max_depth()}.steps();
}

std::unique_ptr<sim::Process> make_algorithm5(ProcId self,
                                              const BAConfig& config,
                                              std::size_t s,
                                              const Alg5Options& options) {
  DR_EXPECTS(algorithm5_supports(config, s, options.multi_valued));
  if (config.n < alpha_for(config.t)) {
    return std::make_unique<Algorithm2Ext>(self, config,
                                           options.multi_valued);
  }
  const Forest forest = Forest::build(config.n, config.t, s);
  if (forest.is_active(self)) {
    return std::make_unique<Algorithm5Active>(self, config, forest, options);
  }
  return std::make_unique<Algorithm5Passive>(self, config, forest, options);
}

}  // namespace dr::ba
