// A value carrying a chain of signatures — the information unit of every
// authenticated algorithm in the paper.
//
// Chain semantics: signature i covers the value together with signatures
// 0..i-1 (in order). This makes a chain transferable and non-malleable: a
// receiver can verify who signed, in which order, and nobody can truncate an
// inner signature or splice chains without detection (any tampering breaks
// at least one MAC).
//
// Signatures are computed over a *running prefix digest* (hash-then-sign):
// one SHA-256 stream absorbs a domain tag, the value and the encoded
// signatures in order, and position i signs the stream's digest after
// absorbing signatures 0..i-1. Because each covered prefix extends the
// previous one, signing and verifying a whole chain hashes every byte once
// — O(chain) work instead of the O(chain^2) a re-serialize-per-position
// layout costs — and the prefix digest doubles as a content address for
// the verification cache (crypto/verify_cache.h).
#pragma once

#include <optional>
#include <vector>

#include "ba/config.h"
#include "codec/codec.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "crypto/verify_cache.h"
#include "hist/export.h"

namespace dr::ba {

struct SignedValue {
  Value value = 0;
  std::vector<crypto::Signature> chain;

  friend bool operator==(const SignedValue&, const SignedValue&) = default;
};

/// Wire encoding (deterministic: value, signature count, signatures in
/// order).
Bytes encode(const SignedValue& sv);
std::optional<SignedValue> decode_signed_value(ByteView data);

/// Digest covered by the signature at position `upto` (exclusive): the
/// domain tag, the value and signatures 0..upto-1, absorbed through one
/// running SHA-256. Exposed for the verification cache and tests; protocol
/// code should go through extend()/verify_chain().
crypto::Digest chain_prefix_digest(const SignedValue& sv, std::size_t upto);

/// Creates a one-signature chain: `as` signs `value`.
SignedValue make_signed(Value value, const crypto::Signer& signer,
                        ProcId as);

/// Returns sv with one more signature (by `as`) appended. Takes the chain
/// by value: pass an rvalue (std::move) to extend in place without copying.
SignedValue extend(SignedValue sv, const crypto::Signer& signer, ProcId as);

/// Verifies every signature in the chain against the prefix digest it
/// covers. An empty chain verifies trivially. When `cache` is non-null,
/// (signer, prefix, signature) triples that verified before are accepted
/// without re-running the scheme, and fresh successes are recorded; failed
/// verifications are never cached (see crypto/verify_cache.h).
bool verify_chain(const SignedValue& sv, const crypto::Verifier& verifier,
                  crypto::VerifyCache* cache = nullptr);

/// The signer ids in chain order.
std::vector<ProcId> chain_signers(const SignedValue& sv);

/// True when no processor signed twice.
bool distinct_signers(const SignedValue& sv);

/// True when `p` appears among the signers.
bool contains_signer(const SignedValue& sv, ProcId p);

/// Label printer for hist::to_dot / hist::to_text that decodes signature
/// chains ("v=1 sig[0,2]"), falling back to a byte count.
hist::LabelPrinter chain_label_printer();

namespace detail {

/// The exact absorption steps verify_chain/chain_prefix_digest perform,
/// exposed so ba::prewarm_inbox can stream chain prefixes from an in-place
/// parse (signer id + signature bytes view) without materialising Signature
/// values. Any drift between these and the internal helpers would silently
/// split the digest space, so they ARE the internal helpers.
void absorb_chain_head(crypto::Sha256& h, Value value);
void absorb_signature_raw(crypto::Sha256& h, ProcId signer, ByteView sig);

}  // namespace detail

}  // namespace dr::ba
