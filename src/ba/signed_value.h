// A value carrying a chain of signatures — the information unit of every
// authenticated algorithm in the paper.
//
// Chain semantics: signature i covers the value together with signatures
// 0..i-1 (in order). This makes a chain transferable and non-malleable: a
// receiver can verify who signed, in which order, and nobody can truncate an
// inner signature or splice chains without detection (any tampering breaks
// at least one MAC).
#pragma once

#include <optional>
#include <vector>

#include "ba/config.h"
#include "codec/codec.h"
#include "crypto/signature.h"
#include "hist/export.h"

namespace dr::ba {

struct SignedValue {
  Value value = 0;
  std::vector<crypto::Signature> chain;

  friend bool operator==(const SignedValue&, const SignedValue&) = default;
};

/// Wire encoding (deterministic; signatures are computed over prefixes of
/// this very encoding).
Bytes encode(const SignedValue& sv);
std::optional<SignedValue> decode_signed_value(ByteView data);

/// Creates a one-signature chain: `as` signs `value`.
SignedValue make_signed(Value value, const crypto::Signer& signer,
                        ProcId as);

/// Returns sv with one more signature (by `as`) appended.
SignedValue extend(const SignedValue& sv, const crypto::Signer& signer,
                   ProcId as);

/// Verifies every signature in the chain against the prefix it covers.
/// An empty chain verifies trivially.
bool verify_chain(const SignedValue& sv, const crypto::Verifier& verifier);

/// The signer ids in chain order.
std::vector<ProcId> chain_signers(const SignedValue& sv);

/// True when no processor signed twice.
bool distinct_signers(const SignedValue& sv);

/// True when `p` appears among the signers.
bool contains_signer(const SignedValue& sv, ProcId p);

/// Label printer for hist::to_dot / hist::to_text that decodes signature
/// chains ("v=1 sig[0,2]"), falling back to a byte count.
hist::LabelPrinter chain_label_printer();

}  // namespace dr::ba
