// HMAC-SHA-256 per RFC 2104 / FIPS 198-1. One-shot helper plus an
// incremental (init/update/final) interface mirroring Sha256's.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace dr::crypto {

/// Incremental HMAC-SHA-256: construct with the key, update() with message
/// chunks, finish() once. Equivalent to hmac_sha256(key, concat(chunks)).
class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void update(ByteView data);
  /// Finalizes and returns the MAC. The object must not be used afterwards.
  Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, kSha256BlockSize> opad_;
};

/// Computes HMAC-SHA-256(key, message).
Digest hmac_sha256(ByteView key, ByteView message);

/// A fixed key prepared for repeated MACs: stores the SHA-256 midstates
/// after absorbing ipad and opad, so each mac() skips re-hashing both
/// 64-byte pads. Worth it anywhere one key authenticates many messages —
/// the signature registry MACs with the same per-processor key for every
/// sign/verify of a run.
class HmacKey {
 public:
  explicit HmacKey(ByteView key);

  /// HMAC-SHA-256(key, message), from the precomputed midstates.
  Digest mac(ByteView message) const;

 private:
  Sha256 inner_state_;  // state after absorbing key ^ ipad
  Sha256 outer_state_;  // state after absorbing key ^ opad
};

/// HKDF-style key derivation used to give each processor an independent
/// signing key from a master seed: derive(seed, label) =
/// HMAC(seed, label). Deterministic so simulations are reproducible.
Bytes derive_key(ByteView seed, ByteView label);

}  // namespace dr::crypto
