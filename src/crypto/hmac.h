// HMAC-SHA-256 per RFC 2104 / FIPS 198-1.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace dr::crypto {

/// Computes HMAC-SHA-256(key, message).
Digest hmac_sha256(ByteView key, ByteView message);

/// HKDF-style key derivation used to give each processor an independent
/// signing key from a master seed: derive(seed, label) =
/// HMAC(seed, label). Deterministic so simulations are reproducible.
Bytes derive_key(ByteView seed, ByteView label);

}  // namespace dr::crypto
