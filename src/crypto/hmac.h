// HMAC-SHA-256 per RFC 2104 / FIPS 198-1. One-shot helper plus an
// incremental (init/update/final) interface mirroring Sha256's.
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace dr::crypto {

/// Incremental HMAC-SHA-256: construct with the key, update() with message
/// chunks, finish() once. Equivalent to hmac_sha256(key, concat(chunks)).
class HmacSha256 {
 public:
  explicit HmacSha256(ByteView key);

  void update(ByteView data);
  /// Finalizes and returns the MAC. The object must not be used afterwards.
  Digest finish();

 private:
  Sha256 inner_;
  std::array<std::uint8_t, kSha256BlockSize> opad_;
};

/// Computes HMAC-SHA-256(key, message).
Digest hmac_sha256(ByteView key, ByteView message);

/// A fixed key prepared for repeated MACs: stores the SHA-256 midstates
/// after absorbing ipad and opad, so each mac() skips re-hashing both
/// 64-byte pads. Worth it anywhere one key authenticates many messages —
/// the signature registry MACs with the same per-processor key for every
/// sign/verify of a run.
class HmacKey {
 public:
  explicit HmacKey(ByteView key);

  /// HMAC-SHA-256(key, message), from the precomputed midstates.
  Digest mac(ByteView message) const;

  /// The pad midstates (each has absorbed exactly one 64-byte block).
  /// These seed the multi-buffer lanes of hmac_mac_many; protocol code
  /// should go through mac().
  const Sha256& inner_midstate() const { return inner_state_; }
  const Sha256& outer_midstate() const { return outer_state_; }

 private:
  Sha256 inner_state_;  // state after absorbing key ^ ipad
  Sha256 outer_state_;  // state after absorbing key ^ opad
};

/// One MAC of a batch. Items may use different keys — each SIMD lane is
/// seeded from its own item's midstates.
struct HmacBatchItem {
  const HmacKey* key = nullptr;
  ByteView message;
  Digest out{};  // written by hmac_mac_many
};

/// Longest message eligible for the one-block fast path: message plus the
/// 0x80 delimiter and the 8-byte length must fit the block that follows
/// the already-absorbed pad.
inline constexpr std::size_t kHmacOneBlockMax = kSha256BlockSize - 9;

/// Computes items[i].out = items[i].key->mac(items[i].message) for the
/// whole batch. Messages at most kHmacOneBlockMax bytes take the
/// multi-buffer path: each MAC is exactly two single-block compressions
/// from the pad midstates (inner then outer), and up to
/// hash_backend().lanes of them run in SIMD lanes at once — this is what
/// makes batch verification of chain links (32-byte digests, ~38-byte
/// encodings) cheap. Longer messages fall back to mac() per item. Output
/// is bit-identical to mac() in every case.
void hmac_mac_many(HmacBatchItem* items, std::size_t count);

/// HKDF-style key derivation used to give each processor an independent
/// signing key from a master seed: derive(seed, label) =
/// HMAC(seed, label). Deterministic so simulations are reproducible.
Bytes derive_key(ByteView seed, ByteView label);

}  // namespace dr::crypto
