// SHA-256 per FIPS 180-4, implemented from scratch (no external crypto
// dependency is available offline). Streaming interface plus one-shot helper.
// Block compression dispatches through the runtime-selected backend
// (crypto/hash_backend.h: scalar / SHA-NI / AVX2 multi-buffer); every
// backend is bit-identical, so buffering, padding, midstates and digests
// never depend on which one runs.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace dr::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  Digest finish();

  /// Digest of everything absorbed so far, without disturbing the stream:
  /// finalizes a copy, so this object can keep absorbing afterwards. This is
  /// what makes running-prefix digests O(1) per checkpoint instead of
  /// re-hashing the whole prefix.
  Digest peek() const;

  /// The eight FIPS state words after the blocks absorbed so far, and the
  /// byte count they cover. This is the seam the multi-buffer batch paths
  /// build on: a lane is seeded from a midstate's words and fed blocks
  /// through HashBackend::compress_mb directly. Only meaningful as a
  /// midstate when no partial block is buffered (buffered_bytes() == 0) —
  /// true for HmacKey's pad midstates, which absorb exactly one block.
  const std::array<std::uint32_t, 8>& state_words() const { return state_; }
  std::uint64_t absorbed_bytes() const { return total_len_; }
  std::size_t buffered_bytes() const { return buffered_; }

 private:
  void compress_blocks(const std::uint8_t* blocks, std::size_t nblocks);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kSha256BlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// One-shot digest.
Digest sha256(ByteView data);

/// Digest as a Bytes value (convenient for codecs).
Bytes sha256_bytes(ByteView data);

}  // namespace dr::crypto
