// SHA-256 per FIPS 180-4, implemented from scratch (no external crypto
// dependency is available offline). Streaming interface plus one-shot helper.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace dr::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  Digest finish();

  /// Digest of everything absorbed so far, without disturbing the stream:
  /// finalizes a copy, so this object can keep absorbing afterwards. This is
  /// what makes running-prefix digests O(1) per checkpoint instead of
  /// re-hashing the whole prefix.
  Digest peek() const;

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kSha256BlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// One-shot digest.
Digest sha256(ByteView data);

/// Digest as a Bytes value (convenient for codecs).
Bytes sha256_bytes(ByteView data);

}  // namespace dr::crypto
