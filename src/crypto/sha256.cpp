#include "crypto/sha256.h"

#include <cstring>

#include "crypto/hash_backend.h"
#include "util/contracts.h"

namespace dr::crypto {

namespace {

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void Sha256::reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffered_ = 0;
  total_len_ = 0;
  finished_ = false;
}

void Sha256::compress_blocks(const std::uint8_t* blocks, std::size_t nblocks) {
  hash_backend().compress(state_.data(), blocks, nblocks);
}

void Sha256::update(ByteView data) {
  DR_EXPECTS(!finished_);
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take =
        std::min(data.size(), kSha256BlockSize - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kSha256BlockSize) {
      compress_blocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  // Whole aligned run in one backend call: SHA-NI folds all the blocks
  // without bouncing the state through memory between them.
  const std::size_t full_blocks = (data.size() - offset) / kSha256BlockSize;
  if (full_blocks > 0) {
    compress_blocks(data.data() + offset, full_blocks);
    offset += full_blocks * kSha256BlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest Sha256::finish() {
  DR_EXPECTS(!finished_);
  finished_ = true;

  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[kSha256BlockSize * 2] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Feed padding through the normal path (flip finished_ temporarily).
  finished_ = false;
  const std::uint64_t saved_len = total_len_;
  update(ByteView{pad, pad_len});
  update(ByteView{len_be, 8});
  total_len_ = saved_len;
  finished_ = true;
  DR_ASSERT(buffered_ == 0);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    store_be32(out.data() + 4 * i, state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Digest Sha256::peek() const {
  Sha256 copy = *this;
  return copy.finish();
}

Digest sha256(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Bytes sha256_bytes(ByteView data) {
  const Digest d = sha256(data);
  return Bytes(d.begin(), d.end());
}

}  // namespace dr::crypto
