// The signature-scheme interface the simulator runs on.
//
// The paper assumes an abstract unforgeable signature scheme ([2] Diffie-
// Hellman, [16] RSA). Two implementations are provided:
//   * KeyRegistry (crypto/key_registry.h) — HMAC-SHA-256 with a trusted key
//     directory modelling a PKI; fast, used by default;
//   * MerkleScheme (crypto/merkle.h) — genuine hash-based public-key
//     signatures (Lamport one-time signatures under a Merkle tree), where
//     verification needs only the signer's public root. Slower and
//     signature-count-limited, but closes the gap to a real deployment:
//     nothing in the simulation depends on a trusted verification oracle.
//
// sign() is non-const because hash-based schemes are stateful (each leaf
// key must be used exactly once).
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace dr::crypto {

using ProcId = std::uint32_t;

/// One verification of a batch (see SignatureScheme::verify_batch). The
/// views must stay valid for the duration of the call; `ok` is the result
/// slot.
struct VerifyItem {
  ProcId signer = 0;
  ByteView data;
  ByteView sig;
  bool ok = false;
};

class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  /// Produces a signature by `signer` over `data`. Callers must hold the
  /// signing capability (enforced by crypto::Signer, not here).
  virtual Bytes sign(ProcId signer, ByteView data) = 0;

  /// Public verification.
  virtual bool verify(ProcId signer, ByteView data,
                      ByteView signature) const = 0;

  /// Verifies a whole batch, filling items[i].ok. Semantically identical
  /// to calling verify() per item — overrides exist purely for speed (the
  /// HMAC registry recomputes all the expected MACs through the
  /// multi-buffer hasher, 4–8 lanes at a time). Schemes without a batch
  /// shape inherit the per-item loop.
  virtual void verify_batch(VerifyItem* items, std::size_t count) const {
    for (std::size_t i = 0; i < count; ++i) {
      items[i].ok = verify(items[i].signer, items[i].data, items[i].sig);
    }
  }

  /// Number of processors the scheme has keys for.
  virtual std::size_t size() const = 0;
};

}  // namespace dr::crypto
