// The signature-scheme interface the simulator runs on.
//
// The paper assumes an abstract unforgeable signature scheme ([2] Diffie-
// Hellman, [16] RSA). Two implementations are provided:
//   * KeyRegistry (crypto/key_registry.h) — HMAC-SHA-256 with a trusted key
//     directory modelling a PKI; fast, used by default;
//   * MerkleScheme (crypto/merkle.h) — genuine hash-based public-key
//     signatures (Lamport one-time signatures under a Merkle tree), where
//     verification needs only the signer's public root. Slower and
//     signature-count-limited, but closes the gap to a real deployment:
//     nothing in the simulation depends on a trusted verification oracle.
//
// sign() is non-const because hash-based schemes are stateful (each leaf
// key must be used exactly once).
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace dr::crypto {

using ProcId = std::uint32_t;

class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  /// Produces a signature by `signer` over `data`. Callers must hold the
  /// signing capability (enforced by crypto::Signer, not here).
  virtual Bytes sign(ProcId signer, ByteView data) = 0;

  /// Public verification.
  virtual bool verify(ProcId signer, ByteView data,
                      ByteView signature) const = 0;

  /// Number of processors the scheme has keys for.
  virtual std::size_t size() const = 0;
};

}  // namespace dr::crypto
