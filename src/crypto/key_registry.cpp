#include "crypto/key_registry.h"

#include "codec/codec.h"
#include "util/contracts.h"

namespace dr::crypto {

KeyRegistry::KeyRegistry(std::size_t n, std::uint64_t master_seed) {
  keys_.reserve(n);
  const Bytes seed = encode_u64(master_seed);
  for (std::size_t i = 0; i < n; ++i) {
    Writer label;
    label.str("dr82.key");
    label.u64(i);
    keys_.push_back(derive_key(seed, std::move(label).take()));
  }
}

Digest KeyRegistry::mac(ProcId signer, ByteView data) const {
  DR_EXPECTS(signer < keys_.size());
  // Domain-separate by signer id so a key reused across ids (impossible
  // here, but cheap insurance) cannot transfer signatures.
  Writer w;
  w.u32(signer);
  w.bytes(data);
  return hmac_sha256(keys_[signer], std::move(w).take());
}

Bytes KeyRegistry::sign(ProcId signer, ByteView data) {
  const Digest d = mac(signer, data);
  return Bytes(d.begin(), d.end());
}

bool KeyRegistry::verify(ProcId signer, ByteView data,
                         ByteView signature) const {
  if (signer >= keys_.size()) return false;
  const Digest expected = mac(signer, data);
  return ct_equal(ByteView{expected.data(), expected.size()}, signature);
}

}  // namespace dr::crypto
