#include "crypto/key_registry.h"

#include <cstring>

#include "codec/codec.h"
#include "util/contracts.h"

namespace dr::crypto {

KeyRegistry::KeyRegistry(std::size_t n, std::uint64_t master_seed) {
  keys_.reserve(n);
  pads_.reserve(n);
  const Bytes seed = encode_u64(master_seed);
  for (std::size_t i = 0; i < n; ++i) {
    Writer label;
    label.str("dr82.key");
    label.u64(i);
    keys_.push_back(derive_key(seed, std::move(label).take()));
    pads_.emplace_back(keys_.back());
  }
}

Digest KeyRegistry::mac(ProcId signer, ByteView data) const {
  DR_EXPECTS(signer < keys_.size());
  // Domain-separate by signer id so a key reused across ids (impossible
  // here, but cheap insurance) cannot transfer signatures. The MACed bytes
  // are Writer{u32(signer), bytes(data)}; chain verification MACs 32-byte
  // digests, so build that encoding on the stack instead of allocating.
  std::uint8_t buf[96];
  if (data.size() + 20 <= sizeof(buf)) {
    std::size_t len = 0;
    const auto put_varint = [&](std::uint64_t v) {
      while (v >= 0x80) {
        buf[len++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
      }
      buf[len++] = static_cast<std::uint8_t>(v);
    };
    put_varint(signer);
    put_varint(data.size());
    if (!data.empty()) {
      std::memcpy(buf + len, data.data(), data.size());
      len += data.size();
    }
    return pads_[signer].mac(ByteView{buf, len});
  }
  Writer w;
  w.u32(signer);
  w.bytes(data);
  return pads_[signer].mac(std::move(w).take());
}

Bytes KeyRegistry::sign(ProcId signer, ByteView data) {
  const Digest d = mac(signer, data);
  return Bytes(d.begin(), d.end());
}

bool KeyRegistry::verify(ProcId signer, ByteView data,
                         ByteView signature) const {
  if (signer >= keys_.size()) return false;
  const Digest expected = mac(signer, data);
  return ct_equal(ByteView{expected.data(), expected.size()}, signature);
}

void KeyRegistry::verify_batch(VerifyItem* items, std::size_t count) const {
  // Chunked lane-batching: build each item's (varint signer, varint len,
  // data) encoding — the exact bytes mac() MACs — into per-chunk scratch,
  // then let hmac_mac_many drive the multi-buffer compressions. Chain
  // verifications MAC 32-byte digests (≈38-byte encodings), so the
  // one-block fast path applies to everything on the hot path; anything
  // longer falls back to the per-item route inside the same loop.
  constexpr std::size_t kChunk = 16;
  std::uint8_t bufs[kChunk][kHmacOneBlockMax];
  HmacBatchItem macs[kChunk];
  const VerifyItem* chunk_items[kChunk];

  std::size_t pending = 0;
  const auto flush = [&] {
    hmac_mac_many(macs, pending);
    for (std::size_t i = 0; i < pending; ++i) {
      const Digest& expected = macs[i].out;
      // The const_cast-free way to write results: recover the item slot
      // from the parallel array.
      const std::size_t index =
          static_cast<std::size_t>(chunk_items[i] - items);
      items[index].ok = ct_equal(
          ByteView{expected.data(), expected.size()}, items[index].sig);
    }
    pending = 0;
  };

  for (std::size_t i = 0; i < count; ++i) {
    VerifyItem& item = items[i];
    if (item.signer >= keys_.size()) {
      item.ok = false;
      continue;
    }
    // Encoded length: both varints plus the data itself.
    const auto varint_len = [](std::uint64_t v) {
      std::size_t len = 1;
      while (v >= 0x80) {
        v >>= 7;
        ++len;
      }
      return len;
    };
    const std::size_t encoded = varint_len(item.signer) +
                                varint_len(item.data.size()) +
                                item.data.size();
    if (encoded > kHmacOneBlockMax) {
      item.ok = verify(item.signer, item.data, item.sig);
      continue;
    }
    std::uint8_t* buf = bufs[pending];
    std::size_t len = 0;
    const auto put_varint = [&](std::uint64_t v) {
      while (v >= 0x80) {
        buf[len++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
      }
      buf[len++] = static_cast<std::uint8_t>(v);
    };
    put_varint(item.signer);
    put_varint(item.data.size());
    if (!item.data.empty()) {
      std::memcpy(buf + len, item.data.data(), item.data.size());
      len += item.data.size();
    }
    macs[pending] = HmacBatchItem{&pads_[item.signer], ByteView{buf, len}};
    chunk_items[pending] = &item;
    if (++pending == kChunk) flush();
  }
  if (pending > 0) flush();
}

}  // namespace dr::crypto
