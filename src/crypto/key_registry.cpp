#include "crypto/key_registry.h"

#include <cstring>

#include "codec/codec.h"
#include "util/contracts.h"

namespace dr::crypto {

KeyRegistry::KeyRegistry(std::size_t n, std::uint64_t master_seed) {
  keys_.reserve(n);
  pads_.reserve(n);
  const Bytes seed = encode_u64(master_seed);
  for (std::size_t i = 0; i < n; ++i) {
    Writer label;
    label.str("dr82.key");
    label.u64(i);
    keys_.push_back(derive_key(seed, std::move(label).take()));
    pads_.emplace_back(keys_.back());
  }
}

Digest KeyRegistry::mac(ProcId signer, ByteView data) const {
  DR_EXPECTS(signer < keys_.size());
  // Domain-separate by signer id so a key reused across ids (impossible
  // here, but cheap insurance) cannot transfer signatures. The MACed bytes
  // are Writer{u32(signer), bytes(data)}; chain verification MACs 32-byte
  // digests, so build that encoding on the stack instead of allocating.
  std::uint8_t buf[96];
  if (data.size() + 20 <= sizeof(buf)) {
    std::size_t len = 0;
    const auto put_varint = [&](std::uint64_t v) {
      while (v >= 0x80) {
        buf[len++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
      }
      buf[len++] = static_cast<std::uint8_t>(v);
    };
    put_varint(signer);
    put_varint(data.size());
    if (!data.empty()) {
      std::memcpy(buf + len, data.data(), data.size());
      len += data.size();
    }
    return pads_[signer].mac(ByteView{buf, len});
  }
  Writer w;
  w.u32(signer);
  w.bytes(data);
  return pads_[signer].mac(std::move(w).take());
}

Bytes KeyRegistry::sign(ProcId signer, ByteView data) {
  const Digest d = mac(signer, data);
  return Bytes(d.begin(), d.end());
}

bool KeyRegistry::verify(ProcId signer, ByteView data,
                         ByteView signature) const {
  if (signer >= keys_.size()) return false;
  const Digest expected = mac(signer, data);
  return ct_equal(ByteView{expected.data(), expected.size()}, signature);
}

}  // namespace dr::crypto
