// HMAC-based signature scheme modelling the paper's signature
// infrastructure via a key registry.
//
// The paper assumes a signature scheme ([Diffie-Hellman 76], [RSA 78]) with
// two properties used by the proofs:
//   1. unforgeability — no processor can produce another processor's
//      signature on a message it never signed;
//   2. collusion — faulty processors may pool their keys, so "every message
//      that contains only signatures of faulty processors can be produced by
//      them".
//
// We model the PKI with per-processor HMAC keys held in a registry. The
// registry plays the role of the public-key directory: anyone may *verify*,
// but a processor can only *sign* through a Signer capability that the
// simulator hands out (one id for correct processors, the whole faulty set
// for the adversary coalition). Unforgeability then holds unconditionally
// within the simulation: the only path to a valid MAC is through a Signer.
//
// For a scheme without any trusted verification path see crypto/merkle.h.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hmac.h"
#include "crypto/scheme.h"
#include "util/bytes.h"

namespace dr::crypto {

class KeyRegistry final : public SignatureScheme {
 public:
  /// Creates keys for processors 0..n-1, derived deterministically from
  /// `master_seed` so whole simulations are reproducible.
  KeyRegistry(std::size_t n, std::uint64_t master_seed);

  std::size_t size() const override { return keys_.size(); }

  /// MAC over (signer-id || data) with signer's key.
  Bytes sign(ProcId signer, ByteView data) override;

  bool verify(ProcId signer, ByteView data,
              ByteView signature) const override;

  /// Batch verification through the multi-buffer hasher: every item's
  /// expected MAC is recomputed with two one-block compressions from the
  /// signer's pad midstates, up to hash_backend().lanes items per SIMD
  /// pass. Bit-identical verdicts to per-item verify().
  void verify_batch(VerifyItem* items, std::size_t count) const override;

 private:
  Digest mac(ProcId signer, ByteView data) const;

  std::vector<Bytes> keys_;
  /// Precomputed HMAC pad midstates, one per key (see crypto::HmacKey):
  /// every sign/verify skips the two 64-byte pad absorptions.
  std::vector<HmacKey> pads_;
};

}  // namespace dr::crypto
