// Content-addressed cache of *successful* signature verifications.
//
// Key: (signer, prefix-digest); value: the exact signature bytes that
// verified over that prefix, plus the digest of the extended prefix
// (prefix || that signature) recorded when the entry was inserted. A
// lookup answers "already verified" only for an exact (signer,
// prefix-digest, signature-bytes) triple seen before, so a forged
// signature presented over a cached honest prefix can never be accepted
// off the cache — its bytes differ from the stored ones, the lookup
// misses, and the full verification path runs (and rejects it).
//
// Returning the extended digest on a hit lets verify_chain walk a fully
// cached chain digest-to-digest without rehashing anything: under SHA-256
// collision resistance the prefix digest determines the prefix, so it also
// determines the digest of (prefix || sig) — the same assumption that lets
// signatures cover digests instead of full prefixes in the first place.
//
// Negative results are deliberately NOT cached: a failed verification
// leaves no trace here, so an adversary cannot poison the cache into later
// rejecting (or accepting) honestly signed chains. The cache is purely an
// accelerator — with or without it, verify_chain accepts exactly the same
// set of chains.
//
// Two implementations share the virtual interface:
//   * VerifyCache — one per process (simulator) or per endpoint (net
//     runtime); not thread-safe, never shared across threads;
//   * StripedVerifyCache::Session — a per-instance view of one shared,
//     lock-striped store (svc daemon endpoints running many instances).
//     Entries are realm-scoped, so a Session's hit/miss sequence is
//     identical to a private VerifyCache's — which is what keeps
//     per-instance metrics equal to solo sim runs (the parity gate).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/scheme.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace dr::crypto {

class VerifyCache {
 public:
  VerifyCache() = default;
  virtual ~VerifyCache() = default;
  VerifyCache(const VerifyCache&) = default;
  VerifyCache& operator=(const VerifyCache&) = default;
  VerifyCache(VerifyCache&&) = default;
  VerifyCache& operator=(VerifyCache&&) = default;

  /// If this exact (signer, prefix, sig) triple verified before, returns
  /// the digest of (prefix || sig) recorded at insert time; otherwise
  /// nullopt. Counts a hit or a miss either way.
  virtual std::optional<Digest> lookup(ProcId signer,
                                       const Digest& prefix_digest,
                                       ByteView sig);

  /// lookup() without touching the hit/miss counters. The batch verifier
  /// uses it to plan which requests need scheme verification before the
  /// counting pass replays sequential lookup order (see verify_batch).
  virtual std::optional<Digest> probe(ProcId signer,
                                      const Digest& prefix_digest,
                                      ByteView sig) const;

  /// Records a successful verification of `sig` over `prefix_digest`,
  /// together with the digest of the extended prefix. Callers must only
  /// insert triples that passed full verification.
  virtual void insert(ProcId signer, const Digest& prefix_digest,
                      ByteView sig, const Digest& extended_digest);

  virtual std::size_t hits() const { return hits_; }
  virtual std::size_t misses() const { return misses_; }
  virtual std::size_t size() const { return entries_.size(); }

 protected:
  struct Key {
    ProcId signer = 0;
    Digest prefix{};

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  struct Entry {
    Bytes sig;
    Digest extended{};
  };

  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// One chain link of a batch verification. The caller (ba::prewarm_inbox /
/// verify_chain's batch path) has already streamed the chain once, so both
/// the covered prefix digest and the extended digest are known up front —
/// the extended digest of a link is just the covered digest of the next
/// one, valid signature or not.
struct VerifyRequest {
  ProcId signer = 0;
  ByteView sig;
  Digest covered{};   // digest the signature claims to cover
  Digest extended{};  // digest of (covered-prefix || sig)
  bool ok = false;    // out: verified (from cache or scheme)
  bool cached = false;  // out: satisfied by a cache hit
};

/// Batch chain-link verification, equivalent — verdicts AND hit/miss
/// counters — to the sequential loop
///     for each request: lookup / verify / insert-on-success
/// but with all scheme verifications coalesced: a planning pass (probe,
/// non-counting) finds the requests the cache cannot answer, duplicates
/// among them collapse to one verification, and the distinct misses run
/// through scheme.verify_batch (multi-buffer lanes for HMAC). The commit
/// pass then replays sequential lookup order against the real cache, so
/// repeated triples count one miss then hits, exactly as the sequential
/// loop would. With a null cache every request is simply verified (in one
/// batch) and nothing is recorded.
void verify_batch(const SignatureScheme& scheme, VerifyCache* cache,
                  VerifyRequest* requests, std::size_t count);

/// A shared verification store for many concurrent protocol instances:
/// one hash map split over K lock stripes, entries scoped by a realm id
/// (one realm per instance). Striping keeps cross-instance contention to
/// 1/K; realm scoping keeps every instance's view — including its hit and
/// miss counts — identical to a private VerifyCache, which the parity and
/// concurrent-isolation suites depend on. Per-stripe hit/miss counters
/// aggregate across all realms and feed the daemon's Prometheus export.
class StripedVerifyCache {
 public:
  static constexpr std::size_t kDefaultStripes = 16;

  explicit StripedVerifyCache(std::size_t stripes = kDefaultStripes);

  /// A per-instance view implementing the VerifyCache interface: lookups
  /// and inserts hit the shared striped store under the session's realm;
  /// hits()/misses() count only this session's traffic. One session per
  /// instance, used from one thread at a time (different sessions may run
  /// concurrently — the stripe locks serialize map access).
  class Session final : public VerifyCache {
   public:
    Session(StripedVerifyCache* owner, std::uint64_t realm)
        : owner_(owner), realm_(realm) {}

    std::optional<Digest> lookup(ProcId signer, const Digest& prefix_digest,
                                 ByteView sig) override;
    std::optional<Digest> probe(ProcId signer, const Digest& prefix_digest,
                                ByteView sig) const override;
    void insert(ProcId signer, const Digest& prefix_digest, ByteView sig,
                const Digest& extended_digest) override;
    std::size_t hits() const override { return session_hits_; }
    std::size_t misses() const override { return session_misses_; }
    std::size_t size() const override;

   private:
    StripedVerifyCache* owner_;
    std::uint64_t realm_;
    std::size_t session_hits_ = 0;
    std::size_t session_misses_ = 0;
  };

  Session session(std::uint64_t realm) { return Session(this, realm); }

  std::size_t stripe_count() const { return stripes_.size(); }

  struct StripeStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
  };
  /// Snapshot of one stripe's counters (locks that stripe only).
  StripeStats stripe_stats(std::size_t stripe) const;

  /// Total entries across stripes (locks each stripe in turn).
  std::size_t size() const;

 private:
  struct RealmKey {
    std::uint64_t realm = 0;
    ProcId signer = 0;
    Digest prefix{};

    friend bool operator==(const RealmKey&, const RealmKey&) = default;
  };
  struct RealmKeyHash {
    std::size_t operator()(const RealmKey& key) const;
  };
  struct Entry {
    Bytes sig;
    Digest extended{};
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<RealmKey, Entry, RealmKeyHash> entries;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  Stripe& stripe_for(const RealmKey& key);
  const Stripe& stripe_for(const RealmKey& key) const;

  // unique_ptr so the vector can size dynamically despite the mutex.
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace dr::crypto
